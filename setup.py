"""Setuptools shim.

The sandboxed reproduction environment has no ``wheel`` package, so PEP 660
editable installs (``pip install -e .``) cannot build the editable wheel.
``python setup.py develop`` (or the provided ``scripts/install_editable.sh``)
installs the package in editable mode without needing ``wheel``.
"""

from setuptools import setup

setup()
