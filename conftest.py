"""Repository-wide pytest configuration: a global per-test timeout.

A hung pinned-worker pool used to stall the whole suite (and CI) until the
job-level timeout killed it with no indication of *which* test hung.  Every
test now runs under a SIGALRM-based watchdog — pure stdlib, so it works
without the pytest-timeout plugin — that raises an in-test ``TimeoutError``
with the offending test's name instead.

The budget is deliberately generous (the slowest legitimate tests are the
multi-process simulation integration runs): override it per environment with
``REPRO_TEST_TIMEOUT`` seconds, or set ``0`` to disable (e.g. when stepping
through a test under a debugger).
"""

from __future__ import annotations

import os
import signal
import threading

import pytest

_DEFAULT_TIMEOUT_SECONDS = 300.0


def _timeout_seconds() -> float:
    raw = os.environ.get("REPRO_TEST_TIMEOUT", "")
    if not raw:
        return _DEFAULT_TIMEOUT_SECONDS
    try:
        value = float(raw)
    except ValueError:
        return _DEFAULT_TIMEOUT_SECONDS
    return max(0.0, value)


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_call(item):
    timeout = _timeout_seconds()
    # SIGALRM only exists on POSIX and only fires in the main thread; in any
    # other situation run the test unguarded rather than break it.
    if (
        timeout <= 0
        or not hasattr(signal, "SIGALRM")
        or threading.current_thread() is not threading.main_thread()
    ):
        yield
        return

    def _on_timeout(signum, frame):
        raise TimeoutError(
            f"test {item.nodeid} exceeded the global {timeout:.0f}s timeout "
            "(REPRO_TEST_TIMEOUT to adjust)"
        )

    previous = signal.signal(signal.SIGALRM, _on_timeout)
    signal.setitimer(signal.ITIMER_REAL, timeout)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)
