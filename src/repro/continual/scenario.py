"""Domain-incremental task streams.

In domain-incremental learning (paper Sec. II) every task shares the same
label space but draws inputs from a new domain.  A
:class:`DomainIncrementalScenario` turns a multi-domain dataset into an
ordered sequence of :class:`Task` objects, one per domain, each carrying that
domain's train and test splits.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence

from repro.datasets.base import ArrayDataset


@dataclass(frozen=True)
class Task:
    """One incremental task: a domain with its train and test data."""

    task_id: int
    domain_name: str
    train: ArrayDataset
    test: ArrayDataset

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Task(id={self.task_id}, domain={self.domain_name!r}, "
            f"train={len(self.train)}, test={len(self.test)})"
        )


class DomainIncrementalScenario:
    """Sequence of domain tasks over a multi-domain dataset.

    Parameters
    ----------
    dataset:
        Any object exposing ``domains``, ``num_classes``, ``train(i)`` and
        ``test(i)`` -- i.e. a :class:`repro.datasets.SyntheticDomainDataset`
        or its reordered view.
    num_tasks:
        Optionally truncate the stream to the first ``num_tasks`` domains
        (used by the tiny test presets).
    """

    def __init__(self, dataset, num_tasks: Optional[int] = None) -> None:
        self.dataset = dataset
        total = len(dataset.domains)
        if num_tasks is not None:
            if not 1 <= num_tasks <= total:
                raise ValueError(f"num_tasks must be in [1, {total}], got {num_tasks}")
            total = num_tasks
        self._num_tasks = total

    @property
    def num_tasks(self) -> int:
        return self._num_tasks

    @property
    def num_classes(self) -> int:
        return self.dataset.num_classes

    @property
    def domain_names(self) -> Sequence[str]:
        return tuple(self.dataset.domains[: self._num_tasks])

    def task(self, task_id: int) -> Task:
        """Build the task with the given zero-based id."""
        if not 0 <= task_id < self._num_tasks:
            raise IndexError(f"task_id {task_id} out of range [0, {self._num_tasks})")
        return Task(
            task_id=task_id,
            domain_name=self.dataset.domains[task_id],
            train=self.dataset.train(task_id),
            test=self.dataset.test(task_id),
        )

    def tasks(self) -> List[Task]:
        return [self.task(i) for i in range(self._num_tasks)]

    def __iter__(self) -> Iterator[Task]:
        return iter(self.tasks())

    def __len__(self) -> int:
        return self._num_tasks

    def seen_tests(self, up_to_task: int) -> List[Task]:
        """Tasks 0..up_to_task inclusive (their test sets are the evaluation suite).

        Out-of-range ids raise :class:`IndexError` exactly like :meth:`task`;
        silently clamping would let a caller bug evaluate the wrong suite
        without any signal.
        """
        if not 0 <= up_to_task < self._num_tasks:
            raise IndexError(
                f"up_to_task {up_to_task} out of range [0, {self._num_tasks})"
            )
        return [self.task(i) for i in range(up_to_task + 1)]


__all__ = ["Task", "DomainIncrementalScenario"]
