"""Continual-learning scaffolding: domain-incremental scenarios and forgetting metrics."""

from repro.continual.scenario import DomainIncrementalScenario, Task
from repro.continual.metrics import AccuracyMatrix, ContinualMetrics
from repro.continual.evaluator import evaluate_accuracy, GlobalEvaluator

__all__ = [
    "DomainIncrementalScenario",
    "Task",
    "AccuracyMatrix",
    "ContinualMetrics",
    "evaluate_accuracy",
    "GlobalEvaluator",
]
