"""Continual-learning scaffolding: domain-incremental scenarios and forgetting metrics."""

from repro.continual.scenario import DomainIncrementalScenario, Task
from repro.continual.metrics import AccuracyMatrix, ContinualMetrics
from repro.continual.evaluator import (
    EvalBackend,
    GlobalEvaluator,
    SerialEvalBackend,
    count_correct,
    evaluate_accuracy,
)

__all__ = [
    "DomainIncrementalScenario",
    "Task",
    "AccuracyMatrix",
    "ContinualMetrics",
    "count_correct",
    "evaluate_accuracy",
    "EvalBackend",
    "SerialEvalBackend",
    "GlobalEvaluator",
]
