"""Continual-learning metrics: the accuracy matrix and the paper's four summary numbers.

The paper reports (Sec. V-A "Evaluation Metrics"):

* **Avg** -- the iCaRL-style average accuracy: after each learning step the
  model is evaluated on all seen tasks; Avg is the mean of those per-step
  averages.
* **Last** -- the per-step average accuracy after the final learning step.
* **FGT (forgetting)** -- for each task, the drop from its best historical
  accuracy to its final accuracy, averaged over tasks (reported as a
  fraction, e.g. 0.278).
* **BwT (backward transfer)** -- the mean change in a task's accuracy between
  the moment it was learned and the end of training (negative values mean
  forgetting).

All four derive from the lower-triangular accuracy matrix ``R`` where
``R[i, j]`` is the accuracy on task ``j`` after finishing training on task
``i``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np


class AccuracyMatrix:
    """Lower-triangular matrix of per-task accuracies across learning steps."""

    def __init__(self, num_tasks: int) -> None:
        if num_tasks < 1:
            raise ValueError("num_tasks must be at least 1")
        self.num_tasks = num_tasks
        self._matrix = np.full((num_tasks, num_tasks), np.nan)

    def record(self, after_task: int, evaluated_task: int, accuracy: float) -> None:
        """Record accuracy on ``evaluated_task`` measured after training ``after_task``."""
        if not 0 <= after_task < self.num_tasks:
            raise IndexError(f"after_task {after_task} out of range")
        if not 0 <= evaluated_task <= after_task:
            raise IndexError(
                f"evaluated_task {evaluated_task} must be in [0, {after_task}] "
                "(tasks are evaluated only once seen)"
            )
        if not 0.0 <= accuracy <= 1.0:
            raise ValueError(f"accuracy must be a fraction in [0, 1], got {accuracy}")
        self._matrix[after_task, evaluated_task] = accuracy

    def value(self, after_task: int, evaluated_task: int) -> float:
        return float(self._matrix[after_task, evaluated_task])

    @property
    def matrix(self) -> np.ndarray:
        return self._matrix.copy()

    def is_complete(self) -> bool:
        """True when every lower-triangular entry has been recorded."""
        for i in range(self.num_tasks):
            for j in range(i + 1):
                if np.isnan(self._matrix[i, j]):
                    return False
        return True

    # ------------------------------------------------------------------ #
    # Summary statistics
    # ------------------------------------------------------------------ #
    def step_average_accuracies(self) -> List[float]:
        """Per-step mean accuracy over seen tasks (the per-column numbers of Table III)."""
        return [float(np.nanmean(self._matrix[i, : i + 1])) for i in range(self.num_tasks)]

    def average_accuracy(self) -> float:
        """The paper's Avg metric (mean of the per-step averages)."""
        return float(np.mean(self.step_average_accuracies()))

    def last_accuracy(self) -> float:
        """The paper's Last metric (per-step average after the final task)."""
        return self.step_average_accuracies()[-1]

    def forgetting(self) -> float:
        """The paper's FGT metric (mean drop from best historical to final accuracy)."""
        if self.num_tasks == 1:
            return 0.0
        final = self._matrix[self.num_tasks - 1]
        drops = []
        for j in range(self.num_tasks - 1):
            history = self._matrix[j : self.num_tasks - 1, j]
            best = np.nanmax(history)
            drops.append(best - final[j])
        return float(np.mean(drops))

    def backward_transfer(self) -> float:
        """The paper's BwT metric (mean final-minus-learned accuracy change)."""
        if self.num_tasks == 1:
            return 0.0
        final = self._matrix[self.num_tasks - 1]
        deltas = [final[j] - self._matrix[j, j] for j in range(self.num_tasks - 1)]
        return float(np.mean(deltas))

    def summary(self) -> "ContinualMetrics":
        return ContinualMetrics(
            average=self.average_accuracy(),
            last=self.last_accuracy(),
            forgetting=self.forgetting(),
            backward_transfer=self.backward_transfer(),
            step_averages=self.step_average_accuracies(),
            matrix=self.matrix,
        )


@dataclass
class ContinualMetrics:
    """Summary of one continual run (fractions in [0, 1], not percentages)."""

    average: float
    last: float
    forgetting: float
    backward_transfer: float
    step_averages: Sequence[float]
    matrix: Optional[np.ndarray] = None

    def as_percentages(self) -> Dict[str, float]:
        """Avg/Last as percentages, FGT/BwT as fractions -- the paper's table format."""
        return {
            "avg": 100.0 * self.average,
            "last": 100.0 * self.last,
            "fgt": self.forgetting,
            "bwt": self.backward_transfer,
        }

    def step_averages_pct(self) -> List[float]:
        return [100.0 * value for value in self.step_averages]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        values = self.as_percentages()
        return (
            f"ContinualMetrics(avg={values['avg']:.2f}%, last={values['last']:.2f}%, "
            f"fgt={values['fgt']:.3f}, bwt={values['bwt']:.3f})"
        )


__all__ = ["AccuracyMatrix", "ContinualMetrics"]
