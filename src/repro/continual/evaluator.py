"""Model evaluation over task streams."""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

import numpy as np

from repro.autograd.tensor import Tensor, get_default_dtype, no_grad
from repro.continual.metrics import AccuracyMatrix
from repro.continual.scenario import DomainIncrementalScenario, Task
from repro.datasets.base import ArrayDataset, DataLoader
from repro.nn.module import Module


def evaluate_accuracy(
    model: Module,
    dataset: ArrayDataset,
    batch_size: int = 64,
    predict_fn: Optional[Callable[[Module, Tensor], Tensor]] = None,
) -> float:
    """Top-1 accuracy of ``model`` on ``dataset``.

    ``predict_fn`` lets prompt-based methods inject their inference-time
    prompts; the default simply calls the model on the images.
    """
    if len(dataset) == 0:
        raise ValueError("cannot evaluate on an empty dataset")
    model.eval()
    correct = 0
    loader = DataLoader(dataset, batch_size=batch_size, shuffle=False)
    with no_grad():
        for images, labels in loader:
            logits = predict_fn(model, images) if predict_fn is not None else model(images)
            predictions = logits.data.argmax(axis=-1)
            correct += int((predictions == labels).sum())
    model.train()
    return correct / len(dataset)


class GlobalEvaluator:
    """Tracks the global model's accuracy matrix over a continual scenario."""

    def __init__(
        self,
        scenario: DomainIncrementalScenario,
        batch_size: int = 64,
        predict_fn: Optional[Callable[[Module, Tensor], Tensor]] = None,
    ) -> None:
        self.scenario = scenario
        self.batch_size = batch_size
        self.predict_fn = predict_fn
        self.accuracy_matrix = AccuracyMatrix(scenario.num_tasks)
        self.per_task_history: List[Dict[str, float]] = []
        self._converted_tests: Dict[str, ArrayDataset] = {}

    def _test_set(self, seen: Task) -> ArrayDataset:
        """The task's test set in the active compute dtype, converted at most once.

        Scenarios are built before (and shared across) simulations, so their
        arrays may not match the run's ``dtype`` knob; converting per task
        here keeps the evaluation path at the compute precision instead of
        re-casting every batch.
        """
        dtype = get_default_dtype()
        if seen.test.images.dtype == dtype:
            return seen.test
        key = f"{seen.task_id}/{dtype.name}"
        if key not in self._converted_tests:
            self._converted_tests[key] = seen.test.astype(dtype)
        return self._converted_tests[key]

    def evaluate_after_task(self, model: Module, task_id: int) -> Dict[str, float]:
        """Evaluate on every seen task's test set and record the results.

        Returns a mapping from domain name to accuracy for logging.
        """
        results: Dict[str, float] = {}
        for seen in self.scenario.seen_tests(task_id):
            accuracy = evaluate_accuracy(
                model, self._test_set(seen), batch_size=self.batch_size, predict_fn=self.predict_fn
            )
            self.accuracy_matrix.record(task_id, seen.task_id, accuracy)
            results[seen.domain_name] = accuracy
        self.per_task_history.append(results)
        return results

    def summary(self):
        return self.accuracy_matrix.summary()


__all__ = ["evaluate_accuracy", "GlobalEvaluator"]
