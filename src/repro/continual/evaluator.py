"""Model evaluation over task streams.

The paper's protocol (Sec. V-A) evaluates the global model on *every* seen
domain after each learning step, which makes evaluation an O(T²) workload over
a run — and O(T·R) once mid-task evaluation is enabled.  The scoring loop is
therefore split into composable pieces:

* :func:`count_correct` — the single-dataset forward pass, returning the
  *integer* number of correct predictions.  Integer counts are the unit of
  work of the parallel evaluation plane: counts computed over batch-aligned
  slices of a test set sum to exactly the count over the whole set, so a
  fanned-out evaluation reproduces the serial accuracy bit-for-bit.
* :class:`EvalBackend` — the strategy for scoring a suite of (task, test set)
  pairs.  :class:`SerialEvalBackend` loops in-process (the historical
  behaviour); :class:`repro.federated.execution.ParallelEvalBackend` fans the
  suite over the round engine's pinned worker pool.
* :class:`GlobalEvaluator` — owns the accuracy matrix and dtype conversion and
  delegates the actual scoring to its backend.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.autograd.tensor import Tensor, get_default_dtype, no_grad
from repro.continual.metrics import AccuracyMatrix
from repro.continual.scenario import DomainIncrementalScenario, Task
from repro.datasets.base import ArrayDataset, DataLoader
from repro.nn.module import Module

PredictFn = Callable[[Module, Tensor], Tensor]


def count_correct(
    model: Module,
    dataset: ArrayDataset,
    batch_size: int = 64,
    predict_fn: Optional[PredictFn] = None,
) -> int:
    """Number of top-1 correct predictions of ``model`` on ``dataset``.

    ``predict_fn`` lets prompt-based methods inject their inference-time
    prompts; the default simply calls the model on the images.

    The model is put in eval mode for the forward passes and every submodule
    is restored to the exact mode it arrived in — callers that hold the whole
    model (or just a frozen submodule) in eval mode must not get dropout
    silently re-enabled behind their back.
    """
    if len(dataset) == 0:
        raise ValueError("cannot evaluate on an empty dataset")
    # Snapshot per-module flags rather than the root's alone: restoring via a
    # recursive model.train(root_mode) would flatten a submodule deliberately
    # held in a different mode (e.g. a frozen backbone kept in eval during
    # fine-tuning).
    modes = [(module, module.training) for _, module in model.named_modules()]
    model.eval()
    correct = 0
    loader = DataLoader(dataset, batch_size=batch_size, shuffle=False)
    try:
        with no_grad():
            for images, labels in loader:
                logits = predict_fn(model, images) if predict_fn is not None else model(images)
                predictions = logits.data.argmax(axis=-1)
                correct += int((predictions == labels).sum())
    finally:
        for module, mode in modes:
            module.training = mode
    return correct


def evaluate_accuracy(
    model: Module,
    dataset: ArrayDataset,
    batch_size: int = 64,
    predict_fn: Optional[PredictFn] = None,
) -> float:
    """Top-1 accuracy of ``model`` on ``dataset`` (see :func:`count_correct`)."""
    return count_correct(model, dataset, batch_size=batch_size, predict_fn=predict_fn) / len(
        dataset
    )


class EvalBackend:
    """Strategy for scoring the global model on a suite of test sets.

    ``pairs`` is a sequence of ``(task, dataset)`` where ``dataset`` is the
    task's test set already converted to the active compute dtype; the return
    value is one accuracy per pair, in order.  Every backend must produce the
    same numbers bit-for-bit: the backend choice is a performance knob, never
    a results knob.
    """

    def evaluate(
        self,
        model: Module,
        pairs: Sequence[Tuple[Task, ArrayDataset]],
        batch_size: int,
        predict_fn: Optional[PredictFn] = None,
    ) -> List[float]:
        raise NotImplementedError


class SerialEvalBackend(EvalBackend):
    """In-process sequential scoring — the historical single-threaded path."""

    def evaluate(
        self,
        model: Module,
        pairs: Sequence[Tuple[Task, ArrayDataset]],
        batch_size: int,
        predict_fn: Optional[PredictFn] = None,
    ) -> List[float]:
        return [
            evaluate_accuracy(model, dataset, batch_size=batch_size, predict_fn=predict_fn)
            for _, dataset in pairs
        ]


class GlobalEvaluator:
    """Tracks the global model's accuracy matrix over a continual scenario.

    Scoring is delegated to ``backend`` (default: :class:`SerialEvalBackend`);
    see :class:`repro.federated.execution.ParallelEvalBackend` for the fanned
    variant riding the round engine's worker pool.
    """

    def __init__(
        self,
        scenario: DomainIncrementalScenario,
        batch_size: int = 64,
        predict_fn: Optional[PredictFn] = None,
        backend: Optional[EvalBackend] = None,
    ) -> None:
        self.scenario = scenario
        self.batch_size = batch_size
        self.predict_fn = predict_fn
        self.backend = backend if backend is not None else SerialEvalBackend()
        self.accuracy_matrix = AccuracyMatrix(scenario.num_tasks)
        self.per_task_history: List[Dict[str, float]] = []
        self._converted_tests: Dict[Tuple[int, str], ArrayDataset] = {}

    def _test_set(self, seen: Task) -> ArrayDataset:
        """The task's test set in the active compute dtype, converted at most once.

        Scenarios are built before (and shared across) simulations, so their
        arrays may not match the run's ``dtype`` knob; converting per task
        here keeps the evaluation path at the compute precision instead of
        re-casting every batch.  The cache holds one dtype at a time: a dtype
        switch evicts the other precision's conversions (mirroring the worker
        shard cache's other-task eviction), so an evaluator reused across
        differently-typed runs is bounded by one copy of the test suite.
        """
        dtype = get_default_dtype()
        if seen.test.images.dtype == dtype:
            return seen.test
        key = (seen.task_id, dtype.name)
        if key not in self._converted_tests:
            for stale in [k for k in self._converted_tests if k[1] != dtype.name]:
                del self._converted_tests[stale]
            self._converted_tests[key] = seen.test.astype(dtype)
        return self._converted_tests[key]

    def _evaluate(self, model: Module, task_id: int) -> List[Tuple[Task, float]]:
        seen = self.scenario.seen_tests(task_id)
        pairs = [(task, self._test_set(task)) for task in seen]
        accuracies = self.backend.evaluate(model, pairs, self.batch_size, self.predict_fn)
        return list(zip(seen, accuracies))

    def evaluate_seen(self, model: Module, task_id: int) -> Dict[str, float]:
        """Score every seen task's test set without recording anything.

        This is the mid-task (``eval_every``) entry point: the accuracy matrix
        only admits one entry per (after_task, evaluated_task) pair, so
        intra-task snapshots are returned to the caller instead of recorded.
        """
        return {task.domain_name: accuracy for task, accuracy in self._evaluate(model, task_id)}

    def evaluate_after_task(self, model: Module, task_id: int) -> Dict[str, float]:
        """Evaluate on every seen task's test set and record the results.

        Returns a mapping from domain name to accuracy for logging.
        """
        results: Dict[str, float] = {}
        for task, accuracy in self._evaluate(model, task_id):
            self.accuracy_matrix.record(task_id, task.task_id, accuracy)
            results[task.domain_name] = accuracy
        self.per_task_history.append(results)
        return results

    def summary(self):
        return self.accuracy_matrix.summary()


__all__ = [
    "count_correct",
    "evaluate_accuracy",
    "EvalBackend",
    "SerialEvalBackend",
    "GlobalEvaluator",
]
