"""Builders that regenerate every table of the paper's evaluation section.

Each function mirrors one paper table:

* :func:`table1_summary`      -- Table I   (Avg/Last on four datasets, default order)
* :func:`table2_summary`      -- Table II  (same, shuffled domain order)
* :func:`table3_per_task`     -- Table III (per-task step accuracies, default order)
* :func:`table4_per_task`     -- Table IV  (per-task step accuracies, shuffled order)
* :func:`table5_client_configs` -- Table V (OfficeCaltech10 under four selection/transfer configs)
* :func:`table6_digits_selection` -- Table VI (Digits, select 10, 90% transfer)
* :func:`table7_ablation`     -- Table VII (CDAP / GPL / DPCL component ablation)
* :func:`table8_temperature_sensitivity` -- Table VIII (temperature-decay sweep)

All builders accept a scale so the benchmark suite can run them at ``tiny``
while offline reproduction runs use ``small`` or ``paper``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.dpcl import DPCLConfig
from repro.datasets.registry import get_alternate_domain_order, get_dataset_spec
from repro.experiments.config import ExperimentScale, scaled_config
from repro.experiments.reporting import ResultTable
from repro.experiments.runner import run_method_on_dataset

#: The eight compared methods, in the paper's row order.
COMPARED_METHODS: Tuple[str, ...] = (
    "finetune",
    "fedlwf",
    "fedewc",
    "fedl2p",
    "fedl2p_pool",
    "feddualprompt",
    "feddualprompt_pool",
    "refil",
)

#: Pretty row labels matching the paper's tables.
METHOD_LABELS: Dict[str, str] = {
    "finetune": "Finetune",
    "fedlwf": "FedLwF",
    "fedewc": "FedEWC",
    "fedl2p": "FedL2P",
    "fedl2p_pool": "FedL2P†",
    "feddualprompt": "FedDualPrompt",
    "feddualprompt_pool": "FedDualPrompt†",
    "refil": "RefFiL",
}

#: The four evaluation datasets, in the paper's column order.
TABLE_DATASETS: Tuple[str, ...] = ("digits_five", "office_caltech", "pacs", "fed_domainnet")


def _alternate_order_indices(dataset_name: str) -> List[int]:
    """Domain-index permutation implementing the paper's "new domain order"."""
    spec = get_dataset_spec(dataset_name)
    alternate = get_alternate_domain_order(dataset_name)
    return [spec.domains.index(domain) for domain in alternate]


# --------------------------------------------------------------------------- #
# Tables I and II: Avg / Last summary over the four datasets
# --------------------------------------------------------------------------- #
def _summary_table(
    title: str,
    scale: Optional[ExperimentScale],
    datasets: Sequence[str],
    methods: Sequence[str],
    seed: int,
    use_alternate_order: bool,
) -> ResultTable:
    columns: List[str] = []
    for dataset in datasets:
        columns.extend([f"{dataset}:avg", f"{dataset}:last"])
    table = ResultTable(title=title, columns=columns)
    for method in methods:
        values: Dict[str, float] = {}
        for dataset in datasets:
            config = scaled_config(dataset, scale=scale, seed=seed)
            order = _alternate_order_indices(dataset) if use_alternate_order else None
            result = run_method_on_dataset(method, config, domain_order=order)
            pct = result.metrics.as_percentages()
            values[f"{dataset}:avg"] = pct["avg"]
            values[f"{dataset}:last"] = pct["last"]
        table.add_row(METHOD_LABELS[method], values)
    return table


def table1_summary(
    scale: Optional[ExperimentScale] = None,
    datasets: Sequence[str] = TABLE_DATASETS,
    methods: Sequence[str] = COMPARED_METHODS,
    seed: int = 0,
) -> ResultTable:
    """Table I: Avg/Last accuracy of every method on every dataset (default domain order)."""
    return _summary_table(
        "Table I: summarised Avg/Last accuracy (default domain order)",
        scale,
        datasets,
        methods,
        seed,
        use_alternate_order=False,
    )


def table2_summary(
    scale: Optional[ExperimentScale] = None,
    datasets: Sequence[str] = TABLE_DATASETS,
    methods: Sequence[str] = COMPARED_METHODS,
    seed: int = 0,
) -> ResultTable:
    """Table II: the Table I comparison repeated under the shuffled domain order."""
    return _summary_table(
        "Table II: summarised Avg/Last accuracy (new domain order)",
        scale,
        datasets,
        methods,
        seed,
        use_alternate_order=True,
    )


# --------------------------------------------------------------------------- #
# Tables III and IV: per-task step accuracies
# --------------------------------------------------------------------------- #
def _per_task_tables(
    title_prefix: str,
    scale: Optional[ExperimentScale],
    datasets: Sequence[str],
    methods: Sequence[str],
    seed: int,
    use_alternate_order: bool,
) -> Dict[str, ResultTable]:
    tables: Dict[str, ResultTable] = {}
    for dataset in datasets:
        config = scaled_config(dataset, scale=scale, seed=seed)
        order = _alternate_order_indices(dataset) if use_alternate_order else None
        first_result = run_method_on_dataset(methods[0], config, domain_order=order)
        step_columns = list(first_result.domain_names)
        table = ResultTable(
            title=f"{title_prefix} on {dataset}",
            columns=step_columns + ["Avg"],
            notes="each domain column is the mean accuracy over seen tasks after that learning step",
        )
        for method in methods:
            result = run_method_on_dataset(method, config, domain_order=order)
            steps = result.metrics.step_averages_pct()
            values = {name: steps[i] for i, name in enumerate(step_columns)}
            values["Avg"] = result.metrics.as_percentages()["avg"]
            table.add_row(METHOD_LABELS[method], values)
        tables[dataset] = table
    return tables


def table3_per_task(
    scale: Optional[ExperimentScale] = None,
    datasets: Sequence[str] = TABLE_DATASETS,
    methods: Sequence[str] = COMPARED_METHODS,
    seed: int = 0,
) -> Dict[str, ResultTable]:
    """Table III: per-learning-step accuracy breakdown (default domain order)."""
    return _per_task_tables("Table III: per-task accuracy", scale, datasets, methods, seed, False)


def table4_per_task(
    scale: Optional[ExperimentScale] = None,
    datasets: Sequence[str] = TABLE_DATASETS,
    methods: Sequence[str] = COMPARED_METHODS,
    seed: int = 0,
) -> Dict[str, ResultTable]:
    """Table IV: per-learning-step accuracy breakdown (new domain order)."""
    return _per_task_tables("Table IV: per-task accuracy", scale, datasets, methods, seed, True)


# --------------------------------------------------------------------------- #
# Tables V and VI: client-selection / task-transfer configurations
# --------------------------------------------------------------------------- #
#: Table V column groups: (label, selected clients in the paper's 10-client setup,
#: transfer fraction).
TABLE5_CONFIGS: Tuple[Tuple[str, int, float], ...] = (
    ("sel8_80", 8, 0.8),
    ("sel2_80", 2, 0.8),
    ("sel5_50", 5, 0.5),
    ("sel5_90", 5, 0.9),
)


def _scaled_selection(paper_selection: int, config_initial_clients: int, paper_clients: int = 10) -> int:
    """Map the paper's 'select N of 10' to the preset's client population."""
    return max(1, round(paper_selection * config_initial_clients / paper_clients))


def _metric_table(
    title: str,
    dataset: str,
    scale: Optional[ExperimentScale],
    methods: Sequence[str],
    seed: int,
    clients_per_round_paper: int,
    transfer_fraction: float,
) -> ResultTable:
    base = scaled_config(dataset, scale=scale, seed=seed)
    selection = _scaled_selection(
        clients_per_round_paper, base.federated.increment.initial_clients
    )
    config = scaled_config(
        dataset,
        scale=scale,
        seed=seed,
        clients_per_round=selection,
        transfer_fraction=transfer_fraction,
    )
    table = ResultTable(title=title, columns=["AVG", "Last", "FGT", "BwT"])
    for method in methods:
        result = run_method_on_dataset(method, config)
        pct = result.metrics.as_percentages()
        table.add_row(
            METHOD_LABELS[method],
            {"AVG": pct["avg"], "Last": pct["last"], "FGT": pct["fgt"], "BwT": pct["bwt"]},
        )
    return table


def table5_client_configs(
    scale: Optional[ExperimentScale] = None,
    methods: Sequence[str] = COMPARED_METHODS,
    seed: int = 0,
) -> Dict[str, ResultTable]:
    """Table V: OfficeCaltech10 under four client-selection / task-transfer configurations."""
    tables: Dict[str, ResultTable] = {}
    for label, selection, transfer in TABLE5_CONFIGS:
        tables[label] = _metric_table(
            f"Table V ({label}): OfficeCaltech10, select {selection} of 10, "
            f"{int(transfer * 100)}% task transfer",
            "office_caltech",
            scale,
            methods,
            seed,
            clients_per_round_paper=selection,
            transfer_fraction=transfer,
        )
    return tables


def table6_digits_selection(
    scale: Optional[ExperimentScale] = None,
    methods: Sequence[str] = COMPARED_METHODS,
    seed: int = 0,
) -> ResultTable:
    """Table VI: Digits-Five with 10 of 10 clients selected and 90% task transfer."""
    return _metric_table(
        "Table VI: Digits-Five, select 10, 90% task transfer",
        "digits_five",
        scale,
        methods,
        seed,
        clients_per_round_paper=10,
        transfer_fraction=0.9,
    )


# --------------------------------------------------------------------------- #
# Table VII: component ablation
# --------------------------------------------------------------------------- #
#: Ablation rows: (label, registry method name) in the paper's order.
TABLE7_ROWS: Tuple[Tuple[str, str], ...] = (
    ("baseline (Finetune)", "finetune"),
    ("CDAP", "refil_cdap"),
    ("GPL", "refil_gpl"),
    ("CDAP+GPL", "refil_cdap_gpl"),
    ("GPL+DPCL", "refil_gpl_dpcl"),
    ("CDAP+GPL+DPCL (RefFiL)", "refil"),
)


def table7_ablation(
    scale: Optional[ExperimentScale] = None,
    dataset: str = "office_caltech",
    seed: int = 0,
) -> ResultTable:
    """Table VII: ablation of the CDAP / GPL / DPCL components on OfficeCaltech10."""
    config = scaled_config(dataset, scale=scale, seed=seed)
    table = ResultTable(
        title="Table VII: RefFiL component ablation on OfficeCaltech10",
        columns=["Avg", "Last", "dAvg", "dLast"],
        notes="dAvg / dLast are improvements over the Finetune baseline row",
    )
    baseline_pct = None
    for label, method in TABLE7_ROWS:
        result = run_method_on_dataset(method, config)
        pct = result.metrics.as_percentages()
        if baseline_pct is None:
            baseline_pct = pct
        table.add_row(
            label,
            {
                "Avg": pct["avg"],
                "Last": pct["last"],
                "dAvg": pct["avg"] - baseline_pct["avg"],
                "dLast": pct["last"] - baseline_pct["last"],
            },
        )
    return table


# --------------------------------------------------------------------------- #
# Table VIII: temperature-decay sensitivity
# --------------------------------------------------------------------------- #
#: Table VIII rows: (label, tau, tau_min, gamma, beta, enable_decay).
TABLE8_CONFIGS: Tuple[Tuple[str, float, float, float, float, bool], ...] = (
    ("exp1", 0.5, 0.2, 0.15, 0.10, True),
    ("exp2", 0.5, 0.4, 0.05, 0.05, True),
    ("exp3", 0.7, 0.3, 0.10, 0.05, True),
    ("exp4", 0.9, 0.2, 0.05, 0.10, True),
    ("exp5", 0.9, 0.4, 0.05, 0.01, True),
    ("w/o tau'", 0.9, 0.3, 0.10, 0.05, False),
    ("ours", 0.9, 0.3, 0.10, 0.05, True),
)


def table8_temperature_sensitivity(
    scale: Optional[ExperimentScale] = None,
    dataset: str = "office_caltech",
    seed: int = 0,
) -> ResultTable:
    """Table VIII: sensitivity of RefFiL to the DPCL temperature-decay hyper-parameters."""
    from repro.core.dpcl import decayed_temperature

    config = scaled_config(dataset, scale=scale, seed=seed)
    order = _alternate_order_indices(dataset)
    table = ResultTable(
        title="Table VIII: DPCL temperature-decay sensitivity on OfficeCaltech10 (new domain order)",
        columns=["tau", "tau_min", "gamma", "beta", "tau3", "Avg", "Last"],
        notes="tau3 is the decayed temperature at the third task; 'w/o tau'' disables decay",
    )
    for label, tau, tau_min, gamma, beta, enable_decay in TABLE8_CONFIGS:
        dpcl = DPCLConfig(
            tau=tau, tau_min=tau_min, gamma=gamma, beta=beta, enable_decay=enable_decay
        )
        result = run_method_on_dataset("refil", config, domain_order=order, dpcl=dpcl)
        pct = result.metrics.as_percentages()
        table.add_row(
            label,
            {
                "tau": tau,
                "tau_min": tau_min,
                "gamma": gamma,
                "beta": beta,
                "tau3": decayed_temperature(dpcl, task_number=3),
                "Avg": pct["avg"],
                "Last": pct["last"],
            },
        )
    return table


__all__ = [
    "COMPARED_METHODS",
    "METHOD_LABELS",
    "TABLE_DATASETS",
    "TABLE5_CONFIGS",
    "TABLE7_ROWS",
    "TABLE8_CONFIGS",
    "table1_summary",
    "table2_summary",
    "table3_per_task",
    "table4_per_task",
    "table5_client_configs",
    "table6_digits_selection",
    "table7_ablation",
    "table8_temperature_sensitivity",
]
