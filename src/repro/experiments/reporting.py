"""Result tables: the structure the table builders return and its text rendering."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence


@dataclass
class ResultTable:
    """A labelled grid of numbers mirroring one of the paper's tables.

    ``rows`` maps a row label (method name, configuration name) to a mapping
    from column name to value.  Rendering keeps the column order given in
    ``columns``.
    """

    title: str
    columns: List[str]
    rows: "Dict[str, Dict[str, float]]" = field(default_factory=dict)
    notes: str = ""

    def add_row(self, label: str, values: Dict[str, float]) -> None:
        unknown = set(values) - set(self.columns)
        if unknown:
            raise KeyError(f"row {label!r} has values for unknown columns {sorted(unknown)}")
        self.rows[label] = dict(values)

    def value(self, row: str, column: str) -> float:
        return self.rows[row][column]

    def column(self, column: str) -> Dict[str, float]:
        if column not in self.columns:
            raise KeyError(f"unknown column {column!r}")
        return {row: values[column] for row, values in self.rows.items() if column in values}

    def best_row(self, column: str, largest: bool = True) -> str:
        """Label of the row with the best value in ``column``."""
        values = self.column(column)
        if not values:
            raise ValueError(f"no values recorded for column {column!r}")
        chooser = max if largest else min
        return chooser(values, key=values.get)

    # ------------------------------------------------------------------ #
    # Rendering
    # ------------------------------------------------------------------ #
    def to_text(self, float_format: str = "{:8.2f}") -> str:
        """Render as a fixed-width text table (what the benches print)."""
        label_width = max([len("method")] + [len(label) for label in self.rows]) + 2
        header = "".join(f"{column:>10s}" for column in self.columns)
        lines = [self.title, "=" * max(len(self.title), 8), f"{'method':<{label_width}s}{header}"]
        for label, values in self.rows.items():
            cells = []
            for column in self.columns:
                if column in values and values[column] is not None:
                    cells.append(f"{float_format.format(values[column]):>10s}")
                else:
                    cells.append(f"{'-':>10s}")
            lines.append(f"{label:<{label_width}s}" + "".join(cells))
        if self.notes:
            lines.append(f"note: {self.notes}")
        return "\n".join(lines)

    def to_markdown(self) -> str:
        """Render as a GitHub-flavoured markdown table (for EXPERIMENTS.md)."""
        header = "| method | " + " | ".join(self.columns) + " |"
        separator = "|---" * (len(self.columns) + 1) + "|"
        lines = [header, separator]
        for label, values in self.rows.items():
            cells = [
                f"{values[column]:.2f}" if column in values and values[column] is not None else "-"
                for column in self.columns
            ]
            lines.append("| " + label + " | " + " | ".join(cells) + " |")
        return "\n".join(lines)

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.to_text()


__all__ = ["ResultTable"]
