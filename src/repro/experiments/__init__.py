"""Experiment harness: regenerate every table of the paper's evaluation section.

``repro.experiments.tables`` exposes one function per paper table
(``table1_summary`` ... ``table8_temperature_sensitivity``); each returns a
:class:`repro.experiments.reporting.ResultTable` whose rows mirror the paper's
rows.  Scale presets (``tiny`` / ``small`` / ``paper``) trade fidelity for
runtime; the benchmark suite runs ``tiny`` by default and can be scaled up
with the ``REPRO_SCALE`` environment variable.
"""

from repro.experiments.config import ExperimentScale, ScaledExperimentConfig, get_scale, scaled_config
from repro.experiments.runner import MethodRunResult, run_method_on_dataset, clear_run_cache
from repro.experiments.reporting import ResultTable
from repro.experiments import tables

__all__ = [
    "ExperimentScale",
    "ScaledExperimentConfig",
    "get_scale",
    "scaled_config",
    "MethodRunResult",
    "run_method_on_dataset",
    "clear_run_cache",
    "ResultTable",
    "tables",
]
