"""Scale presets for the reproduction experiments.

The paper's setup (20 clients, 30 rounds per task, 20 local epochs, full-size
datasets, ResNet10 on 32x32/224x224 images) is far beyond what a pure-numpy
CPU substrate can run in CI.  Three presets keep the *code path identical*
and only change counts:

* ``tiny``  -- what the benchmark suite and integration tests run by default.
* ``small`` -- a few-times larger setting that resolves method differences
  more clearly (used to produce the numbers recorded in EXPERIMENTS.md when
  time allows).
* ``paper`` -- mirrors the paper's client counts and task structure with the
  synthetic datasets at full per-domain size; only for offline runs.

Select a preset with the ``REPRO_SCALE`` environment variable.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, Optional

from repro.datasets.registry import get_dataset_spec
from repro.datasets.synthetic import DomainDatasetSpec
from repro.federated.client import LocalTrainingConfig
from repro.federated.config import FederatedConfig
from repro.federated.faults import FaultSpec
from repro.federated.increment import ClientIncrementConfig
from repro.models.backbone import BackboneConfig


class ExperimentScale(str, Enum):
    """Named experiment scales."""

    TINY = "tiny"
    SMALL = "small"
    PAPER = "paper"


def get_scale(default: ExperimentScale = ExperimentScale.TINY) -> ExperimentScale:
    """Read the scale from the ``REPRO_SCALE`` environment variable."""
    raw = os.environ.get("REPRO_SCALE", default.value).strip().lower()
    try:
        return ExperimentScale(raw)
    except ValueError as error:
        raise ValueError(
            f"invalid REPRO_SCALE {raw!r}; choose from "
            f"{', '.join(scale.value for scale in ExperimentScale)}"
        ) from error


@dataclass(frozen=True)
class ScaledExperimentConfig:
    """A dataset spec, backbone and federated configuration for one run."""

    dataset_name: str
    spec: DomainDatasetSpec
    backbone: BackboneConfig
    federated: FederatedConfig
    num_tasks: int

    def describe(self) -> Dict[str, object]:
        return {
            "dataset": self.dataset_name,
            "classes": self.spec.num_classes,
            "tasks": self.num_tasks,
            "train_per_domain": self.spec.train_per_domain,
            "initial_clients": self.federated.increment.initial_clients,
            "clients_per_round": self.federated.clients_per_round,
            "rounds_per_task": self.federated.rounds_per_task,
            "local_epochs": self.federated.local.local_epochs,
        }


#: Per-scale knobs.  num_classes_cap limits the synthetic class count so tiny
#: runs stay learnable from very few samples.
_SCALE_KNOBS = {
    ExperimentScale.TINY: {
        "train_per_domain": 96,
        "test_per_domain": 40,
        "num_classes_cap": 4,
        "initial_clients": 6,
        "increment_per_task": 1,
        "clients_per_round": 3,
        "rounds_per_task": 2,
        "local_epochs": 2,
        "base_width": 8,
        "embed_dim": 32,
        "learning_rate": 0.08,
    },
    ExperimentScale.SMALL: {
        "train_per_domain": 160,
        "test_per_domain": 64,
        "num_classes_cap": 6,
        "initial_clients": 10,
        "increment_per_task": 2,
        "clients_per_round": 5,
        "rounds_per_task": 3,
        "local_epochs": 2,
        "base_width": 12,
        "embed_dim": 32,
        "learning_rate": 0.08,
    },
    ExperimentScale.PAPER: {
        "train_per_domain": None,  # keep the spec defaults
        "test_per_domain": None,
        "num_classes_cap": None,
        "initial_clients": 20,
        "increment_per_task": 2,
        "clients_per_round": 10,
        "rounds_per_task": 30,
        "local_epochs": 20,
        "base_width": 16,
        "embed_dim": 48,
        "learning_rate": 0.06,
    },
}

#: The paper uses a smaller federation for OfficeCaltech10 because of its size.
_OFFICE_CALTECH_PAPER_OVERRIDES = {
    "initial_clients": 10,
    "increment_per_task": 1,
    "clients_per_round": 5,
}


def scaled_config(
    dataset_name: str,
    scale: Optional[ExperimentScale] = None,
    seed: int = 0,
    clients_per_round: Optional[int] = None,
    transfer_fraction: float = 0.8,
    initial_clients: Optional[int] = None,
    increment_per_task: Optional[int] = None,
    num_tasks: Optional[int] = None,
    executor: str = "serial",
    num_workers: int = 0,
    shard_cache: bool = True,
    dtype: str = "float64",
    kernel: str = "eager",
    plan_optimize: bool = True,
    eval_executor: str = "serial",
    eval_every: int = 0,
    transport: str = "loopback",
    codec: str = "identity",
    bandwidth_limit: int = 0,
    drop_stragglers: bool = False,
    mode: str = "sync",
    device_profile: str = "instant",
    buffer_size: int = 0,
    staleness_decay: float = 0.5,
    sim_time_limit: float = 0.0,
    faults: Optional[FaultSpec] = None,
    retries: int = 2,
    retry_backoff: float = 0.5,
    checkpoint_every: int = 0,
    checkpoint_dir: str = "",
    checkpoint_keep: int = 0,
    resume: bool = False,
    serve: bool = False,
    publish_every: int = 0,
    registry_dir: str = "",
    serve_codec: str = "identity",
    virtual_clients: bool = False,
    population: int = 0,
    reduce_backend: str = "flat",
    tree_fanout: int = 2,
) -> ScaledExperimentConfig:
    """Build the full configuration for one dataset at one scale.

    The optional overrides expose exactly the knobs varied by Tables V and VI
    (selected clients, transfer fraction, initial clients), plus the
    performance knobs of the round execution engine: ``executor``
    (``"serial"`` / ``"parallel"``), ``num_workers`` (0 = one per CPU),
    ``shard_cache`` (per-worker client-shard cache of the parallel data
    plane, default on), ``dtype`` (``"float64"`` / ``"float32"``), the
    kernel plane's ``kernel`` (``"eager"`` closure autograd / ``"tape"``
    compiled-plan replay, hash-identical to eager / ``"batched"`` lockstep
    multi-client vectorization, serial-executor-only) and ``plan_optimize``
    (compile-time plan optimizer passes, bit-for-bit, default on), the
    evaluation plane's ``eval_executor`` (``"serial"`` / ``"parallel"``
    seen-task evaluation) and ``eval_every`` (mid-task evaluation every ``k``
    rounds, 0 = off), and the communication plane's ``transport``
    (``"loopback"`` measured wire frames / ``"direct"`` pass-through),
    ``codec`` (``"identity"`` / ``"delta"`` lossless, ``"quantize8"`` /
    ``"quantize16"`` / ``"topk[:f]"`` lossy), ``bandwidth_limit`` (per-client
    uplink byte budget per round, 0 = unlimited) and ``drop_stragglers``
    (drop vs. defer over-budget uploads), and the temporal plane's ``mode``
    (``"sync"`` / ``"async"`` / ``"buffered"``), ``device_profile``
    (``"instant"`` / ``"homogeneous"`` / ``"mild"`` / ``"moderate"`` /
    ``"extreme"`` heterogeneity tiers), ``buffer_size`` (buffered mode's K,
    0 = clients_per_round), ``staleness_decay`` (polynomial staleness
    exponent) and ``sim_time_limit`` (simulated-seconds budget, 0 =
    unlimited), and the fault plane's ``faults`` (a
    :class:`~repro.federated.faults.FaultSpec` schedule, None = no faults),
    ``retries`` / ``retry_backoff`` (upload retry bound and backoff seconds),
    and ``checkpoint_every`` / ``checkpoint_dir`` / ``checkpoint_keep`` /
    ``resume`` (crash-safe checkpoint cadence, location, retention and
    relaunch behaviour), the serving plane's ``serve`` / ``publish_every`` /
    ``registry_dir`` / ``serve_codec`` (online inference with a versioned
    model registry: whether to run a live front end, mid-task publish
    cadence, where versions land, and the snapshot compression codec), and
    the hierarchy
    plane's ``virtual_clients`` (lazy ``(seed, partition-spec)`` client
    recipes, materialized per cohort), ``population`` (fleet size for
    schedule-free virtual populations, 0 = schedule-driven),
    ``reduce_backend`` (``"flat"`` star FedAvg / ``"tree"`` fan-out edge
    aggregation) and ``tree_fanout`` (children per tree node).
    """
    scale = scale if scale is not None else get_scale()
    knobs = dict(_SCALE_KNOBS[scale])
    if scale is ExperimentScale.PAPER and dataset_name == "office_caltech":
        knobs.update(_OFFICE_CALTECH_PAPER_OVERRIDES)

    base_spec = get_dataset_spec(dataset_name)
    cap = knobs["num_classes_cap"]
    spec = base_spec.scaled(
        train_per_domain=knobs["train_per_domain"],
        test_per_domain=knobs["test_per_domain"],
        num_classes=min(base_spec.num_classes, cap) if cap is not None else None,
    )
    tasks = num_tasks if num_tasks is not None else len(spec.domains)

    backbone = BackboneConfig(
        image_size=spec.image_size,
        num_classes=spec.num_classes,
        base_width=knobs["base_width"],
        embed_dim=knobs["embed_dim"],
        seed=seed,
    )
    federated = FederatedConfig(
        increment=ClientIncrementConfig(
            initial_clients=initial_clients if initial_clients is not None else knobs["initial_clients"],
            increment_per_task=(
                increment_per_task if increment_per_task is not None else knobs["increment_per_task"]
            ),
            transfer_fraction=transfer_fraction,
            seed=seed,
        ),
        clients_per_round=clients_per_round if clients_per_round is not None else knobs["clients_per_round"],
        rounds_per_task=knobs["rounds_per_task"],
        local=LocalTrainingConfig(
            local_epochs=knobs["local_epochs"],
            batch_size=16,
            learning_rate=knobs["learning_rate"],
        ),
        seed=seed,
        executor=executor,
        num_workers=num_workers,
        shard_cache=shard_cache,
        dtype=dtype,
        kernel=kernel,
        plan_optimize=plan_optimize,
        eval_executor=eval_executor,
        eval_every=eval_every,
        transport=transport,
        codec=codec,
        bandwidth_limit=bandwidth_limit,
        drop_stragglers=drop_stragglers,
        mode=mode,
        device_profile=device_profile,
        buffer_size=buffer_size,
        staleness_decay=staleness_decay,
        sim_time_limit=sim_time_limit,
        faults=faults if faults is not None else FaultSpec(),
        retries=retries,
        retry_backoff=retry_backoff,
        checkpoint_every=checkpoint_every,
        checkpoint_dir=checkpoint_dir,
        checkpoint_keep=checkpoint_keep,
        resume=resume,
        serve=serve,
        publish_every=publish_every,
        registry_dir=registry_dir,
        serve_codec=serve_codec,
        virtual_clients=virtual_clients,
        population=population,
        reduce_backend=reduce_backend,
        tree_fanout=tree_fanout,
    )
    return ScaledExperimentConfig(
        dataset_name=dataset_name,
        spec=spec,
        backbone=backbone,
        federated=federated,
        num_tasks=tasks,
    )


__all__ = ["ExperimentScale", "ScaledExperimentConfig", "get_scale", "scaled_config"]
