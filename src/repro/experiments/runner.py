"""Run one method on one dataset configuration (with caching across table builders).

Several of the paper's tables are different views of the same runs: Table I is
the Avg/Last summary of the per-task breakdowns in Table III, and Table II
summarises Table IV.  The runner therefore memoises results by their full
configuration so a bench session that regenerates all tables trains each
(method, dataset, config) combination exactly once.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Optional, Sequence, Tuple

from repro.baselines.registry import build_method
from repro.continual.metrics import ContinualMetrics
from repro.continual.scenario import DomainIncrementalScenario
from repro.core.dpcl import DPCLConfig
from repro.datasets.registry import build_dataset
from repro.experiments.config import ScaledExperimentConfig
from repro.federated.communication import codec_is_lossless
from repro.federated.config import FederatedConfig
from repro.federated.faults import FaultSpec
from repro.federated.simulation import FederatedDomainIncrementalSimulation, SimulationResult
from repro.utils.logging_utils import get_logger

logger = get_logger(__name__)


@dataclass
class MethodRunResult:
    """One method's outcome on one dataset configuration."""

    method_name: str
    dataset_name: str
    metrics: ContinualMetrics
    simulation: SimulationResult
    domain_names: Tuple[str, ...]


_RUN_CACHE: Dict[tuple, MethodRunResult] = {}


def clear_run_cache() -> None:
    """Drop all memoised runs (used by tests to force re-execution)."""
    _RUN_CACHE.clear()


def _normalize_execution_knobs(federated: FederatedConfig) -> FederatedConfig:
    """Fold execution-plane knobs to canonical values for cache-key purposes.

    ``executor`` / ``num_workers`` / ``shard_cache`` / ``eval_executor`` only
    change *how* a run executes, never its trained numbers (parity is
    asserted by the execution and eval-plane test suites), so two
    configurations differing only in those knobs must share one memoised
    run.  ``dtype`` genuinely changes the numbers and ``eval_every`` changes
    the recorded ``round_eval_history``, so both stay in the key.

    Communication-plane knobs follow the same rule: a *lossless* codec under
    either transport trains the same numbers as no wire format at all (the
    comm-plane suite asserts it bit-for-bit), so ``transport`` folds to
    ``"loopback"`` and lossless codecs to ``"identity"``; a lossy codec or an
    active bandwidth scenario (``bandwidth_limit > 0`` drops *or* defers
    uploads, both of which change aggregation) genuinely changes the numbers
    and stays in the key.  The ``direct`` transport never encodes, so its
    codec/bandwidth knobs are inert and fold away entirely.  Caveat of
    sharing: telemetry fields of the cached result (``wall_clock_seconds``,
    the communication ledger) describe whichever variant ran first — use the
    benches, not the run cache, to compare transports.
    """
    codec = federated.codec
    bandwidth_limit = federated.bandwidth_limit
    drop_stragglers = federated.drop_stragglers
    if federated.transport == "direct":
        codec, bandwidth_limit, drop_stragglers = "identity", 0, False
    if bandwidth_limit == 0:
        drop_stragglers = False
        # Folding lossless codecs together is only valid while no bandwidth
        # budget is active: with a budget, drop/defer outcomes depend on the
        # codec's frame sizes, so even lossless codecs change the numbers.
        if codec_is_lossless(codec):
            codec = "identity"
    # Temporal-plane knobs: mode and device_profile always stay in the key —
    # async/buffered modes change the trained numbers outright, and even a
    # sync run whose *numbers* a different tier would not change (an
    # always-online tier only times the run) produces different temporal
    # telemetry (sim_time, event_log, the sim_time of every eval snapshot),
    # which is exactly the output a caller varying the tier is after.  Only
    # knobs that are provably inert fold: buffered/staleness knobs in sync
    # mode, and a simulated-time budget under the instant tier (the clock
    # never advances, so the budget never bites and no trace records it).
    sim_time_limit = federated.sim_time_limit
    buffer_size = federated.buffer_size
    staleness_decay = federated.staleness_decay
    if federated.mode != "buffered":
        buffer_size = 0
    if federated.mode == "sync":
        staleness_decay = FederatedConfig.staleness_decay
    if federated.device_profile == "instant":
        sim_time_limit = 0.0
    # Fault-plane knobs: checkpoint bookkeeping (where/how often to snapshot,
    # whether the process resumed) never changes the trained numbers — the
    # resume tests assert bit-for-bit equality — so it always folds away.  An
    # all-zero FaultSpec makes the retry knobs inert too (no frame ever fails,
    # so the bound and backoff are never consulted); with frame faults active
    # they change delivery and stay in the key, and any enabled spec stays in
    # the key outright because the failure trace changes the numbers.
    faults = federated.faults
    retries = federated.retries
    retry_backoff = federated.retry_backoff
    if not faults.enabled:
        faults = FaultSpec()
        retries = FederatedConfig.retries
        retry_backoff = FederatedConfig.retry_backoff
    elif faults.upload_loss_rate == 0.0 and faults.upload_corruption_rate == 0.0:
        retries = FederatedConfig.retries
        retry_backoff = FederatedConfig.retry_backoff
    # Hierarchy-plane knobs: with ``population == 0`` the virtual plane is a
    # lazy re-materialization of the exact eager shards (the hierarchy suite
    # asserts it bit-for-bit), so ``virtual_clients`` folds away; a fleet
    # population genuinely changes the cohorts and stays.  A flat reduce never
    # consults ``tree_fanout``, so the fanout folds under ``"flat"``; the tree
    # backend itself stays in the key — its partial sums agree with flat only
    # to accumulation-dtype tolerance, not bit-for-bit.
    virtual_clients = federated.virtual_clients
    tree_fanout = federated.tree_fanout
    if federated.population == 0:
        virtual_clients = False
    if federated.reduce_backend == "flat":
        tree_fanout = FederatedConfig.tree_fanout
    # Kernel-plane knob: the tape kernel is verified hash-identical to eager
    # (every plan's first replay is compared bit-for-bit against the eager
    # step and any divergence falls back), so ``"tape"`` folds to ``"eager"``.
    # The batched lockstep kernel reorders float accumulation (stacked
    # matmuls, vectorized clip norms) and genuinely changes the numbers, so
    # it stays in the key.
    kernel = federated.kernel
    if kernel == "tape":
        kernel = "eager"
    # ``plan_optimize`` folds unconditionally: optimized plan replay is
    # bit-for-bit with unoptimized replay (hash-asserted by the kernel-plane
    # tests), so the knob can never change a run's numbers under any kernel.
    return replace(
        federated,
        executor="serial",
        num_workers=0,
        shard_cache=True,
        kernel=kernel,
        plan_optimize=True,
        eval_executor="serial",
        transport="loopback",
        codec=codec,
        bandwidth_limit=bandwidth_limit,
        drop_stragglers=drop_stragglers,
        buffer_size=buffer_size,
        staleness_decay=staleness_decay,
        sim_time_limit=sim_time_limit,
        faults=faults,
        retries=retries,
        retry_backoff=retry_backoff,
        checkpoint_every=0,
        checkpoint_dir="",
        checkpoint_keep=0,
        resume=False,
        # Serving-plane knobs fold for the same reason checkpoints do: the
        # registry and the front end *observe* the run (snapshot publishes,
        # read-only inference on frozen copies) without touching its
        # trajectory, and the serving tests assert served logits are
        # bit-for-bit with direct evaluation.
        serve=False,
        publish_every=0,
        registry_dir="",
        serve_codec="identity",
        virtual_clients=virtual_clients,
        tree_fanout=tree_fanout,
    )


def _cache_key(
    method_name: str,
    config: ScaledExperimentConfig,
    domain_order: Optional[Sequence[int]],
    dpcl: Optional[DPCLConfig],
) -> tuple:
    return (
        method_name,
        config.dataset_name,
        config.spec,
        config.backbone,
        _normalize_execution_knobs(config.federated),
        config.num_tasks,
        tuple(domain_order) if domain_order is not None else None,
        dpcl,
    )


def run_method_on_dataset(
    method_name: str,
    config: ScaledExperimentConfig,
    domain_order: Optional[Sequence[int]] = None,
    dpcl: Optional[DPCLConfig] = None,
    use_cache: bool = True,
) -> MethodRunResult:
    """Train ``method_name`` on the configured dataset and return its metrics.

    Parameters
    ----------
    method_name:
        A registry name (see :func:`repro.baselines.registry.available_methods`).
    config:
        Output of :func:`repro.experiments.config.scaled_config`.
    domain_order:
        Optional permutation of domain indices (the Table II / IV "new domain
        order" experiments).
    dpcl:
        Optional RefFiL temperature configuration override (Table VIII).
    use_cache:
        Reuse a previous identical run when available.
    """
    key = _cache_key(method_name, config, domain_order, dpcl)
    if use_cache and key in _RUN_CACHE:
        return _RUN_CACHE[key]

    dataset = build_dataset(config.dataset_name, spec_override=config.spec)
    if domain_order is not None:
        dataset = dataset.reordered(domain_order)
    scenario = DomainIncrementalScenario(dataset, num_tasks=config.num_tasks)
    method = build_method(
        method_name,
        backbone=config.backbone,
        num_tasks=scenario.num_tasks,
        dpcl=dpcl,
    )
    logger.info(
        "running %s on %s (%s)", method.name, config.dataset_name, config.describe()
    )
    # run() tears its own resources down, but only on the paths it controls;
    # the context manager guarantees both worker pools (training and any
    # dedicated eval pool) are shut down even if construction-adjacent code
    # between enter and run raises.
    with FederatedDomainIncrementalSimulation(scenario, method, config.federated) as simulation:
        outcome = simulation.run()
    result = MethodRunResult(
        method_name=method.name,
        dataset_name=config.dataset_name,
        metrics=outcome.metrics,
        simulation=outcome,
        domain_names=tuple(scenario.domain_names),
    )
    if use_cache:
        _RUN_CACHE[key] = result
    return result


__all__ = ["MethodRunResult", "run_method_on_dataset", "clear_run_cache"]
