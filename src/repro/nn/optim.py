"""Gradient-based optimisers.

The paper trains every method with SGD; Adam is included because the CDAP
prompt generator converges noticeably faster with it at tiny scale, and the
experiment configs can select either.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

import numpy as np

from repro.nn.module import Parameter


class Optimizer:
    """Base class holding a parameter list and a learning rate."""

    def __init__(self, parameters: Iterable[Parameter], lr: float) -> None:
        self.parameters: List[Parameter] = [p for p in parameters]
        if not self.parameters:
            raise ValueError("optimizer received an empty parameter list")
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.lr = lr

    def zero_grad(self) -> None:
        for param in self.parameters:
            param.zero_grad()

    def step(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with momentum, weight decay and optional Nesterov."""

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
        nesterov: bool = False,
        max_grad_norm: Optional[float] = None,
    ) -> None:
        super().__init__(parameters, lr)
        if nesterov and momentum <= 0:
            raise ValueError("nesterov momentum requires momentum > 0")
        self.momentum = momentum
        self.weight_decay = weight_decay
        self.nesterov = nesterov
        self.max_grad_norm = max_grad_norm
        self._velocity: Dict[int, np.ndarray] = {}

    def _clip_gradients(self) -> None:
        if self.max_grad_norm is None:
            return
        # Frozen params are skipped, consistent with step(): a stale grad left
        # on a parameter that was later frozen must neither inflate the global
        # norm nor be rescaled.
        total = 0.0
        for param in self.parameters:
            if param.grad is not None and param.requires_grad:
                total += float(np.sum(param.grad ** 2))
        norm = np.sqrt(total)
        if norm > self.max_grad_norm and norm > 0:
            scale = self.max_grad_norm / norm
            for param in self.parameters:
                if param.grad is not None and param.requires_grad:
                    param.grad *= scale

    def step(self) -> None:
        self._clip_gradients()
        for param in self.parameters:
            if param.grad is None or not param.requires_grad:
                continue
            grad = param.grad
            if self.weight_decay > 0:
                grad = grad + self.weight_decay * param.data
            if self.momentum > 0:
                velocity = self._velocity.get(id(param))
                if velocity is None:
                    velocity = np.zeros_like(param.data)
                velocity = self.momentum * velocity + grad
                self._velocity[id(param)] = velocity
                grad = grad + self.momentum * velocity if self.nesterov else velocity
            param.data -= self.lr * grad


class BatchedSGD:
    """SGD over K clients' parameter stacks at once (the lockstep kernel).

    Operates on ``{slot: (K,) + shape}`` arrays produced by
    :meth:`repro.autograd.tape.Plan.execute_batched` instead of
    :class:`~repro.nn.module.Parameter` objects.  The update order mirrors
    :class:`SGD.step` exactly — clip, weight decay, momentum, descent — with
    each stage vectorized over the leading client axis.  Per-client results
    match eager SGD up to float accumulation order: the eager clip norm sums
    python floats parameter-by-parameter while the vectorized norm reduces
    each stack in one BLAS call, so the batched kernel is tolerance-level,
    not bit-for-bit.
    """

    def __init__(
        self,
        k: int,
        lr: float,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
        nesterov: bool = False,
        max_grad_norm: Optional[float] = None,
    ) -> None:
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        if nesterov and momentum <= 0:
            raise ValueError("nesterov momentum requires momentum > 0")
        self.k = k
        self.lr = lr
        self.momentum = momentum
        self.weight_decay = weight_decay
        self.nesterov = nesterov
        self.max_grad_norm = max_grad_norm
        self._velocity: Dict[int, np.ndarray] = {}

    def _clip_gradients(self, grads: Dict[int, np.ndarray]) -> None:
        if self.max_grad_norm is None:
            return
        total = np.zeros(self.k)
        for grad in grads.values():
            total += np.sum(grad.reshape(self.k, -1) ** 2, axis=1)
        norm = np.sqrt(total)
        scale = np.where(
            (norm > self.max_grad_norm) & (norm > 0),
            self.max_grad_norm / np.maximum(norm, 1e-300),
            1.0,
        )
        for slot, grad in grads.items():
            grads[slot] = grad * scale.reshape((self.k,) + (1,) * (grad.ndim - 1))

    def step(self, param_stacks: Dict[int, np.ndarray], grads: Dict[int, np.ndarray]) -> None:
        """Update ``param_stacks`` in place from stacked gradients."""
        self._clip_gradients(grads)
        for slot, grad in grads.items():
            data = param_stacks[slot]
            if self.weight_decay > 0:
                grad = grad + self.weight_decay * data
            if self.momentum > 0:
                velocity = self._velocity.get(slot)
                if velocity is None:
                    velocity = np.zeros_like(data)
                velocity = self.momentum * velocity + grad
                self._velocity[slot] = velocity
                grad = grad + self.momentum * velocity if self.nesterov else velocity
            data -= self.lr * grad


class Adam(Optimizer):
    """Adam optimiser (Kingma & Ba, 2015)."""

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float = 1e-3,
        betas=(0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(parameters, lr)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._step_count = 0
        self._first_moment: Dict[int, np.ndarray] = {}
        self._second_moment: Dict[int, np.ndarray] = {}

    def step(self) -> None:
        self._step_count += 1
        bias1 = 1.0 - self.beta1 ** self._step_count
        bias2 = 1.0 - self.beta2 ** self._step_count
        for param in self.parameters:
            if param.grad is None or not param.requires_grad:
                continue
            grad = param.grad
            if self.weight_decay > 0:
                grad = grad + self.weight_decay * param.data
            m = self._first_moment.get(id(param))
            v = self._second_moment.get(id(param))
            if m is None:
                m = np.zeros_like(param.data)
                v = np.zeros_like(param.data)
            m = self.beta1 * m + (1.0 - self.beta1) * grad
            v = self.beta2 * v + (1.0 - self.beta2) * grad ** 2
            self._first_moment[id(param)] = m
            self._second_moment[id(param)] = v
            param.data -= self.lr * (m / bias1) / (np.sqrt(v / bias2) + self.eps)


__all__ = ["Optimizer", "SGD", "BatchedSGD", "Adam"]
