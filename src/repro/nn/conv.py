"""2-D convolution layer."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.autograd import functional as F
from repro.autograd.tensor import Tensor
from repro.nn import init
from repro.nn.module import Module, Parameter


class Conv2d(Module):
    """Standard 2-D convolution over ``(N, C, H, W)`` inputs."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        stride: int = 1,
        padding: int = 0,
        bias: bool = True,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        fan_in = in_channels * kernel_size * kernel_size
        self.weight = Parameter(
            init.kaiming_uniform(
                (out_channels, in_channels, kernel_size, kernel_size), fan_in=fan_in, rng=rng
            )
        )
        if bias:
            bound = 1.0 / np.sqrt(max(fan_in, 1))
            generator = rng if rng is not None else np.random.default_rng()
            self.bias = Parameter(generator.uniform(-bound, bound, size=(out_channels,)))
        else:
            self.bias = None

    def forward(self, x: Tensor) -> Tensor:
        return F.conv2d(x, self.weight, self.bias, stride=self.stride, padding=self.padding)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Conv2d({self.in_channels}, {self.out_channels}, k={self.kernel_size}, "
            f"s={self.stride}, p={self.padding})"
        )


__all__ = ["Conv2d"]
