"""Activation-function modules."""

from __future__ import annotations

from repro.autograd import functional as F
from repro.autograd.tensor import Tensor
from repro.nn.module import Module


class ReLU(Module):
    def forward(self, x: Tensor) -> Tensor:
        return F.relu(x)


class GELU(Module):
    def forward(self, x: Tensor) -> Tensor:
        return F.gelu(x)


class Tanh(Module):
    def forward(self, x: Tensor) -> Tensor:
        return F.tanh(x)


class Sigmoid(Module):
    def forward(self, x: Tensor) -> Tensor:
        return F.sigmoid(x)


class Identity(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x


__all__ = ["ReLU", "GELU", "Tanh", "Sigmoid", "Identity"]
