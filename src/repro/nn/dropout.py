"""Dropout layer with an explicit, seedable random generator."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.autograd import functional as F
from repro.autograd.tensor import Tensor
from repro.nn.module import Module


class Dropout(Module):
    """Inverted dropout; a no-op in eval mode."""

    def __init__(self, p: float = 0.5, rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError(f"dropout probability must be in [0, 1), got {p}")
        self.p = p
        self._rng = rng if rng is not None else np.random.default_rng()

    def forward(self, x: Tensor) -> Tensor:
        return F.dropout(x, self.p, training=self.training, rng=self._rng)


__all__ = ["Dropout"]
