"""Learning-rate schedulers."""

from __future__ import annotations

import math

from repro.nn.optim import Optimizer


class LRScheduler:
    """Base class; call :meth:`step` once per epoch/round."""

    def __init__(self, optimizer: Optimizer) -> None:
        self.optimizer = optimizer
        self.base_lr = optimizer.lr
        self.last_epoch = 0

    def get_lr(self) -> float:  # pragma: no cover - abstract
        raise NotImplementedError

    def step(self) -> float:
        self.last_epoch += 1
        new_lr = self.get_lr()
        self.optimizer.lr = new_lr
        return new_lr


class ConstantLR(LRScheduler):
    """Keeps the learning rate fixed (explicit no-op scheduler)."""

    def get_lr(self) -> float:
        return self.base_lr


class StepLR(LRScheduler):
    """Decays the learning rate by ``gamma`` every ``step_size`` steps."""

    def __init__(self, optimizer: Optimizer, step_size: int, gamma: float = 0.1) -> None:
        super().__init__(optimizer)
        if step_size <= 0:
            raise ValueError("step_size must be positive")
        self.step_size = step_size
        self.gamma = gamma

    def get_lr(self) -> float:
        return self.base_lr * self.gamma ** (self.last_epoch // self.step_size)


class CosineAnnealingLR(LRScheduler):
    """Cosine annealing from the base learning rate down to ``eta_min``."""

    def __init__(self, optimizer: Optimizer, t_max: int, eta_min: float = 0.0) -> None:
        super().__init__(optimizer)
        if t_max <= 0:
            raise ValueError("t_max must be positive")
        self.t_max = t_max
        self.eta_min = eta_min

    def get_lr(self) -> float:
        progress = min(self.last_epoch, self.t_max) / self.t_max
        return self.eta_min + 0.5 * (self.base_lr - self.eta_min) * (1 + math.cos(math.pi * progress))


__all__ = ["LRScheduler", "ConstantLR", "StepLR", "CosineAnnealingLR"]
