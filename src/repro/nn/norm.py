"""Normalisation layers: BatchNorm2d and LayerNorm."""

from __future__ import annotations

import numpy as np

from repro.autograd import functional as F
from repro.autograd.tensor import Tensor
from repro.nn.module import Module, Parameter


class BatchNorm2d(Module):
    """Batch normalisation for convolutional feature maps ``(N, C, H, W)``."""

    def __init__(self, num_features: int, eps: float = 1e-5, momentum: float = 0.1) -> None:
        super().__init__()
        self.num_features = num_features
        self.eps = eps
        self.momentum = momentum
        self.weight = Parameter(np.ones(num_features))
        self.bias = Parameter(np.zeros(num_features))
        self.register_buffer("running_mean", np.zeros(num_features))
        self.register_buffer("running_var", np.ones(num_features))

    def forward(self, x: Tensor) -> Tensor:
        return F.batch_norm_2d(
            x,
            self.weight,
            self.bias,
            self.running_mean,
            self.running_var,
            training=self.training,
            momentum=self.momentum,
            eps=self.eps,
        )


class LayerNorm(Module):
    """Layer normalisation over the last dimension (token embeddings)."""

    def __init__(self, normalized_shape: int, eps: float = 1e-5) -> None:
        super().__init__()
        self.normalized_shape = normalized_shape
        self.eps = eps
        self.weight = Parameter(np.ones(normalized_shape))
        self.bias = Parameter(np.zeros(normalized_shape))

    def forward(self, x: Tensor) -> Tensor:
        return F.layer_norm(x, self.weight, self.bias, eps=self.eps)


__all__ = ["BatchNorm2d", "LayerNorm"]
