"""Neural-network layers, containers and optimisers on top of ``repro.autograd``.

The public surface intentionally mirrors a small subset of ``torch.nn`` so the
RefFiL code (and the federated baselines) read like their reference
implementations: ``Module``, ``Parameter``, ``Linear``, ``Conv2d``,
``BatchNorm2d``, ``LayerNorm``, ``MultiHeadSelfAttention``, ``SGD`` and so on.
"""

from repro.nn.module import Module, Parameter, Sequential, ModuleList
from repro.nn.linear import Linear
from repro.nn.conv import Conv2d
from repro.nn.norm import BatchNorm2d, LayerNorm
from repro.nn.activation import ReLU, GELU, Tanh, Sigmoid, Identity
from repro.nn.pooling import MaxPool2d, AvgPool2d, GlobalAvgPool2d
from repro.nn.dropout import Dropout
from repro.nn.embedding import Embedding
from repro.nn.mlp import MLP
from repro.nn.attention import MultiHeadSelfAttention, TransformerBlock
from repro.nn.optim import SGD, Adam
from repro.nn.scheduler import StepLR, CosineAnnealingLR, ConstantLR
from repro.nn.loss import CrossEntropyLoss, KnowledgeDistillationLoss, MSELoss
from repro.nn import init, functional_aliases as F
from repro.nn.serialization import save_state_dict, load_state_dict, state_dicts_allclose

__all__ = [
    "Module",
    "Parameter",
    "Sequential",
    "ModuleList",
    "Linear",
    "Conv2d",
    "BatchNorm2d",
    "LayerNorm",
    "ReLU",
    "GELU",
    "Tanh",
    "Sigmoid",
    "Identity",
    "MaxPool2d",
    "AvgPool2d",
    "GlobalAvgPool2d",
    "Dropout",
    "Embedding",
    "MLP",
    "MultiHeadSelfAttention",
    "TransformerBlock",
    "SGD",
    "Adam",
    "StepLR",
    "CosineAnnealingLR",
    "ConstantLR",
    "CrossEntropyLoss",
    "KnowledgeDistillationLoss",
    "MSELoss",
    "init",
    "F",
    "save_state_dict",
    "load_state_dict",
    "state_dicts_allclose",
]
