"""Module / Parameter container system (a compact ``torch.nn.Module`` analogue).

Modules track parameters, buffers and sub-modules by attribute assignment and
expose ``state_dict`` / ``load_state_dict`` for the FedAvg aggregation in
:mod:`repro.federated.aggregation`, which operates directly on flat
name-to-array dictionaries.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.autograd.tensor import Tensor, get_default_dtype


class Parameter(Tensor):
    """A :class:`Tensor` that is registered as trainable by a :class:`Module`."""

    def __init__(self, data, requires_grad: bool = True, name: Optional[str] = None) -> None:
        super().__init__(data, requires_grad=requires_grad, name=name)


class Module:
    """Base class for all neural-network modules."""

    def __init__(self) -> None:
        self._parameters: "OrderedDict[str, Parameter]" = OrderedDict()
        self._buffers: "OrderedDict[str, np.ndarray]" = OrderedDict()
        self._modules: "OrderedDict[str, Module]" = OrderedDict()
        self.training = True

    # ------------------------------------------------------------------ #
    # Registration by attribute assignment
    # ------------------------------------------------------------------ #
    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Parameter):
            self.__dict__.setdefault("_parameters", OrderedDict())[name] = value
        elif isinstance(value, Module):
            self.__dict__.setdefault("_modules", OrderedDict())[name] = value
        object.__setattr__(self, name, value)

    def register_buffer(self, name: str, array: np.ndarray) -> None:
        """Register a non-trainable persistent array (e.g. BatchNorm running stats)."""
        self._buffers[name] = np.asarray(array, dtype=get_default_dtype())
        object.__setattr__(self, name, self._buffers[name])

    def register_parameter(self, name: str, parameter: Parameter) -> None:
        self._parameters[name] = parameter
        object.__setattr__(self, name, parameter)

    def add_module(self, name: str, module: "Module") -> None:
        self._modules[name] = module
        object.__setattr__(self, name, module)

    # ------------------------------------------------------------------ #
    # Traversal
    # ------------------------------------------------------------------ #
    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        for name, param in self._parameters.items():
            yield prefix + name, param
        for child_name, child in self._modules.items():
            yield from child.named_parameters(prefix=f"{prefix}{child_name}.")

    def parameters(self) -> List[Parameter]:
        return [param for _, param in self.named_parameters()]

    def named_buffers(self, prefix: str = "") -> Iterator[Tuple[str, np.ndarray]]:
        for name, buffer in self._buffers.items():
            yield prefix + name, buffer
        for child_name, child in self._modules.items():
            yield from child.named_buffers(prefix=f"{prefix}{child_name}.")

    def named_modules(self, prefix: str = "") -> Iterator[Tuple[str, "Module"]]:
        yield prefix.rstrip("."), self
        for child_name, child in self._modules.items():
            yield from child.named_modules(prefix=f"{prefix}{child_name}.")

    def children(self) -> List["Module"]:
        return list(self._modules.values())

    # ------------------------------------------------------------------ #
    # Modes / gradients
    # ------------------------------------------------------------------ #
    def train(self, mode: bool = True) -> "Module":
        self.training = mode
        for child in self._modules.values():
            child.train(mode)
        return self

    def eval(self) -> "Module":
        return self.train(False)

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.zero_grad()

    def freeze(self) -> "Module":
        """Mark every parameter as non-trainable (used for the frozen tokenizer)."""
        for param in self.parameters():
            param.requires_grad = False
        return self

    def unfreeze(self) -> "Module":
        for param in self.parameters():
            param.requires_grad = True
        return self

    def num_parameters(self, trainable_only: bool = False) -> int:
        return sum(
            p.size for p in self.parameters() if (p.requires_grad or not trainable_only)
        )

    # ------------------------------------------------------------------ #
    # State dict
    # ------------------------------------------------------------------ #
    def state_dict(self) -> Dict[str, np.ndarray]:
        """Flat name -> array copy of every parameter and buffer."""
        state: Dict[str, np.ndarray] = OrderedDict()
        for name, param in self.named_parameters():
            state[name] = param.data.copy()
        for name, buffer in self.named_buffers():
            state[f"buffer::{name}"] = buffer.copy()
        return state

    def load_state_dict(self, state: Dict[str, np.ndarray], strict: bool = True) -> None:
        """Load arrays produced by :meth:`state_dict` (in place)."""
        param_map = dict(self.named_parameters())
        buffer_map = dict(self.named_buffers())
        missing: List[str] = []
        for name, param in param_map.items():
            if name in state:
                value = np.asarray(state[name])
                if value.shape != param.data.shape:
                    raise ValueError(
                        f"shape mismatch for parameter {name!r}: "
                        f"{value.shape} vs {param.data.shape}"
                    )
                param.data[...] = value
            elif strict:
                missing.append(name)
        for name, buffer in buffer_map.items():
            key = f"buffer::{name}"
            if key in state:
                buffer[...] = np.asarray(state[key])
            elif strict:
                missing.append(key)
        if strict and missing:
            raise KeyError(f"missing keys in state_dict: {missing}")

    # ------------------------------------------------------------------ #
    # Forward
    # ------------------------------------------------------------------ #
    def forward(self, *args, **kwargs):  # pragma: no cover - abstract
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)


class Sequential(Module):
    """Run a list of modules in order."""

    def __init__(self, *modules: Module) -> None:
        super().__init__()
        self._order: List[str] = []
        for index, module in enumerate(modules):
            name = str(index)
            self.add_module(name, module)
            self._order.append(name)

    def append(self, module: Module) -> "Sequential":
        name = str(len(self._order))
        self.add_module(name, module)
        self._order.append(name)
        return self

    def __len__(self) -> int:
        return len(self._order)

    def __iter__(self):
        return iter(self._modules[name] for name in self._order)

    def __getitem__(self, index: int) -> Module:
        return self._modules[self._order[index]]

    def forward(self, x):
        for name in self._order:
            x = self._modules[name](x)
        return x


class ModuleList(Module):
    """A list of sub-modules that are all properly registered."""

    def __init__(self, modules: Optional[List[Module]] = None) -> None:
        super().__init__()
        self._order: List[str] = []
        for module in modules or []:
            self.append(module)

    def append(self, module: Module) -> "ModuleList":
        name = str(len(self._order))
        self.add_module(name, module)
        self._order.append(name)
        return self

    def __len__(self) -> int:
        return len(self._order)

    def __iter__(self):
        return iter(self._modules[name] for name in self._order)

    def __getitem__(self, index: int) -> Module:
        return self._modules[self._order[index]]

    def forward(self, *args, **kwargs):  # pragma: no cover - containers have no forward
        raise NotImplementedError("ModuleList is a container and cannot be called")


__all__ = ["Module", "Parameter", "Sequential", "ModuleList"]
