"""Multi-head self-attention and the transformer attention block.

The RefFiL backbone (paper Sec. II, Eq. 1-3) tokenises the CNN feature map,
prepends a ``[CLS]`` token (and, during training, prompt tokens) and runs the
sequence through a single attention block consisting of multi-head
self-attention, an MLP, skip connections and layer normalisation.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.autograd import functional as F
from repro.autograd.tensor import Tensor
from repro.nn.linear import Linear
from repro.nn.mlp import MLP
from repro.nn.module import Module
from repro.nn.norm import LayerNorm


class MultiHeadSelfAttention(Module):
    """Standard scaled dot-product multi-head self-attention over token sequences.

    Input and output shapes are ``(batch, tokens, dim)``.
    """

    def __init__(
        self,
        dim: int,
        num_heads: int = 2,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        if dim % num_heads != 0:
            raise ValueError(f"dim {dim} must be divisible by num_heads {num_heads}")
        self.dim = dim
        self.num_heads = num_heads
        self.head_dim = dim // num_heads
        self.scale = 1.0 / np.sqrt(self.head_dim)
        self.query = Linear(dim, dim, rng=rng)
        self.key = Linear(dim, dim, rng=rng)
        self.value = Linear(dim, dim, rng=rng)
        self.proj = Linear(dim, dim, rng=rng)

    def _split_heads(self, x: Tensor, batch: int, tokens: int) -> Tensor:
        # (B, T, D) -> (B, H, T, Dh)
        return x.reshape(batch, tokens, self.num_heads, self.head_dim).transpose(0, 2, 1, 3)

    def forward(self, x: Tensor) -> Tensor:
        batch, tokens, _ = x.shape
        q = self._split_heads(self.query(x), batch, tokens)
        k = self._split_heads(self.key(x), batch, tokens)
        v = self._split_heads(self.value(x), batch, tokens)
        scores = (q @ k.transpose(0, 1, 3, 2)) * self.scale
        weights = F.softmax(scores, axis=-1)
        context = weights @ v  # (B, H, T, Dh)
        context = context.transpose(0, 2, 1, 3).reshape(batch, tokens, self.dim)
        return self.proj(context)


class TransformerBlock(Module):
    """One pre-norm transformer encoder block (MHSA + MLP + residuals + LN).

    This matches paper Eq. 2: ``I_{b+1} = LN(I'_b + I''_b)`` with
    ``I'_b = LN(MHSA(I_b))`` and ``I''_b = MLP(I'_b)``.
    """

    def __init__(
        self,
        dim: int,
        num_heads: int = 2,
        mlp_ratio: float = 2.0,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        self.attention = MultiHeadSelfAttention(dim, num_heads=num_heads, rng=rng)
        self.norm_attention = LayerNorm(dim)
        self.norm_out = LayerNorm(dim)
        hidden = max(int(dim * mlp_ratio), dim)
        self.mlp = MLP(dim, [hidden], dim, activation="gelu", rng=rng)

    def forward(self, tokens: Tensor) -> Tensor:
        attended = self.norm_attention(self.attention(tokens))
        residual = tokens + attended
        expanded = self.mlp(attended)
        return self.norm_out(residual + expanded)


__all__ = ["MultiHeadSelfAttention", "TransformerBlock"]
