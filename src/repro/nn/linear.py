"""Fully-connected layer."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.autograd import functional as F
from repro.autograd.tensor import Tensor
from repro.nn import init
from repro.nn.module import Module, Parameter


class Linear(Module):
    """Affine transform ``y = x W^T + b`` over the last input dimension."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(
            init.kaiming_uniform((out_features, in_features), fan_in=in_features, rng=rng)
        )
        if bias:
            bound = 1.0 / np.sqrt(max(in_features, 1))
            generator = rng if rng is not None else np.random.default_rng()
            self.bias = Parameter(generator.uniform(-bound, bound, size=(out_features,)))
        else:
            self.bias = None

    def forward(self, x: Tensor) -> Tensor:
        return F.linear(x, self.weight, self.bias)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Linear({self.in_features}, {self.out_features}, bias={self.bias is not None})"


__all__ = ["Linear"]
