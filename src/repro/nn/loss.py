"""Loss modules wrapping the functional losses."""

from __future__ import annotations

import numpy as np

from repro.autograd import functional as F
from repro.autograd.tensor import Tensor
from repro.nn.module import Module


class CrossEntropyLoss(Module):
    """Cross-entropy between logits and integer targets (paper Eq. 13)."""

    def __init__(self, reduction: str = "mean") -> None:
        super().__init__()
        self.reduction = reduction

    def forward(self, logits: Tensor, targets: np.ndarray) -> Tensor:
        return F.cross_entropy(logits, targets, reduction=self.reduction)


class KnowledgeDistillationLoss(Module):
    """Temperature-scaled distillation loss used by the FedLwF baseline."""

    def __init__(self, temperature: float = 2.0) -> None:
        super().__init__()
        if temperature <= 0:
            raise ValueError("temperature must be positive")
        self.temperature = temperature

    def forward(self, student_logits: Tensor, teacher_logits: Tensor) -> Tensor:
        return F.knowledge_distillation_loss(student_logits, teacher_logits, self.temperature)


class MSELoss(Module):
    def __init__(self, reduction: str = "mean") -> None:
        super().__init__()
        self.reduction = reduction

    def forward(self, prediction: Tensor, target: Tensor) -> Tensor:
        return F.mse_loss(prediction, target, reduction=self.reduction)


__all__ = ["CrossEntropyLoss", "KnowledgeDistillationLoss", "MSELoss"]
