"""Weight initialisation helpers (deterministic given an explicit generator).

All initialisers return arrays in the active compute dtype
(:func:`repro.autograd.tensor.get_default_dtype`), so a model built under a
``default_dtype(np.float32)`` context is float32 end-to-end.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.autograd.tensor import get_default_dtype


def _rng(rng: Optional[np.random.Generator]) -> np.random.Generator:
    return rng if rng is not None else np.random.default_rng()


def kaiming_uniform(shape: Tuple[int, ...], fan_in: int, rng: Optional[np.random.Generator] = None) -> np.ndarray:
    """He/Kaiming uniform initialisation suited to ReLU networks."""
    bound = np.sqrt(6.0 / max(fan_in, 1))
    return _rng(rng).uniform(-bound, bound, size=shape).astype(get_default_dtype(), copy=False)


def xavier_uniform(shape: Tuple[int, ...], fan_in: int, fan_out: int, rng: Optional[np.random.Generator] = None) -> np.ndarray:
    """Glorot/Xavier uniform initialisation."""
    bound = np.sqrt(6.0 / max(fan_in + fan_out, 1))
    return _rng(rng).uniform(-bound, bound, size=shape).astype(get_default_dtype(), copy=False)


def normal(shape: Tuple[int, ...], std: float = 0.02, rng: Optional[np.random.Generator] = None) -> np.ndarray:
    """Gaussian initialisation with the given standard deviation."""
    return _rng(rng).normal(0.0, std, size=shape).astype(get_default_dtype(), copy=False)


def zeros(shape: Tuple[int, ...]) -> np.ndarray:
    return np.zeros(shape, dtype=get_default_dtype())


def ones(shape: Tuple[int, ...]) -> np.ndarray:
    return np.ones(shape, dtype=get_default_dtype())


__all__ = ["kaiming_uniform", "xavier_uniform", "normal", "zeros", "ones"]
