"""Weight initialisation helpers (deterministic given an explicit generator)."""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np


def _rng(rng: Optional[np.random.Generator]) -> np.random.Generator:
    return rng if rng is not None else np.random.default_rng()


def kaiming_uniform(shape: Tuple[int, ...], fan_in: int, rng: Optional[np.random.Generator] = None) -> np.ndarray:
    """He/Kaiming uniform initialisation suited to ReLU networks."""
    bound = np.sqrt(6.0 / max(fan_in, 1))
    return _rng(rng).uniform(-bound, bound, size=shape)


def xavier_uniform(shape: Tuple[int, ...], fan_in: int, fan_out: int, rng: Optional[np.random.Generator] = None) -> np.ndarray:
    """Glorot/Xavier uniform initialisation."""
    bound = np.sqrt(6.0 / max(fan_in + fan_out, 1))
    return _rng(rng).uniform(-bound, bound, size=shape)


def normal(shape: Tuple[int, ...], std: float = 0.02, rng: Optional[np.random.Generator] = None) -> np.ndarray:
    """Gaussian initialisation with the given standard deviation."""
    return _rng(rng).normal(0.0, std, size=shape)


def zeros(shape: Tuple[int, ...]) -> np.ndarray:
    return np.zeros(shape, dtype=np.float64)


def ones(shape: Tuple[int, ...]) -> np.ndarray:
    return np.ones(shape, dtype=np.float64)


__all__ = ["kaiming_uniform", "xavier_uniform", "normal", "zeros", "ones"]
