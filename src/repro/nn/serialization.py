"""Saving / loading / comparing / shipping model state dictionaries.

FedAvg aggregation, EWC snapshots and LwF teacher models all operate on the
flat name->array dictionaries produced by :meth:`repro.nn.Module.state_dict`;
this module adds disk persistence (``.npz``), comparison helpers, and the
zero-redundant-copy broadcast primitives used by the round execution engine:

* :func:`readonly_state_view` — a no-copy, write-protected view of a state
  dict, safe to hand to every client of a round simultaneously;
* :func:`serialize_state` / :func:`deserialize_state` — a single pickle
  serialization of a state dict that worker processes can unpack, so a round
  pays one serialization instead of one deep copy per client.
"""

from __future__ import annotations

import pickle
from pathlib import Path
from typing import Any, Dict, Tuple, Union

import numpy as np

PathLike = Union[str, Path]


def save_state_dict(state: Dict[str, np.ndarray], path: PathLike) -> Path:
    """Persist a state dict to a compressed ``.npz`` file and return the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    np.savez_compressed(path, **{key: np.asarray(value) for key, value in state.items()})
    return path


def load_state_dict(path: PathLike) -> Dict[str, np.ndarray]:
    """Load a state dict previously written by :func:`save_state_dict`."""
    path = Path(path)
    with np.load(path, allow_pickle=False) as data:
        return {key: data[key].copy() for key in data.files}


def state_dicts_allclose(
    left: Dict[str, np.ndarray],
    right: Dict[str, np.ndarray],
    atol: float = 1e-8,
) -> bool:
    """True when both state dicts have identical keys and numerically close values."""
    if set(left) != set(right):
        return False
    return all(np.allclose(left[key], right[key], atol=atol) for key in left)


def clone_state_dict(state: Dict[str, np.ndarray]) -> Dict[str, np.ndarray]:
    """Deep-copy a state dict."""
    return {key: np.array(value, copy=True) for key, value in state.items()}


def readonly_state_view(state: Dict[str, np.ndarray]) -> Dict[str, np.ndarray]:
    """Return a no-copy view of ``state`` whose arrays refuse writes.

    The views share memory with the originals, so broadcasting the global
    model to ``M`` clients costs zero array copies; any method that tries to
    mutate the broadcast state in place raises instead of silently corrupting
    the other clients' view of the round.
    """
    views: Dict[str, np.ndarray] = {}
    for key, value in state.items():
        view = np.asarray(value).view()
        view.flags.writeable = False
        views[key] = view
    return views


def readonly_payload_view(payload: Any) -> Any:
    """Recursively wrap every array inside a broadcast payload in a read-only view.

    Same rationale as :func:`readonly_state_view`: one payload is shared by
    every client of a round, so in-place mutation must raise instead of
    silently leaking into the other clients (and diverging from the parallel
    executor, whose workers mutate a discarded copy).
    """
    if isinstance(payload, np.ndarray):
        view = payload.view()
        view.flags.writeable = False
        return view
    if isinstance(payload, dict):
        return {key: readonly_payload_view(value) for key, value in payload.items()}
    if isinstance(payload, tuple) and hasattr(payload, "_fields"):  # namedtuple
        return type(payload)(*(readonly_payload_view(value) for value in payload))
    if isinstance(payload, (list, tuple)):
        return type(payload)(readonly_payload_view(value) for value in payload)
    return payload


def serialize_state(state: Dict[str, np.ndarray], payload: Any = None) -> bytes:
    """Serialize a state dict (plus an optional payload) into one pickle blob."""
    return pickle.dumps((state, payload), protocol=pickle.HIGHEST_PROTOCOL)


def deserialize_state(blob: bytes) -> Tuple[Dict[str, np.ndarray], Any]:
    """Inverse of :func:`serialize_state`."""
    state, payload = pickle.loads(blob)
    return state, payload


__all__ = [
    "save_state_dict",
    "load_state_dict",
    "state_dicts_allclose",
    "clone_state_dict",
    "readonly_state_view",
    "readonly_payload_view",
    "serialize_state",
    "deserialize_state",
]
