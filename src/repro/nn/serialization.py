"""Saving / loading / comparing model state dictionaries.

FedAvg aggregation, EWC snapshots and LwF teacher models all operate on the
flat name->array dictionaries produced by :meth:`repro.nn.Module.state_dict`;
this module adds disk persistence (``.npz``) and comparison helpers.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Union

import numpy as np

PathLike = Union[str, Path]


def save_state_dict(state: Dict[str, np.ndarray], path: PathLike) -> Path:
    """Persist a state dict to a compressed ``.npz`` file and return the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    np.savez_compressed(path, **{key: np.asarray(value) for key, value in state.items()})
    return path


def load_state_dict(path: PathLike) -> Dict[str, np.ndarray]:
    """Load a state dict previously written by :func:`save_state_dict`."""
    path = Path(path)
    with np.load(path, allow_pickle=False) as data:
        return {key: data[key].copy() for key in data.files}


def state_dicts_allclose(
    left: Dict[str, np.ndarray],
    right: Dict[str, np.ndarray],
    atol: float = 1e-8,
) -> bool:
    """True when both state dicts have identical keys and numerically close values."""
    if set(left) != set(right):
        return False
    return all(np.allclose(left[key], right[key], atol=atol) for key in left)


def clone_state_dict(state: Dict[str, np.ndarray]) -> Dict[str, np.ndarray]:
    """Deep-copy a state dict."""
    return {key: np.array(value, copy=True) for key, value in state.items()}


__all__ = ["save_state_dict", "load_state_dict", "state_dicts_allclose", "clone_state_dict"]
