"""Embedding lookup table (used for the task-ID key embedding in CDAP)."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.autograd import functional as F
from repro.autograd.tensor import Tensor
from repro.nn import init
from repro.nn.module import Module, Parameter


class Embedding(Module):
    """Lookup table mapping integer indices to dense vectors."""

    def __init__(
        self,
        num_embeddings: int,
        embedding_dim: int,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        self.num_embeddings = num_embeddings
        self.embedding_dim = embedding_dim
        self.weight = Parameter(init.normal((num_embeddings, embedding_dim), std=0.02, rng=rng))

    def forward(self, indices: np.ndarray) -> Tensor:
        indices = np.asarray(indices, dtype=np.int64)
        if np.any(indices < 0) or np.any(indices >= self.num_embeddings):
            raise IndexError(
                f"embedding index out of range [0, {self.num_embeddings}): {indices}"
            )
        return F.embedding(self.weight, indices)


__all__ = ["Embedding"]
