"""Pooling layers."""

from __future__ import annotations

from typing import Optional

from repro.autograd import functional as F
from repro.autograd.tensor import Tensor
from repro.nn.module import Module


class MaxPool2d(Module):
    def __init__(self, kernel_size: int, stride: Optional[int] = None) -> None:
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = stride if stride is not None else kernel_size

    def forward(self, x: Tensor) -> Tensor:
        return F.max_pool2d(x, self.kernel_size, self.stride)


class AvgPool2d(Module):
    def __init__(self, kernel_size: int, stride: Optional[int] = None) -> None:
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = stride if stride is not None else kernel_size

    def forward(self, x: Tensor) -> Tensor:
        return F.avg_pool2d(x, self.kernel_size, self.stride)


class GlobalAvgPool2d(Module):
    """Global average pooling: ``(N, C, H, W) -> (N, C)``."""

    def forward(self, x: Tensor) -> Tensor:
        return F.global_avg_pool2d(x)


__all__ = ["MaxPool2d", "AvgPool2d", "GlobalAvgPool2d"]
