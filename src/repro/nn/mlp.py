"""Multi-layer perceptron block used in the attention block and the CDAP generator."""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.autograd.tensor import Tensor
from repro.nn.activation import GELU, ReLU
from repro.nn.dropout import Dropout
from repro.nn.linear import Linear
from repro.nn.module import Module, ModuleList


class MLP(Module):
    """A configurable stack of ``Linear -> activation`` layers.

    The final layer has no activation so the block can be used both as a
    transformer feed-forward network and as a projection head.
    """

    def __init__(
        self,
        in_features: int,
        hidden_features: Sequence[int],
        out_features: int,
        activation: str = "gelu",
        dropout: float = 0.0,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        if activation not in ("gelu", "relu"):
            raise ValueError(f"unsupported activation {activation!r}")
        dims = [in_features, *hidden_features, out_features]
        layers = []
        for index, (d_in, d_out) in enumerate(zip(dims[:-1], dims[1:])):
            layers.append(Linear(d_in, d_out, rng=rng))
        self.layers = ModuleList(layers)
        self.activation = GELU() if activation == "gelu" else ReLU()
        self.dropout = Dropout(dropout, rng=rng) if dropout > 0 else None
        self.out_features = out_features

    def forward(self, x: Tensor) -> Tensor:
        total = len(self.layers)
        for index, layer in enumerate(self.layers):
            x = layer(x)
            if index < total - 1:
                x = self.activation(x)
                if self.dropout is not None:
                    x = self.dropout(x)
        return x


__all__ = ["MLP"]
