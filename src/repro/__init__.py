"""RefFiL reproduction: Rehearsal-free Federated Domain-incremental Learning.

This package is a from-scratch, numpy-based reproduction of the ICDCS 2025
paper *"Rehearsal-free Federated Domain-incremental Learning"* (RefFiL),
including every substrate the paper depends on:

* :mod:`repro.autograd` / :mod:`repro.nn` -- a reverse-mode autodiff engine
  and neural-network layer zoo (conv nets, attention, SGD) standing in for
  PyTorch.
* :mod:`repro.models` -- the ResNet10 feature extractor, frozen patch
  tokenizer, attention block and prompt-aware classifier backbone.
* :mod:`repro.datasets` -- procedural domain-shift datasets mirroring
  Digits-Five, OfficeCaltech10, PACS and FedDomainNet, plus non-iid
  quantity-shift partitioning.
* :mod:`repro.federated` -- FedAvg clients/server, client sampling and the
  paper's client-increment strategy (old / in-between / new groups).
* :mod:`repro.continual` -- domain-incremental task scenarios and the
  Avg / Last / Forgetting / Backward-Transfer metrics.
* :mod:`repro.clustering` -- the FINCH first-neighbour clustering algorithm
  used for global prompt clustering.
* :mod:`repro.core` -- the RefFiL contribution: the CDAP prompt generator,
  global prompt sharing and clustering, the GPL loss and the DPCL contrastive
  loss with temperature decay.
* :mod:`repro.baselines` -- Finetune, FedLwF, FedEWC, FedL2P(+pool) and
  FedDualPrompt(+pool).
* :mod:`repro.experiments` -- the harness that regenerates every table of the
  paper's evaluation section.
"""

from repro.version import __version__

__all__ = ["__version__"]
