"""ResNet10 feature extractor.

The paper uses ResNet10 as the classification backbone's feature extractor
``h``.  ResNet10 is the smallest member of the ResNet family: a stem
convolution followed by four stages of a single BasicBlock each.  Widths and
strides are configurable so the tiny test/bench presets can shrink the
network while keeping the architecture identical.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from repro.autograd import functional as F
from repro.autograd.tensor import Tensor
from repro.nn.conv import Conv2d
from repro.nn.module import Module, ModuleList
from repro.nn.norm import BatchNorm2d


class BasicBlock(Module):
    """Standard two-convolution residual block with an optional projection shortcut."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        stride: int = 1,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        self.conv1 = Conv2d(in_channels, out_channels, 3, stride=stride, padding=1, bias=False, rng=rng)
        self.bn1 = BatchNorm2d(out_channels)
        self.conv2 = Conv2d(out_channels, out_channels, 3, stride=1, padding=1, bias=False, rng=rng)
        self.bn2 = BatchNorm2d(out_channels)
        if stride != 1 or in_channels != out_channels:
            self.shortcut_conv = Conv2d(in_channels, out_channels, 1, stride=stride, bias=False, rng=rng)
            self.shortcut_bn = BatchNorm2d(out_channels)
        else:
            self.shortcut_conv = None
            self.shortcut_bn = None

    def forward(self, x: Tensor) -> Tensor:
        out = F.relu(self.bn1(self.conv1(x)))
        out = self.bn2(self.conv2(out))
        if self.shortcut_conv is not None:
            shortcut = self.shortcut_bn(self.shortcut_conv(x))
        else:
            shortcut = x
        return F.relu(out + shortcut)


class ResNet10(Module):
    """Four-stage residual CNN returning the final convolutional feature map.

    Parameters
    ----------
    in_channels:
        Number of input image channels (3 for the synthetic RGB datasets).
    base_width:
        Channel count of the stem; subsequent stages use the ``widths``
        multipliers.
    stage_strides:
        Stride of the (single) BasicBlock in each of the four stages.  The
        default halves the spatial resolution twice, which maps a 16x16 image
        to a 4x4 feature map (16 patch tokens).
    """

    def __init__(
        self,
        in_channels: int = 3,
        base_width: int = 16,
        widths: Sequence[float] = (1, 2, 2, 2),
        stage_strides: Sequence[int] = (1, 2, 2, 1),
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        if len(widths) != 4 or len(stage_strides) != 4:
            raise ValueError("ResNet10 expects exactly four stages")
        self.stem_conv = Conv2d(in_channels, base_width, 3, stride=1, padding=1, bias=False, rng=rng)
        self.stem_bn = BatchNorm2d(base_width)
        channels = [base_width] + [int(round(base_width * w)) for w in widths]
        blocks = []
        for index in range(4):
            blocks.append(
                BasicBlock(channels[index], channels[index + 1], stride=stage_strides[index], rng=rng)
            )
        self.blocks = ModuleList(blocks)
        self.out_channels = channels[-1]

    def forward(self, x: Tensor) -> Tensor:
        out = F.relu(self.stem_bn(self.stem_conv(x)))
        for block in self.blocks:
            out = block(out)
        return out

    def output_spatial(self, input_size: int) -> Tuple[int, int]:
        """Return the (height, width) of the feature map for a square input."""
        size = input_size
        for block in self.blocks:
            stride = block.conv1.stride
            size = (size + stride - 1) // stride
        return size, size


__all__ = ["ResNet10", "BasicBlock"]
