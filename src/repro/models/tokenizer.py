"""Frozen feature-map tokenizer (patch embedding).

The paper describes "a simple embedding model as the feature map tokenizer,
similar to ViT, with initialized-only and frozen parameters".  Here a 1x1
convolution projects the CNN feature map to the token dimension ``d`` and the
spatial grid is flattened into ``n`` patch tokens.  Its parameters are frozen
at construction and a fixed sinusoidal positional encoding is added so the
attention block can distinguish patch locations.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.autograd.tensor import Tensor
from repro.nn.conv import Conv2d
from repro.nn.module import Module


def sinusoidal_positions(num_positions: int, dim: int) -> np.ndarray:
    """Standard transformer sinusoidal positional encoding of shape (num_positions, dim)."""
    positions = np.arange(num_positions)[:, None].astype(np.float64)
    dims = np.arange(dim)[None, :].astype(np.float64)
    angle_rates = 1.0 / np.power(10000.0, (2 * (dims // 2)) / dim)
    angles = positions * angle_rates
    encoding = np.zeros((num_positions, dim))
    encoding[:, 0::2] = np.sin(angles[:, 0::2])
    encoding[:, 1::2] = np.cos(angles[:, 1::2])
    return encoding


class PatchTokenizer(Module):
    """Project a ``(N, C, H, W)`` feature map to ``(N, H*W, d)`` patch tokens."""

    def __init__(
        self,
        in_channels: int,
        embed_dim: int,
        max_positions: int = 256,
        positional_scale: float = 0.2,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        self.embed_dim = embed_dim
        self.projection = Conv2d(in_channels, embed_dim, 1, rng=rng)
        # The positional encoding is scaled down so it augments rather than
        # dominates the projected feature tokens.
        self.register_buffer(
            "positional", positional_scale * sinusoidal_positions(max_positions, embed_dim)
        )
        # Paper: the tokenizer is "initialized-only and frozen".
        self.freeze()

    def forward(self, feature_map: Tensor) -> Tensor:
        batch, _, height, width = feature_map.shape
        projected = self.projection(feature_map)  # (N, d, H, W)
        tokens = projected.reshape(batch, self.embed_dim, height * width).transpose(0, 2, 1)
        num_tokens = height * width
        if num_tokens > self.positional.shape[0]:
            raise ValueError(
                f"feature map yields {num_tokens} tokens but tokenizer supports at most "
                f"{self.positional.shape[0]}; increase max_positions"
            )
        return tokens + Tensor(self.positional[:num_tokens])


__all__ = ["PatchTokenizer", "sinusoidal_positions"]
