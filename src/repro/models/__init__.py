"""Model zoo: the backbone architecture shared by RefFiL and every baseline.

The backbone follows paper Sec. II ("Learning with Prompts"):

* a CNN feature extractor ``h`` (:class:`repro.models.resnet.ResNet10`),
* a frozen patch-embedding tokenizer that turns the feature map into ``n``
  ``d``-dimensional patch tokens,
* a learnable ``[CLS]`` token prepended to the sequence,
* one transformer attention block ``b`` (MHSA + MLP + skip + LN),
* a linear classifier ``G`` reading the final ``[CLS]`` token.

Prompts (local CDAP prompts, global prompts, or baseline prompt-pool prompts)
are injected as extra tokens between ``[CLS]`` and the patch tokens.
"""

from repro.models.resnet import ResNet10, BasicBlock
from repro.models.tokenizer import PatchTokenizer
from repro.models.classifier import ClsClassifier
from repro.models.backbone import PromptedBackbone, BackboneConfig, build_backbone

__all__ = [
    "ResNet10",
    "BasicBlock",
    "PatchTokenizer",
    "ClsClassifier",
    "PromptedBackbone",
    "BackboneConfig",
    "build_backbone",
]
