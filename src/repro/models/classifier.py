"""Classifier head ``G`` reading the final [CLS] token (paper Eq. 3)."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.autograd.tensor import Tensor
from repro.nn.linear import Linear
from repro.nn.module import Module


class ClsClassifier(Module):
    """Linear classifier applied to the [CLS] token after the attention block."""

    def __init__(self, embed_dim: int, num_classes: int, rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        self.embed_dim = embed_dim
        self.num_classes = num_classes
        self.head = Linear(embed_dim, num_classes, rng=rng)

    def forward(self, cls_token: Tensor) -> Tensor:
        if cls_token.ndim != 2 or cls_token.shape[-1] != self.embed_dim:
            raise ValueError(
                f"classifier expects (batch, {self.embed_dim}) [CLS] embeddings, got {cls_token.shape}"
            )
        return self.head(cls_token)


__all__ = ["ClsClassifier"]
