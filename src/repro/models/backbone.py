"""Prompt-aware classification backbone shared by RefFiL and all baselines.

The forward path implements paper Eqs. 1-3:

1. ``F = h(x)`` -- the ResNet10 feature extractor produces a feature map,
2. the frozen tokenizer splits ``F`` into ``n`` patch tokens ``PT`` and a
   learnable ``[CLS]`` token is prepended: ``I = [CLS; PT_1, ..., PT_n]``,
3. prompt tokens (local CDAP prompts, global prompts, or a baseline's pool
   prompts) are inserted between ``[CLS]`` and the patch tokens,
4. the attention block processes the sequence and the classifier ``G`` maps
   the output ``[CLS]`` embedding to class logits.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.autograd.tensor import Tensor
from repro.models.classifier import ClsClassifier
from repro.models.resnet import ResNet10
from repro.models.tokenizer import PatchTokenizer
from repro.nn import init
from repro.nn.attention import TransformerBlock
from repro.nn.module import Module, Parameter
from repro.utils.rng import spawn_rng


@dataclass(frozen=True)
class BackboneConfig:
    """Hyper-parameters of the shared backbone.

    The defaults correspond to the ``tiny`` preset used throughout the test
    suite; the experiment configs scale them up.
    """

    image_size: int = 16
    in_channels: int = 3
    num_classes: int = 10
    base_width: int = 8
    widths: Sequence[float] = (1, 2, 2, 2)
    stage_strides: Sequence[int] = (1, 2, 2, 1)
    embed_dim: int = 32
    num_heads: int = 2
    mlp_ratio: float = 2.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.image_size < 8:
            raise ValueError("image_size must be at least 8")
        if self.embed_dim % self.num_heads != 0:
            raise ValueError("embed_dim must be divisible by num_heads")


class PromptedBackbone(Module):
    """Feature extractor + frozen tokenizer + attention block + classifier."""

    def __init__(self, config: BackboneConfig) -> None:
        super().__init__()
        self.config = config
        rng = spawn_rng(config.seed, "backbone")
        self.feature_extractor = ResNet10(
            in_channels=config.in_channels,
            base_width=config.base_width,
            widths=config.widths,
            stage_strides=config.stage_strides,
            rng=rng,
        )
        self.tokenizer = PatchTokenizer(
            in_channels=self.feature_extractor.out_channels,
            embed_dim=config.embed_dim,
            rng=rng,
        )
        self.cls_token = Parameter(init.normal((1, 1, config.embed_dim), std=0.02, rng=rng))
        self.block = TransformerBlock(
            config.embed_dim, num_heads=config.num_heads, mlp_ratio=config.mlp_ratio, rng=rng
        )
        self.classifier = ClsClassifier(config.embed_dim, config.num_classes, rng=rng)
        spatial = self.feature_extractor.output_spatial(config.image_size)
        self.num_patch_tokens = spatial[0] * spatial[1]

    # ------------------------------------------------------------------ #
    # Token construction
    # ------------------------------------------------------------------ #
    def feature_map(self, images: Tensor) -> Tensor:
        """Run the CNN feature extractor ``h(x)``."""
        return self.feature_extractor(images)

    def patch_tokens(self, images: Tensor) -> Tensor:
        """Tokenise ``h(x)`` into patch tokens ``PT`` of shape (N, n, d)."""
        return self.tokenizer(self.feature_map(images))

    def input_tokens(self, images: Tensor) -> Tensor:
        """Build the prompt-free token sequence ``I = [CLS; PT]`` (paper Eq. 1)."""
        patches = self.patch_tokens(images)
        batch = patches.shape[0]
        cls = self.cls_token.broadcast_to((batch, 1, self.config.embed_dim))
        return Tensor.concatenate([cls, patches], axis=1)

    @staticmethod
    def _prepare_prompts(prompts: Tensor, batch: int) -> Tensor:
        """Broadcast prompts of shape (p, d) or (N, p, d) to (N, p, d)."""
        if prompts.ndim == 2:
            p, d = prompts.shape
            return prompts.reshape(1, p, d).broadcast_to((batch, p, d))
        if prompts.ndim == 3:
            if prompts.shape[0] != batch:
                raise ValueError(
                    f"per-sample prompts batch {prompts.shape[0]} does not match images batch {batch}"
                )
            return prompts
        raise ValueError(f"prompts must be rank 2 or 3, got shape {prompts.shape}")

    # ------------------------------------------------------------------ #
    # Forward variants
    # ------------------------------------------------------------------ #
    def classify_tokens(self, tokens: Tensor) -> Tensor:
        """Run the attention block over a prepared token sequence and classify [CLS]."""
        encoded = self.block(tokens)
        return self.classifier(encoded[:, 0, :])

    def forward(self, images: Tensor, prompts: Optional[Tensor] = None) -> Tensor:
        """Return class logits; ``prompts`` are inserted after the [CLS] token."""
        patches = self.patch_tokens(images)
        return self.forward_from_patches(patches, prompts)

    def forward_from_patches(self, patches: Tensor, prompts: Optional[Tensor] = None) -> Tensor:
        """Same as :meth:`forward` but reusing precomputed patch tokens.

        RefFiL computes three logits per batch (local-prompt, global-prompt and
        the CDAP input tokens) from the same feature map; exposing this method
        avoids running the CNN three times.
        """
        batch = patches.shape[0]
        cls = self.cls_token.broadcast_to((batch, 1, self.config.embed_dim))
        pieces = [cls]
        if prompts is not None:
            pieces.append(self._prepare_prompts(prompts, batch))
        pieces.append(patches)
        tokens = Tensor.concatenate(pieces, axis=1)
        return self.classify_tokens(tokens)

    # ------------------------------------------------------------------ #
    # Introspection helpers used by the federated layer
    # ------------------------------------------------------------------ #
    def trainable_parameter_names(self) -> Tuple[str, ...]:
        return tuple(name for name, param in self.named_parameters() if param.requires_grad)


def build_backbone(config: Optional[BackboneConfig] = None, **overrides) -> PromptedBackbone:
    """Convenience constructor: ``build_backbone(num_classes=7, image_size=16)``."""
    if config is None:
        config = BackboneConfig(**overrides)
    elif overrides:
        raise ValueError("pass either a config object or keyword overrides, not both")
    return PromptedBackbone(config)


__all__ = ["BackboneConfig", "PromptedBackbone", "build_backbone"]
