"""Neural-network functionals built on :class:`repro.autograd.tensor.Tensor`.

These free functions are the building blocks used by :mod:`repro.nn` layers
and by the RefFiL losses (cross-entropy, the GPL loss, the DPCL contrastive
loss).  Convolution and pooling are implemented as primitive
:class:`~repro.autograd.tape.Op`s with hand-written backward passes (im2col /
col2im) because expressing them through elementary indexing ops would be
prohibitively slow in pure Python; registering them as ops (rather than
ad-hoc closures) makes them recordable on a tape and batchable over a
leading client axis like every other operation.
"""

from __future__ import annotations

from typing import Optional, Tuple, Union

import numpy as np

from repro.autograd.tape import Op
from repro.autograd.tensor import Tensor, apply_effect, apply_op

IntOrPair = Union[int, Tuple[int, int]]


def _pair(value: IntOrPair) -> Tuple[int, int]:
    if isinstance(value, tuple):
        return value
    return (int(value), int(value))


# --------------------------------------------------------------------------- #
# Activations
# --------------------------------------------------------------------------- #
def relu(x: Tensor) -> Tensor:
    """Rectified linear unit."""
    return x.relu()


def gelu(x: Tensor) -> Tensor:
    """Gaussian error linear unit (tanh approximation)."""
    inner = (x + x * x * x * 0.044715) * 0.7978845608028654
    return x * 0.5 * (inner.tanh() + 1.0)


def sigmoid(x: Tensor) -> Tensor:
    return x.sigmoid()


def tanh(x: Tensor) -> Tensor:
    return x.tanh()


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable softmax along ``axis``.

    The stabilising shift is ``x.max(...).detach()`` rather than a baked
    constant so a recorded tape recomputes it from the replayed activations.
    """
    shifted = x - x.max(axis=axis, keepdims=True).detach()
    exps = shifted.exp()
    return exps / exps.sum(axis=axis, keepdims=True)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable log-softmax along ``axis``."""
    shifted = x - x.max(axis=axis, keepdims=True).detach()
    return shifted - shifted.exp().sum(axis=axis, keepdims=True).log()


# --------------------------------------------------------------------------- #
# Linear algebra helpers
# --------------------------------------------------------------------------- #
def linear(x: Tensor, weight: Tensor, bias: Optional[Tensor] = None) -> Tensor:
    """Affine transform ``x @ weight.T + bias`` (PyTorch convention)."""
    out = x @ weight.T
    if bias is not None:
        out = out + bias
    return out


def l2_normalize(x: Tensor, axis: int = -1, eps: float = 1e-12) -> Tensor:
    """Normalise ``x`` to unit L2 norm along ``axis``."""
    norm = (x * x).sum(axis=axis, keepdims=True).sqrt()
    return x / (norm + eps)


def cosine_similarity(a: Tensor, b: Tensor, axis: int = -1, eps: float = 1e-12) -> Tensor:
    """Cosine similarity between ``a`` and ``b`` along ``axis``."""
    a_norm = l2_normalize(a, axis=axis, eps=eps)
    b_norm = l2_normalize(b, axis=axis, eps=eps)
    return (a_norm * b_norm).sum(axis=axis)


def _dropout_forward(ctx, x, *, p, rng):
    mask = (rng.random(x.shape) >= p).astype(x.dtype) / (1.0 - p)
    ctx.mask = mask
    return x * mask


def _dropout_vjp(ctx, grad, needs):
    return (grad * ctx.mask,)


#: Dropout draws from a per-layer rng stream, so K clients replayed in
#: lockstep would interleave one stream instead of advancing K independent
#: ones — batch_rule=None makes plans containing it fall back per client.
DROPOUT = Op("dropout", _dropout_forward, _dropout_vjp, batch_rule=None)


def dropout(x: Tensor, p: float, training: bool, rng: Optional[np.random.Generator] = None) -> Tensor:
    """Inverted dropout; identity when not training or ``p == 0``."""
    if not training or p <= 0.0:
        return x
    generator = rng if rng is not None else np.random.default_rng()
    return apply_op(DROPOUT, (x,), p=p, rng=generator)


# --------------------------------------------------------------------------- #
# Normalisation
# --------------------------------------------------------------------------- #
def layer_norm(
    x: Tensor,
    weight: Optional[Tensor] = None,
    bias: Optional[Tensor] = None,
    eps: float = 1e-5,
) -> Tensor:
    """Layer normalisation over the last dimension."""
    mean = x.mean(axis=-1, keepdims=True)
    var = x.var(axis=-1, keepdims=True)
    normed = (x - mean) / (var + eps).sqrt()
    if weight is not None:
        normed = normed * weight
    if bias is not None:
        normed = normed + bias
    return normed


def _bn_update_forward(ctx, mean, var, *, running_mean, running_var, momentum):
    running_mean *= 1.0 - momentum
    running_mean += momentum * mean.reshape(-1)
    running_var *= 1.0 - momentum
    running_var += momentum * var.reshape(-1)
    return mean


def _bn_update_batched_forward(ctx, info, mean, var, *, running_mean, running_var, momentum):
    # Stacked buffers are (K, C); stacked stats are (K, 1, C, 1, 1).
    running_mean *= 1.0 - momentum
    running_mean += momentum * mean.reshape(running_mean.shape)
    running_var *= 1.0 - momentum
    running_var += momentum * var.reshape(running_var.shape)
    return mean


BN_UPDATE = Op(
    "bn_update",
    _bn_update_forward,
    batch_rule="custom",
    batched_forward=_bn_update_batched_forward,
    differentiable=False,
    effect=True,
)


def batch_norm_2d(
    x: Tensor,
    weight: Tensor,
    bias: Tensor,
    running_mean: np.ndarray,
    running_var: np.ndarray,
    training: bool,
    momentum: float = 0.1,
    eps: float = 1e-5,
) -> Tensor:
    """Batch normalisation for ``(N, C, H, W)`` inputs.

    ``running_mean`` / ``running_var`` are plain numpy buffers that are
    updated in place when ``training`` is true (recorded as an effect op so
    tape replays keep updating them chronologically).
    """
    if training:
        mean = x.mean(axis=(0, 2, 3), keepdims=True)
        var = x.var(axis=(0, 2, 3), keepdims=True)
        apply_effect(
            BN_UPDATE,
            (mean, var),
            running_mean=running_mean,
            running_var=running_var,
            momentum=momentum,
        )
    else:
        mean = Tensor(running_mean.reshape(1, -1, 1, 1))
        var = Tensor(running_var.reshape(1, -1, 1, 1))
    normed = (x - mean) / (var + eps).sqrt()
    return normed * weight.reshape(1, -1, 1, 1) + bias.reshape(1, -1, 1, 1)


# --------------------------------------------------------------------------- #
# Convolution / pooling (primitive ops with custom backward)
# --------------------------------------------------------------------------- #
def _im2col(
    x: np.ndarray, kernel: Tuple[int, int], stride: Tuple[int, int], padding: Tuple[int, int]
) -> Tuple[np.ndarray, int, int]:
    """Unfold ``(N, C, H, W)`` into ``(N, C*kh*kw, out_h*out_w)`` columns."""
    n, c, h, w = x.shape
    kh, kw = kernel
    sh, sw = stride
    ph, pw = padding
    out_h = (h + 2 * ph - kh) // sh + 1
    out_w = (w + 2 * pw - kw) // sw + 1
    padded = np.pad(x, ((0, 0), (0, 0), (ph, ph), (pw, pw)), mode="constant")
    cols = np.empty((n, c, kh, kw, out_h, out_w), dtype=x.dtype)
    for i in range(kh):
        i_max = i + sh * out_h
        for j in range(kw):
            j_max = j + sw * out_w
            cols[:, :, i, j, :, :] = padded[:, :, i:i_max:sh, j:j_max:sw]
    return cols.reshape(n, c * kh * kw, out_h * out_w), out_h, out_w


def _col2im(
    cols: np.ndarray,
    x_shape: Tuple[int, int, int, int],
    kernel: Tuple[int, int],
    stride: Tuple[int, int],
    padding: Tuple[int, int],
    out_h: int,
    out_w: int,
) -> np.ndarray:
    """Fold columns back into an image, accumulating overlaps (conv backward)."""
    n, c, h, w = x_shape
    kh, kw = kernel
    sh, sw = stride
    ph, pw = padding
    padded = np.zeros((n, c, h + 2 * ph, w + 2 * pw), dtype=cols.dtype)
    cols = cols.reshape(n, c, kh, kw, out_h, out_w)
    for i in range(kh):
        i_max = i + sh * out_h
        for j in range(kw):
            j_max = j + sw * out_w
            padded[:, :, i:i_max:sh, j:j_max:sw] += cols[:, :, i, j, :, :]
    if ph == 0 and pw == 0:
        return padded
    return padded[:, :, ph : ph + h, pw : pw + w]


def _conv2d_forward(ctx, x, weight, *rest, stride, padding):
    bias = rest[0] if rest else None
    n = x.shape[0]
    c_out = weight.shape[0]
    kernel = (weight.shape[2], weight.shape[3])
    cols, out_h, out_w = _im2col(x, kernel, stride, padding)
    w_mat = weight.reshape(c_out, -1)
    # matmul broadcasts (c_out, f) @ (n, f, l) -> (n, c_out, l) and dispatches to BLAS.
    out = np.matmul(w_mat, cols)
    out = out.reshape(n, c_out, out_h, out_w)
    if bias is not None:
        out = out + bias.reshape(1, -1, 1, 1)
    ctx.cols = cols
    ctx.w_mat = w_mat
    ctx.x_shape = x.shape
    ctx.w_shape = weight.shape
    ctx.kernel = kernel
    ctx.stride = stride
    ctx.padding = padding
    ctx.n, ctx.c_out, ctx.out_h, ctx.out_w = n, c_out, out_h, out_w
    return out


def _conv2d_vjp(ctx, grad, needs):
    grad_mat = grad.reshape(ctx.n, ctx.c_out, ctx.out_h * ctx.out_w)
    grad_x = grad_w = grad_b = None
    if needs[1]:
        grad_w = np.matmul(grad_mat, ctx.cols.transpose(0, 2, 1)).sum(axis=0)
        grad_w = grad_w.reshape(ctx.w_shape)
    if len(needs) > 2 and needs[2]:
        grad_b = grad.sum(axis=(0, 2, 3))
    if needs[0]:
        grad_cols = np.matmul(ctx.w_mat.T, grad_mat)
        grad_x = _col2im(
            grad_cols, ctx.x_shape, ctx.kernel, ctx.stride, ctx.padding, ctx.out_h, ctx.out_w
        )
    return (grad_x, grad_w, grad_b)[: len(needs)]


def _conv2d_batched_forward(ctx, info, x, weight, *rest, stride, padding):
    bias = rest[0] if rest else None
    k, n = x.shape[0], x.shape[1]
    c_out = weight.shape[1]
    kernel = (weight.shape[3], weight.shape[4])
    flat = np.ascontiguousarray(x).reshape((k * n,) + x.shape[2:])
    cols, out_h, out_w = _im2col(flat, kernel, stride, padding)
    f, length = cols.shape[1], cols.shape[2]
    colsk = cols.reshape(k, n, f, length)
    w_mat = weight.reshape(k, c_out, -1)
    out = np.matmul(w_mat[:, None], colsk)  # (k, n, c_out, L)
    out = out.reshape(k, n, c_out, out_h, out_w)
    if bias is not None:
        out = out + bias.reshape(k, 1, -1, 1, 1)
    ctx.colsk = colsk
    ctx.w_mat = w_mat
    ctx.x_shape = x.shape
    ctx.w_shape = weight.shape
    ctx.kernel = kernel
    ctx.stride = stride
    ctx.padding = padding
    ctx.k, ctx.n, ctx.c_out = k, n, c_out
    ctx.f, ctx.length = f, length
    ctx.out_h, ctx.out_w = out_h, out_w
    return out


def _conv2d_batched_vjp(ctx, grad, needs):
    k, n = ctx.k, ctx.n
    grad_mat = grad.reshape(k, n, ctx.c_out, ctx.out_h * ctx.out_w)
    grad_x = grad_w = grad_b = None
    if needs[1]:
        grad_w = np.matmul(grad_mat, ctx.colsk.transpose(0, 1, 3, 2)).sum(axis=1)
        grad_w = grad_w.reshape(ctx.w_shape)
    if len(needs) > 2 and needs[2]:
        grad_b = grad.sum(axis=(1, 3, 4))
    if needs[0]:
        grad_cols = np.matmul(ctx.w_mat[:, None].transpose(0, 1, 3, 2), grad_mat)
        grad_x = _col2im(
            grad_cols.reshape(k * n, ctx.f, ctx.length),
            (k * n,) + ctx.x_shape[2:],
            ctx.kernel,
            ctx.stride,
            ctx.padding,
            ctx.out_h,
            ctx.out_w,
        ).reshape(ctx.x_shape)
    return (grad_x, grad_w, grad_b)[: len(needs)]


CONV2D = Op(
    "conv2d",
    _conv2d_forward,
    _conv2d_vjp,
    batch_rule="custom",
    batched_forward=_conv2d_batched_forward,
    batched_vjp=_conv2d_batched_vjp,
)


def conv2d(
    x: Tensor,
    weight: Tensor,
    bias: Optional[Tensor] = None,
    stride: IntOrPair = 1,
    padding: IntOrPair = 0,
) -> Tensor:
    """2-D convolution over ``(N, C_in, H, W)`` with ``(C_out, C_in, kh, kw)`` weights."""
    c_in = weight.shape[1]
    if x.shape[1] != c_in:
        raise ValueError(
            f"conv2d channel mismatch: input has {x.shape[1]} channels, weight expects {c_in}"
        )
    inputs = (x, weight) if bias is None else (x, weight, bias)
    return apply_op(CONV2D, inputs, stride=_pair(stride), padding=_pair(padding))


def _max_pool_forward(ctx, x, *, kernel, stride):
    kh, kw = kernel
    sh, sw = stride
    n, c, h, w = x.shape
    out_h = (h - kh) // sh + 1
    out_w = (w - kw) // sw + 1
    cols, _, _ = _im2col(x, kernel, stride, (0, 0))
    cols = cols.reshape(n, c, kh * kw, out_h * out_w)
    argmax = cols.argmax(axis=2)
    out = np.take_along_axis(cols, argmax[:, :, None, :], axis=2).squeeze(2)
    ctx.argmax = argmax
    ctx.x_shape = x.shape
    ctx.kernel = kernel
    ctx.stride = stride
    ctx.n, ctx.c = n, c
    ctx.out_h, ctx.out_w = out_h, out_w
    return out.reshape(n, c, out_h, out_w)


def _max_pool_vjp(ctx, grad, needs):
    n, c = ctx.n, ctx.c
    kh, kw = ctx.kernel
    out_h, out_w = ctx.out_h, ctx.out_w
    grad_flat = grad.reshape(n, c, out_h * out_w)
    grad_cols = np.zeros((n, c, kh * kw, out_h * out_w), dtype=grad.dtype)
    np.put_along_axis(grad_cols, ctx.argmax[:, :, None, :], grad_flat[:, :, None, :], axis=2)
    grad_cols = grad_cols.reshape(n, c * kh * kw, out_h * out_w)
    grad_x = _col2im(grad_cols, ctx.x_shape, ctx.kernel, ctx.stride, (0, 0), out_h, out_w)
    return (grad_x,)


def _avg_pool_forward(ctx, x, *, kernel, stride):
    kh, kw = kernel
    sh, sw = stride
    n, c, h, w = x.shape
    out_h = (h - kh) // sh + 1
    out_w = (w - kw) // sw + 1
    cols, _, _ = _im2col(x, kernel, stride, (0, 0))
    cols = cols.reshape(n, c, kh * kw, out_h * out_w)
    out = cols.mean(axis=2).reshape(n, c, out_h, out_w)
    ctx.x_shape = x.shape
    ctx.kernel = kernel
    ctx.stride = stride
    ctx.n, ctx.c = n, c
    ctx.out_h, ctx.out_w = out_h, out_w
    return out


def _avg_pool_vjp(ctx, grad, needs):
    n, c = ctx.n, ctx.c
    kh, kw = ctx.kernel
    out_h, out_w = ctx.out_h, ctx.out_w
    grad_flat = grad.reshape(n, c, 1, out_h * out_w) / (kh * kw)
    grad_cols = np.broadcast_to(grad_flat, (n, c, kh * kw, out_h * out_w)).copy()
    grad_cols = grad_cols.reshape(n, c * kh * kw, out_h * out_w)
    grad_x = _col2im(grad_cols, ctx.x_shape, ctx.kernel, ctx.stride, (0, 0), out_h, out_w)
    return (grad_x,)


def _pool_batched_forward(pool_forward):
    # Pooling has no cross-sample interaction, so a stacked (K, N, C, H, W)
    # batch folds the client axis into the sample axis and runs the eager
    # kernel once; the vjp unfolds it back.
    def batched(ctx, info, x, *, kernel, stride):
        k, n = x.shape[0], x.shape[1]
        flat = np.ascontiguousarray(x).reshape((k * n,) + x.shape[2:])
        out = pool_forward(ctx, flat, kernel=kernel, stride=stride)
        ctx.batch_k, ctx.batch_n = k, n
        return out.reshape((k, n) + out.shape[1:])

    return batched


def _pool_batched_vjp(pool_vjp):
    def batched(ctx, grad, needs):
        k, n = ctx.batch_k, ctx.batch_n
        flat_grad = grad.reshape((k * n,) + grad.shape[2:])
        (grad_x,) = pool_vjp(ctx, flat_grad, needs)
        return (grad_x.reshape((k, n) + grad_x.shape[1:]),)

    return batched


MAX_POOL2D = Op(
    "max_pool2d",
    _max_pool_forward,
    _max_pool_vjp,
    batch_rule="custom",
    batched_forward=_pool_batched_forward(_max_pool_forward),
    batched_vjp=_pool_batched_vjp(_max_pool_vjp),
)

AVG_POOL2D = Op(
    "avg_pool2d",
    _avg_pool_forward,
    _avg_pool_vjp,
    batch_rule="custom",
    batched_forward=_pool_batched_forward(_avg_pool_forward),
    batched_vjp=_pool_batched_vjp(_avg_pool_vjp),
)


def max_pool2d(x: Tensor, kernel_size: IntOrPair, stride: Optional[IntOrPair] = None) -> Tensor:
    """Max pooling over ``(N, C, H, W)``."""
    kernel = _pair(kernel_size)
    stride_pair = _pair(stride) if stride is not None else kernel
    return apply_op(MAX_POOL2D, (x,), kernel=kernel, stride=stride_pair)


def avg_pool2d(x: Tensor, kernel_size: IntOrPair, stride: Optional[IntOrPair] = None) -> Tensor:
    """Average pooling over ``(N, C, H, W)``."""
    kernel = _pair(kernel_size)
    stride_pair = _pair(stride) if stride is not None else kernel
    return apply_op(AVG_POOL2D, (x,), kernel=kernel, stride=stride_pair)


def global_avg_pool2d(x: Tensor) -> Tensor:
    """Global average pooling: ``(N, C, H, W) -> (N, C)``."""
    return x.mean(axis=(2, 3))


# --------------------------------------------------------------------------- #
# Losses
# --------------------------------------------------------------------------- #
def nll_loss(log_probs: Tensor, targets: np.ndarray, reduction: str = "mean") -> Tensor:
    """Negative log-likelihood of integer ``targets`` under ``log_probs``."""
    targets = np.asarray(targets, dtype=np.int64)
    n = log_probs.shape[0]
    picked = log_probs[np.arange(n), targets]
    loss = -picked
    if reduction == "mean":
        return loss.mean()
    if reduction == "sum":
        return loss.sum()
    if reduction == "none":
        return loss
    raise ValueError(f"unknown reduction {reduction!r}")


def cross_entropy(logits: Tensor, targets: np.ndarray, reduction: str = "mean") -> Tensor:
    """Cross-entropy between ``logits`` and integer class ``targets``."""
    return nll_loss(log_softmax(logits, axis=-1), targets, reduction=reduction)


def soft_cross_entropy(logits: Tensor, soft_targets: Tensor, reduction: str = "mean") -> Tensor:
    """Cross-entropy against a probability distribution (used by LwF distillation)."""
    log_probs = log_softmax(logits, axis=-1)
    loss = -(soft_targets * log_probs).sum(axis=-1)
    if reduction == "mean":
        return loss.mean()
    if reduction == "sum":
        return loss.sum()
    return loss


def knowledge_distillation_loss(
    student_logits: Tensor, teacher_logits: Tensor, temperature: float = 2.0
) -> Tensor:
    """Hinton-style KD loss used by FedLwF.

    The teacher distribution is detached; the loss is scaled by ``T**2`` as is
    conventional so gradient magnitudes stay comparable across temperatures.
    """
    teacher_probs = softmax(teacher_logits.detach() / temperature, axis=-1)
    return soft_cross_entropy(student_logits / temperature, teacher_probs) * (temperature ** 2)


def mse_loss(prediction: Tensor, target: Tensor, reduction: str = "mean") -> Tensor:
    """Mean squared error."""
    diff = prediction - target
    loss = diff * diff
    if reduction == "mean":
        return loss.mean()
    if reduction == "sum":
        return loss.sum()
    return loss


def embedding(weight: Tensor, indices: np.ndarray) -> Tensor:
    """Look up rows of ``weight`` by integer ``indices``."""
    indices = np.asarray(indices, dtype=np.int64)
    return weight[indices]


__all__ = [
    "relu",
    "gelu",
    "sigmoid",
    "tanh",
    "softmax",
    "log_softmax",
    "linear",
    "l2_normalize",
    "cosine_similarity",
    "dropout",
    "layer_norm",
    "batch_norm_2d",
    "conv2d",
    "max_pool2d",
    "avg_pool2d",
    "global_avg_pool2d",
    "nll_loss",
    "cross_entropy",
    "soft_cross_entropy",
    "knowledge_distillation_loss",
    "mse_loss",
    "embedding",
]
