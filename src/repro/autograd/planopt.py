"""Compile-time optimizer passes over compiled :class:`~repro.autograd.tape.Plan`s.

Replay through :meth:`Plan.execute` is allocation-bound: every step allocates a
fresh output array per record, keeps every intermediate alive until the
backward sweep finishes, and re-allocates each parameter's gradient
accumulator.  This module compiles a plan into an optimized replay program
that removes that overhead without moving a single bit:

* **dead-code elimination** — records whose outputs reach neither the loss
  slot nor any effect record (metrics-only subgraphs) are dropped from the
  forward program.  Every slot in the backward schedule is a dataflow ancestor
  of the loss, so dropped records are never visited by the backward sweep and
  the gradient stream is untouched.
* **slot liveness** — the last forward read of every produced slot is
  computed; ``env[slot]`` is dropped eagerly at that position, and op contexts
  are only stashed for records the backward sweep will actually visit
  (``out_requires`` and reachable from the loss), then dropped as soon as
  their vjp has consumed them.  Activations die at their true last use instead
  of at the end of the step.
* **buffer arena** — forward outputs of single-ufunc elementwise ops are
  written with ``out=`` into per-plan buffers keyed by ``(shape, dtype)``, and
  leaf gradient accumulators reuse preallocated per-slot buffers, so
  steady-state replay performs zero fresh large allocations for those values.
  A ufunc with ``out=`` stores exactly the bits the allocating form produces
  (eligibility requires the natural result dtype to equal the traced output
  dtype, so no store-time cast is introduced).  A buffer is shared between two
  records only when liveness proves the earlier value dead before the later
  write *and* no op context retains it — ops that stash inputs or outputs for
  their vjp (``mul``, ``exp``, views, every unknown op) pin their operands'
  buffers conservatively.
* **elementwise fusion** — maximal runs of adjacent single-consumer
  elementwise records collapse into one fused instruction that executes the
  same numpy ops in the same order (bit-for-bit by construction) while the
  chain value stays in a local instead of round-tripping through ``env``.
  The fused vjp is the unchanged backward schedule: each member record keeps
  its own context and its vjp runs in exactly the original visit order, so
  gradients are bit-identical by the same argument as the forward.

The batched (lockstep) program reuses the DCE / liveness / fusion passes and
the precompiled backward schedule; it skips the ``out=`` arena because stacked
shapes depend on the cohort size.  Per-record batched semantics reproduce
:meth:`Plan.execute_batched` exactly, so optimized lockstep replay is
bit-for-bit with unoptimized lockstep replay.

``optimize_plan`` returns ``None`` when a plan violates a precondition the
passes rely on (it never raises); the plan then replays unoptimized.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.autograd.tape import (
    ABS,
    ADD,
    BROADCAST_TO,
    CLIP,
    CONCATENATE,
    DETACH,
    DIV,
    EXP,
    EXPAND_DIMS,
    GETITEM,
    LOG,
    MATMUL,
    MAX,
    MUL,
    NEG,
    PAD,
    POW,
    RELU,
    RESHAPE,
    SIGMOID,
    SQRT,
    SQUEEZE,
    STACK,
    SUB,
    SUM,
    TANH,
    TRANSPOSE,
    BatchInfo,
    OpContext,
    OpRecord,
    _contains_dynref,
    _dyn_flags,
    _resolve_kwargs,
)


# --------------------------------------------------------------------------- #
# Per-op facts the passes rely on.  Ops are matched by *identity* against the
# tape module's singletons, so a foreign op that happens to share a name is
# treated as unknown (maximally conservative: retains everything, never
# arena-served, never fused).
# --------------------------------------------------------------------------- #
class _OpSpec:
    __slots__ = ("fusable", "out_capable", "retains_args", "retains_out")

    def __init__(
        self,
        fusable: bool = False,
        out_capable: bool = False,
        retains_args: bool = True,
        retains_out: bool = True,
    ) -> None:
        self.fusable = fusable
        self.out_capable = out_capable
        self.retains_args = retains_args
        self.retains_out = retains_out


_SPECS: Dict[int, _OpSpec] = {
    # Elementwise ops: fusable; most are single-ufunc and can write into an
    # arena buffer.  ``retains_args`` / ``retains_out`` mirror what each op's
    # forward stashes on its ctx (shape-only stashes retain nothing).
    id(ADD): _OpSpec(fusable=True, out_capable=True, retains_args=False, retains_out=False),
    id(SUB): _OpSpec(fusable=True, out_capable=True, retains_args=False, retains_out=False),
    id(MUL): _OpSpec(fusable=True, out_capable=True, retains_args=True, retains_out=False),
    id(DIV): _OpSpec(fusable=True, out_capable=True, retains_args=True, retains_out=False),
    id(NEG): _OpSpec(fusable=True, out_capable=True, retains_args=False, retains_out=False),
    # pow's eager forward is ``a ** exponent``, whose small-integer-exponent
    # fast path (numpy's scalar-power dispatch to square/sqrt) is not
    # guaranteed bit-identical to ``np.power(a, e, out=...)`` — fusable, but
    # never served from the arena.
    id(POW): _OpSpec(fusable=True, out_capable=False, retains_args=True, retains_out=False),
    id(EXP): _OpSpec(fusable=True, out_capable=True, retains_args=False, retains_out=True),
    id(LOG): _OpSpec(fusable=True, out_capable=True, retains_args=True, retains_out=False),
    id(SQRT): _OpSpec(fusable=True, out_capable=True, retains_args=False, retains_out=True),
    id(TANH): _OpSpec(fusable=True, out_capable=True, retains_args=False, retains_out=True),
    id(SIGMOID): _OpSpec(fusable=True, out_capable=True, retains_args=False, retains_out=True),
    id(RELU): _OpSpec(fusable=True, out_capable=True, retains_args=False, retains_out=False),
    id(ABS): _OpSpec(fusable=True, out_capable=True, retains_args=False, retains_out=False),
    id(CLIP): _OpSpec(fusable=True, out_capable=True, retains_args=False, retains_out=False),
    # Non-elementwise ops whose forwards stash only shapes/axes.
    id(SUM): _OpSpec(retains_args=False, retains_out=False),
    id(BROADCAST_TO): _OpSpec(retains_args=False, retains_out=False),
    id(PAD): _OpSpec(retains_args=False, retains_out=False),
    id(CONCATENATE): _OpSpec(retains_args=False, retains_out=False),
    id(STACK): _OpSpec(retains_args=False, retains_out=False),
    # Value-retaining ops (ctx stashes an input array for the vjp).
    id(MATMUL): _OpSpec(retains_args=True, retains_out=False),
    id(MAX): _OpSpec(retains_args=True, retains_out=False),
    # View-producing ops: the output aliases the input's storage, so the
    # input's buffer must stay pinned — modelled as retaining their args.
    id(RESHAPE): _OpSpec(retains_args=True, retains_out=False),
    id(TRANSPOSE): _OpSpec(retains_args=True, retains_out=False),
    id(EXPAND_DIMS): _OpSpec(retains_args=True, retains_out=False),
    id(SQUEEZE): _OpSpec(retains_args=True, retains_out=False),
    id(GETITEM): _OpSpec(retains_args=True, retains_out=False),
    id(DETACH): _OpSpec(retains_args=True, retains_out=False),
}


# --------------------------------------------------------------------------- #
# ``out=`` writers.  Each reproduces its op's eager forward with the final
# store routed into an arena buffer; every ufunc call is the same ufunc on the
# same operand values, so the stored bits match the allocating form exactly.
# --------------------------------------------------------------------------- #
def _w_add(ctx, out, a, b):
    ctx.a_shape = a.shape
    ctx.b_shape = b.shape
    return np.add(a, b, out=out)


def _w_sub(ctx, out, a, b):
    ctx.a_shape = a.shape
    ctx.b_shape = b.shape
    return np.subtract(a, b, out=out)


def _w_mul(ctx, out, a, b):
    ctx.a = a
    ctx.b = b
    return np.multiply(a, b, out=out)


def _w_div(ctx, out, a, b):
    ctx.a = a
    ctx.b = b
    return np.divide(a, b, out=out)


def _w_neg(ctx, out, a):
    return np.negative(a, out=out)


def _w_exp(ctx, out, a):
    ctx.out = np.exp(a, out=out)
    return ctx.out


def _w_log(ctx, out, a):
    ctx.a = a
    return np.log(a, out=out)


def _w_sqrt(ctx, out, a):
    ctx.out = np.sqrt(a, out=out)
    return ctx.out


def _w_tanh(ctx, out, a):
    ctx.out = np.tanh(a, out=out)
    return ctx.out


def _w_sigmoid(ctx, out, a):
    # 1.0 / (1.0 + np.exp(-a)), each stage in place: same ufuncs on the same
    # values as the eager composite, so every intermediate matches bitwise.
    np.negative(a, out=out)
    np.exp(out, out=out)
    np.add(out, 1.0, out=out)
    np.divide(1.0, out, out=out)
    ctx.out = out
    return out


_PLAIN_WRITERS: Dict[int, Callable] = {
    id(ADD): _w_add,
    id(SUB): _w_sub,
    id(MUL): _w_mul,
    id(DIV): _w_div,
    id(NEG): _w_neg,
    id(EXP): _w_exp,
    id(LOG): _w_log,
    id(SQRT): _w_sqrt,
    id(TANH): _w_tanh,
    id(SIGMOID): _w_sigmoid,
}


def _make_scratch_writer(rec: OpRecord) -> Optional[Callable]:
    """Writers for ops whose ctx stash is itself an array (mask / sign).

    The stash buffers are dedicated to the record and reused across steps:
    the backward sweep of step N consumes them before step N+1's forward
    overwrites them.
    """
    op = rec.op
    in_shape = rec.in_shapes[0]
    if op is RELU:
        mask = np.empty(in_shape, dtype=bool)

        def write_relu(ctx, out, a):
            np.greater(a, 0, out=mask)
            ctx.mask = mask
            return np.multiply(a, mask, out=out)

        return write_relu
    if op is ABS:
        sign = np.empty(in_shape, dtype=rec.out_dtype)

        def write_abs(ctx, out, a):
            np.sign(a, out=sign)
            ctx.sign = sign
            return np.absolute(a, out=out)

        return write_abs
    if op is CLIP:
        ge = np.empty(in_shape, dtype=bool)
        le = np.empty(in_shape, dtype=bool)

        def write_clip(ctx, out, a, *, minimum, maximum):
            np.greater_equal(a, minimum, out=ge)
            np.less_equal(a, maximum, out=le)
            np.bitwise_and(ge, le, out=ge)
            ctx.mask = ge
            return np.clip(a, minimum, maximum, out=out)

        return write_clip
    return None


def _layout_mirrors(buf: np.ndarray, grad: np.ndarray) -> bool:
    """True when ``buf`` already has the memory layout that
    ``grad.astype(dtype, copy=True)`` (``order='K'``) would produce.

    Layout is part of bit-for-bit parity: reductions downstream of the
    returned gradients (the optimizer's global clip norm, most visibly) sum
    in *memory* order, so handing back a C-ordered buffer where unoptimized
    replay hands back an F-ordered ``astype`` copy shifts the pairwise
    summation tree by an ulp.  Matmul weight vjps (``a.T @ g``) are exactly
    that case.  A non-contiguous source always reallocates, mirroring the
    fresh ``astype`` copy unoptimized replay makes.
    """
    if grad.flags.c_contiguous:
        return buf.flags.c_contiguous
    if grad.flags.f_contiguous:
        return buf.flags.f_contiguous
    return False


def _inplace_add_matches(existing: np.ndarray, grad: np.ndarray) -> bool:
    """True when ``np.add(existing, grad, out=existing)`` lands in the same
    layout ``existing + grad`` would allocate (both-C or both-F: the ufunc's
    ``order='K'`` output matches ``existing``; mixed layouts allocate C)."""
    if existing.flags.c_contiguous and grad.flags.c_contiguous:
        return True
    return existing.flags.f_contiguous and grad.flags.f_contiguous


def _out_eligible(plan, rec: OpRecord, spec: Optional[_OpSpec]) -> bool:
    """May ``rec``'s output be served from an arena buffer via ``out=``?"""
    if spec is None or not spec.out_capable:
        return False
    if rec.out_slot is None or rec.out_slot == plan.loss_slot:
        return False
    if any(_contains_dynref(v) for v in rec.kwargs.values()):
        return False
    if rec.op is CLIP and (
        rec.kwargs.get("minimum") is None or rec.kwargs.get("maximum") is None
    ):
        return False
    in_dtypes = [plan.tape._tensors[s].data.dtype for s in rec.input_slots]
    try:
        natural = np.result_type(*in_dtypes)
    except TypeError:
        return False
    # No store-time cast: ``out=`` must receive exactly the natural result
    # dtype, otherwise the allocating form and the out= form could round
    # differently.
    return natural == rec.out_dtype


# --------------------------------------------------------------------------- #
# Compiled instructions
# --------------------------------------------------------------------------- #
_CHAIN = -1  # argspec marker: read the fused chain's running value


class _Sub:
    """One member of a fused chain (also used for standalone records)."""

    __slots__ = (
        "index",
        "rec",
        "forward",
        "argspec",
        "rec_kwargs",
        "static_kwargs",
        "keep_ctx",
        "writer",
        "out_buf",
        "out_dtype",
    )

    def __init__(self, index: int, rec: OpRecord, argspec: Tuple[int, ...], keep_ctx: bool) -> None:
        self.index = index
        self.rec = rec
        self.forward = rec.op.forward
        self.argspec = argspec
        self.rec_kwargs = rec.kwargs
        self.static_kwargs = (
            rec.kwargs
            if not any(_contains_dynref(v) for v in rec.kwargs.values())
            else None
        )
        self.keep_ctx = keep_ctx
        self.writer = None
        self.out_buf = None
        self.out_dtype = rec.out_dtype


class _Instr:
    """One optimized forward step: an effect, a plain record, or a fused chain."""

    __slots__ = ("subs", "out_slot", "effect", "releases", "dyn_kwargs")

    def __init__(self, subs: Tuple[_Sub, ...], out_slot: Optional[int], effect: bool) -> None:
        self.subs = subs
        self.out_slot = out_slot
        self.effect = effect
        self.releases: Tuple[int, ...] = ()
        # Per-sub precomputed BatchInfo.dyn_kwargs (static per record).
        self.dyn_kwargs = tuple(
            {key: _dyn_flags(v) for key, v in sub.rec.kwargs.items()} for sub in subs
        )


class _BwdEntry:
    """One visit of the precompiled backward schedule."""

    __slots__ = ("slot", "rec", "vjp", "needs", "ctx_index", "input_slots", "interior", "parent_slots")

    def __init__(self, slot: int, rec: Optional[OpRecord], ctx_index: int, interior: frozenset) -> None:
        self.slot = slot
        self.rec = rec
        if rec is None:
            self.vjp = None
            self.needs = ()
            self.input_slots = ()
            self.interior = ()
            self.parent_slots = ()
        else:
            self.vjp = rec.op.vjp
            self.needs = rec.needs
            self.input_slots = rec.input_slots
            self.interior = tuple(s in interior for s in rec.input_slots)
            self.parent_slots = rec.parent_slots
        self.ctx_index = ctx_index


# --------------------------------------------------------------------------- #
# The optimizer
# --------------------------------------------------------------------------- #
class PlanOptimization:
    """Optimized replay programs for one plan (built by :func:`optimize_plan`)."""

    def __init__(
        self,
        plan,
        program: List[_Instr],
        dropped: Tuple[int, ...],
        chains: Tuple[Tuple[int, ...], ...],
        last_read: Dict[int, int],
        buffer_for: Dict[int, np.ndarray],
        arena_buffers: int,
    ) -> None:
        self.plan = plan
        self.program = program
        self.dropped = dropped
        self.chains = chains
        self.last_read = last_read
        self.buffer_for = buffer_for  # produced slot -> arena buffer (tests)
        self.arena_buffers = arena_buffers
        self._env: List[Any] = [None] * plan.n_slots
        self._ctxs: List[Optional[OpContext]] = [None] * len(plan.records)
        self._grads: List[Optional[np.ndarray]] = [None] * plan.n_slots
        self._grad_bufs: Dict[int, np.ndarray] = {}
        self._bwd_program: List[_BwdEntry] = []
        rec_index = plan._rec_index
        for slot in reversed(plan.order):
            rec = plan.rec_for_slot.get(slot)
            if rec is None or not rec.out_requires:
                self._bwd_program.append(_BwdEntry(slot, None, -1, plan._interior))
            else:
                self._bwd_program.append(
                    _BwdEntry(slot, rec, rec_index[id(rec)], plan._interior)
                )
        self._batched_flags_ref: Any = None

    # ------------------------------------------------------------------ #
    # Unbatched replay
    # ------------------------------------------------------------------ #
    def execute(self, bindings: Dict[str, Any]) -> Tuple[np.ndarray, Dict[int, np.ndarray]]:
        plan = self.plan
        env = self._env
        for slot, param in plan.param_leaves:
            env[slot] = param.data
        for slot, tensor in plan.const_leaves:
            env[slot] = tensor.data
        for name, slot in plan.input_slots.items():
            value = bindings.get(name)
            env[slot] = value if value is not None else plan.tape._tensors[slot].data
        dyn = {
            name: bindings.get(name, traced)
            for name, traced in plan.tape._dynamic_values.items()
        }
        ctxs = self._ctxs
        for ins in self.program:
            subs = ins.subs
            if len(subs) == 1:
                sub = subs[0]
                kwargs = sub.static_kwargs
                if kwargs is None:
                    kwargs = _resolve_kwargs(sub.rec_kwargs, dyn)
                ctx = OpContext()
                args = [env[s] for s in sub.argspec]
                if ins.effect:
                    sub.forward(ctx, *args, **kwargs)
                elif sub.writer is not None:
                    env[ins.out_slot] = sub.writer(ctx, sub.out_buf, *args, **kwargs)
                    if sub.keep_ctx:
                        ctxs[sub.index] = ctx
                else:
                    value = sub.forward(ctx, *args, **kwargs)
                    env[ins.out_slot] = np.asarray(value, dtype=sub.out_dtype)
                    if sub.keep_ctx:
                        ctxs[sub.index] = ctx
            else:
                value: Any = None
                for sub in subs:
                    kwargs = sub.static_kwargs
                    if kwargs is None:
                        kwargs = _resolve_kwargs(sub.rec_kwargs, dyn)
                    ctx = OpContext()
                    args = [value if s == _CHAIN else env[s] for s in sub.argspec]
                    if sub.writer is not None:
                        value = sub.writer(ctx, sub.out_buf, *args, **kwargs)
                    else:
                        value = np.asarray(
                            sub.forward(ctx, *args, **kwargs), dtype=sub.out_dtype
                        )
                    if sub.keep_ctx:
                        ctxs[sub.index] = ctx
                env[ins.out_slot] = value
            for s in ins.releases:
                env[s] = None
        loss_value = env[plan.loss_slot]
        env[plan.loss_slot] = None
        leaf_grads = self._backward(loss_value, ctxs, batched=False, k=0)
        return loss_value, leaf_grads

    # ------------------------------------------------------------------ #
    # Batched (lockstep) replay
    # ------------------------------------------------------------------ #
    def execute_batched(
        self,
        k: int,
        bindings: Dict[str, Any],
        param_stacks: Dict[int, np.ndarray],
    ) -> Tuple[np.ndarray, Dict[int, np.ndarray]]:
        plan = self.plan
        env = self._env
        stacked = plan._batched_param_slots
        for slot, param in plan.param_leaves:
            env[slot] = param_stacks[slot] if slot in stacked else param.data
        for slot, tensor in plan.const_leaves:
            env[slot] = tensor.data
        for name, slot in plan.input_slots.items():
            env[slot] = bindings[name]
        dyn = {name: bindings[name] for name in plan.tape._dynamic_values}
        ctxs = self._ctxs
        flags = plan._batched_flags
        for ins in self.program:
            subs = ins.subs
            if len(subs) == 1:
                sub = subs[0]
                args = [env[s] for s in sub.argspec]
                value = self._batched_value(sub, ins.dyn_kwargs[0], args, dyn, ctxs, k, flags)
                if not ins.effect:
                    env[ins.out_slot] = value
            else:
                value = None
                for sub, dyn_kwargs in zip(subs, ins.dyn_kwargs):
                    args = [value if s == _CHAIN else env[s] for s in sub.argspec]
                    value = self._batched_value(sub, dyn_kwargs, args, dyn, ctxs, k, flags)
                env[ins.out_slot] = value
            for s in ins.releases:
                env[s] = None
        loss_value = env[plan.loss_slot]
        env[plan.loss_slot] = None
        leaf_grads = self._backward(loss_value, ctxs, batched=True, k=k)
        return loss_value, leaf_grads

    def _batched_value(
        self,
        sub: _Sub,
        dyn_kwargs: Dict[str, Any],
        args: List[Any],
        dyn: Dict[str, Any],
        ctxs: List[Optional[OpContext]],
        k: int,
        flags: List[Tuple[Tuple[bool, ...], bool]],
    ) -> Any:
        """One record's batched forward, mirroring ``Plan.execute_batched``."""
        rec = sub.rec
        in_batched, out_batched = flags[sub.index]
        kwargs = sub.static_kwargs
        if kwargs is None:
            kwargs = _resolve_kwargs(sub.rec_kwargs, dyn)
        ctx = OpContext()
        if not out_batched:
            result = rec.op.forward(ctx, *args, **kwargs)
            if rec.out_slot is None:
                return None
            if sub.keep_ctx:
                ctxs[sub.index] = ctx
            return np.asarray(result, dtype=rec.out_dtype)
        info = BatchInfo(
            k=k,
            in_shapes=rec.in_shapes,
            out_shape=rec.out_shape,
            in_batched=in_batched,
            dyn_kwargs=dyn_kwargs,
        )
        if rec.out_slot is None:
            batched_args = [
                a if b else np.broadcast_to(a, (k,) + a.shape)
                for a, b in zip(args, in_batched)
            ]
            rec.op.batched_forward(ctx, info, *batched_args, **kwargs)
            return None
        if rec.op.batched_forward is not None:
            batched_args = [
                a if b else np.broadcast_to(a, (k,) + a.shape)
                for a, b in zip(args, in_batched)
            ]
            result = rec.op.batched_forward(ctx, info, *batched_args, **kwargs)
        elif rec.op.batch_rule == "axis":
            if rec.op.batch_kwargs is not None:
                kwargs = rec.op.batch_kwargs(kwargs, info)
            batched_args = [
                a if b else np.broadcast_to(a, (k,) + a.shape)
                for a, b in zip(args, in_batched)
            ]
            result = rec.op.forward(ctx, *batched_args, **kwargs)
        else:  # "pad"
            if rec.op.batch_kwargs is not None:
                kwargs = rec.op.batch_kwargs(kwargs, info)
            target = 1 + len(rec.out_shape)
            padded_args = []
            for a, b in zip(args, in_batched):
                if b and a.ndim < target:
                    need = target - a.ndim
                    a = a.reshape(a.shape[:1] + (1,) * need + a.shape[1:])
                padded_args.append(a)
            result = rec.op.forward(ctx, *padded_args, **kwargs)
        if sub.keep_ctx:
            ctxs[sub.index] = ctx
        return np.asarray(result, dtype=rec.out_dtype)

    # ------------------------------------------------------------------ #
    # Shared backward program
    # ------------------------------------------------------------------ #
    def _backward(
        self,
        loss_value: np.ndarray,
        ctxs: List[Optional[OpContext]],
        batched: bool,
        k: int,
    ) -> Dict[int, np.ndarray]:
        plan = self.plan
        if batched:
            seed = np.ones(loss_value.shape, dtype=loss_value.dtype)
        else:
            seed = np.ones_like(loss_value)
        grads = self._grads
        grads[plan.loss_slot] = seed
        leaf_grads: Dict[int, np.ndarray] = {}
        leaf_dtype = plan._leaf_dtype
        grad_bufs = self._grad_bufs

        def accumulate(slot: int, grad: np.ndarray) -> None:
            existing = leaf_grads.get(slot)
            if existing is None:
                dtype = leaf_dtype.get(slot)
                if dtype is None:
                    leaf_grads[slot] = grad
                    return
                buf = grad_bufs.get(slot)
                if (
                    buf is None
                    or buf.shape != grad.shape
                    or not _layout_mirrors(buf, grad)
                ):
                    # order='K' like astype: layout is part of parity.
                    buf = np.empty_like(grad, dtype=dtype)
                    grad_bufs[slot] = buf
                # == grad.astype(dtype, copy=True): same cast, into a buffer.
                np.copyto(buf, grad, casting="unsafe")
                leaf_grads[slot] = buf
            elif (
                existing.dtype == grad.dtype
                and existing is grad_bufs.get(slot)
                and _inplace_add_matches(existing, grad)
            ):
                # == existing + grad, accumulated in place in the buffer.
                np.add(existing, grad, out=existing)
            else:
                leaf_grads[slot] = existing + grad

        for entry in self._bwd_program:
            slot = entry.slot
            node_grad = grads[slot]
            if node_grad is None:
                continue
            grads[slot] = None
            rec = entry.rec
            if rec is None:
                accumulate(slot, node_grad)
                continue
            ctx = ctxs[entry.ctx_index]
            if batched:
                input_grads = plan._batched_vjp(rec, ctx, node_grad, k)
            else:
                input_grads = entry.vjp(ctx, node_grad, entry.needs)
            ctxs[entry.ctx_index] = None  # liveness: the vjp has consumed it
            pending: Dict[int, np.ndarray] = {}
            for in_slot, grad, is_interior in zip(
                entry.input_slots, input_grads, entry.interior
            ):
                if grad is None:
                    continue
                if is_interior:
                    stashed = pending.get(in_slot)
                    pending[in_slot] = grad if stashed is None else stashed + grad
                else:
                    accumulate(in_slot, grad)
            for parent_slot in entry.parent_slots:
                stashed = pending.pop(parent_slot, None)
                if stashed is not None:
                    existing = grads[parent_slot]
                    grads[parent_slot] = (
                        stashed if existing is None else existing + stashed
                    )
        for slot in plan.order:
            remaining = grads[slot]
            if remaining is not None:
                grads[slot] = None
                accumulate(slot, remaining)
        return leaf_grads


def optimize_plan(plan) -> Optional[PlanOptimization]:
    """Compile ``plan`` into an optimized replay program (None = don't optimize)."""
    records = plan.records
    n_records = len(records)

    # ---- dead-code elimination ---------------------------------------- #
    needed = {plan.loss_slot}
    keep = [False] * n_records
    for i in range(n_records - 1, -1, -1):
        rec = records[i]
        if rec.out_slot is None or rec.out_slot in needed:
            keep[i] = True
            needed.update(rec.input_slots)
    dropped = tuple(i for i in range(n_records) if not keep[i])
    # Every backward-visited slot must belong to a kept record (they are all
    # dataflow ancestors of the loss); anything else means an invariant the
    # passes rely on does not hold for this plan.
    for slot in plan.order:
        rec = plan.rec_for_slot.get(slot)
        if rec is not None and not keep[plan._rec_index[id(rec)]]:
            return None

    kept = [i for i in range(n_records) if keep[i]]
    if not kept:
        return None

    # ---- consumer analysis (over kept records only) -------------------- #
    use_count: Dict[int, int] = {}
    consumers: Dict[int, List[int]] = {}
    for i in kept:
        for s in records[i].input_slots:
            use_count[s] = use_count.get(s, 0) + 1
            consumers.setdefault(s, []).append(i)

    # ---- fusion: maximal adjacent single-consumer elementwise runs ----- #
    chains: List[List[int]] = []
    groups: List[List[int]] = []
    pos = 0
    while pos < len(kept):
        i = kept[pos]
        rec = records[i]
        spec = _SPECS.get(id(rec.op))
        run = [i]
        while spec is not None and spec.fusable and rec.out_slot is not None:
            if pos + 1 >= len(kept):
                break
            j = kept[pos + 1]
            next_rec = records[j]
            next_spec = _SPECS.get(id(next_rec.op))
            if (
                next_spec is None
                or not next_spec.fusable
                or next_rec.out_slot is None
                or rec.out_slot == plan.loss_slot
                or use_count.get(rec.out_slot, 0) == 0
                or consumers.get(rec.out_slot) != [j] * use_count[rec.out_slot]
                or rec.out_slot not in next_rec.input_slots
            ):
                break
            run.append(j)
            pos += 1
            rec, spec = next_rec, next_spec
        groups.append(run)
        if len(run) >= 2:
            chains.append(run)
        pos += 1

    # ---- instruction build + arena assignment -------------------------- #
    interior_slots = set()
    for run in chains:
        for i in run[:-1]:
            interior_slots.add(records[i].out_slot)

    program: List[_Instr] = []
    buffer_for: Dict[int, np.ndarray] = {}
    free_pool: Dict[Tuple[Tuple[int, ...], str], List[np.ndarray]] = {}
    arena_buffers = 0
    # Liveness: last program position reading each env-visible slot.
    instr_env_reads: List[set] = []
    produced_at: Dict[int, int] = {}

    def build_sub(i: int, chain_in: Optional[int]) -> _Sub:
        rec = records[i]
        keep_ctx = rec.out_slot is not None and rec.out_slot in plan._interior
        argspec = tuple(
            _CHAIN if (chain_in is not None and s == chain_in) else s
            for s in rec.input_slots
        )
        return _Sub(i, rec, argspec, keep_ctx)

    for run in groups:
        chain_prev: Optional[int] = None
        subs: List[_Sub] = []
        env_reads: set = set()
        for i in run:
            sub = build_sub(i, chain_prev)
            env_reads.update(s for s in sub.argspec if s != _CHAIN)
            subs.append(sub)
            chain_prev = records[i].out_slot
        last = records[run[-1]]
        instr = _Instr(tuple(subs), last.out_slot, last.out_slot is None)
        program.append(instr)
        instr_env_reads.append(env_reads)
        if last.out_slot is not None:
            produced_at[last.out_slot] = len(program) - 1

    last_read: Dict[int, int] = {}
    for p, reads in enumerate(instr_env_reads):
        for s in reads:
            last_read[s] = p

    # Release lists: drop env entries of *produced* slots at their last read
    # (leaves stay bound; the loss slot is cleared by execute itself).
    for slot, p in last_read.items():
        if slot in produced_at and slot != plan.loss_slot:
            instr = program[p]
            instr.releases = instr.releases + (slot,)

    # Arena assignment with liveness-driven pooling: walk the program in
    # order; a slot's buffer returns to the (shape, dtype) pool after its
    # last read iff nothing retains the value for the backward sweep.
    def poolable(slot: int) -> bool:
        rec = plan.rec_for_slot.get(slot)
        if rec is None or slot == plan.loss_slot:
            return False
        spec = _SPECS.get(id(rec.op))
        if spec is None or spec.retains_out:
            return False
        for ci in consumers.get(slot, ()):
            cspec = _SPECS.get(id(records[ci].op))
            if cspec is None or cspec.retains_args:
                return False
        return True

    release_handles: List[List[np.ndarray]] = [[] for _ in program]
    for p, instr in enumerate(program):
        for sub in instr.subs:
            rec = sub.rec
            spec = _SPECS.get(id(rec.op))
            if not _out_eligible(plan, rec, spec):
                continue
            key = (tuple(rec.out_shape), str(rec.out_dtype))
            pool = free_pool.get(key)
            if pool:
                buf = pool.pop()
            else:
                buf = np.empty(rec.out_shape, dtype=rec.out_dtype)
                arena_buffers += 1
            writer = _PLAIN_WRITERS.get(id(rec.op))
            if writer is None:
                writer = _make_scratch_writer(rec)
            if writer is None:
                continue
            sub.writer = writer
            sub.out_buf = buf
            buffer_for[rec.out_slot] = buf
            if poolable(rec.out_slot):
                # Chain interiors die inside this very instruction; env slots
                # die at their recorded last read.
                free_at = (
                    p
                    if rec.out_slot in interior_slots
                    else last_read.get(rec.out_slot, p)
                )
                release_handles[free_at].append(buf)
        for buf in release_handles[p]:
            key = (buf.shape, str(buf.dtype))
            free_pool.setdefault(key, []).append(buf)

    return PlanOptimization(
        plan,
        program,
        dropped,
        tuple(tuple(run) for run in chains),
        last_read,
        buffer_for,
        arena_buffers,
    )


__all__ = ["PlanOptimization", "optimize_plan"]
