"""Reverse-mode automatic differentiation on numpy arrays.

This subpackage is the numerical substrate of the whole reproduction: the
paper's implementation relies on PyTorch, which is not available in this
environment, so ``repro.autograd`` provides a small but complete tape-based
autodiff engine with the operations needed by the RefFiL pipeline
(convolutions, attention, normalisation, contrastive and cross-entropy
losses).

Public entry points:

* :class:`repro.autograd.tensor.Tensor` -- the differentiable array type.
* :mod:`repro.autograd.functional` -- neural-network functionals
  (relu, softmax, cross_entropy, conv2d, cosine_similarity, ...).
* :mod:`repro.autograd.tape` -- the kernel plane: the op table every tensor
  operation routes through, tape recording, compiled :class:`Plan` replay
  and the ``eager`` / ``tape`` / ``batched`` kernel switch.
* :func:`repro.autograd.grad_check.numerical_gradient` -- finite-difference
  gradient checking used by the test-suite.
"""

from repro.autograd.tensor import (
    Tensor,
    no_grad,
    is_grad_enabled,
    get_default_dtype,
    set_default_dtype,
    default_dtype,
)
from repro.autograd.tape import (
    KERNELS,
    Plan,
    PlanCache,
    PlanError,
    PlanNotBatchable,
    Tape,
    get_kernel,
    get_plan_optimize,
    kernel_mode,
    plan_optimize_mode,
    set_kernel,
    set_plan_optimize,
    tracing,
)
from repro.autograd import functional

__all__ = [
    "Tensor",
    "no_grad",
    "is_grad_enabled",
    "get_default_dtype",
    "set_default_dtype",
    "default_dtype",
    "KERNELS",
    "Plan",
    "PlanCache",
    "PlanError",
    "PlanNotBatchable",
    "Tape",
    "get_kernel",
    "get_plan_optimize",
    "kernel_mode",
    "plan_optimize_mode",
    "set_kernel",
    "set_plan_optimize",
    "tracing",
    "functional",
]
