"""Finite-difference gradient checking used by the autograd test-suite."""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.autograd.tensor import Tensor


def numerical_gradient(
    fn: Callable[..., Tensor],
    inputs: Sequence[Tensor],
    wrt: int = 0,
    eps: float = 1e-5,
) -> np.ndarray:
    """Estimate ``d fn(inputs) / d inputs[wrt]`` by central differences.

    ``fn`` must return a scalar Tensor.  The chosen input is perturbed one
    element at a time, so this is only suitable for the small tensors used in
    tests.
    """
    target = inputs[wrt]
    grad = np.zeros_like(target.data)
    flat = target.data.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        plus = float(fn(*inputs).data)
        flat[i] = original - eps
        minus = float(fn(*inputs).data)
        flat[i] = original
        grad_flat[i] = (plus - minus) / (2.0 * eps)
    return grad


def check_gradient(
    fn: Callable[..., Tensor],
    inputs: Sequence[Tensor],
    wrt: int = 0,
    eps: float = 1e-5,
    atol: float = 1e-4,
    rtol: float = 1e-3,
) -> bool:
    """Compare analytic and numerical gradients; returns True when they agree."""
    for tensor in inputs:
        tensor.zero_grad()
    output = fn(*inputs)
    output.backward()
    analytic = inputs[wrt].grad
    if analytic is None:
        analytic = np.zeros_like(inputs[wrt].data)
    numeric = numerical_gradient(fn, inputs, wrt=wrt, eps=eps)
    return bool(np.allclose(analytic, numeric, atol=atol, rtol=rtol))


__all__ = ["numerical_gradient", "check_gradient"]
