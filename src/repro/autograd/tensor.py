"""A tape-based reverse-mode autodiff :class:`Tensor` built on numpy.

The design mirrors the small core of PyTorch that the RefFiL pipeline needs:
every operation records a backward closure and its parent tensors; calling
:meth:`Tensor.backward` performs a topological sort of the recorded graph and
accumulates gradients into ``tensor.grad``.

Only float arrays participate in differentiation.  Integer arrays (labels,
indices) are carried around as plain numpy arrays by the rest of the code
base.
"""

from __future__ import annotations

import contextlib
from typing import Callable, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

Number = Union[int, float]
ArrayLike = Union[Number, Sequence, np.ndarray, "Tensor"]

_GRAD_ENABLED = True

#: The active compute dtype: process-global state read through
#: :func:`get_default_dtype` and switched with :func:`set_default_dtype` /
#: the :func:`default_dtype` context manager.  Gradient checking should run
#: under ``default_dtype(np.float64)``.
_DEFAULT_DTYPE = np.dtype(np.float64)


def get_default_dtype() -> np.dtype:
    """Return the dtype newly created tensors (and parameters) use."""
    return _DEFAULT_DTYPE


def set_default_dtype(dtype) -> np.dtype:
    """Set the process-wide compute dtype (``float32`` or ``float64``).

    Everything downstream of tensor creation — weight initialisation, dataset
    batches, optimiser state — picks the dtype up from here, so switching to
    float32 halves the memory bandwidth of the whole pipeline.  Gradient
    checking should stay at float64 (wrap it in ``default_dtype(np.float64)``).
    Returns the previous dtype so callers can restore it.
    """
    global _DEFAULT_DTYPE
    resolved = np.dtype(dtype)
    if resolved.kind != "f":
        raise ValueError(f"default dtype must be a float dtype, got {resolved}")
    previous = _DEFAULT_DTYPE
    _DEFAULT_DTYPE = resolved
    return previous


@contextlib.contextmanager
def default_dtype(dtype):
    """Context manager that temporarily switches the compute dtype."""
    previous = set_default_dtype(dtype)
    try:
        yield
    finally:
        set_default_dtype(previous)


def is_grad_enabled() -> bool:
    """Return whether gradient recording is currently enabled."""
    return _GRAD_ENABLED


@contextlib.contextmanager
def no_grad():
    """Context manager that disables graph recording (like ``torch.no_grad``)."""
    global _GRAD_ENABLED
    previous = _GRAD_ENABLED
    _GRAD_ENABLED = False
    try:
        yield
    finally:
        _GRAD_ENABLED = previous


def _as_array(value: ArrayLike, dtype=None) -> np.ndarray:
    if isinstance(value, Tensor):
        return value.data
    array = np.asarray(value, dtype=dtype if dtype is not None else _DEFAULT_DTYPE)
    return array


def unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` down to ``shape`` undoing numpy broadcasting.

    Used by every binary op so that, e.g., a bias of shape ``(d,)`` added to a
    batch of shape ``(n, d)`` receives a gradient of shape ``(d,)``.
    """
    if grad.shape == shape:
        return grad
    # Sum over leading dimensions that were added by broadcasting.
    extra_dims = grad.ndim - len(shape)
    if extra_dims > 0:
        grad = grad.sum(axis=tuple(range(extra_dims)))
    # Sum over dimensions that were broadcast from size 1.
    axes = tuple(i for i, size in enumerate(shape) if size == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A differentiable, numpy-backed multi-dimensional array."""

    __slots__ = (
        "data",
        "grad",
        "requires_grad",
        "_backward",
        "_parents",
        "_pending_grad",
        "name",
    )

    def __init__(
        self,
        data: ArrayLike,
        requires_grad: bool = False,
        name: Optional[str] = None,
    ) -> None:
        self.data = _as_array(data)
        self.grad: Optional[np.ndarray] = None
        self.requires_grad = bool(requires_grad) and _GRAD_ENABLED
        self._backward: Optional[Callable[[np.ndarray], None]] = None
        self._parents: Tuple["Tensor", ...] = ()
        self._pending_grad: Optional[np.ndarray] = None
        self.name = name

    # ------------------------------------------------------------------ #
    # Basic protocol / inspection helpers
    # ------------------------------------------------------------------ #
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self):
        return self.data.dtype

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}{grad_flag})"

    def numpy(self) -> np.ndarray:
        """Return the underlying numpy array (no copy)."""
        return self.data

    def item(self) -> float:
        return float(self.data.reshape(-1)[0]) if self.data.size == 1 else float(self.data)

    def detach(self) -> "Tensor":
        """Return a new tensor sharing data but cut from the graph."""
        return Tensor(self.data, requires_grad=False)

    def copy(self) -> "Tensor":
        return Tensor(self.data.copy(), requires_grad=self.requires_grad)

    def zero_grad(self) -> None:
        self.grad = None

    # ------------------------------------------------------------------ #
    # Graph construction helper
    # ------------------------------------------------------------------ #
    @staticmethod
    def _result(
        data: np.ndarray,
        parents: Iterable["Tensor"],
        backward: Callable[[np.ndarray], None],
    ) -> "Tensor":
        parents = tuple(p for p in parents if isinstance(p, Tensor))
        requires = _GRAD_ENABLED and any(p.requires_grad for p in parents)
        out = Tensor(data, requires_grad=requires)
        if requires:
            out._parents = tuple(p for p in parents if p.requires_grad)
            out._backward = backward
        return out

    def _accumulate(self, grad: np.ndarray) -> None:
        if self.grad is None:
            self.grad = grad.astype(self.data.dtype, copy=True)
        else:
            self.grad = self.grad + grad

    # ------------------------------------------------------------------ #
    # Backward pass
    # ------------------------------------------------------------------ #
    def backward(self, grad: Optional[ArrayLike] = None) -> None:
        """Run reverse-mode autodiff from this tensor.

        Parameters
        ----------
        grad:
            Seed gradient.  Defaults to ``1.0`` which requires the tensor to
            be a scalar (the usual loss case).
        """
        if not self.requires_grad:
            raise RuntimeError("backward() called on a tensor that does not require grad")
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError("grad must be provided for non-scalar outputs")
            grad = np.ones_like(self.data)
        else:
            grad = _as_array(grad)
            if grad.shape != self.data.shape:
                grad = np.broadcast_to(grad, self.data.shape).copy()

        # Topological order of the graph reachable from self.
        order: List[Tensor] = []
        visited = set()
        stack: List[Tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                order.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in visited:
                    stack.append((parent, False))

        grads = {id(self): grad}
        for node in reversed(order):
            node_grad = grads.pop(id(node), None)
            if node_grad is None:
                continue
            if node._backward is None:
                node._accumulate(node_grad)
                continue
            # Leaf accumulation happens inside each backward closure via
            # _send_grad; interior nodes stash a pending gradient that is
            # collected here and folded into the traversal.
            node._backward(node_grad)
            for parent in node._parents:
                stashed = parent._pending_grad
                if stashed is not None:
                    existing = grads.get(id(parent))
                    grads[id(parent)] = stashed if existing is None else existing + stashed
                    parent._pending_grad = None
        # Any remaining gradients belong to leaves reached only as roots.
        for node in order:
            remaining = grads.pop(id(node), None)
            if remaining is not None:
                node._accumulate(remaining)

    # The backward closures communicate with the traversal above by calling
    # ``_send_grad`` on their parents rather than mutating ``grad`` directly.
    def _send_grad(self, grad: np.ndarray) -> None:
        if not self.requires_grad:
            return
        if self._backward is None and not self._parents:
            # Leaf tensor: accumulate immediately.
            self._accumulate(grad)
            return
        if self._pending_grad is None:
            self._pending_grad = grad
        else:
            self._pending_grad = self._pending_grad + grad

    # ------------------------------------------------------------------ #
    # Elementwise arithmetic
    # ------------------------------------------------------------------ #
    def __add__(self, other: ArrayLike) -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(other)
        data = self.data + other_t.data

        def backward(grad: np.ndarray) -> None:
            self._send_grad(unbroadcast(grad, self.shape))
            other_t._send_grad(unbroadcast(grad, other_t.shape))

        return Tensor._result(data, (self, other_t), backward)

    __radd__ = __add__

    def __sub__(self, other: ArrayLike) -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(other)
        data = self.data - other_t.data

        def backward(grad: np.ndarray) -> None:
            self._send_grad(unbroadcast(grad, self.shape))
            other_t._send_grad(unbroadcast(-grad, other_t.shape))

        return Tensor._result(data, (self, other_t), backward)

    def __rsub__(self, other: ArrayLike) -> "Tensor":
        return Tensor(other) - self

    def __mul__(self, other: ArrayLike) -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(other)
        data = self.data * other_t.data

        def backward(grad: np.ndarray) -> None:
            self._send_grad(unbroadcast(grad * other_t.data, self.shape))
            other_t._send_grad(unbroadcast(grad * self.data, other_t.shape))

        return Tensor._result(data, (self, other_t), backward)

    __rmul__ = __mul__

    def __truediv__(self, other: ArrayLike) -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(other)
        data = self.data / other_t.data

        def backward(grad: np.ndarray) -> None:
            self._send_grad(unbroadcast(grad / other_t.data, self.shape))
            other_t._send_grad(
                unbroadcast(-grad * self.data / (other_t.data ** 2), other_t.shape)
            )

        return Tensor._result(data, (self, other_t), backward)

    def __rtruediv__(self, other: ArrayLike) -> "Tensor":
        return Tensor(other) / self

    def __neg__(self) -> "Tensor":
        data = -self.data

        def backward(grad: np.ndarray) -> None:
            self._send_grad(-grad)

        return Tensor._result(data, (self,), backward)

    def __pow__(self, exponent: Number) -> "Tensor":
        if isinstance(exponent, Tensor):
            raise TypeError("Tensor exponents are not supported; use exp/log instead")
        data = self.data ** exponent

        def backward(grad: np.ndarray) -> None:
            self._send_grad(grad * exponent * self.data ** (exponent - 1))

        return Tensor._result(data, (self,), backward)

    # ------------------------------------------------------------------ #
    # Comparison (non-differentiable, returns plain numpy bool arrays)
    # ------------------------------------------------------------------ #
    def __gt__(self, other: ArrayLike) -> np.ndarray:
        return self.data > _as_array(other)

    def __lt__(self, other: ArrayLike) -> np.ndarray:
        return self.data < _as_array(other)

    def __ge__(self, other: ArrayLike) -> np.ndarray:
        return self.data >= _as_array(other)

    def __le__(self, other: ArrayLike) -> np.ndarray:
        return self.data <= _as_array(other)

    # ------------------------------------------------------------------ #
    # Matrix multiplication
    # ------------------------------------------------------------------ #
    def __matmul__(self, other: ArrayLike) -> "Tensor":
        other_t = other if isinstance(other, Tensor) else Tensor(other)
        data = np.matmul(self.data, other_t.data)

        def backward(grad: np.ndarray) -> None:
            a, b = self.data, other_t.data
            if a.ndim == 1 and b.ndim == 1:
                self._send_grad(grad * b)
                other_t._send_grad(grad * a)
                return
            a_mat = a[None, :] if a.ndim == 1 else a
            b_mat = b[:, None] if b.ndim == 1 else b
            grad_mat = grad
            if a.ndim == 1:
                grad_mat = np.expand_dims(grad_mat, -2)
            if b.ndim == 1:
                grad_mat = np.expand_dims(grad_mat, -1)
            grad_a = np.matmul(grad_mat, np.swapaxes(b_mat, -1, -2))
            grad_b = np.matmul(np.swapaxes(a_mat, -1, -2), grad_mat)
            if a.ndim == 1:
                grad_a = np.squeeze(grad_a, -2)
            if b.ndim == 1:
                grad_b = np.squeeze(grad_b, -1)
            self._send_grad(unbroadcast(grad_a, self.shape))
            other_t._send_grad(unbroadcast(grad_b, other_t.shape))

        return Tensor._result(data, (self, other_t), backward)

    def __rmatmul__(self, other: ArrayLike) -> "Tensor":
        return Tensor(other) @ self

    def matmul(self, other: ArrayLike) -> "Tensor":
        return self @ other

    # ------------------------------------------------------------------ #
    # Unary math
    # ------------------------------------------------------------------ #
    def exp(self) -> "Tensor":
        data = np.exp(self.data)

        def backward(grad: np.ndarray) -> None:
            self._send_grad(grad * data)

        return Tensor._result(data, (self,), backward)

    def log(self) -> "Tensor":
        data = np.log(self.data)

        def backward(grad: np.ndarray) -> None:
            self._send_grad(grad / self.data)

        return Tensor._result(data, (self,), backward)

    def sqrt(self) -> "Tensor":
        data = np.sqrt(self.data)

        def backward(grad: np.ndarray) -> None:
            self._send_grad(grad * 0.5 / np.maximum(data, 1e-12))

        return Tensor._result(data, (self,), backward)

    def tanh(self) -> "Tensor":
        data = np.tanh(self.data)

        def backward(grad: np.ndarray) -> None:
            self._send_grad(grad * (1.0 - data ** 2))

        return Tensor._result(data, (self,), backward)

    def sigmoid(self) -> "Tensor":
        data = 1.0 / (1.0 + np.exp(-self.data))

        def backward(grad: np.ndarray) -> None:
            self._send_grad(grad * data * (1.0 - data))

        return Tensor._result(data, (self,), backward)

    def relu(self) -> "Tensor":
        mask = self.data > 0
        data = self.data * mask

        def backward(grad: np.ndarray) -> None:
            self._send_grad(grad * mask)

        return Tensor._result(data, (self,), backward)

    def abs(self) -> "Tensor":
        data = np.abs(self.data)
        sign = np.sign(self.data)

        def backward(grad: np.ndarray) -> None:
            self._send_grad(grad * sign)

        return Tensor._result(data, (self,), backward)

    def clip(self, minimum: Number, maximum: Number) -> "Tensor":
        data = np.clip(self.data, minimum, maximum)
        mask = (self.data >= minimum) & (self.data <= maximum)

        def backward(grad: np.ndarray) -> None:
            self._send_grad(grad * mask)

        return Tensor._result(data, (self,), backward)

    # ------------------------------------------------------------------ #
    # Reductions
    # ------------------------------------------------------------------ #
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            expanded = grad
            if axis is not None and not keepdims:
                axes = axis if isinstance(axis, tuple) else (axis,)
                axes = tuple(a % self.data.ndim for a in axes)
                for a in sorted(axes):
                    expanded = np.expand_dims(expanded, a)
            self._send_grad(np.broadcast_to(expanded, self.shape).copy())

        return Tensor._result(data, (self,), backward)

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        else:
            axes = axis if isinstance(axis, tuple) else (axis,)
            count = int(np.prod([self.data.shape[a] for a in axes]))
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def var(self, axis=None, keepdims: bool = False) -> "Tensor":
        mean = self.mean(axis=axis, keepdims=True)
        centred = self - mean
        result = (centred * centred).mean(axis=axis, keepdims=keepdims)
        return result

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        data = self.data.max(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            expanded_data = self.data.max(axis=axis, keepdims=True)
            mask = (self.data == expanded_data).astype(self.data.dtype)
            mask = mask / np.maximum(mask.sum(axis=axis, keepdims=True), 1.0)
            expanded_grad = grad
            if axis is not None and not keepdims:
                axes = axis if isinstance(axis, tuple) else (axis,)
                for a in sorted(a % self.data.ndim for a in axes):
                    expanded_grad = np.expand_dims(expanded_grad, a)
            self._send_grad(mask * expanded_grad)

        return Tensor._result(data, (self,), backward)

    def min(self, axis=None, keepdims: bool = False) -> "Tensor":
        return -(-self).max(axis=axis, keepdims=keepdims)

    # ------------------------------------------------------------------ #
    # Shape manipulation
    # ------------------------------------------------------------------ #
    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        data = self.data.reshape(shape)
        original_shape = self.shape

        def backward(grad: np.ndarray) -> None:
            self._send_grad(grad.reshape(original_shape))

        return Tensor._result(data, (self,), backward)

    def flatten(self, start_dim: int = 0) -> "Tensor":
        shape = self.shape[:start_dim] + (-1,)
        return self.reshape(*shape)

    def transpose(self, *axes) -> "Tensor":
        if len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        if not axes:
            axes = tuple(reversed(range(self.ndim)))
        data = self.data.transpose(axes)
        inverse = np.argsort(axes)

        def backward(grad: np.ndarray) -> None:
            self._send_grad(grad.transpose(inverse))

        return Tensor._result(data, (self,), backward)

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def swapaxes(self, axis1: int, axis2: int) -> "Tensor":
        axes = list(range(self.ndim))
        axes[axis1], axes[axis2] = axes[axis2], axes[axis1]
        return self.transpose(*axes)

    def expand_dims(self, axis: int) -> "Tensor":
        data = np.expand_dims(self.data, axis)

        def backward(grad: np.ndarray) -> None:
            self._send_grad(np.squeeze(grad, axis))

        return Tensor._result(data, (self,), backward)

    def squeeze(self, axis: Optional[int] = None) -> "Tensor":
        data = np.squeeze(self.data, axis) if axis is not None else np.squeeze(self.data)
        original_shape = self.shape

        def backward(grad: np.ndarray) -> None:
            self._send_grad(grad.reshape(original_shape))

        return Tensor._result(data, (self,), backward)

    def broadcast_to(self, shape: Tuple[int, ...]) -> "Tensor":
        data = np.broadcast_to(self.data, shape).copy()
        original_shape = self.shape

        def backward(grad: np.ndarray) -> None:
            self._send_grad(unbroadcast(grad, original_shape))

        return Tensor._result(data, (self,), backward)

    def __getitem__(self, index) -> "Tensor":
        data = self.data[index]

        def backward(grad: np.ndarray) -> None:
            full = np.zeros_like(self.data)
            np.add.at(full, index, grad)
            self._send_grad(full)

        return Tensor._result(data, (self,), backward)

    def pad(self, pad_width, constant: Number = 0.0) -> "Tensor":
        data = np.pad(self.data, pad_width, mode="constant", constant_values=constant)
        slices = tuple(
            slice(before, before + size)
            for (before, _), size in zip(pad_width, self.shape)
        )

        def backward(grad: np.ndarray) -> None:
            self._send_grad(grad[slices])

        return Tensor._result(data, (self,), backward)

    # ------------------------------------------------------------------ #
    # Static constructors / combinators
    # ------------------------------------------------------------------ #
    @staticmethod
    def concatenate(tensors: Sequence["Tensor"], axis: int = 0) -> "Tensor":
        tensors = [t if isinstance(t, Tensor) else Tensor(t) for t in tensors]
        data = np.concatenate([t.data for t in tensors], axis=axis)
        sizes = [t.shape[axis] for t in tensors]
        offsets = np.cumsum([0] + sizes)

        def backward(grad: np.ndarray) -> None:
            for tensor, start, end in zip(tensors, offsets[:-1], offsets[1:]):
                slicer = [slice(None)] * grad.ndim
                slicer[axis] = slice(start, end)
                tensor._send_grad(grad[tuple(slicer)])

        return Tensor._result(data, tensors, backward)

    @staticmethod
    def stack(tensors: Sequence["Tensor"], axis: int = 0) -> "Tensor":
        tensors = [t if isinstance(t, Tensor) else Tensor(t) for t in tensors]
        data = np.stack([t.data for t in tensors], axis=axis)

        def backward(grad: np.ndarray) -> None:
            split = np.split(grad, len(tensors), axis=axis)
            for tensor, piece in zip(tensors, split):
                tensor._send_grad(np.squeeze(piece, axis=axis))

        return Tensor._result(data, tensors, backward)

    @staticmethod
    def zeros(shape, requires_grad: bool = False) -> "Tensor":
        return Tensor(np.zeros(shape, dtype=_DEFAULT_DTYPE), requires_grad=requires_grad)

    @staticmethod
    def ones(shape, requires_grad: bool = False) -> "Tensor":
        return Tensor(np.ones(shape, dtype=_DEFAULT_DTYPE), requires_grad=requires_grad)

    @staticmethod
    def randn(*shape, rng: Optional[np.random.Generator] = None, requires_grad: bool = False) -> "Tensor":
        generator = rng if rng is not None else np.random.default_rng()
        return Tensor(generator.standard_normal(shape), requires_grad=requires_grad)

    @staticmethod
    def from_numpy(array: np.ndarray, requires_grad: bool = False) -> "Tensor":
        return Tensor(np.asarray(array, dtype=_DEFAULT_DTYPE), requires_grad=requires_grad)


__all__ = [
    "Tensor",
    "no_grad",
    "is_grad_enabled",
    "unbroadcast",
    "get_default_dtype",
    "set_default_dtype",
    "default_dtype",
]
