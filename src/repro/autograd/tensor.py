"""A tape-based reverse-mode autodiff :class:`Tensor` built on numpy.

The design mirrors the small core of PyTorch that the RefFiL pipeline needs:
every operation is described by an :class:`repro.autograd.tape.Op` (forward +
explicit vjp rule); applying one through :func:`apply_op` computes the result,
wires a backward closure built from the op's vjp, and — when a
:class:`~repro.autograd.tape.Tape` is tracing — records the application so the
step can later replay as a compiled plan.  Eager mode is therefore a tape of
length one: the closures call the *same* vjp rules replay does, so recording
changes nothing numerically.

Calling :meth:`Tensor.backward` performs a topological sort of the recorded
graph, accumulates gradients into ``tensor.grad``, and then frees the
traversed graph (drops ``_backward``/``_parents`` on interior nodes) so peak
memory between batches no longer retains every intermediate activation.

Only float arrays participate in differentiation.  Integer arrays (labels,
indices) are carried around as plain numpy arrays by the rest of the code
base.
"""

from __future__ import annotations

import contextlib
import threading
from typing import Callable, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.autograd import tape as _tape
from repro.autograd.tape import Op, OpContext, unbroadcast

Number = Union[int, float]
ArrayLike = Union[Number, Sequence, np.ndarray, "Tensor"]

#: Grad mode and the active compute dtype are *thread-local*, not
#: process-global: the serving plane's worker threads run ``no_grad``
#: forwards (under their snapshot's dtype) concurrently with a training
#: thread that needs gradients on, and shared globals would let one
#: thread's mode bleed into the other's step.  Each thread starts at the
#: defaults (grad on, float64) — identical to the old single-threaded
#: behaviour.
_MODE_STATE = threading.local()


def _grad_enabled() -> bool:
    return getattr(_MODE_STATE, "grad_enabled", True)


def get_default_dtype() -> np.dtype:
    """Return the dtype newly created tensors (and parameters) use."""
    dtype = getattr(_MODE_STATE, "default_dtype", None)
    return dtype if dtype is not None else np.dtype(np.float64)


def set_default_dtype(dtype) -> np.dtype:
    """Set this thread's compute dtype (``float32`` or ``float64``).

    Everything downstream of tensor creation — weight initialisation, dataset
    batches, optimiser state — picks the dtype up from here, so switching to
    float32 halves the memory bandwidth of the whole pipeline.  Gradient
    checking should stay at float64 (wrap it in ``default_dtype(np.float64)``).
    Returns the previous dtype so callers can restore it.
    """
    resolved = np.dtype(dtype)
    if resolved.kind != "f":
        raise ValueError(f"default dtype must be a float dtype, got {resolved}")
    previous = get_default_dtype()
    _MODE_STATE.default_dtype = resolved
    return previous


@contextlib.contextmanager
def default_dtype(dtype):
    """Context manager that temporarily switches the compute dtype."""
    previous = set_default_dtype(dtype)
    try:
        yield
    finally:
        set_default_dtype(previous)


def is_grad_enabled() -> bool:
    """Return whether gradient recording is currently enabled (this thread)."""
    return _grad_enabled()


@contextlib.contextmanager
def no_grad():
    """Context manager that disables graph recording (like ``torch.no_grad``)."""
    previous = _grad_enabled()
    _MODE_STATE.grad_enabled = False
    try:
        yield
    finally:
        _MODE_STATE.grad_enabled = previous


def _as_array(value: ArrayLike, dtype=None) -> np.ndarray:
    if isinstance(value, Tensor):
        return value.data
    array = np.asarray(value, dtype=dtype if dtype is not None else get_default_dtype())
    return array


class Tensor:
    """A differentiable, numpy-backed multi-dimensional array."""

    __slots__ = (
        "data",
        "grad",
        "requires_grad",
        "_backward",
        "_parents",
        "_pending_grad",
        "name",
    )

    def __init__(
        self,
        data: ArrayLike,
        requires_grad: bool = False,
        name: Optional[str] = None,
    ) -> None:
        self.data = _as_array(data)
        self.grad: Optional[np.ndarray] = None
        self.requires_grad = bool(requires_grad) and _grad_enabled()
        self._backward: Optional[Callable[[np.ndarray], None]] = None
        self._parents: Tuple["Tensor", ...] = ()
        self._pending_grad: Optional[np.ndarray] = None
        self.name = name

    # ------------------------------------------------------------------ #
    # Basic protocol / inspection helpers
    # ------------------------------------------------------------------ #
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self):
        return self.data.dtype

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}{grad_flag})"

    def numpy(self) -> np.ndarray:
        """Return the underlying numpy array (no copy)."""
        return self.data

    def item(self) -> float:
        return float(self.data.reshape(-1)[0]) if self.data.size == 1 else float(self.data)

    def detach(self) -> "Tensor":
        """Return a new tensor sharing data but cut from the graph."""
        return apply_op(_tape.DETACH, (self,))

    def copy(self) -> "Tensor":
        return Tensor(self.data.copy(), requires_grad=self.requires_grad)

    def zero_grad(self) -> None:
        self.grad = None

    # ------------------------------------------------------------------ #
    # Graph construction helper
    # ------------------------------------------------------------------ #
    @staticmethod
    def _result(
        data: np.ndarray,
        parents: Iterable["Tensor"],
        backward: Callable[[np.ndarray], None],
    ) -> "Tensor":
        parents = tuple(p for p in parents if isinstance(p, Tensor))
        requires = _grad_enabled() and any(p.requires_grad for p in parents)
        out = Tensor(data, requires_grad=requires)
        if requires:
            out._parents = tuple(p for p in parents if p.requires_grad)
            out._backward = backward
        return out

    def _accumulate(self, grad: np.ndarray) -> None:
        if self.grad is None:
            self.grad = grad.astype(self.data.dtype, copy=True)
        else:
            self.grad = self.grad + grad

    # ------------------------------------------------------------------ #
    # Backward pass
    # ------------------------------------------------------------------ #
    def backward(self, grad: Optional[ArrayLike] = None) -> None:
        """Run reverse-mode autodiff from this tensor.

        After the traversal the visited graph is freed: interior nodes drop
        their ``_backward`` closures and parent links, so the activations a
        batch produced become collectable as soon as its gradients are in.

        Parameters
        ----------
        grad:
            Seed gradient.  Defaults to ``1.0`` which requires the tensor to
            be a scalar (the usual loss case).
        """
        if not self.requires_grad:
            raise RuntimeError("backward() called on a tensor that does not require grad")
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError("grad must be provided for non-scalar outputs")
            grad = np.ones_like(self.data)
        else:
            grad = _as_array(grad)
            if grad.shape != self.data.shape:
                grad = np.broadcast_to(grad, self.data.shape).copy()

        # Topological order of the graph reachable from self.
        order: List[Tensor] = []
        visited = set()
        stack: List[Tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                order.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in visited:
                    stack.append((parent, False))

        grads = {id(self): grad}
        for node in reversed(order):
            node_grad = grads.pop(id(node), None)
            if node_grad is None:
                continue
            if node._backward is None:
                node._accumulate(node_grad)
                continue
            # Leaf accumulation happens inside each backward closure via
            # _send_grad; interior nodes stash a pending gradient that is
            # collected here and folded into the traversal.
            node._backward(node_grad)
            for parent in node._parents:
                stashed = parent._pending_grad
                if stashed is not None:
                    existing = grads.get(id(parent))
                    grads[id(parent)] = stashed if existing is None else existing + stashed
                    parent._pending_grad = None
        # Any remaining gradients belong to leaves reached only as roots.
        for node in order:
            remaining = grads.pop(id(node), None)
            if remaining is not None:
                node._accumulate(remaining)
        # Free the traversed graph: without this, the last loss of every
        # batch keeps the whole activation graph alive until the next batch
        # overwrites it, doubling steady-state peak memory.
        for node in order:
            if node._backward is not None:
                node._backward = None
                node._parents = ()
                node._pending_grad = None

    # The backward closures communicate with the traversal above by calling
    # ``_send_grad`` on their parents rather than mutating ``grad`` directly.
    def _send_grad(self, grad: np.ndarray) -> None:
        if not self.requires_grad:
            return
        if self._backward is None and not self._parents:
            # Leaf tensor: accumulate immediately.
            self._accumulate(grad)
            return
        if self._pending_grad is None:
            self._pending_grad = grad
        else:
            self._pending_grad = self._pending_grad + grad

    # ------------------------------------------------------------------ #
    # Elementwise arithmetic
    # ------------------------------------------------------------------ #
    def __add__(self, other: ArrayLike) -> "Tensor":
        return apply_op(_tape.ADD, (self, other))

    __radd__ = __add__

    def __sub__(self, other: ArrayLike) -> "Tensor":
        return apply_op(_tape.SUB, (self, other))

    def __rsub__(self, other: ArrayLike) -> "Tensor":
        return Tensor(other) - self

    def __mul__(self, other: ArrayLike) -> "Tensor":
        return apply_op(_tape.MUL, (self, other))

    __rmul__ = __mul__

    def __truediv__(self, other: ArrayLike) -> "Tensor":
        return apply_op(_tape.DIV, (self, other))

    def __rtruediv__(self, other: ArrayLike) -> "Tensor":
        return Tensor(other) / self

    def __neg__(self) -> "Tensor":
        return apply_op(_tape.NEG, (self,))

    def __pow__(self, exponent: Number) -> "Tensor":
        if isinstance(exponent, Tensor):
            raise TypeError("Tensor exponents are not supported; use exp/log instead")
        return apply_op(_tape.POW, (self,), exponent=exponent)

    # ------------------------------------------------------------------ #
    # Comparison (non-differentiable, returns plain numpy bool arrays)
    # ------------------------------------------------------------------ #
    def __gt__(self, other: ArrayLike) -> np.ndarray:
        return self.data > _as_array(other)

    def __lt__(self, other: ArrayLike) -> np.ndarray:
        return self.data < _as_array(other)

    def __ge__(self, other: ArrayLike) -> np.ndarray:
        return self.data >= _as_array(other)

    def __le__(self, other: ArrayLike) -> np.ndarray:
        return self.data <= _as_array(other)

    # ------------------------------------------------------------------ #
    # Matrix multiplication
    # ------------------------------------------------------------------ #
    def __matmul__(self, other: ArrayLike) -> "Tensor":
        return apply_op(_tape.MATMUL, (self, other))

    def __rmatmul__(self, other: ArrayLike) -> "Tensor":
        return Tensor(other) @ self

    def matmul(self, other: ArrayLike) -> "Tensor":
        return self @ other

    # ------------------------------------------------------------------ #
    # Unary math
    # ------------------------------------------------------------------ #
    def exp(self) -> "Tensor":
        return apply_op(_tape.EXP, (self,))

    def log(self) -> "Tensor":
        return apply_op(_tape.LOG, (self,))

    def sqrt(self) -> "Tensor":
        return apply_op(_tape.SQRT, (self,))

    def tanh(self) -> "Tensor":
        return apply_op(_tape.TANH, (self,))

    def sigmoid(self) -> "Tensor":
        return apply_op(_tape.SIGMOID, (self,))

    def relu(self) -> "Tensor":
        return apply_op(_tape.RELU, (self,))

    def abs(self) -> "Tensor":
        return apply_op(_tape.ABS, (self,))

    def clip(self, minimum: Number, maximum: Number) -> "Tensor":
        return apply_op(_tape.CLIP, (self,), minimum=minimum, maximum=maximum)

    # ------------------------------------------------------------------ #
    # Reductions
    # ------------------------------------------------------------------ #
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        return apply_op(_tape.SUM, (self,), axis=axis, keepdims=keepdims)

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        else:
            axes = axis if isinstance(axis, tuple) else (axis,)
            count = int(np.prod([self.data.shape[a] for a in axes]))
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def var(self, axis=None, keepdims: bool = False) -> "Tensor":
        mean = self.mean(axis=axis, keepdims=True)
        centred = self - mean
        result = (centred * centred).mean(axis=axis, keepdims=keepdims)
        return result

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        return apply_op(_tape.MAX, (self,), axis=axis, keepdims=keepdims)

    def min(self, axis=None, keepdims: bool = False) -> "Tensor":
        return -(-self).max(axis=axis, keepdims=keepdims)

    # ------------------------------------------------------------------ #
    # Shape manipulation
    # ------------------------------------------------------------------ #
    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        return apply_op(_tape.RESHAPE, (self,), shape=shape)

    def flatten(self, start_dim: int = 0) -> "Tensor":
        shape = self.shape[:start_dim] + (-1,)
        return self.reshape(*shape)

    def transpose(self, *axes) -> "Tensor":
        if len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        if not axes:
            axes = tuple(reversed(range(self.ndim)))
        return apply_op(_tape.TRANSPOSE, (self,), axes=axes)

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def swapaxes(self, axis1: int, axis2: int) -> "Tensor":
        axes = list(range(self.ndim))
        axes[axis1], axes[axis2] = axes[axis2], axes[axis1]
        return self.transpose(*axes)

    def expand_dims(self, axis: int) -> "Tensor":
        return apply_op(_tape.EXPAND_DIMS, (self,), axis=axis)

    def squeeze(self, axis: Optional[int] = None) -> "Tensor":
        return apply_op(_tape.SQUEEZE, (self,), axis=axis)

    def broadcast_to(self, shape: Tuple[int, ...]) -> "Tensor":
        return apply_op(_tape.BROADCAST_TO, (self,), shape=tuple(shape))

    def __getitem__(self, index) -> "Tensor":
        return apply_op(_tape.GETITEM, (self,), index=index)

    def pad(self, pad_width, constant: Number = 0.0) -> "Tensor":
        return apply_op(_tape.PAD, (self,), pad_width=pad_width, constant=constant)

    # ------------------------------------------------------------------ #
    # Static constructors / combinators
    # ------------------------------------------------------------------ #
    @staticmethod
    def concatenate(tensors: Sequence["Tensor"], axis: int = 0) -> "Tensor":
        return apply_op(_tape.CONCATENATE, tuple(tensors), axis=axis)

    @staticmethod
    def stack(tensors: Sequence["Tensor"], axis: int = 0) -> "Tensor":
        return apply_op(_tape.STACK, tuple(tensors), axis=axis)

    @staticmethod
    def zeros(shape, requires_grad: bool = False) -> "Tensor":
        return Tensor(np.zeros(shape, dtype=get_default_dtype()), requires_grad=requires_grad)

    @staticmethod
    def ones(shape, requires_grad: bool = False) -> "Tensor":
        return Tensor(np.ones(shape, dtype=get_default_dtype()), requires_grad=requires_grad)

    @staticmethod
    def randn(*shape, rng: Optional[np.random.Generator] = None, requires_grad: bool = False) -> "Tensor":
        generator = rng if rng is not None else np.random.default_rng()
        return Tensor(generator.standard_normal(shape), requires_grad=requires_grad)

    @staticmethod
    def from_numpy(array: np.ndarray, requires_grad: bool = False) -> "Tensor":
        return Tensor(np.asarray(array, dtype=get_default_dtype()), requires_grad=requires_grad)


# --------------------------------------------------------------------------- #
# Op application: the single gateway every tensor operation goes through
# --------------------------------------------------------------------------- #
def apply_op(op: Op, inputs: Sequence[ArrayLike], **kwargs) -> Tensor:
    """Apply ``op`` eagerly and (when tracing) record it on the active tape.

    The backward closure wired here calls the *same* ``op.vjp`` rule a plan
    replay calls, in the same input order, so eager and replayed gradients
    are bit-for-bit identical by construction.
    """
    tensors = tuple(t if isinstance(t, Tensor) else Tensor(t) for t in inputs)
    ctx = OpContext()
    data = op.forward(ctx, *(t.data for t in tensors), **kwargs)
    if op.differentiable:
        needs = tuple(t.requires_grad for t in tensors)

        def backward(grad: np.ndarray) -> None:
            input_grads = op.vjp(ctx, grad, needs)
            for tensor, input_grad in zip(tensors, input_grads):
                if input_grad is not None:
                    tensor._send_grad(input_grad)

        out = Tensor._result(data, tensors, backward)
    else:
        out = Tensor(data, requires_grad=False)
    tape = _tape.active_tape()
    if tape is not None:
        tape.record(op, tensors, out, kwargs)
    return out


def apply_effect(op: Op, inputs: Sequence[ArrayLike], **kwargs) -> None:
    """Run a side-effecting op (e.g. batch-norm running-stat updates).

    No tensor is produced; when tracing, the effect is recorded so replays
    re-execute it chronologically (and batched replays run its vectorized
    variant over stacked buffers).
    """
    tensors = tuple(t if isinstance(t, Tensor) else Tensor(t) for t in inputs)
    ctx = OpContext()
    op.forward(ctx, *(t.data for t in tensors), **kwargs)
    tape = _tape.active_tape()
    if tape is not None:
        tape.record_effect(op, tensors, kwargs)


__all__ = [
    "Tensor",
    "apply_op",
    "apply_effect",
    "no_grad",
    "is_grad_enabled",
    "unbroadcast",
    "get_default_dtype",
    "set_default_dtype",
    "default_dtype",
]
