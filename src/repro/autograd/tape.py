"""Op table, tape recording and compiled replay plans for the autograd core.

This module is the kernel plane's substrate.  Every differentiable operation
of :class:`repro.autograd.tensor.Tensor` (and the primitive ops registered by
:mod:`repro.autograd.functional`) is described by an :class:`Op`: a ``forward``
that computes the numpy result and a ``vjp`` that maps an output gradient to
per-input gradients.  Eager mode builds its backward closures *from* these
rules, so eager execution is a tape of length one and recording changes
nothing numerically.

On top of the op table sit three layers:

* :class:`Tape` — records every op application inside a ``tracing`` context as
  an :class:`OpRecord` over integer slots, with per-batch arrays (labels,
  rng-driven masks' generators, normalisation buffers) captured as *dynamic*
  bindings rather than baked-in constants.
* :class:`Plan` — compiles one traced client step into a replayable program:
  the forward record list plus a backward schedule computed with the identical
  topological traversal :meth:`Tensor.backward` uses, so replayed gradients
  accumulate in exactly the same order (bit-for-bit parity with eager).
* the batched engine — replays one plan for K clients at once by stacking
  parameters and batches along a leading axis.  Per-op batching follows one of
  three rules (``pad`` for elementwise/matmul broadcasting, ``axis`` for
  axis-kwarg remapping, ``custom`` for conv/pool/indexing); ops without a rule
  (dropout's per-client rng stream) mark the plan unbatchable and callers fall
  back per client.

The module is deliberately pure numpy — :mod:`repro.autograd.tensor` imports
it, never the other way around.
"""

from __future__ import annotations

import contextlib
import threading
import weakref
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np


# --------------------------------------------------------------------------- #
# Broadcasting helper (moved here from tensor.py; re-exported there)
# --------------------------------------------------------------------------- #
def unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` down to ``shape`` undoing numpy broadcasting.

    Used by every binary op so that, e.g., a bias of shape ``(d,)`` added to a
    batch of shape ``(n, d)`` receives a gradient of shape ``(d,)``.
    """
    if grad.shape == shape:
        return grad
    # Sum over leading dimensions that were added by broadcasting.
    extra_dims = grad.ndim - len(shape)
    if extra_dims > 0:
        grad = grad.sum(axis=tuple(range(extra_dims)))
    # Sum over dimensions that were broadcast from size 1.
    axes = tuple(i for i, size in enumerate(shape) if size == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


# --------------------------------------------------------------------------- #
# Kernel mode: process-global knob mirroring the default-dtype machinery
# --------------------------------------------------------------------------- #
KERNELS = ("eager", "tape", "batched")

_KERNEL = "eager"


def get_kernel() -> str:
    """Return the active kernel mode (``eager`` / ``tape`` / ``batched``)."""
    return _KERNEL


def set_kernel(kernel: str) -> str:
    """Set the process-wide kernel mode; returns the previous one."""
    global _KERNEL
    if kernel not in KERNELS:
        raise ValueError(f"kernel must be one of {KERNELS}, got {kernel!r}")
    previous = _KERNEL
    _KERNEL = kernel
    return previous


@contextlib.contextmanager
def kernel_mode(kernel: str):
    """Context manager that temporarily switches the kernel mode."""
    previous = set_kernel(kernel)
    try:
        yield
    finally:
        set_kernel(previous)


# --------------------------------------------------------------------------- #
# Plan-optimizer knob: same process-global shape as the kernel knob.  The
# optimizer passes (planopt) are bit-for-bit with unoptimized replay, so this
# only exists as an escape hatch / A-B lever for benches and tests.
# --------------------------------------------------------------------------- #
_PLAN_OPTIMIZE = True


def get_plan_optimize() -> bool:
    """Return whether newly compiled plans run the optimizer passes."""
    return _PLAN_OPTIMIZE


def set_plan_optimize(enabled: bool) -> bool:
    """Set the process-wide plan-optimize flag; returns the previous value."""
    global _PLAN_OPTIMIZE
    previous = _PLAN_OPTIMIZE
    _PLAN_OPTIMIZE = bool(enabled)
    return previous


@contextlib.contextmanager
def plan_optimize_mode(enabled: bool):
    """Context manager that temporarily switches the plan-optimize flag."""
    previous = set_plan_optimize(enabled)
    try:
        yield
    finally:
        set_plan_optimize(previous)


# --------------------------------------------------------------------------- #
# Op descriptors
# --------------------------------------------------------------------------- #
class OpContext:
    """Scratch space one op application shares between forward and vjp."""

    __slots__ = ("__dict__",)


class PlanError(RuntimeError):
    """A traced step cannot be compiled or replayed; callers fall back to eager."""


class PlanNotBatchable(PlanError):
    """A compiled plan contains a record the lockstep engine cannot vectorize."""


@dataclass(frozen=True)
class Op:
    """One differentiable operation: eager semantics plus batching contract.

    ``forward(ctx, *arrays, **kwargs)`` returns the result array and stashes
    whatever the vjp needs on ``ctx``; ``vjp(ctx, grad, needs)`` returns one
    gradient (or None) per input, in input order.  ``batch_rule`` selects how
    the lockstep engine vectorizes a record of this op over a leading client
    axis:

    * ``"pad"`` — reshape each stacked input to rank ``1 + traced_out_ndim``
      (leading K kept, singleton axes inserted after it) so numpy's trailing
      alignment broadcasts the client axis; covers all elementwise ops and
      matmul.
    * ``"axis"`` — inputs keep their stacked shape ``(K,) + orig`` and
      ``batch_kwargs`` remaps axis-like kwargs by one position.
    * ``"custom"`` — ``batched_forward`` / ``batched_vjp`` implement the
      vectorization directly (conv, pooling, fancy indexing).
    * ``None`` — not batchable (dropout: per-client rng streams cannot run in
      lockstep); a plan containing such a record falls back per client.
    """

    name: str
    forward: Callable[..., np.ndarray]
    vjp: Optional[Callable[..., Sequence[Optional[np.ndarray]]]] = None
    batch_rule: Optional[str] = "pad"
    batch_kwargs: Optional[Callable[[Dict[str, Any], "BatchInfo"], Dict[str, Any]]] = None
    batched_forward: Optional[Callable[..., np.ndarray]] = None
    batched_vjp: Optional[Callable[..., Sequence[Optional[np.ndarray]]]] = None
    batch_check: Optional[Callable[["OpRecord"], bool]] = None
    differentiable: bool = True
    effect: bool = False


class DynRef:
    """Placeholder for a dynamic kwarg value (per-batch array, rng, buffer)."""

    __slots__ = ("name",)

    def __init__(self, name: str) -> None:
        self.name = name

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DynRef({self.name!r})"


@dataclass(frozen=True)
class BatchInfo:
    """Per-record facts the batched engine hands to custom rules."""

    k: int
    in_shapes: Tuple[Tuple[int, ...], ...]
    out_shape: Optional[Tuple[int, ...]]
    in_batched: Tuple[bool, ...]
    dyn_kwargs: Dict[str, Any]


@dataclass
class OpRecord:
    """One recorded op application over tape slots."""

    op: Op
    input_slots: Tuple[int, ...]
    out_slot: Optional[int]  # None for effect records
    kwargs: Dict[str, Any]  # dynamic values replaced by DynRef
    needs: Tuple[bool, ...]  # per-input requires_grad at trace time
    out_requires: bool
    parent_slots: Tuple[int, ...]  # out._parents order (requires-grad filtered)
    in_shapes: Tuple[Tuple[int, ...], ...]
    out_shape: Optional[Tuple[int, ...]]
    out_dtype: Optional[np.dtype]


# --------------------------------------------------------------------------- #
# Tape recording
# --------------------------------------------------------------------------- #
# Thread-local, not process-global: the serving plane traces forward plans on
# its worker threads while a co-running training thread traces client steps,
# and a shared global would splice one thread's ops into the other's tape.
# Single-threaded behaviour is unchanged (one local slot, same lifecycle).
_TRACING_STATE = threading.local()


def active_tape() -> Optional["Tape"]:
    return getattr(_TRACING_STATE, "tape", None)


@contextlib.contextmanager
def tracing(tape: "Tape"):
    """Record every op applied in this context onto ``tape`` (this thread only)."""
    if getattr(_TRACING_STATE, "tape", None) is not None:
        raise RuntimeError("nested tracing is not supported")
    _TRACING_STATE.tape = tape
    try:
        yield tape
    finally:
        _TRACING_STATE.tape = None


class Tape:
    """A recording of op applications over integer tensor slots.

    Slots are assigned on first sight; the tape keeps a strong reference to
    every tensor it slots, so traced leaves (parameters, constants) stay alive
    and their ``id()`` keys stay stable for the plan's lifetime.
    """

    def __init__(self) -> None:
        self.records: List[OpRecord] = []
        self._slots: Dict[int, int] = {}  # id(tensor) -> slot
        self._tensors: List[Any] = []  # slot -> tensor
        self._dynamic: Dict[int, str] = {}  # id(obj) -> dynamic name
        self._dynamic_values: Dict[str, Any] = {}  # name -> traced object
        self._inputs: Dict[str, int] = {}  # input name -> slot

    def register_dynamic(self, name: str, obj: Any) -> None:
        """Mark ``obj`` (an array, rng, or buffer) as a per-replay binding.

        Anywhere ``obj`` appears in an op's kwargs it is recorded as a
        :class:`DynRef` instead of a constant, and replays may rebind it.
        """
        self._dynamic[id(obj)] = name
        self._dynamic_values[name] = obj

    def mark_input(self, name: str, tensor: Any) -> None:
        """Mark a leaf tensor (the batch images) as a named plan input."""
        self._inputs[name] = self._slot_for(tensor)

    def _slot_for(self, tensor: Any) -> int:
        slot = self._slots.get(id(tensor))
        if slot is None:
            slot = len(self._tensors)
            self._slots[id(tensor)] = slot
            self._tensors.append(tensor)
        return slot

    def _scan_value(self, value: Any) -> Any:
        name = self._dynamic.get(id(value))
        if name is not None:
            return DynRef(name)
        if isinstance(value, tuple):
            return tuple(self._scan_value(v) for v in value)
        return value

    def _scan_kwargs(self, kwargs: Dict[str, Any]) -> Dict[str, Any]:
        if not kwargs:
            return kwargs
        return {k: self._scan_value(v) for k, v in kwargs.items()}

    def record(self, op: Op, inputs: Sequence[Any], out: Any, kwargs: Dict[str, Any]) -> None:
        self.records.append(
            OpRecord(
                op=op,
                input_slots=tuple(self._slot_for(t) for t in inputs),
                out_slot=self._slot_for(out),
                kwargs=self._scan_kwargs(kwargs),
                needs=tuple(t.requires_grad for t in inputs),
                out_requires=out.requires_grad,
                parent_slots=tuple(self._slot_for(p) for p in out._parents),
                in_shapes=tuple(t.data.shape for t in inputs),
                out_shape=out.data.shape,
                out_dtype=out.data.dtype,
            )
        )

    def record_effect(self, op: Op, inputs: Sequence[Any], kwargs: Dict[str, Any]) -> None:
        self.records.append(
            OpRecord(
                op=op,
                input_slots=tuple(self._slot_for(t) for t in inputs),
                out_slot=None,
                kwargs=self._scan_kwargs(kwargs),
                needs=(False,) * len(inputs),
                out_requires=False,
                parent_slots=(),
                in_shapes=tuple(t.data.shape for t in inputs),
                out_shape=None,
                out_dtype=None,
            )
        )


def _resolve_value(value: Any, dyn: Dict[str, Any]) -> Any:
    if isinstance(value, DynRef):
        return dyn[value.name]
    if isinstance(value, tuple):
        return tuple(_resolve_value(v, dyn) for v in value)
    return value


def _resolve_kwargs(kwargs: Dict[str, Any], dyn: Dict[str, Any]) -> Dict[str, Any]:
    if not kwargs:
        return kwargs
    return {k: _resolve_value(v, dyn) for k, v in kwargs.items()}


def _dyn_flags(value: Any) -> Any:
    """Mirror a recorded kwarg value with True where a DynRef sits."""
    if isinstance(value, DynRef):
        return True
    if isinstance(value, tuple):
        return tuple(_dyn_flags(v) for v in value)
    return False


def _contains_dynref(value: Any) -> bool:
    if isinstance(value, DynRef):
        return True
    if isinstance(value, tuple):
        return any(_contains_dynref(v) for v in value)
    return False


# --------------------------------------------------------------------------- #
# Compiled plans
# --------------------------------------------------------------------------- #
class Plan:
    """One traced client step compiled for replay.

    The forward program is the record list in chronological order (including
    effect records such as batch-norm running-stat updates); the backward
    schedule is the slot-level topological order computed with the *identical*
    iterative DFS :meth:`Tensor.backward` uses, so a replayed backward visits
    records and accumulates gradients in exactly the same order as eager —
    tape-mode replay is bit-for-bit.

    Compile before calling ``loss.backward()``: backward frees the graph.
    """

    def __init__(self, tape: Tape, loss: Any, optimize: Optional[bool] = None) -> None:
        self.tape = tape
        self.records = tape.records
        loss_slot = tape._slots.get(id(loss))
        if loss_slot is None:
            raise PlanError("loss tensor was not produced under this tape")
        self.loss_slot = loss_slot
        self.n_slots = len(tape._tensors)
        self.input_slots: Dict[str, int] = dict(tape._inputs)

        self.rec_for_slot: Dict[int, OpRecord] = {}
        self._rec_index: Dict[int, int] = {id(rec): i for i, rec in enumerate(self.records)}
        produced = set()
        for rec in self.records:
            if rec.out_slot is not None:
                self.rec_for_slot[rec.out_slot] = rec
                produced.add(rec.out_slot)

        # Leaf classification: marked inputs, parameters, constants.
        from repro.nn.module import Parameter  # local: nn imports autograd

        input_slot_set = set(self.input_slots.values())
        self.param_leaves: List[Tuple[int, Any]] = []
        self.const_leaves: List[Tuple[int, Any]] = []
        for slot, tensor in enumerate(tape._tensors):
            if slot in produced or slot in input_slot_set:
                continue
            if isinstance(tensor, Parameter):
                self.param_leaves.append((slot, tensor))
            else:
                self.const_leaves.append((slot, tensor))

        # Backward schedule: the same (node, processed) DFS as Tensor.backward,
        # walked over the live graph and frozen as a slot list.
        order: List[Any] = []
        visited = set()
        stack: List[Tuple[Any, bool]] = [(loss, False)]
        while stack:
            node, is_processed = stack.pop()
            if is_processed:
                order.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in visited:
                    stack.append((parent, False))
        slots = tape._slots
        try:
            self.order = [slots[id(node)] for node in order]
        except KeyError:
            raise PlanError(
                "loss graph reaches tensors created outside the traced step"
            ) from None

        self._interior = {
            s for s in self.order if s in self.rec_for_slot and self.rec_for_slot[s].out_requires
        }
        self._leaf_dtype = {slot: t.data.dtype for slot, t in self.param_leaves}
        # Any requires-grad leaf that is not a Parameter would accumulate into
        # a tensor the caller cannot see; refuse to compile rather than lose
        # gradients silently.
        for slot, tensor in self.const_leaves:
            if tensor.requires_grad:
                raise PlanError("traced step has a trainable non-parameter leaf")
        if self.input_slots:
            for name, slot in self.input_slots.items():
                if self.tape._tensors[slot].requires_grad:
                    raise PlanError(f"plan input {name!r} must not require grad")

        self._batched_flags: Optional[List[Tuple[Tuple[bool, ...], bool]]] = None
        self._batched_param_slots: Optional[frozenset] = None
        self._rng_objects: Optional[List[np.random.Generator]] = None

        # Optimizer passes (DCE / liveness / arena / fusion): bit-for-bit with
        # unoptimized replay, controlled by the process knob unless overridden.
        self.opt = None
        if optimize if optimize is not None else get_plan_optimize():
            from repro.autograd import planopt  # local: planopt imports tape

            self.opt = planopt.optimize_plan(self)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def rng_objects(self) -> List[np.random.Generator]:
        """Every numpy Generator appearing in recorded kwargs (for rewinds)."""
        if self._rng_objects is None:
            found: List[np.random.Generator] = []
            seen = set()

            def visit(value: Any) -> None:
                if isinstance(value, DynRef):
                    value = self.tape._dynamic_values[value.name]
                if isinstance(value, tuple):
                    for item in value:
                        visit(item)
                    return
                if isinstance(value, np.random.Generator) and id(value) not in seen:
                    seen.add(id(value))
                    found.append(value)

            for rec in self.records:
                for value in rec.kwargs.values():
                    visit(value)
            self._rng_objects = found
        return self._rng_objects

    def grad_for(self, param: Any, leaf_grads: Dict[int, np.ndarray]) -> Optional[np.ndarray]:
        for slot, p in self.param_leaves:
            if p is param:
                return leaf_grads.get(slot)
        return None

    # ------------------------------------------------------------------ #
    # Tape-mode (per-client) replay
    # ------------------------------------------------------------------ #
    def execute(self, bindings: Dict[str, Any]) -> Tuple[np.ndarray, Dict[int, np.ndarray]]:
        """Replay the step with ``bindings`` overriding inputs/dynamics.

        Unspecified names default to the traced objects (so buffers keep
        updating in place and rng streams continue).  Returns the loss value
        and per-leaf-slot gradients, accumulated exactly as eager would.

        When the plan was compiled with the optimizer passes, leaf gradients
        are served from per-plan accumulator buffers that are overwritten by
        the next ``execute`` call — consume (or copy) them before replaying
        again.
        """
        if self.opt is not None:
            return self.opt.execute(bindings)
        env: List[Any] = [None] * self.n_slots
        for slot, param in self.param_leaves:
            env[slot] = param.data
        for slot, tensor in self.const_leaves:
            env[slot] = tensor.data
        for name, slot in self.input_slots.items():
            value = bindings.get(name)
            env[slot] = value if value is not None else self.tape._tensors[slot].data
        dyn = {
            name: bindings.get(name, traced)
            for name, traced in self.tape._dynamic_values.items()
        }

        ctxs: List[Optional[OpContext]] = [None] * len(self.records)
        for i, rec in enumerate(self.records):
            kwargs = _resolve_kwargs(rec.kwargs, dyn)
            ctx = OpContext()
            result = rec.op.forward(ctx, *(env[s] for s in rec.input_slots), **kwargs)
            if rec.out_slot is not None:
                # Mirror Tensor.__init__'s asarray so replayed intermediates
                # match eager dtype/0-d handling exactly.
                env[rec.out_slot] = np.asarray(result, dtype=rec.out_dtype)
                ctxs[i] = ctx
        leaf_grads = self._replay_backward(env, ctxs, batched=False)
        return env[self.loss_slot], leaf_grads

    def apply_grads(self, leaf_grads: Dict[int, np.ndarray]) -> None:
        """Fold replayed gradients into ``param.grad`` (mirrors _accumulate)."""
        for slot, param in self.param_leaves:
            grad = leaf_grads.get(slot)
            if grad is None:
                continue
            if param.grad is None:
                param.grad = grad
            else:
                param.grad = param.grad + grad

    def _replay_backward(
        self,
        env: List[Any],
        ctxs: List[Optional[OpContext]],
        batched: bool,
        k: int = 0,
    ) -> Dict[int, np.ndarray]:
        loss_value = env[self.loss_slot]
        if batched:
            seed = np.ones(loss_value.shape, dtype=loss_value.dtype)
        else:
            seed = np.ones_like(loss_value)
        grads: Dict[int, np.ndarray] = {self.loss_slot: seed}
        leaf_grads: Dict[int, np.ndarray] = {}
        interior = self._interior
        rec_index = self._rec_index

        def accumulate(slot: int, grad: np.ndarray) -> None:
            existing = leaf_grads.get(slot)
            if existing is None:
                dtype = self._leaf_dtype.get(slot)
                leaf_grads[slot] = (
                    grad.astype(dtype, copy=True) if dtype is not None else grad
                )
            else:
                leaf_grads[slot] = existing + grad

        for slot in reversed(self.order):
            node_grad = grads.pop(slot, None)
            if node_grad is None:
                continue
            rec = self.rec_for_slot.get(slot)
            if rec is None or not rec.out_requires:
                accumulate(slot, node_grad)
                continue
            ctx = ctxs[rec_index[id(rec)]]
            if batched:
                input_grads = self._batched_vjp(rec, ctx, node_grad, k)
            else:
                input_grads = rec.op.vjp(ctx, node_grad, rec.needs)
            # Mirror _send_grad: leaves accumulate immediately, interior
            # slots stash pending gradients folded in parent order below.
            pending: Dict[int, np.ndarray] = {}
            for in_slot, grad in zip(rec.input_slots, input_grads):
                if grad is None:
                    continue
                if in_slot in interior:
                    stashed = pending.get(in_slot)
                    pending[in_slot] = grad if stashed is None else stashed + grad
                else:
                    accumulate(in_slot, grad)
            for parent_slot in rec.parent_slots:
                stashed = pending.pop(parent_slot, None)
                if stashed is not None:
                    existing = grads.get(parent_slot)
                    grads[parent_slot] = (
                        stashed if existing is None else existing + stashed
                    )
        for slot in self.order:
            remaining = grads.pop(slot, None)
            if remaining is not None:
                accumulate(slot, remaining)
        return leaf_grads

    # ------------------------------------------------------------------ #
    # Batched (lockstep) replay
    # ------------------------------------------------------------------ #
    def prepare_batched(self, batched_param_slots: Sequence[int]) -> None:
        """Analyze batchability given which parameter slots will be stacked.

        Propagates the batched flag from stacked params, marked inputs and
        dynamic bindings through every record, validating each touched op's
        batch rule.  Raises :class:`PlanNotBatchable` with the reason.
        """
        batched = set(batched_param_slots) | set(self.input_slots.values())
        stacked_params = frozenset(batched_param_slots)
        for slot, param in self.param_leaves:
            if param.requires_grad and slot not in stacked_params:
                raise PlanNotBatchable("trainable parameter outside the stacked set")
        if self.rng_objects:
            raise PlanNotBatchable("plan consumes rng streams (dropout active)")
        flags: List[Tuple[Tuple[bool, ...], bool]] = []
        for rec in self.records:
            in_batched = tuple(s in batched for s in rec.input_slots)
            dyn_batched = any(_contains_dynref(v) for v in rec.kwargs.values())
            out_batched = any(in_batched) or dyn_batched
            if out_batched:
                if rec.out_slot is None:
                    if rec.op.batched_forward is None:
                        raise PlanNotBatchable(
                            f"effect op {rec.op.name!r} has no batched variant"
                        )
                else:
                    if rec.op.batch_rule is None and rec.op.batched_forward is None:
                        raise PlanNotBatchable(f"op {rec.op.name!r} is not batchable")
                    if rec.op.batch_check is not None and not rec.op.batch_check(rec):
                        raise PlanNotBatchable(
                            f"op {rec.op.name!r} record shape/index form is not batchable"
                        )
                    batched.add(rec.out_slot)
            flags.append((in_batched, out_batched))
        if self.loss_slot not in batched:
            raise PlanNotBatchable("loss does not depend on batched state")
        self._batched_flags = flags
        self._batched_param_slots = stacked_params

    def execute_batched(
        self,
        k: int,
        bindings: Dict[str, Any],
        param_stacks: Dict[int, np.ndarray],
    ) -> Tuple[np.ndarray, Dict[int, np.ndarray]]:
        """Replay the step for K clients at once.

        ``bindings`` must provide a stacked ``(K,) + shape`` array for every
        plan input and dynamic name; ``param_stacks`` maps the slots passed to
        :meth:`prepare_batched` to stacked parameter arrays (mutated in place
        by the caller's optimizer between steps).  Returns the per-client loss
        vector and stacked leaf gradients.

        Elementwise arithmetic is bit-for-bit with eager per client; matmul
        and reductions over stacked operands may differ at accumulation-order
        level (documented float tolerance of the batched path).
        """
        if self._batched_flags is None:
            raise PlanError("call prepare_batched() before execute_batched()")
        if set(param_stacks) != set(self._batched_param_slots):
            raise PlanError("param_stacks does not match the prepared slot set")
        if self.opt is not None:
            return self.opt.execute_batched(k, bindings, param_stacks)
        env: List[Any] = [None] * self.n_slots
        stacked = self._batched_param_slots
        for slot, param in self.param_leaves:
            env[slot] = param_stacks[slot] if slot in stacked else param.data
        for slot, tensor in self.const_leaves:
            env[slot] = tensor.data
        for name, slot in self.input_slots.items():
            env[slot] = bindings[name]
        dyn = {name: bindings[name] for name in self.tape._dynamic_values}

        ctxs: List[Optional[OpContext]] = [None] * len(self.records)
        infos: List[Optional[BatchInfo]] = [None] * len(self.records)
        for i, rec in enumerate(self.records):
            in_batched, out_batched = self._batched_flags[i]
            kwargs = _resolve_kwargs(rec.kwargs, dyn)
            args = [env[s] for s in rec.input_slots]
            ctx = OpContext()
            if not out_batched:
                result = rec.op.forward(ctx, *args, **kwargs)
                if rec.out_slot is not None:
                    env[rec.out_slot] = np.asarray(result, dtype=rec.out_dtype)
                    ctxs[i] = ctx
                continue
            info = BatchInfo(
                k=k,
                in_shapes=rec.in_shapes,
                out_shape=rec.out_shape,
                in_batched=in_batched,
                dyn_kwargs={key: _dyn_flags(v) for key, v in rec.kwargs.items()},
            )
            infos[i] = info
            if rec.out_slot is None:
                # Effect record: all operands stacked, batched variant updates
                # the stacked buffers bound through `dyn`.
                batched_args = [
                    a if b else np.broadcast_to(a, (k,) + a.shape)
                    for a, b in zip(args, in_batched)
                ]
                rec.op.batched_forward(ctx, info, *batched_args, **kwargs)
                continue
            if rec.op.batched_forward is not None:
                batched_args = [
                    a if b else np.broadcast_to(a, (k,) + a.shape)
                    for a, b in zip(args, in_batched)
                ]
                result = rec.op.batched_forward(ctx, info, *batched_args, **kwargs)
            elif rec.op.batch_rule == "axis":
                if rec.op.batch_kwargs is not None:
                    kwargs = rec.op.batch_kwargs(kwargs, info)
                batched_args = [
                    a if b else np.broadcast_to(a, (k,) + a.shape)
                    for a, b in zip(args, in_batched)
                ]
                result = rec.op.forward(ctx, *batched_args, **kwargs)
            else:  # "pad"
                if rec.op.batch_kwargs is not None:
                    kwargs = rec.op.batch_kwargs(kwargs, info)
                target = 1 + len(rec.out_shape)
                padded_args = []
                for a, b in zip(args, in_batched):
                    if b and a.ndim < target:
                        need = target - a.ndim
                        a = a.reshape(a.shape[:1] + (1,) * need + a.shape[1:])
                    padded_args.append(a)
                result = rec.op.forward(ctx, *padded_args, **kwargs)
            env[rec.out_slot] = np.asarray(result, dtype=rec.out_dtype)
            ctxs[i] = ctx
        leaf_grads = self._replay_backward(env, ctxs, batched=True, k=k)
        return env[self.loss_slot], leaf_grads

    def _batched_vjp(
        self, rec: OpRecord, ctx: OpContext, grad: np.ndarray, k: int
    ) -> Sequence[Optional[np.ndarray]]:
        if rec.op.batched_vjp is not None:
            input_grads = rec.op.batched_vjp(ctx, grad, rec.needs)
        else:
            input_grads = rec.op.vjp(ctx, grad, rec.needs)
        # Normalise every batched input's gradient to (K,) + traced shape so
        # accumulation across records lines up slot-by-slot.
        normalised = []
        for idx, g in enumerate(input_grads):
            if g is None:
                normalised.append(None)
                continue
            want = (k,) + rec.in_shapes[idx]
            if g.shape != want:
                g = g.reshape(want)
            normalised.append(g)
        return normalised


class PlanCache:
    """LRU-bounded keyed plan store with hit/miss/evict counters.

    Shape-churn workloads (per-client batch remainders, growing populations)
    previously grew the per-call cache without limit; the LRU bound keeps the
    steady-state footprint flat while the counters surface cache behaviour
    through :class:`~repro.federated.lockstep.LockstepTelemetry`.
    """

    def __init__(self, max_plans: int = 32) -> None:
        if max_plans < 1:
            raise ValueError("max_plans must be >= 1")
        self._plans: "OrderedDict[Any, Any]" = OrderedDict()
        self.max_plans = max_plans
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(self, key: Any) -> Optional[Any]:
        plan = self._plans.get(key)
        if plan is None:
            self.misses += 1
        else:
            self.hits += 1
            self._plans.move_to_end(key)
        return plan

    def put(self, key: Any, plan: Any) -> None:
        self._plans[key] = plan
        self._plans.move_to_end(key)
        while len(self._plans) > self.max_plans:
            self._plans.popitem(last=False)
            self.evictions += 1

    def __len__(self) -> int:
        return len(self._plans)


# Memoized fingerprints keyed by model identity.  The probe captures what the
# full fingerprint depends on — parameter objects, their storage identity and
# trainability — via the registration dicts (no name-string building), so a
# swapped head, ``freeze()``/``unfreeze()`` or a ``Parameter.data`` rebind all
# miss the memo and rebuild.  In-place ``data[...]`` updates (the SGD step)
# keep ``id(p.data)`` stable, which is exactly the hot-path case the memo
# serves.  A weakref finalizer evicts entries when the model is collected, so
# ``id(model)`` reuse cannot alias a dead entry.
_FINGERPRINTS: Dict[int, Tuple[Any, Tuple, Tuple]] = {}


def _fingerprint_probe(model: Any) -> Tuple:
    rows = []
    stack = [model]
    while stack:
        module = stack.pop()
        for p in module._parameters.values():
            rows.append((id(p), id(p.data), p.requires_grad))
        stack.extend(module._modules.values())
    return tuple(rows)


def model_fingerprint(model: Any) -> Tuple:
    """Structural identity of a model: (name, shape, dtype, trainable) rows."""
    try:
        probe = _fingerprint_probe(model)
    except AttributeError:
        # Not a Module-shaped object; fall back to the direct build.
        return tuple(
            (name, tuple(p.data.shape), str(p.data.dtype), bool(p.requires_grad))
            for name, p in model.named_parameters()
        )
    key = id(model)
    cached = _FINGERPRINTS.get(key)
    if cached is not None and cached[1] == probe:
        return cached[2]
    fingerprint = tuple(
        (name, tuple(p.data.shape), str(p.data.dtype), bool(p.requires_grad))
        for name, p in model.named_parameters()
    )
    ref = weakref.ref(model, lambda _ref, _key=key: _FINGERPRINTS.pop(_key, None))
    _FINGERPRINTS[key] = (ref, probe, fingerprint)
    return fingerprint


def plan_key(model: Any, images: np.ndarray, labels: np.ndarray) -> Tuple:
    """Cache key for one traced step: model fingerprint + batch shape/dtype."""
    return (
        model_fingerprint(model),
        tuple(images.shape),
        str(images.dtype),
        tuple(labels.shape),
        str(labels.dtype),
    )


# --------------------------------------------------------------------------- #
# Batch-kwarg remappers shared by the tensor-op table
# --------------------------------------------------------------------------- #
def _remap_reduce_axis(axis: Any, in_ndim: int) -> Any:
    """Shift reduction axes one position right for the leading client axis."""
    if axis is None:
        return tuple(range(1, 1 + in_ndim))
    if isinstance(axis, tuple):
        return tuple(a + 1 if a >= 0 else a for a in axis)
    return axis + 1 if axis >= 0 else axis


def _batch_kwargs_reduce(kwargs: Dict[str, Any], info: BatchInfo) -> Dict[str, Any]:
    out = dict(kwargs)
    out["axis"] = _remap_reduce_axis(kwargs["axis"], len(info.in_shapes[0]))
    return out


def _batch_kwargs_reshape(kwargs: Dict[str, Any], info: BatchInfo) -> Dict[str, Any]:
    return {"shape": (info.k,) + tuple(kwargs["shape"])}


def _batch_kwargs_transpose(kwargs: Dict[str, Any], info: BatchInfo) -> Dict[str, Any]:
    ndim = len(info.in_shapes[0])
    return {"axes": (0,) + tuple(a % ndim + 1 for a in kwargs["axes"])}


def _batch_kwargs_broadcast(kwargs: Dict[str, Any], info: BatchInfo) -> Dict[str, Any]:
    return {"shape": (info.k,) + tuple(kwargs["shape"])}


def _batch_kwargs_expand_dims(kwargs: Dict[str, Any], info: BatchInfo) -> Dict[str, Any]:
    axis = kwargs["axis"]
    return {"axis": axis + 1 if axis >= 0 else axis}


def _batch_kwargs_squeeze(kwargs: Dict[str, Any], info: BatchInfo) -> Dict[str, Any]:
    axis = kwargs["axis"]
    if axis is None:
        # K >= 2 in lockstep, so squeezing all singleton axes never drops the
        # client axis.
        return {"axis": None}
    return {"axis": axis + 1 if axis >= 0 else axis}


def _batch_kwargs_join(kwargs: Dict[str, Any], info: BatchInfo) -> Dict[str, Any]:
    axis = kwargs["axis"]
    return {"axis": axis + 1 if axis >= 0 else axis}


def _batch_kwargs_pad(kwargs: Dict[str, Any], info: BatchInfo) -> Dict[str, Any]:
    out = dict(kwargs)
    out["pad_width"] = ((0, 0),) + tuple(tuple(p) for p in kwargs["pad_width"])
    return out


# --------------------------------------------------------------------------- #
# The tensor-op table.  Every forward/vjp body reproduces the numpy
# expressions of the former inline closures verbatim — eager parity is by
# construction, not by test alone.
# --------------------------------------------------------------------------- #
def _add_forward(ctx, a, b):
    ctx.a_shape = a.shape
    ctx.b_shape = b.shape
    return a + b


def _add_vjp(ctx, grad, needs):
    return (
        unbroadcast(grad, ctx.a_shape) if needs[0] else None,
        unbroadcast(grad, ctx.b_shape) if needs[1] else None,
    )


def _sub_forward(ctx, a, b):
    ctx.a_shape = a.shape
    ctx.b_shape = b.shape
    return a - b


def _sub_vjp(ctx, grad, needs):
    return (
        unbroadcast(grad, ctx.a_shape) if needs[0] else None,
        unbroadcast(-grad, ctx.b_shape) if needs[1] else None,
    )


def _mul_forward(ctx, a, b):
    ctx.a = a
    ctx.b = b
    return a * b


def _mul_vjp(ctx, grad, needs):
    return (
        unbroadcast(grad * ctx.b, ctx.a.shape) if needs[0] else None,
        unbroadcast(grad * ctx.a, ctx.b.shape) if needs[1] else None,
    )


def _div_forward(ctx, a, b):
    ctx.a = a
    ctx.b = b
    return a / b


def _div_vjp(ctx, grad, needs):
    return (
        unbroadcast(grad / ctx.b, ctx.a.shape) if needs[0] else None,
        unbroadcast(-grad * ctx.a / (ctx.b ** 2), ctx.b.shape) if needs[1] else None,
    )


def _neg_forward(ctx, a):
    return -a


def _neg_vjp(ctx, grad, needs):
    return (-grad,)


def _pow_forward(ctx, a, *, exponent):
    ctx.a = a
    ctx.exponent = exponent
    return a ** exponent


def _pow_vjp(ctx, grad, needs):
    return (grad * ctx.exponent * ctx.a ** (ctx.exponent - 1),)


def _matmul_forward(ctx, a, b):
    ctx.a = a
    ctx.b = b
    return np.matmul(a, b)


def _matmul_vjp(ctx, grad, needs):
    a, b = ctx.a, ctx.b
    if a.ndim == 1 and b.ndim == 1:
        return (grad * b if needs[0] else None, grad * a if needs[1] else None)
    a_mat = a[None, :] if a.ndim == 1 else a
    b_mat = b[:, None] if b.ndim == 1 else b
    grad_mat = grad
    if a.ndim == 1:
        grad_mat = np.expand_dims(grad_mat, -2)
    if b.ndim == 1:
        grad_mat = np.expand_dims(grad_mat, -1)
    grad_a = grad_b = None
    if needs[0]:
        grad_a = np.matmul(grad_mat, np.swapaxes(b_mat, -1, -2))
        if a.ndim == 1:
            grad_a = np.squeeze(grad_a, -2)
        grad_a = unbroadcast(grad_a, a.shape)
    if needs[1]:
        grad_b = np.matmul(np.swapaxes(a_mat, -1, -2), grad_mat)
        if b.ndim == 1:
            grad_b = np.squeeze(grad_b, -1)
        grad_b = unbroadcast(grad_b, b.shape)
    return (grad_a, grad_b)


def _matmul_batch_check(rec: OpRecord) -> bool:
    # The 1-D special cases cannot take a leading client axis.
    return all(len(shape) >= 2 for shape in rec.in_shapes)


def _exp_forward(ctx, a):
    out = np.exp(a)
    ctx.out = out
    return out


def _exp_vjp(ctx, grad, needs):
    return (grad * ctx.out,)


def _log_forward(ctx, a):
    ctx.a = a
    return np.log(a)


def _log_vjp(ctx, grad, needs):
    return (grad / ctx.a,)


def _sqrt_forward(ctx, a):
    out = np.sqrt(a)
    ctx.out = out
    return out


def _sqrt_vjp(ctx, grad, needs):
    return (grad * 0.5 / np.maximum(ctx.out, 1e-12),)


def _tanh_forward(ctx, a):
    out = np.tanh(a)
    ctx.out = out
    return out


def _tanh_vjp(ctx, grad, needs):
    return (grad * (1.0 - ctx.out ** 2),)


def _sigmoid_forward(ctx, a):
    out = 1.0 / (1.0 + np.exp(-a))
    ctx.out = out
    return out


def _sigmoid_vjp(ctx, grad, needs):
    return (grad * ctx.out * (1.0 - ctx.out),)


def _relu_forward(ctx, a):
    mask = a > 0
    ctx.mask = mask
    return a * mask


def _relu_vjp(ctx, grad, needs):
    return (grad * ctx.mask,)


def _abs_forward(ctx, a):
    ctx.sign = np.sign(a)
    return np.abs(a)


def _abs_vjp(ctx, grad, needs):
    return (grad * ctx.sign,)


def _clip_forward(ctx, a, *, minimum, maximum):
    ctx.mask = (a >= minimum) & (a <= maximum)
    return np.clip(a, minimum, maximum)


def _clip_vjp(ctx, grad, needs):
    return (grad * ctx.mask,)


def _sum_forward(ctx, a, *, axis, keepdims):
    ctx.in_shape = a.shape
    ctx.in_ndim = a.ndim
    ctx.axis = axis
    ctx.keepdims = keepdims
    return a.sum(axis=axis, keepdims=keepdims)


def _sum_vjp(ctx, grad, needs):
    expanded = grad
    if ctx.axis is not None and not ctx.keepdims:
        axes = ctx.axis if isinstance(ctx.axis, tuple) else (ctx.axis,)
        axes = tuple(a % ctx.in_ndim for a in axes)
        for a in sorted(axes):
            expanded = np.expand_dims(expanded, a)
    return (np.broadcast_to(expanded, ctx.in_shape).copy(),)


def _max_forward(ctx, a, *, axis, keepdims):
    ctx.a = a
    ctx.axis = axis
    ctx.keepdims = keepdims
    return a.max(axis=axis, keepdims=keepdims)


def _max_vjp(ctx, grad, needs):
    a, axis, keepdims = ctx.a, ctx.axis, ctx.keepdims
    expanded_data = a.max(axis=axis, keepdims=True)
    mask = (a == expanded_data).astype(a.dtype)
    mask = mask / np.maximum(mask.sum(axis=axis, keepdims=True), 1.0)
    expanded_grad = grad
    if axis is not None and not keepdims:
        axes = axis if isinstance(axis, tuple) else (axis,)
        for ax in sorted(ax % a.ndim for ax in axes):
            expanded_grad = np.expand_dims(expanded_grad, ax)
    return (mask * expanded_grad,)


def _reshape_forward(ctx, a, *, shape):
    ctx.in_shape = a.shape
    return a.reshape(shape)


def _reshape_vjp(ctx, grad, needs):
    return (grad.reshape(ctx.in_shape),)


def _transpose_forward(ctx, a, *, axes):
    ctx.inverse = np.argsort(axes)
    return a.transpose(axes)


def _transpose_vjp(ctx, grad, needs):
    return (grad.transpose(ctx.inverse),)


def _expand_dims_forward(ctx, a, *, axis):
    ctx.axis = axis
    return np.expand_dims(a, axis)


def _expand_dims_vjp(ctx, grad, needs):
    return (np.squeeze(grad, ctx.axis),)


def _squeeze_forward(ctx, a, *, axis):
    ctx.in_shape = a.shape
    return np.squeeze(a, axis) if axis is not None else np.squeeze(a)


def _squeeze_vjp(ctx, grad, needs):
    return (grad.reshape(ctx.in_shape),)


def _broadcast_to_forward(ctx, a, *, shape):
    ctx.in_shape = a.shape
    return np.broadcast_to(a, shape).copy()


def _broadcast_to_vjp(ctx, grad, needs):
    return (unbroadcast(grad, ctx.in_shape),)


def _getitem_forward(ctx, a, *, index):
    ctx.a = a
    ctx.index = index
    return a[index]


def _getitem_vjp(ctx, grad, needs):
    full = np.zeros_like(ctx.a)
    np.add.at(full, ctx.index, grad)
    return (full,)


def _getitem_batch_check(rec: OpRecord) -> bool:
    index = rec.kwargs["index"]
    elements = index if isinstance(index, tuple) else (index,)
    has_advanced = any(isinstance(e, (np.ndarray, DynRef)) for e in elements)
    if not has_advanced:
        return True  # basic indexing: prepend slice(None)
    # Pure integer-array advanced indexing only; slices mixed with arrays (or
    # boolean masks) would need per-case placement logic.
    for element in elements:
        if isinstance(element, DynRef):
            continue  # dynamic label arrays are int64 by the tape path's contract
        if isinstance(element, np.ndarray) and element.dtype.kind in "iu":
            continue
        return False
    return True


def _getitem_batched_forward(ctx, info, a, *, index):
    elements = index if isinstance(index, tuple) else (index,)
    if not any(isinstance(e, np.ndarray) for e in elements):
        batched_index = (slice(None),) + tuple(elements)
    else:
        flags = info.dyn_kwargs.get("index", False)
        if not isinstance(flags, tuple):
            flags = (flags,)
        traced_ndim = len(info.in_shapes[0])
        rest = traced_ndim - len(elements)
        core_ndim = len(info.out_shape) - rest
        lead = np.arange(info.k).reshape((info.k,) + (1,) * core_ndim)
        parts = []
        for element, is_dyn in zip(elements, flags):
            part = np.asarray(element)
            if is_dyn:
                # Stacked (K,) + orig: insert singleton axes so the client
                # axis broadcasts against the static index arrays.
                pad = core_ndim - (part.ndim - 1)
                part = part.reshape(part.shape[:1] + (1,) * pad + part.shape[1:])
            parts.append(part)
        batched_index = (lead,) + tuple(parts)
    ctx.a_shape = a.shape
    ctx.a_dtype = a.dtype
    ctx.batched_index = batched_index
    return a[batched_index]


def _getitem_batched_vjp(ctx, grad, needs):
    full = np.zeros(ctx.a_shape, dtype=ctx.a_dtype)
    np.add.at(full, ctx.batched_index, grad)
    return (full,)


def _pad_forward(ctx, a, *, pad_width, constant):
    ctx.slices = tuple(
        slice(before, before + size) for (before, _), size in zip(pad_width, a.shape)
    )
    return np.pad(a, pad_width, mode="constant", constant_values=constant)


def _pad_vjp(ctx, grad, needs):
    return (grad[ctx.slices],)


def _concatenate_forward(ctx, *arrays, axis):
    ctx.axis = axis
    ctx.sizes = [a.shape[axis] for a in arrays]
    ctx.offsets = np.cumsum([0] + ctx.sizes)
    return np.concatenate(arrays, axis=axis)


def _concatenate_vjp(ctx, grad, needs):
    grads = []
    for i, (start, end) in enumerate(zip(ctx.offsets[:-1], ctx.offsets[1:])):
        if not needs[i]:
            grads.append(None)
            continue
        slicer = [slice(None)] * grad.ndim
        slicer[ctx.axis] = slice(start, end)
        grads.append(grad[tuple(slicer)])
    return tuple(grads)


def _stack_forward(ctx, *arrays, axis):
    ctx.axis = axis
    ctx.count = len(arrays)
    return np.stack(arrays, axis=axis)


def _stack_vjp(ctx, grad, needs):
    split = np.split(grad, ctx.count, axis=ctx.axis)
    return tuple(
        np.squeeze(piece, axis=ctx.axis) if needs[i] else None
        for i, piece in enumerate(split)
    )


def _detach_forward(ctx, a):
    return a


ADD = Op("add", _add_forward, _add_vjp)
SUB = Op("sub", _sub_forward, _sub_vjp)
MUL = Op("mul", _mul_forward, _mul_vjp)
DIV = Op("div", _div_forward, _div_vjp)
NEG = Op("neg", _neg_forward, _neg_vjp)
POW = Op("pow", _pow_forward, _pow_vjp)
MATMUL = Op("matmul", _matmul_forward, _matmul_vjp, batch_check=_matmul_batch_check)
EXP = Op("exp", _exp_forward, _exp_vjp)
LOG = Op("log", _log_forward, _log_vjp)
SQRT = Op("sqrt", _sqrt_forward, _sqrt_vjp)
TANH = Op("tanh", _tanh_forward, _tanh_vjp)
SIGMOID = Op("sigmoid", _sigmoid_forward, _sigmoid_vjp)
RELU = Op("relu", _relu_forward, _relu_vjp)
ABS = Op("abs", _abs_forward, _abs_vjp)
CLIP = Op("clip", _clip_forward, _clip_vjp)
SUM = Op("sum", _sum_forward, _sum_vjp, batch_rule="axis", batch_kwargs=_batch_kwargs_reduce)
MAX = Op("max", _max_forward, _max_vjp, batch_rule="axis", batch_kwargs=_batch_kwargs_reduce)
RESHAPE = Op(
    "reshape", _reshape_forward, _reshape_vjp, batch_rule="axis", batch_kwargs=_batch_kwargs_reshape
)
TRANSPOSE = Op(
    "transpose",
    _transpose_forward,
    _transpose_vjp,
    batch_rule="axis",
    batch_kwargs=_batch_kwargs_transpose,
)
EXPAND_DIMS = Op(
    "expand_dims",
    _expand_dims_forward,
    _expand_dims_vjp,
    batch_rule="axis",
    batch_kwargs=_batch_kwargs_expand_dims,
)
SQUEEZE = Op(
    "squeeze", _squeeze_forward, _squeeze_vjp, batch_rule="axis", batch_kwargs=_batch_kwargs_squeeze
)
BROADCAST_TO = Op(
    "broadcast_to",
    _broadcast_to_forward,
    _broadcast_to_vjp,
    batch_rule="pad",
    batch_kwargs=_batch_kwargs_broadcast,
)
GETITEM = Op(
    "getitem",
    _getitem_forward,
    _getitem_vjp,
    batch_rule="custom",
    batched_forward=_getitem_batched_forward,
    batched_vjp=_getitem_batched_vjp,
    batch_check=_getitem_batch_check,
)
PAD = Op("pad", _pad_forward, _pad_vjp, batch_rule="axis", batch_kwargs=_batch_kwargs_pad)
CONCATENATE = Op(
    "concatenate",
    _concatenate_forward,
    _concatenate_vjp,
    batch_rule="axis",
    batch_kwargs=_batch_kwargs_join,
)
STACK = Op(
    "stack", _stack_forward, _stack_vjp, batch_rule="axis", batch_kwargs=_batch_kwargs_join
)
DETACH = Op("detach", _detach_forward, None, batch_rule="axis", differentiable=False)


__all__ = [
    "Op",
    "OpContext",
    "OpRecord",
    "BatchInfo",
    "DynRef",
    "Tape",
    "Plan",
    "PlanCache",
    "PlanError",
    "PlanNotBatchable",
    "tracing",
    "active_tape",
    "unbroadcast",
    "get_kernel",
    "set_kernel",
    "kernel_mode",
    "KERNELS",
    "get_plan_optimize",
    "set_plan_optimize",
    "plan_optimize_mode",
    "model_fingerprint",
    "plan_key",
]
