"""FINCH: parameter-free clustering by first-neighbour relations.

Re-implementation of Sarfraz et al., *"Efficient Parameter-free Clustering
Using First Neighbor Relations"* (CVPR 2019), which the paper adopts for
server-side global prompt clustering because it needs no cluster-count
hyper-parameter and is cheap enough for a dynamic FL environment.

The core idea (paper Eq. 7): build an adjacency matrix that links sample
``m`` and ``j`` whenever one is the (cosine) first neighbour of the other or
they share a first neighbour, then take connected components as clusters.
FINCH recurses on the cluster means to build a hierarchy of successively
coarser partitions; RefFiL uses the first (finest) partition.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np


@dataclass
class FinchResult:
    """Outcome of a FINCH run.

    Attributes
    ----------
    partitions:
        One integer label array per hierarchy level (finest first); labels are
        contiguous from 0.
    num_clusters:
        Number of clusters at each hierarchy level.
    centroids:
        Mean feature vector of every cluster in the finest partition.
    """

    partitions: List[np.ndarray] = field(default_factory=list)
    num_clusters: List[int] = field(default_factory=list)
    centroids: Optional[np.ndarray] = None

    @property
    def finest(self) -> np.ndarray:
        if not self.partitions:
            raise ValueError("FINCH produced no partitions")
        return self.partitions[0]

    @property
    def coarsest(self) -> np.ndarray:
        if not self.partitions:
            raise ValueError("FINCH produced no partitions")
        return self.partitions[-1]


def _cosine_first_neighbors(features: np.ndarray) -> np.ndarray:
    """Index of each sample's nearest neighbour by cosine similarity (excluding itself)."""
    norms = np.linalg.norm(features, axis=1, keepdims=True)
    normalised = features / np.maximum(norms, 1e-12)
    similarity = normalised @ normalised.T
    np.fill_diagonal(similarity, -np.inf)
    return similarity.argmax(axis=1)


def first_neighbor_adjacency(features: np.ndarray) -> np.ndarray:
    """Symmetric FINCH adjacency matrix (paper Eq. 7).

    ``A[m, j] = 1`` iff ``j`` is the first neighbour of ``m``, or ``m`` is the
    first neighbour of ``j``, or ``m`` and ``j`` share the same first
    neighbour.
    """
    features = np.asarray(features, dtype=np.float64)
    n = features.shape[0]
    if n == 0:
        return np.zeros((0, 0), dtype=np.int64)
    if n == 1:
        return np.ones((1, 1), dtype=np.int64)
    neighbors = _cosine_first_neighbors(features)
    adjacency = np.zeros((n, n), dtype=np.int64)
    rows = np.arange(n)
    adjacency[rows, neighbors] = 1
    adjacency[neighbors, rows] = 1
    shared = neighbors[:, None] == neighbors[None, :]
    adjacency[shared] = 1
    np.fill_diagonal(adjacency, 1)
    return adjacency


def _connected_components(adjacency: np.ndarray) -> np.ndarray:
    """Label connected components of an undirected adjacency matrix."""
    n = adjacency.shape[0]
    labels = np.full(n, -1, dtype=np.int64)
    current = 0
    for start in range(n):
        if labels[start] != -1:
            continue
        stack = [start]
        labels[start] = current
        while stack:
            node = stack.pop()
            neighbors = np.flatnonzero(adjacency[node])
            for neighbor in neighbors:
                if labels[neighbor] == -1:
                    labels[neighbor] = current
                    stack.append(int(neighbor))
        current += 1
    return labels


def _cluster_means(features: np.ndarray, labels: np.ndarray) -> np.ndarray:
    """Mean feature vector per cluster label (labels assumed contiguous from 0)."""
    num_clusters = int(labels.max()) + 1
    means = np.zeros((num_clusters, features.shape[1]))
    for cluster in range(num_clusters):
        means[cluster] = features[labels == cluster].mean(axis=0)
    return means


def finch(features: np.ndarray, max_levels: int = 5) -> FinchResult:
    """Run FINCH clustering on row-vector ``features``.

    Parameters
    ----------
    features:
        Array of shape ``(n_samples, dim)``.
    max_levels:
        Safety bound on the number of recursive merge levels.

    Returns
    -------
    :class:`FinchResult` with the partition hierarchy (finest first).
    """
    features = np.asarray(features, dtype=np.float64)
    if features.ndim != 2:
        raise ValueError(f"features must be 2-D, got shape {features.shape}")
    n = features.shape[0]
    result = FinchResult()
    if n == 0:
        result.centroids = np.zeros((0, features.shape[1] if features.ndim == 2 else 0))
        return result
    if n == 1:
        result.partitions.append(np.zeros(1, dtype=np.int64))
        result.num_clusters.append(1)
        result.centroids = features.copy()
        return result

    current_features = features
    mapping = np.arange(n)
    for _ in range(max_levels):
        adjacency = first_neighbor_adjacency(current_features)
        cluster_labels = _connected_components(adjacency)
        sample_labels = cluster_labels[mapping]
        num_clusters = int(cluster_labels.max()) + 1
        if result.num_clusters and num_clusters >= result.num_clusters[-1]:
            break
        result.partitions.append(sample_labels)
        result.num_clusters.append(num_clusters)
        if num_clusters <= 2:
            break
        current_features = _cluster_means(current_features, cluster_labels)
        mapping = cluster_labels[mapping]
    result.centroids = _cluster_means(features, result.finest)
    return result


__all__ = ["finch", "first_neighbor_adjacency", "FinchResult"]
