"""Clustering substrate: the FINCH first-neighbour algorithm used for global prompt clustering."""

from repro.clustering.finch import finch, first_neighbor_adjacency, FinchResult

__all__ = ["finch", "first_neighbor_adjacency", "FinchResult"]
