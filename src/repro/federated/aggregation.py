"""FedAvg aggregation (McMahan et al., 2017), operating on flat state dicts.

Paper Algorithm 1, line 8: the server forms the next global model as the
data-size-weighted average of the selected participants' local models,
``theta^{r+1} = sum_m (|D_m| / |D|) theta^r_m``.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np


def staleness_weight(staleness: float, decay: float) -> float:
    """Polynomial staleness discount of FedAsync (Xie et al., 2019).

    ``(1 + staleness) ** (-decay)``: exactly ``1.0`` at staleness 0 and
    monotone non-increasing in staleness for any ``decay >= 0`` (``decay=0``
    disables the discount entirely).  ``staleness`` counts how many times the
    global model advanced between a client's dispatch and its arrival.
    """
    if staleness < 0:
        raise ValueError(f"staleness must be non-negative, got {staleness!r}")
    if decay < 0:
        raise ValueError(f"staleness decay must be non-negative, got {decay!r}")
    return float((1.0 + float(staleness)) ** (-float(decay)))


def weighted_average_arrays(arrays: Sequence[np.ndarray], weights: Sequence[float]) -> np.ndarray:
    """Weighted average of equally-shaped arrays with weights normalised to sum to one.

    The accumulation dtype follows the inputs: float inputs average in their
    own precision (so a float32 pipeline stays float32 through FedAvg instead
    of being silently upcast), anything else falls back to float64.
    """
    if len(arrays) == 0:
        raise ValueError("cannot average zero arrays")
    if len(arrays) != len(weights):
        raise ValueError("arrays and weights must have equal length")
    weights = np.asarray(weights, dtype=np.float64)
    if np.any(weights < 0):
        raise ValueError("aggregation weights must be non-negative")
    total = weights.sum()
    if total <= 0:
        raise ValueError("aggregation weights must not all be zero")
    weights = weights / total
    first = np.asarray(arrays[0])
    accum_dtype = first.dtype if first.dtype.kind == "f" else np.dtype(np.float64)
    result = np.zeros(first.shape, dtype=accum_dtype)
    for array, weight in zip(arrays, weights):
        array = np.asarray(array)
        if array.shape != result.shape:
            raise ValueError(f"shape mismatch in aggregation: {array.shape} vs {result.shape}")
        result += accum_dtype.type(weight) * array
    return result


def blend_states(
    base: Dict[str, np.ndarray],
    update: Dict[str, np.ndarray],
    mixing: float,
) -> Dict[str, np.ndarray]:
    """FedAsync's per-arrival blend over flat state dicts: ``(1-m) base + m update``.

    ``mixing`` must be in ``(0, 1]`` — typically a base rate discounted by
    :func:`staleness_weight`.  The blend runs through
    :func:`weighted_average_arrays`, so a float32 pipeline stays float32 (no
    silent upcast through the python-float coefficients).  The single source
    of the blend used by both :meth:`FederatedServer.apply_update` and
    :meth:`FederatedMethod.apply_async_update`.
    """
    if not 0.0 < mixing <= 1.0:
        raise ValueError(f"mixing rate must be in (0, 1], got {mixing!r}")
    if set(update) != set(base):
        raise ValueError("blended update has mismatching parameter names")
    return {
        key: weighted_average_arrays([base[key], update[key]], [1.0 - mixing, mixing])
        for key in base
    }


def fedavg(
    state_dicts: Sequence[Dict[str, np.ndarray]],
    num_samples: Sequence[int],
    scale: Optional[Sequence[float]] = None,
) -> Dict[str, np.ndarray]:
    """Data-size-weighted FedAvg over client state dicts.

    Every state dict must contain exactly the same keys (they all originate
    from broadcasting the same global model).  ``scale`` optionally multiplies
    each client's sample weight by a non-negative factor — the temporal
    plane's staleness-aware aggregation passes ``staleness_weight(...)`` per
    update here, so a stale upload counts for less than a fresh one of the
    same size.  ``scale=None`` (the default) is plain FedAvg, bit-for-bit.
    """
    if len(state_dicts) == 0:
        raise ValueError("fedavg requires at least one client update")
    if len(state_dicts) != len(num_samples):
        raise ValueError("state_dicts and num_samples must have equal length")
    reference_keys = set(state_dicts[0])
    for index, state in enumerate(state_dicts[1:], start=1):
        if set(state) != reference_keys:
            raise ValueError(f"client update {index} has mismatching parameter names")
    weights = [float(max(n, 0)) for n in num_samples]
    if scale is not None:
        if len(scale) != len(state_dicts):
            raise ValueError("scale and state_dicts must have equal length")
        if any(factor < 0 for factor in scale):
            raise ValueError("scale factors must be non-negative")
        weights = [weight * float(factor) for weight, factor in zip(weights, scale)]
    if sum(weights) <= 0:
        # Degenerate case (all clients report zero samples): fall back to uniform.
        weights = [1.0] * len(state_dicts)
    aggregated: Dict[str, np.ndarray] = {}
    for key in state_dicts[0]:
        aggregated[key] = weighted_average_arrays([state[key] for state in state_dicts], weights)
    return aggregated


__all__ = ["blend_states", "fedavg", "staleness_weight", "weighted_average_arrays"]
