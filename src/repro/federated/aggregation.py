"""FedAvg aggregation (McMahan et al., 2017), operating on flat state dicts.

Paper Algorithm 1, line 8: the server forms the next global model as the
data-size-weighted average of the selected participants' local models,
``theta^{r+1} = sum_m (|D_m| / |D|) theta^r_m``.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np


def weighted_average_arrays(arrays: Sequence[np.ndarray], weights: Sequence[float]) -> np.ndarray:
    """Weighted average of equally-shaped arrays with weights normalised to sum to one.

    The accumulation dtype follows the inputs: float inputs average in their
    own precision (so a float32 pipeline stays float32 through FedAvg instead
    of being silently upcast), anything else falls back to float64.
    """
    if len(arrays) == 0:
        raise ValueError("cannot average zero arrays")
    if len(arrays) != len(weights):
        raise ValueError("arrays and weights must have equal length")
    weights = np.asarray(weights, dtype=np.float64)
    if np.any(weights < 0):
        raise ValueError("aggregation weights must be non-negative")
    total = weights.sum()
    if total <= 0:
        raise ValueError("aggregation weights must not all be zero")
    weights = weights / total
    first = np.asarray(arrays[0])
    accum_dtype = first.dtype if first.dtype.kind == "f" else np.dtype(np.float64)
    result = np.zeros(first.shape, dtype=accum_dtype)
    for array, weight in zip(arrays, weights):
        array = np.asarray(array)
        if array.shape != result.shape:
            raise ValueError(f"shape mismatch in aggregation: {array.shape} vs {result.shape}")
        result += accum_dtype.type(weight) * array
    return result


def fedavg(
    state_dicts: Sequence[Dict[str, np.ndarray]],
    num_samples: Sequence[int],
) -> Dict[str, np.ndarray]:
    """Data-size-weighted FedAvg over client state dicts.

    Every state dict must contain exactly the same keys (they all originate
    from broadcasting the same global model).
    """
    if len(state_dicts) == 0:
        raise ValueError("fedavg requires at least one client update")
    if len(state_dicts) != len(num_samples):
        raise ValueError("state_dicts and num_samples must have equal length")
    reference_keys = set(state_dicts[0])
    for index, state in enumerate(state_dicts[1:], start=1):
        if set(state) != reference_keys:
            raise ValueError(f"client update {index} has mismatching parameter names")
    weights = [float(max(n, 0)) for n in num_samples]
    if sum(weights) <= 0:
        # Degenerate case (all clients report zero samples): fall back to uniform.
        weights = [1.0] * len(state_dicts)
    aggregated: Dict[str, np.ndarray] = {}
    for key in state_dicts[0]:
        aggregated[key] = weighted_average_arrays([state[key] for state in state_dicts], weights)
    return aggregated


__all__ = ["fedavg", "weighted_average_arrays"]
