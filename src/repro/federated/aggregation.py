"""FedAvg aggregation (McMahan et al., 2017), operating on flat state dicts.

Paper Algorithm 1, line 8: the server forms the next global model as the
data-size-weighted average of the selected participants' local models,
``theta^{r+1} = sum_m (|D_m| / |D|) theta^r_m``.

Aggregation *topology* is pluggable through :class:`ReduceBackend`:
:class:`FlatReduceBackend` is the star — one server-side :func:`fedavg`,
bit-for-bit the historical path — while :class:`TreeReduceBackend` reduces
through a fan-out tree of edge aggregators, each shipping its weighted
partial sum up to its parent as a codec'd wire frame (CRC-checked, retried
under the fault plane, every attempt's bytes measured in the communication
ledger).  The tree is exact under FedAvg weights up to float rounding: the
flat path normalizes weights to sum one *before* accumulating, the tree sums
``w_i * x_i`` partials and divides by the total weight once at the root —
algebraically identical, so the two agree to accumulation-dtype tolerance
(observed ~1e-6 relative at float32, ~1e-12 at float64), not bit-for-bit.
The protocol is deliberately transport-shaped (partials travel as frames, a
reduce is a pure function of its inputs) so a process- or MPI-backed
implementation can slot in behind the same interface later.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.federated.communication import (
    ArrayCodec,
    CommunicationLedger,
    FrameRecord,
    build_codec,
    decode_frame,
    encode_frame,
)


def staleness_weight(staleness: float, decay: float) -> float:
    """Polynomial staleness discount of FedAsync (Xie et al., 2019).

    ``(1 + staleness) ** (-decay)``: exactly ``1.0`` at staleness 0 and
    monotone non-increasing in staleness for any ``decay >= 0`` (``decay=0``
    disables the discount entirely).  ``staleness`` counts how many times the
    global model advanced between a client's dispatch and its arrival.
    """
    if staleness < 0:
        raise ValueError(f"staleness must be non-negative, got {staleness!r}")
    if decay < 0:
        raise ValueError(f"staleness decay must be non-negative, got {decay!r}")
    return float((1.0 + float(staleness)) ** (-float(decay)))


def weighted_average_arrays(arrays: Sequence[np.ndarray], weights: Sequence[float]) -> np.ndarray:
    """Weighted average of equally-shaped arrays with weights normalised to sum to one.

    The accumulation dtype follows the inputs: float inputs average in their
    own precision (so a float32 pipeline stays float32 through FedAvg instead
    of being silently upcast), anything else falls back to float64.
    """
    if len(arrays) == 0:
        raise ValueError("cannot average zero arrays")
    if len(arrays) != len(weights):
        raise ValueError("arrays and weights must have equal length")
    weights = np.asarray(weights, dtype=np.float64)
    if np.any(weights < 0):
        raise ValueError("aggregation weights must be non-negative")
    total = weights.sum()
    if total <= 0:
        raise ValueError("aggregation weights must not all be zero")
    weights = weights / total
    first = np.asarray(arrays[0])
    accum_dtype = first.dtype if first.dtype.kind == "f" else np.dtype(np.float64)
    result = np.zeros(first.shape, dtype=accum_dtype)
    for array, weight in zip(arrays, weights):
        array = np.asarray(array)
        if array.shape != result.shape:
            raise ValueError(f"shape mismatch in aggregation: {array.shape} vs {result.shape}")
        result += accum_dtype.type(weight) * array
    return result


def blend_states(
    base: Dict[str, np.ndarray],
    update: Dict[str, np.ndarray],
    mixing: float,
) -> Dict[str, np.ndarray]:
    """FedAsync's per-arrival blend over flat state dicts: ``(1-m) base + m update``.

    ``mixing`` must be in ``(0, 1]`` — typically a base rate discounted by
    :func:`staleness_weight`.  The blend runs through
    :func:`weighted_average_arrays`, so a float32 pipeline stays float32 (no
    silent upcast through the python-float coefficients).  The single source
    of the blend used by both :meth:`FederatedServer.apply_update` and
    :meth:`FederatedMethod.apply_async_update`.
    """
    if not 0.0 < mixing <= 1.0:
        raise ValueError(f"mixing rate must be in (0, 1], got {mixing!r}")
    if set(update) != set(base):
        raise ValueError("blended update has mismatching parameter names")
    return {
        key: weighted_average_arrays([base[key], update[key]], [1.0 - mixing, mixing])
        for key in base
    }


def fedavg(
    state_dicts: Sequence[Dict[str, np.ndarray]],
    num_samples: Sequence[int],
    scale: Optional[Sequence[float]] = None,
) -> Dict[str, np.ndarray]:
    """Data-size-weighted FedAvg over client state dicts.

    Every state dict must contain exactly the same keys (they all originate
    from broadcasting the same global model).  ``scale`` optionally multiplies
    each client's sample weight by a non-negative factor — the temporal
    plane's staleness-aware aggregation passes ``staleness_weight(...)`` per
    update here, so a stale upload counts for less than a fresh one of the
    same size.  ``scale=None`` (the default) is plain FedAvg, bit-for-bit.
    """
    if len(state_dicts) == 0:
        raise ValueError("fedavg requires at least one client update")
    if len(state_dicts) != len(num_samples):
        raise ValueError("state_dicts and num_samples must have equal length")
    reference_keys = set(state_dicts[0])
    for index, state in enumerate(state_dicts[1:], start=1):
        if set(state) != reference_keys:
            raise ValueError(f"client update {index} has mismatching parameter names")
    weights = [float(max(n, 0)) for n in num_samples]
    if scale is not None:
        if len(scale) != len(state_dicts):
            raise ValueError("scale and state_dicts must have equal length")
        if any(factor < 0 for factor in scale):
            raise ValueError("scale factors must be non-negative")
        weights = [weight * float(factor) for weight, factor in zip(weights, scale)]
    if sum(weights) <= 0:
        # Degenerate case (all clients report zero samples): fall back to uniform.
        weights = [1.0] * len(state_dicts)
    aggregated: Dict[str, np.ndarray] = {}
    for key in state_dicts[0]:
        aggregated[key] = weighted_average_arrays([state[key] for state in state_dicts], weights)
    return aggregated


def _leaf_weights(
    state_dicts: Sequence[Dict[str, np.ndarray]],
    num_samples: Sequence[int],
    scale: Optional[Sequence[float]],
) -> List[float]:
    """FedAvg's effective per-update weights, validations included.

    Mirrors :func:`fedavg` exactly — ``max(n, 0)`` sample counts, optional
    non-negative scale factors, uniform fallback when everything weighs zero —
    so a tree reduce built on these weights targets the same average.
    """
    if len(state_dicts) == 0:
        raise ValueError("fedavg requires at least one client update")
    if len(state_dicts) != len(num_samples):
        raise ValueError("state_dicts and num_samples must have equal length")
    reference_keys = set(state_dicts[0])
    for index, state in enumerate(state_dicts[1:], start=1):
        if set(state) != reference_keys:
            raise ValueError(f"client update {index} has mismatching parameter names")
    weights = [float(max(n, 0)) for n in num_samples]
    if scale is not None:
        if len(scale) != len(state_dicts):
            raise ValueError("scale and state_dicts must have equal length")
        if any(factor < 0 for factor in scale):
            raise ValueError("scale factors must be non-negative")
        weights = [weight * float(factor) for weight, factor in zip(weights, scale)]
    if sum(weights) <= 0:
        weights = [1.0] * len(state_dicts)
    return weights


class ReduceBackend:
    """How a cohort of weighted state dicts becomes the next global state."""

    name = "abstract"

    def reduce(
        self,
        state_dicts: Sequence[Dict[str, np.ndarray]],
        num_samples: Sequence[int],
        scale: Optional[Sequence[float]] = None,
        coordinate: Any = 0,
    ) -> Dict[str, np.ndarray]:
        """Aggregate under FedAvg weights.  ``coordinate`` is a deterministic
        label of this reduce (the server passes its round counter) used only
        to key the fault plane's per-hop draws — it survives checkpoint
        resume, so a resumed run replays the same edge faults."""
        raise NotImplementedError

    def collect_penalty(self) -> float:
        """Simulated seconds of retry backoff accrued since the last call."""
        return 0.0


class FlatReduceBackend(ReduceBackend):
    """The historical star: one server-side :func:`fedavg`, bit-for-bit."""

    name = "flat"

    def reduce(
        self,
        state_dicts: Sequence[Dict[str, np.ndarray]],
        num_samples: Sequence[int],
        scale: Optional[Sequence[float]] = None,
        coordinate: Any = 0,
    ) -> Dict[str, np.ndarray]:
        return fedavg(state_dicts, num_samples, scale)


class TreeReduceBackend(ReduceBackend):
    """Hierarchical FedAvg: edge aggregators combine ``fanout`` children each.

    Leaves are the cohort's updates.  Each edge node computes the weighted
    partial sum ``(sum_i w_i * x_i, sum_i w_i)`` of its children in FedAvg's
    accumulation dtype and ships it to its parent as one ``edge`` wire frame
    through the configured codec (delta encodes dense without a reference;
    lossy codecs make the partials lossy, exactly as they do uploads).  The
    final single group is combined by the root in process — the root *is* the
    server, there is no wire above it — so a cohort no larger than the fan-out
    produces zero edge frames and degenerates to the flat star numerically.

    Fault plane: each hop draws per-attempt loss/corruption from the
    injector's pure predicates, verifies the CRC, and retries with
    exponential backoff exactly like the upload path (every attempt's bytes
    hit the ledger's edge counters, backoff seconds accrue for the clock via
    :meth:`collect_penalty`).  A hop that exhausts its retries delivers its
    partial over the in-process control channel instead of losing a whole
    subtree — the aggregate stays exact while the trace records the failure.
    """

    name = "tree"

    def __init__(
        self,
        fanout: int = 2,
        codec: Optional[ArrayCodec] = None,
        ledger: Optional[CommunicationLedger] = None,
        faults: Optional[Any] = None,
        retries: int = 2,
        retry_backoff: float = 0.5,
    ) -> None:
        if fanout < 2:
            raise ValueError("tree fan-out must be at least 2")
        self.fanout = fanout
        self.codec = codec if codec is not None else build_codec("identity")
        self.ledger = ledger
        self.faults = faults
        self.retries = retries
        self.retry_backoff = retry_backoff
        self._pending_penalty = 0.0
        #: Edge frames delivered by the most recent :meth:`reduce` (ok
        #: records only; the ledger keeps the failed attempts too).
        self.last_edge_frames = 0

    def reduce(
        self,
        state_dicts: Sequence[Dict[str, np.ndarray]],
        num_samples: Sequence[int],
        scale: Optional[Sequence[float]] = None,
        coordinate: Any = 0,
    ) -> Dict[str, np.ndarray]:
        weights = _leaf_weights(state_dicts, num_samples, scale)
        keys = list(state_dicts[0])
        accum_dtypes = {}
        for key in keys:
            first = np.asarray(state_dicts[0][key])
            accum_dtypes[key] = first.dtype if first.dtype.kind == "f" else np.dtype(np.float64)
        # Leaves: every update becomes a (weight, weighted-arrays) node.
        nodes: List[Tuple[float, Dict[str, np.ndarray]]] = [
            (
                weight,
                {
                    key: accum_dtypes[key].type(weight) * np.asarray(state[key])
                    for key in keys
                },
            )
            for state, weight in zip(state_dicts, weights)
        ]
        records: List[FrameRecord] = []
        self.last_edge_frames = 0
        level = 0
        while len(nodes) > 1:
            level += 1
            groups = [nodes[i : i + self.fanout] for i in range(0, len(nodes), self.fanout)]
            if len(groups) == 1:
                nodes = [self._combine(groups[0], keys)]
                break
            next_nodes = []
            for node_index, group in enumerate(groups):
                weight, arrays = self._combine(group, keys)
                arrays, weight = self._ship(
                    arrays, weight, coordinate, level, node_index, records
                )
                next_nodes.append((weight, arrays))
            nodes = next_nodes
        if self.ledger is not None and records:
            self.ledger.record_edge_reduce(records)
        total, summed = nodes[0]
        return {
            key: summed[key] / accum_dtypes[key].type(total) for key in keys
        }

    @staticmethod
    def _combine(
        group: List[Tuple[float, Dict[str, np.ndarray]]],
        keys: List[str],
    ) -> Tuple[float, Dict[str, np.ndarray]]:
        weight = sum(w for w, _ in group)
        arrays = {key: group[0][1][key].copy() for key in keys}
        for _, child in group[1:]:
            for key in keys:
                arrays[key] += child[key]
        return weight, arrays

    def _ship(
        self,
        arrays: Dict[str, np.ndarray],
        weight: float,
        coordinate: Any,
        level: int,
        node_index: int,
        records: List[FrameRecord],
    ) -> Tuple[Dict[str, np.ndarray], float]:
        """One edge→parent hop: encode, fault-check, CRC-verify, retry."""
        meta = {"weight": float(weight), "level": level, "node": node_index}
        frame = encode_frame("edge", self.codec, arrays, meta)
        injector = self.faults
        for attempt in range(1, self.retries + 2):
            if injector is not None and injector.edge_frame_lost(
                coordinate, level, node_index, attempt
            ):
                records.append(
                    FrameRecord(client_id=node_index, num_bytes=frame.num_bytes, status="lost")
                )
                self._pending_penalty += self.retry_backoff * (2 ** (attempt - 1))
                continue
            delivered = frame
            if injector is not None and injector.edge_frame_corrupted(
                coordinate, level, node_index, attempt
            ):
                delivered = injector.corrupt_frame(
                    frame, coordinate, ("edge", level), node_index, attempt
                )
            if not delivered.checksum_ok():
                records.append(
                    FrameRecord(
                        client_id=node_index, num_bytes=delivered.num_bytes, status="corrupt"
                    )
                )
                self._pending_penalty += self.retry_backoff * (2 ** (attempt - 1))
                continue
            records.append(
                FrameRecord(client_id=node_index, num_bytes=delivered.num_bytes, status="ok")
            )
            self.last_edge_frames += 1
            decoded, received_meta = decode_frame(delivered, self.codec)
            return decoded, float(received_meta["weight"])
        # Retries exhausted: deliver in process (the reliable control channel)
        # rather than dropping a whole subtree's updates; the ledger has
        # recorded every failed attempt above.
        return arrays, weight

    def collect_penalty(self) -> float:
        penalty = self._pending_penalty
        self._pending_penalty = 0.0
        return penalty


def build_reduce_backend(
    spec: str,
    fanout: int = 2,
    codec: Optional[ArrayCodec] = None,
    ledger: Optional[CommunicationLedger] = None,
    faults: Optional[Any] = None,
    retries: int = 2,
    retry_backoff: float = 0.5,
) -> ReduceBackend:
    """Construct a :class:`ReduceBackend` from its config-string spec."""
    if spec == "flat":
        return FlatReduceBackend()
    if spec == "tree":
        return TreeReduceBackend(
            fanout=fanout,
            codec=codec,
            ledger=ledger,
            faults=faults,
            retries=retries,
            retry_backoff=retry_backoff,
        )
    raise ValueError(f"unknown reduce backend {spec!r}; choose 'flat' or 'tree'")


__all__ = [
    "blend_states",
    "fedavg",
    "staleness_weight",
    "weighted_average_arrays",
    "ReduceBackend",
    "FlatReduceBackend",
    "TreeReduceBackend",
    "build_reduce_backend",
]
