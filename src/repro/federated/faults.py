"""Deterministic fault injection: the fault plane's schedule and trace.

Fleet-scale federations fail constantly — clients crash mid-update, uploads
are lost or corrupted on the wire, pool workers die, servers restart — and a
simulation that cannot reproduce a failure cannot debug the recovery either.
This module makes every failure *replayable*: a :class:`FaultSpec` declares
the rates, and a :class:`FaultInjector` draws every fault decision from
``spawn_rng(seed, "fault", <kind>, *context)`` — a pure function of the run
seed and the query's coordinates, never of call order or wall time.  Two runs
with the same ``(seed, FaultSpec)`` see the exact same failure trace, which
is what the recovery tests (self-healing pool, transport retries,
checkpoint/resume) assert their bit-for-bit guarantees against.

The injector is *consulted*, never *driven*: the planes ask "does client 3
crash in task 1 round 2?" at the moment that decision matters, so a disabled
spec (all rates zero) means the injector is never even constructed and the
zero-fault path performs zero extra RNG draws — the bit-for-bit inertness
guarantee of the whole fault plane.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.federated.communication import WireFrame
from repro.utils.rng import spawn_rng


@dataclass(frozen=True)
class FaultSpec:
    """Declarative fault schedule of one run; all rates default to zero.

    Attributes
    ----------
    client_crash_rate:
        Per-(client, round) probability that a selected client crashes
        mid-update: it receives the broadcast and burns ``crash_fraction`` of
        its training time, but never uploads.
    upload_loss_rate:
        Per-attempt probability that an upload frame is lost on the wire
        (the transport retries up to its attempt bound).
    upload_corruption_rate:
        Per-attempt probability that an upload frame arrives with flipped
        bytes; the checksum rejects it and the transport retries.
    worker_kill_rate:
        Per-round probability that one pinned pool worker process dies before
        running its chunk (the executor respawns it and replays the chunk).
    server_restart_every:
        Simulate a server process restart every N aggregations (0 = never):
        protocol soft state (delta acknowledgements, deferred uploads) is
        wiped, as it would be by a real restart; durable state survives only
        through checkpoints.
    crash_fraction:
        Fraction of a crashed client's training time spent before the crash
        (its simulated-clock cost; the download was already paid in full).
    """

    client_crash_rate: float = 0.0
    upload_loss_rate: float = 0.0
    upload_corruption_rate: float = 0.0
    worker_kill_rate: float = 0.0
    server_restart_every: int = 0
    crash_fraction: float = 0.5

    def __post_init__(self) -> None:
        for name in ("client_crash_rate", "upload_loss_rate", "upload_corruption_rate", "worker_kill_rate"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value!r}")
        if self.server_restart_every < 0:
            raise ValueError("server_restart_every must be non-negative (0 disables restarts)")
        if not 0.0 <= self.crash_fraction <= 1.0:
            raise ValueError(f"crash_fraction must be in [0, 1], got {self.crash_fraction!r}")

    @property
    def enabled(self) -> bool:
        """True when any fault can ever fire under this spec."""
        return (
            self.client_crash_rate > 0.0
            or self.upload_loss_rate > 0.0
            or self.upload_corruption_rate > 0.0
            or self.worker_kill_rate > 0.0
            or self.server_restart_every > 0
        )


class FaultInjector:
    """Draws every fault decision of a run; a pure function of (seed, spec).

    Each predicate derives a fresh generator from the query's coordinates —
    ``spawn_rng(seed, "fault", kind, *context)`` — so the answer for any
    (kind, context) pair never depends on which other queries were made, in
    what order, or how many times.  Fired faults are appended to
    :attr:`trace` for the bench's recovery accounting and the purity tests.
    """

    def __init__(self, seed: int, spec: FaultSpec) -> None:
        self.seed = seed
        self.spec = spec
        #: Chronological record of every fault that actually fired:
        #: ``{"kind": ..., **coordinates}`` dicts (no wall time — the trace
        #: must be comparable across runs).
        self.trace: List[Dict[str, Any]] = []
        self.counters: Dict[str, int] = {
            "client_crashes": 0,
            "frames_lost": 0,
            "frames_corrupted": 0,
            "workers_killed": 0,
            "server_restarts": 0,
        }

    # ------------------------------------------------------------------ #
    # Predicates (one deterministic draw each)
    # ------------------------------------------------------------------ #
    def _draw(self, kind: str, *context: Any) -> float:
        return spawn_rng(self.seed, "fault", kind, *context).random()

    def client_crashes(self, task_id: int, round_index: Any, client_id: int) -> bool:
        """Does this client crash mid-update at this selection point?"""
        if self.spec.client_crash_rate <= 0.0:
            return False
        if self._draw("crash", task_id, round_index, client_id) < self.spec.client_crash_rate:
            self._record("client_crash", task_id=task_id, round_index=round_index, client_id=client_id)
            self.counters["client_crashes"] += 1
            return True
        return False

    def upload_lost(self, task_id: int, round_index: Any, client_id: int, attempt: int) -> bool:
        """Is this upload attempt's frame lost on the wire?"""
        if self.spec.upload_loss_rate <= 0.0:
            return False
        if self._draw("lose", task_id, round_index, client_id, attempt) < self.spec.upload_loss_rate:
            self._record(
                "frame_lost",
                task_id=task_id,
                round_index=round_index,
                client_id=client_id,
                attempt=attempt,
            )
            self.counters["frames_lost"] += 1
            return True
        return False

    def upload_corrupted(self, task_id: int, round_index: Any, client_id: int, attempt: int) -> bool:
        """Does this upload attempt's frame arrive with flipped bytes?"""
        if self.spec.upload_corruption_rate <= 0.0:
            return False
        if (
            self._draw("corrupt", task_id, round_index, client_id, attempt)
            < self.spec.upload_corruption_rate
        ):
            self._record(
                "frame_corrupt",
                task_id=task_id,
                round_index=round_index,
                client_id=client_id,
                attempt=attempt,
            )
            self.counters["frames_corrupted"] += 1
            return True
        return False

    def edge_frame_lost(self, coordinate: Any, level: int, node: int, attempt: int) -> bool:
        """Is this edge aggregator's partial-reduce frame lost on its hop up?

        The tree reduce's intermediate hops fail at the same per-attempt
        ``upload_loss_rate`` as client uploads — an edge→parent transfer is
        an upload hop — but draw from their own ``(coordinate, level, node,
        attempt)`` coordinates, so edge faults never perturb the client
        upload trace.  ``coordinate`` is the server's round counter.
        """
        if self.spec.upload_loss_rate <= 0.0:
            return False
        if self._draw("edge-lose", coordinate, level, node, attempt) < self.spec.upload_loss_rate:
            self._record(
                "edge_frame_lost",
                coordinate=coordinate,
                level=level,
                node=node,
                attempt=attempt,
            )
            self.counters["frames_lost"] += 1
            return True
        return False

    def edge_frame_corrupted(self, coordinate: Any, level: int, node: int, attempt: int) -> bool:
        """Does this edge partial's frame arrive with flipped bytes?"""
        if self.spec.upload_corruption_rate <= 0.0:
            return False
        if (
            self._draw("edge-corrupt", coordinate, level, node, attempt)
            < self.spec.upload_corruption_rate
        ):
            self._record(
                "edge_frame_corrupt",
                coordinate=coordinate,
                level=level,
                node=node,
                attempt=attempt,
            )
            self.counters["frames_corrupted"] += 1
            return True
        return False

    def corrupt_frame(
        self, frame: WireFrame, task_id: int, round_index: Any, client_id: int, attempt: int
    ) -> WireFrame:
        """Deterministically flip one byte of the frame body (never a no-op XOR)."""
        rng = spawn_rng(self.seed, "fault", "flip", task_id, round_index, client_id, attempt)
        body = bytearray(frame.body)
        if body:
            position = int(rng.integers(len(body)))
            body[position] ^= int(rng.integers(1, 256))
        return WireFrame(kind=frame.kind, codec=frame.codec, body=bytes(body), checksum=frame.checksum)

    def worker_to_kill(self, task_id: int, round_index: Any, num_workers: int) -> Optional[int]:
        """The pool worker that dies this round, if any."""
        if self.spec.worker_kill_rate <= 0.0 or num_workers < 1:
            return None
        rng = spawn_rng(self.seed, "fault", "worker", task_id, round_index)
        if rng.random() < self.spec.worker_kill_rate:
            victim = int(rng.integers(num_workers))
            self._record(
                "worker_killed", task_id=task_id, round_index=round_index, worker_id=victim
            )
            self.counters["workers_killed"] += 1
            return victim
        return None

    def server_restarts(self, round_counter: int) -> bool:
        """Does the server restart after this aggregation?  (No RNG: periodic.)"""
        every = self.spec.server_restart_every
        if every <= 0 or round_counter <= 0 or round_counter % every != 0:
            return False
        self._record("server_restart", round_counter=round_counter)
        self.counters["server_restarts"] += 1
        return True

    # ------------------------------------------------------------------ #
    # Trace / checkpoint state
    # ------------------------------------------------------------------ #
    def _record(self, kind: str, **coordinates: Any) -> None:
        self.trace.append({"kind": kind, **coordinates})

    def state_dict(self) -> Dict[str, Any]:
        """Fired-fault bookkeeping for checkpoints (the predicates are stateless)."""
        return {"trace": list(self.trace), "counters": dict(self.counters)}

    def load_state_dict(self, state: Dict[str, Any]) -> None:
        self.trace[:] = [dict(entry) for entry in state["trace"]]
        self.counters.update(state["counters"])

    def summary(self) -> Dict[str, int]:
        """The recovery counters (the bench's ``fault_plane`` section rows)."""
        return dict(self.counters)


__all__ = ["FaultSpec", "FaultInjector"]
