"""Pluggable transports: how broadcasts and uploads actually move.

A :class:`Transport` sits between the simulation loop and the server on both
directions of every communication round:

* :meth:`Transport.broadcast_round` turns the server's global state (plus the
  method's broadcast payload) into per-client wire frames, records their
  measured sizes in the :class:`~repro.federated.communication.CommunicationLedger`,
  and returns the :class:`~repro.federated.server.BroadcastHandle` the
  clients train from — built over the *decoded* frames, so lossy codecs
  train against exactly what a constrained device would have received;
* :meth:`Transport.collect_updates` encodes every client's
  :class:`~repro.federated.communication.ClientUpdate` into an upload frame,
  applies the bandwidth scenario (per-client budgets, drop-or-defer
  stragglers), decodes what arrives, and hands the surviving updates to
  aggregation — decode-before-aggregate.

Two implementations:

* :class:`DirectTransport` (``transport="direct"``) — no frames at all:
  objects pass straight through and the ledger falls back to the legacy
  ``nbytes`` estimate.  Zero overhead, zero measurement fidelity.
* :class:`LoopbackTransport` (``transport="loopback"``, the default) — every
  message is really encoded through the configured
  :class:`~repro.federated.communication.ArrayCodec`; ledger numbers are
  actual frame lengths.  The ``identity`` codec short-circuits the decode
  (its round-trip is the pickle the executor already performs), so the
  default configuration is bit-for-bit and allocation-identical to the
  pre-transport engine while still measuring real frames.

Delta acknowledgements: the downlink ``delta`` codec encodes each client's
frame against the last broadcast that client received (clients selected in
different past rounds hold different references; unseen clients get a dense
frame).  Encoder and decoder share the reference object in-process, so the
diff chain can never desynchronise in simulation.

Bandwidth scenario: with ``bandwidth_limit > 0`` every client gets a
deterministic per-run uplink budget — the limit scaled by a multiplier drawn
from ``spawn_rng(seed, "bandwidth", client_id)`` — so some clients are
structurally slow.  An over-budget upload frame is *dropped* when
``drop_stragglers=True`` (it never aggregates; the ledger still charged the
client's download) or *deferred* otherwise (it arrives with the next round's
uploads and aggregates late; deferred frames left over at a task boundary
expire).  If a round would lose every upload, the smallest frame is
delivered anyway — a server that aggregates nothing is not a round.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.federated.communication import (
    ArrayCodec,
    ClientUpdate,
    CommunicationLedger,
    FrameRecord,
    IdentityCodec,
    PayloadCodec,
    RoundCommRecord,
    TreePayloadCodec,
    WireFrame,
    _payload_bytes,
    build_codec,
    decode_frame,
    encode_frame,
)
from repro.federated.server import BroadcastHandle, FederatedServer
from repro.utils.rng import spawn_rng

_STATE_PREFIX = "s::"
_PAYLOAD_PREFIX = "p::"


def _flatten_message(
    state: Dict[str, np.ndarray], payload: Any, payload_codec: PayloadCodec
) -> Tuple[Dict[str, np.ndarray], Any]:
    """Merge model state and payload arrays into one namespaced flat dict."""
    payload_arrays, skeleton = payload_codec.flatten(payload)
    arrays: Dict[str, np.ndarray] = {
        _STATE_PREFIX + key: value for key, value in state.items()
    }
    for name, value in payload_arrays.items():
        arrays[_PAYLOAD_PREFIX + name] = value
    return arrays, skeleton


def _split_message(
    arrays: Dict[str, np.ndarray], skeleton: Any, payload_codec: PayloadCodec
) -> Tuple[Dict[str, np.ndarray], Any]:
    """Inverse of :func:`_flatten_message`."""
    state = {
        key[len(_STATE_PREFIX):]: value
        for key, value in arrays.items()
        if key.startswith(_STATE_PREFIX)
    }
    payload_arrays = {
        key[len(_PAYLOAD_PREFIX):]: value
        for key, value in arrays.items()
        if key.startswith(_PAYLOAD_PREFIX)
    }
    return state, payload_codec.unflatten(payload_arrays, skeleton)


class Transport:
    """Strategy moving one round's broadcast and uploads; see module docstring."""

    name: str = "abstract"

    def __init__(self, ledger: CommunicationLedger) -> None:
        self.ledger = ledger
        #: Per-client byte sizes of the most recent broadcast / upload cycle —
        #: measured frame lengths on the loopback transport, the ``nbytes``
        #: estimate on the direct one.  The temporal plane's cost model reads
        #: these to turn each client's traffic into simulated transfer time:
        #: ``last_broadcast_bytes`` is (re)written by every
        #: :meth:`broadcast_round`, ``last_upload_bytes`` by every
        #: :meth:`collect_updates` (covering the updates handed to that call,
        #: including any the bandwidth scenario then dropped or deferred —
        #: the client paid for the transfer either way).
        self.last_broadcast_bytes: Dict[int, int] = {}
        self.last_upload_bytes: Dict[int, int] = {}

    def broadcast_round(
        self,
        server: FederatedServer,
        selected: Sequence[int],
        task_id: int,
        round_index: int,
    ) -> BroadcastHandle:
        """Deliver the round's broadcast; returns the handle clients train from."""
        raise NotImplementedError

    def collect_updates(self, updates: List[ClientUpdate]) -> List[ClientUpdate]:
        """Deliver the round's uploads; returns the updates that reach aggregation."""
        raise NotImplementedError

    def finalize(self) -> None:
        """Account anything still in flight when the run ends (idempotent)."""


class DirectTransport(Transport):
    """No wire format: pass-through objects, ledger from ``nbytes`` estimates."""

    name = "direct"

    def __init__(self, ledger: CommunicationLedger) -> None:
        super().__init__(ledger)
        self._pending: Optional[Tuple[int, Dict[str, np.ndarray], Any]] = None

    def broadcast_round(self, server, selected, task_id, round_index):
        handle = server.broadcast_view()
        self._pending = (len(selected), server.global_state, server.broadcast_payload)
        broadcast_one = sum(
            np.asarray(value).nbytes for value in server.global_state.values()
        ) + _payload_bytes(server.broadcast_payload)
        self.last_broadcast_bytes = {client_id: broadcast_one for client_id in selected}
        return handle

    def collect_updates(self, updates):
        if self._pending is None:
            raise RuntimeError("collect_updates called before broadcast_round")
        num_selected, state, payload = self._pending
        self._pending = None
        self.last_upload_bytes = {
            update.client_id: update.upload_bytes() for update in updates
        }
        self.ledger.record_round(updates, state, payload, num_selected=num_selected)
        return updates


@dataclass
class _PendingRound:
    """Everything :meth:`LoopbackTransport.collect_updates` needs from broadcast time."""

    task_id: int
    round_index: int
    selected: Tuple[int, ...]
    broadcast_frames: List[FrameRecord]
    #: The flat (namespaced) arrays the selected clients received this round —
    #: the uplink reference for diff-style codecs and the next downlink ack.
    received: Dict[str, np.ndarray]


@dataclass
class _DeferredUpload:
    """An over-budget upload in flight to the next round's aggregation."""

    update: ClientUpdate
    num_bytes: int


class LoopbackTransport(Transport):
    """In-process wire transport: encode, measure, decode every message."""

    name = "loopback"

    def __init__(
        self,
        ledger: CommunicationLedger,
        codec: ArrayCodec,
        payload_codec: Optional[PayloadCodec] = None,
        seed: int = 0,
        bandwidth_limit: int = 0,
        drop_stragglers: bool = False,
    ) -> None:
        super().__init__(ledger)
        self.codec = codec
        # Sparsifying a full-model broadcast against nothing would destroy
        # it; non-broadcast-safe codecs (topk) ride identity frames downlink
        # and only sparsify the uplink.
        self.down_codec = codec if codec.broadcast_safe else IdentityCodec()
        self.payload_codec = payload_codec if payload_codec is not None else TreePayloadCodec()
        self.seed = seed
        self.bandwidth_limit = bandwidth_limit
        self.drop_stragglers = drop_stragglers
        self._ack: Dict[int, Dict[str, np.ndarray]] = {}
        self._budgets: Dict[int, int] = {}
        self._pending: Optional[_PendingRound] = None
        self._deferred: List[_DeferredUpload] = []
        self._last_task_id: Optional[int] = None

    # ------------------------------------------------------------------ #
    # Bandwidth scenario
    # ------------------------------------------------------------------ #
    def budget_for(self, client_id: int) -> Optional[int]:
        """The client's deterministic per-round uplink byte budget (None = unlimited)."""
        if self.bandwidth_limit <= 0:
            return None
        if client_id not in self._budgets:
            multiplier = spawn_rng(self.seed, "bandwidth", client_id).uniform(0.6, 1.4)
            self._budgets[client_id] = max(1, int(self.bandwidth_limit * multiplier))
        return self._budgets[client_id]

    # ------------------------------------------------------------------ #
    # Downlink
    # ------------------------------------------------------------------ #
    def broadcast_round(self, server, selected, task_id, round_index):
        if self._pending is not None:
            raise RuntimeError(
                "broadcast_round called with a round still pending; "
                "collect_updates must consume the previous round first"
            )
        if self._last_task_id is not None and task_id != self._last_task_id and self._deferred:
            # Deferred uploads do not survive a task boundary: the domain (and
            # the aggregation they would join) has moved on.
            self.ledger.record_expired_uploads(len(self._deferred))
            self._deferred.clear()
        self._last_task_id = task_id

        handle = server.broadcast_view()
        flat, skeleton = _flatten_message(handle.state, handle.payload, self.payload_codec)

        frames: List[FrameRecord] = []
        decoded_handle: Optional[BroadcastHandle] = None
        received: Optional[Dict[str, np.ndarray]] = None
        if isinstance(self.down_codec, IdentityCodec):
            # The identity frame body IS the handle's cached serialization —
            # the exact blob the parallel executor ships to its workers, so
            # ledger and RoundIPC observe the same bytes — and its round-trip
            # is a pickle cycle, so the decode is short-circuited to the
            # server's own handle (bit-for-bit by construction).
            body = handle.serialized()
            frames.extend(FrameRecord(cid, len(body)) for cid in selected)
            decoded_handle = handle
            received = flat
        else:
            # Group clients by the reference they hold: one frame per distinct
            # acknowledgement (codecs that ignore the reference form a single
            # group).  Lossless diff codecs decode to identical content for
            # every group, so one decode serves the whole round.
            groups: Dict[int, Tuple[Optional[Dict[str, np.ndarray]], List[int]]] = {}
            for cid in selected:
                ref = self._ack.get(cid) if self.down_codec.uses_reference else None
                key = id(ref) if ref is not None else 0
                groups.setdefault(key, (ref, []))[1].append(cid)
            for ref, members in groups.values():
                frame = encode_frame("broadcast", self.down_codec, flat, skeleton, ref)
                frames.extend(FrameRecord(cid, frame.num_bytes) for cid in members)
                if decoded_handle is None:
                    arrays, meta = decode_frame(frame, self.down_codec, ref)
                    state, payload = _split_message(arrays, meta, self.payload_codec)
                    decoded_handle = BroadcastHandle(state, payload)
                    received = arrays
        frames.sort(key=lambda record: record.client_id)
        self.last_broadcast_bytes = {
            record.client_id: record.num_bytes for record in frames
        }

        for cid in selected:
            self._ack[cid] = received
        self._pending = _PendingRound(
            task_id=task_id,
            round_index=round_index,
            selected=tuple(selected),
            broadcast_frames=frames,
            received=received,
        )
        return decoded_handle

    # ------------------------------------------------------------------ #
    # Uplink
    # ------------------------------------------------------------------ #
    def _encode_update(
        self, update: ClientUpdate, reference: Dict[str, np.ndarray]
    ) -> WireFrame:
        arrays, skeleton = _flatten_message(
            update.state_dict, update.payload, self.payload_codec
        )
        meta = {
            "client_id": update.client_id,
            "num_samples": update.num_samples,
            "train_loss": update.train_loss,
            "metrics": update.metrics,
            "skeleton": skeleton,
        }
        return encode_frame("upload", self.codec, arrays, meta, reference)

    def _decode_update(
        self, frame: WireFrame, reference: Dict[str, np.ndarray]
    ) -> ClientUpdate:
        arrays, meta = decode_frame(frame, self.codec, reference)
        state, payload = _split_message(arrays, meta["skeleton"], self.payload_codec)
        return ClientUpdate(
            client_id=meta["client_id"],
            state_dict=state,
            num_samples=meta["num_samples"],
            payload=payload,
            train_loss=meta["train_loss"],
            metrics=meta["metrics"],
        )

    def collect_updates(self, updates):
        if self._pending is None:
            raise RuntimeError("collect_updates called before broadcast_round")
        pending = self._pending
        self._pending = None
        identity = isinstance(self.codec, IdentityCodec)

        delivered: List[ClientUpdate] = []
        frames: List[FrameRecord] = []
        over_budget: List[Tuple[ClientUpdate, WireFrame]] = []
        self.last_upload_bytes = {}
        for update in updates:
            frame = self._encode_update(update, pending.received)
            self.last_upload_bytes[update.client_id] = frame.num_bytes
            budget = self.budget_for(update.client_id)
            if budget is not None and frame.num_bytes > budget:
                over_budget.append((update, frame))
                continue
            frames.append(FrameRecord(update.client_id, frame.num_bytes))
            delivered.append(
                update if identity else self._decode_update(frame, pending.received)
            )

        # Last round's deferred stragglers arrive with this round's uploads.
        arrivals = [item for item in self._deferred]
        self._deferred.clear()
        for item in arrivals:
            frames.append(FrameRecord(item.update.client_id, item.num_bytes, "deferred"))
            delivered.append(item.update)

        if not delivered and over_budget:
            # Keep-one rule: a round must aggregate something.  Deliver the
            # smallest over-budget frame (deterministic tiebreak by id).
            over_budget.sort(key=lambda pair: (pair[1].num_bytes, pair[0].client_id))
            update, frame = over_budget.pop(0)
            frames.append(FrameRecord(update.client_id, frame.num_bytes))
            delivered.insert(
                0, update if identity else self._decode_update(frame, pending.received)
            )
        for update, frame in over_budget:
            if self.drop_stragglers:
                frames.append(FrameRecord(update.client_id, frame.num_bytes, "dropped"))
            else:
                decoded = update if identity else self._decode_update(frame, pending.received)
                self._deferred.append(_DeferredUpload(decoded, frame.num_bytes))

        frames.sort(key=lambda record: (record.status != "ok", record.client_id))
        self.ledger.record_measured_round(
            RoundCommRecord(
                task_id=pending.task_id,
                round_index=pending.round_index,
                codec=self.codec.name,
                broadcast_frames=tuple(pending.broadcast_frames),
                upload_frames=tuple(frames),
            )
        )
        return delivered

    def finalize(self) -> None:
        """Expire deferred uploads still in flight when the run ends.

        Without this, an upload deferred in the very last round would vanish
        from the accounting entirely — neither delivered, dropped nor
        expired — and delivered + dropped + expired would no longer cover
        every encoded upload.
        """
        if self._deferred:
            self.ledger.record_expired_uploads(len(self._deferred))
            self._deferred.clear()


def build_transport(
    transport: str,
    codec: str,
    ledger: CommunicationLedger,
    payload_codec: Optional[PayloadCodec] = None,
    seed: int = 0,
    bandwidth_limit: int = 0,
    drop_stragglers: bool = False,
) -> Transport:
    """Construct a transport from the :class:`FederatedConfig` knobs."""
    if transport == "direct":
        return DirectTransport(ledger)
    if transport == "loopback":
        return LoopbackTransport(
            ledger=ledger,
            codec=build_codec(codec),
            payload_codec=payload_codec,
            seed=seed,
            bandwidth_limit=bandwidth_limit,
            drop_stragglers=drop_stragglers,
        )
    raise ValueError(f"unknown transport {transport!r}; choose 'direct' or 'loopback'")


__all__ = [
    "Transport",
    "DirectTransport",
    "LoopbackTransport",
    "build_transport",
]
