"""Pluggable transports: how broadcasts and uploads actually move.

A :class:`Transport` sits between the simulation loop and the server on both
directions of every communication round:

* :meth:`Transport.broadcast_round` turns the server's global state (plus the
  method's broadcast payload) into per-client wire frames, records their
  measured sizes in the :class:`~repro.federated.communication.CommunicationLedger`,
  and returns the :class:`~repro.federated.server.BroadcastHandle` the
  clients train from — built over the *decoded* frames, so lossy codecs
  train against exactly what a constrained device would have received;
* :meth:`Transport.collect_updates` encodes every client's
  :class:`~repro.federated.communication.ClientUpdate` into an upload frame,
  applies the bandwidth scenario (per-client budgets, drop-or-defer
  stragglers), decodes what arrives, and hands the surviving updates to
  aggregation — decode-before-aggregate.

Two implementations:

* :class:`DirectTransport` (``transport="direct"``) — no frames at all:
  objects pass straight through and the ledger falls back to the legacy
  ``nbytes`` estimate.  Zero overhead, zero measurement fidelity.
* :class:`LoopbackTransport` (``transport="loopback"``, the default) — every
  message is really encoded through the configured
  :class:`~repro.federated.communication.ArrayCodec`; ledger numbers are
  actual frame lengths.  The ``identity`` codec short-circuits the decode
  (its round-trip is the pickle the executor already performs), so the
  default configuration is bit-for-bit and allocation-identical to the
  pre-transport engine while still measuring real frames.

Delta acknowledgements: the downlink ``delta`` codec encodes each client's
frame against the last broadcast that client received (clients selected in
different past rounds hold different references; unseen clients get a dense
frame).  Encoder and decoder share the reference object in-process, so the
diff chain can never desynchronise in simulation.

Bandwidth scenario: with ``bandwidth_limit > 0`` every client gets a
deterministic per-run uplink budget — the limit scaled by a multiplier drawn
from ``spawn_rng(seed, "bandwidth", client_id)`` — so some clients are
structurally slow.  An over-budget upload frame is *dropped* when
``drop_stragglers=True`` (it never aggregates; the ledger still charged the
client's download) or *deferred* otherwise (it arrives with the next round's
uploads and aggregates late; deferred frames left over at a task boundary
expire).  If a round would lose every upload, the smallest frame is
delivered anyway — a server that aggregates nothing is not a round.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.federated.communication import (
    ArrayCodec,
    ClientUpdate,
    CommunicationLedger,
    FrameRecord,
    IdentityCodec,
    PayloadCodec,
    RoundCommRecord,
    TreePayloadCodec,
    WireFrame,
    _payload_bytes,
    build_codec,
    decode_frame,
    encode_frame,
)
from repro.federated.server import BroadcastHandle, FederatedServer
from repro.utils.rng import spawn_rng

_STATE_PREFIX = "s::"
_PAYLOAD_PREFIX = "p::"


class TransportError(RuntimeError):
    """A frame-level transport failure, carrying the frame's coordinates.

    The bare ``ValueError`` the codecs raise on a malformed frame says
    nothing about *whose* frame failed *where*; retry and drop policies (and
    the tests discriminating corruption from budget drops) need the
    coordinates, so every decode/verify failure surfaces as a subclass of
    this carrying ``(client_id, direction, task_id, round_index)``.
    """

    def __init__(
        self,
        message: str,
        *,
        client_id: Optional[int] = None,
        direction: Optional[str] = None,
        task_id: Optional[int] = None,
        round_index: Optional[Any] = None,
    ) -> None:
        context = ", ".join(
            f"{name}={value!r}"
            for name, value in (
                ("client_id", client_id),
                ("direction", direction),
                ("task_id", task_id),
                ("round_index", round_index),
            )
            if value is not None
        )
        super().__init__(f"{message} [{context}]" if context else message)
        self.client_id = client_id
        self.direction = direction
        self.task_id = task_id
        self.round_index = round_index


class FrameCorruptionError(TransportError):
    """A frame's body failed its checksum: corrupted in transit."""


class FrameDecodeError(TransportError):
    """A checksum-clean frame could not be decoded back into arrays."""


def verify_frame(
    frame: WireFrame,
    *,
    client_id: Optional[int] = None,
    direction: Optional[str] = None,
    task_id: Optional[int] = None,
    round_index: Optional[Any] = None,
) -> None:
    """Raise :class:`FrameCorruptionError` when the frame fails its checksum."""
    if not frame.checksum_ok():
        raise FrameCorruptionError(
            f"{frame.kind} frame failed its CRC32 checksum ({frame.num_bytes} bytes)",
            client_id=client_id,
            direction=direction,
            task_id=task_id,
            round_index=round_index,
        )


def _flatten_message(
    state: Dict[str, np.ndarray], payload: Any, payload_codec: PayloadCodec
) -> Tuple[Dict[str, np.ndarray], Any]:
    """Merge model state and payload arrays into one namespaced flat dict."""
    payload_arrays, skeleton = payload_codec.flatten(payload)
    arrays: Dict[str, np.ndarray] = {
        _STATE_PREFIX + key: value for key, value in state.items()
    }
    for name, value in payload_arrays.items():
        arrays[_PAYLOAD_PREFIX + name] = value
    return arrays, skeleton


def _split_message(
    arrays: Dict[str, np.ndarray], skeleton: Any, payload_codec: PayloadCodec
) -> Tuple[Dict[str, np.ndarray], Any]:
    """Inverse of :func:`_flatten_message`."""
    state = {
        key[len(_STATE_PREFIX):]: value
        for key, value in arrays.items()
        if key.startswith(_STATE_PREFIX)
    }
    payload_arrays = {
        key[len(_PAYLOAD_PREFIX):]: value
        for key, value in arrays.items()
        if key.startswith(_PAYLOAD_PREFIX)
    }
    return state, payload_codec.unflatten(payload_arrays, skeleton)


class Transport:
    """Strategy moving one round's broadcast and uploads; see module docstring."""

    name: str = "abstract"

    def __init__(self, ledger: CommunicationLedger) -> None:
        self.ledger = ledger
        #: Per-client byte sizes of the most recent broadcast / upload cycle —
        #: measured frame lengths on the loopback transport, the ``nbytes``
        #: estimate on the direct one.  The temporal plane's cost model reads
        #: these to turn each client's traffic into simulated transfer time:
        #: ``last_broadcast_bytes`` is (re)written by every
        #: :meth:`broadcast_round`, ``last_upload_bytes`` by every
        #: :meth:`collect_updates` (covering the updates handed to that call,
        #: including any the bandwidth scenario then dropped or deferred —
        #: the client paid for the transfer either way).
        self.last_broadcast_bytes: Dict[int, int] = {}
        self.last_upload_bytes: Dict[int, int] = {}
        #: Per-client simulated seconds of retry backoff accumulated in the
        #: most recent :meth:`collect_updates` — zero everywhere unless the
        #: fault plane lost or corrupted attempts.  The temporal plane adds
        #: these to the client's cycle cost.
        self.last_penalty_seconds: Dict[int, float] = {}

    def broadcast_round(
        self,
        server: FederatedServer,
        selected: Sequence[int],
        task_id: int,
        round_index: int,
    ) -> BroadcastHandle:
        """Deliver the round's broadcast; returns the handle clients train from."""
        raise NotImplementedError

    def collect_updates(self, updates: List[ClientUpdate]) -> List[ClientUpdate]:
        """Deliver the round's uploads; returns the updates that reach aggregation."""
        raise NotImplementedError

    def finalize(self) -> None:
        """Account anything still in flight when the run ends (idempotent)."""

    def restart(self) -> None:
        """Simulate a server process restart: drop protocol soft state.

        Durable state (the model, the ledger, the method) survives a restart
        only through checkpoints; what a transport loses is its in-memory
        session state — delta acknowledgements, deferred uploads.  The base
        transport holds none.
        """

    def state_dict(self) -> Dict[str, Any]:
        """Snapshot the transport's session state for a checkpoint."""
        return {
            "last_broadcast_bytes": dict(self.last_broadcast_bytes),
            "last_upload_bytes": dict(self.last_upload_bytes),
            "last_penalty_seconds": dict(self.last_penalty_seconds),
        }

    def load_state_dict(self, state: Dict[str, Any]) -> None:
        """Restore a :meth:`state_dict` snapshot."""
        self.last_broadcast_bytes = dict(state["last_broadcast_bytes"])
        self.last_upload_bytes = dict(state["last_upload_bytes"])
        self.last_penalty_seconds = dict(state["last_penalty_seconds"])


class DirectTransport(Transport):
    """No wire format: pass-through objects, ledger from ``nbytes`` estimates."""

    name = "direct"

    def __init__(self, ledger: CommunicationLedger) -> None:
        super().__init__(ledger)
        self._pending: Optional[Tuple[int, Dict[str, np.ndarray], Any]] = None

    def broadcast_round(self, server, selected, task_id, round_index):
        handle = server.broadcast_view()
        self._pending = (len(selected), server.global_state, server.broadcast_payload)
        broadcast_one = sum(
            np.asarray(value).nbytes for value in server.global_state.values()
        ) + _payload_bytes(server.broadcast_payload)
        self.last_broadcast_bytes = {client_id: broadcast_one for client_id in selected}
        return handle

    def collect_updates(self, updates):
        if self._pending is None:
            raise RuntimeError("collect_updates called before broadcast_round")
        num_selected, state, payload = self._pending
        self._pending = None
        self.last_upload_bytes = {
            update.client_id: update.upload_bytes() for update in updates
        }
        self.ledger.record_round(updates, state, payload, num_selected=num_selected)
        return updates


@dataclass
class _PendingRound:
    """Everything :meth:`LoopbackTransport.collect_updates` needs from broadcast time."""

    task_id: int
    round_index: int
    selected: Tuple[int, ...]
    broadcast_frames: List[FrameRecord]
    #: The flat (namespaced) arrays the selected clients received this round —
    #: the uplink reference for diff-style codecs and the next downlink ack.
    received: Dict[str, np.ndarray]


@dataclass
class _DeferredUpload:
    """An over-budget upload in flight to the next round's aggregation."""

    update: ClientUpdate
    num_bytes: int


class LoopbackTransport(Transport):
    """In-process wire transport: encode, measure, decode every message."""

    name = "loopback"

    def __init__(
        self,
        ledger: CommunicationLedger,
        codec: ArrayCodec,
        payload_codec: Optional[PayloadCodec] = None,
        seed: int = 0,
        bandwidth_limit: int = 0,
        drop_stragglers: bool = False,
        retries: int = 2,
        retry_backoff: float = 0.5,
        faults=None,
    ) -> None:
        super().__init__(ledger)
        self.codec = codec
        # Sparsifying a full-model broadcast against nothing would destroy
        # it; non-broadcast-safe codecs (topk) ride identity frames downlink
        # and only sparsify the uplink.
        self.down_codec = codec if codec.broadcast_safe else IdentityCodec()
        self.payload_codec = payload_codec if payload_codec is not None else TreePayloadCodec()
        self.seed = seed
        self.bandwidth_limit = bandwidth_limit
        self.drop_stragglers = drop_stragglers
        if retries < 0:
            raise ValueError("retries must be non-negative")
        if retry_backoff < 0:
            raise ValueError("retry_backoff must be non-negative")
        self.retries = retries
        self.retry_backoff = retry_backoff
        #: Optional :class:`~repro.federated.faults.FaultInjector` deciding
        #: which transmission attempts are lost or corrupted; ``None`` (the
        #: default) keeps the upload path free of fault draws entirely.
        self.faults = faults
        self._ack: Dict[int, Dict[str, np.ndarray]] = {}
        self._budgets: Dict[int, int] = {}
        self._pending: Optional[_PendingRound] = None
        self._deferred: List[_DeferredUpload] = []
        self._last_task_id: Optional[int] = None

    # ------------------------------------------------------------------ #
    # Bandwidth scenario
    # ------------------------------------------------------------------ #
    def budget_for(self, client_id: int) -> Optional[int]:
        """The client's deterministic per-round uplink byte budget (None = unlimited)."""
        if self.bandwidth_limit <= 0:
            return None
        if client_id not in self._budgets:
            multiplier = spawn_rng(self.seed, "bandwidth", client_id).uniform(0.6, 1.4)
            self._budgets[client_id] = max(1, int(self.bandwidth_limit * multiplier))
        return self._budgets[client_id]

    # ------------------------------------------------------------------ #
    # Downlink
    # ------------------------------------------------------------------ #
    def broadcast_round(self, server, selected, task_id, round_index):
        if self._pending is not None:
            raise RuntimeError(
                "broadcast_round called with a round still pending; "
                "collect_updates must consume the previous round first"
            )
        if self._last_task_id is not None and task_id != self._last_task_id and self._deferred:
            # Deferred uploads do not survive a task boundary: the domain (and
            # the aggregation they would join) has moved on.
            self.ledger.record_expired_uploads(len(self._deferred))
            self._deferred.clear()
        self._last_task_id = task_id

        handle = server.broadcast_view()
        flat, skeleton = _flatten_message(handle.state, handle.payload, self.payload_codec)

        frames: List[FrameRecord] = []
        decoded_handle: Optional[BroadcastHandle] = None
        received: Optional[Dict[str, np.ndarray]] = None
        if isinstance(self.down_codec, IdentityCodec):
            # The identity frame body IS the handle's cached serialization —
            # the exact blob the parallel executor ships to its workers, so
            # ledger and RoundIPC observe the same bytes — and its round-trip
            # is a pickle cycle, so the decode is short-circuited to the
            # server's own handle (bit-for-bit by construction).
            body = handle.serialized()
            frames.extend(FrameRecord(cid, len(body)) for cid in selected)
            decoded_handle = handle
            received = flat
        else:
            # Group clients by the reference they hold: one frame per distinct
            # acknowledgement (codecs that ignore the reference form a single
            # group).  Lossless diff codecs decode to identical content for
            # every group, so one decode serves the whole round.
            groups: Dict[int, Tuple[Optional[Dict[str, np.ndarray]], List[int]]] = {}
            for cid in selected:
                ref = self._ack.get(cid) if self.down_codec.uses_reference else None
                key = id(ref) if ref is not None else 0
                groups.setdefault(key, (ref, []))[1].append(cid)
            for ref, members in groups.values():
                frame = encode_frame("broadcast", self.down_codec, flat, skeleton, ref)
                frames.extend(FrameRecord(cid, frame.num_bytes) for cid in members)
                if decoded_handle is None:
                    verify_frame(
                        frame,
                        client_id=members[0],
                        direction="broadcast",
                        task_id=task_id,
                        round_index=round_index,
                    )
                    arrays, meta = self._decode_frame_checked(
                        frame,
                        self.down_codec,
                        ref,
                        client_id=members[0],
                        direction="broadcast",
                        task_id=task_id,
                        round_index=round_index,
                    )
                    state, payload = _split_message(arrays, meta, self.payload_codec)
                    decoded_handle = BroadcastHandle(state, payload)
                    received = arrays
        frames.sort(key=lambda record: record.client_id)
        self.last_broadcast_bytes = {
            record.client_id: record.num_bytes for record in frames
        }

        for cid in selected:
            self._ack[cid] = received
        self._pending = _PendingRound(
            task_id=task_id,
            round_index=round_index,
            selected=tuple(selected),
            broadcast_frames=frames,
            received=received,
        )
        return decoded_handle

    # ------------------------------------------------------------------ #
    # Uplink
    # ------------------------------------------------------------------ #
    def _encode_update(
        self, update: ClientUpdate, reference: Dict[str, np.ndarray]
    ) -> WireFrame:
        arrays, skeleton = _flatten_message(
            update.state_dict, update.payload, self.payload_codec
        )
        meta = {
            "client_id": update.client_id,
            "num_samples": update.num_samples,
            "train_loss": update.train_loss,
            "metrics": update.metrics,
            "skeleton": skeleton,
        }
        return encode_frame("upload", self.codec, arrays, meta, reference)

    @staticmethod
    def _decode_frame_checked(
        frame: WireFrame,
        codec: ArrayCodec,
        reference: Optional[Dict[str, np.ndarray]],
        *,
        client_id: Optional[int],
        direction: str,
        task_id: Optional[int],
        round_index: Optional[Any],
    ) -> Tuple[Dict[str, np.ndarray], Any]:
        """Decode a frame, converting codec failures into typed transport errors."""
        try:
            return decode_frame(frame, codec, reference)
        except (ValueError, KeyError, EOFError, pickle.UnpicklingError) as error:
            raise FrameDecodeError(
                f"failed to decode {frame.kind} frame ({frame.num_bytes} bytes, "
                f"codec {frame.codec!r}): {error}",
                client_id=client_id,
                direction=direction,
                task_id=task_id,
                round_index=round_index,
            ) from error

    def _decode_update(
        self,
        frame: WireFrame,
        reference: Dict[str, np.ndarray],
        *,
        task_id: Optional[int] = None,
        round_index: Optional[Any] = None,
        client_id: Optional[int] = None,
    ) -> ClientUpdate:
        arrays, meta = self._decode_frame_checked(
            frame,
            self.codec,
            reference,
            client_id=client_id,
            direction="upload",
            task_id=task_id,
            round_index=round_index,
        )
        state, payload = _split_message(arrays, meta["skeleton"], self.payload_codec)
        return ClientUpdate(
            client_id=meta["client_id"],
            state_dict=state,
            num_samples=meta["num_samples"],
            payload=payload,
            train_loss=meta["train_loss"],
            metrics=meta["metrics"],
        )

    def _transmit(
        self, client_id: int, frame: WireFrame, pending: _PendingRound
    ) -> Tuple[int, float, List[FrameRecord], bool]:
        """Carry one upload frame across the faulty wire with bounded retries.

        Returns ``(attempts, penalty_seconds, failed_attempt_records,
        arrived)``.  Each attempt may be lost outright or corrupted (the
        checksum rejects it); between failed attempts the client backs off
        ``retry_backoff * 2**(attempt-1)`` simulated seconds.  At most
        ``retries + 1`` attempts are made — the property tests' bound.
        Without an injector (or with both frame-fault rates zero) this is a
        single successful attempt with zero draws and zero penalty.
        """
        injector = self.faults
        if injector is None or (
            injector.spec.upload_loss_rate <= 0.0
            and injector.spec.upload_corruption_rate <= 0.0
        ):
            return 1, 0.0, [], True
        task_id, round_index = pending.task_id, pending.round_index
        records: List[FrameRecord] = []
        penalty = 0.0
        max_attempts = self.retries + 1
        for attempt in range(1, max_attempts + 1):
            lost = injector.upload_lost(task_id, round_index, client_id, attempt)
            if not lost:
                attempt_frame = frame
                if injector.upload_corrupted(task_id, round_index, client_id, attempt):
                    attempt_frame = injector.corrupt_frame(
                        frame, task_id, round_index, client_id, attempt
                    )
                try:
                    verify_frame(
                        attempt_frame,
                        client_id=client_id,
                        direction="upload",
                        task_id=task_id,
                        round_index=round_index,
                    )
                except FrameCorruptionError:
                    pass
                else:
                    return attempt, penalty, records, True
            records.append(
                FrameRecord(client_id, frame.num_bytes, "lost" if lost else "corrupt")
            )
            if attempt < max_attempts:
                penalty += self.retry_backoff * (2.0 ** (attempt - 1))
        return max_attempts, penalty, records, False

    def collect_updates(self, updates):
        if self._pending is None:
            raise RuntimeError("collect_updates called before broadcast_round")
        pending = self._pending
        self._pending = None
        identity = isinstance(self.codec, IdentityCodec)

        delivered: List[ClientUpdate] = []
        frames: List[FrameRecord] = []
        over_budget: List[Tuple[ClientUpdate, WireFrame]] = []
        self.last_upload_bytes = {}
        self.last_penalty_seconds = {}
        for update in updates:
            frame = self._encode_update(update, pending.received)
            self.last_upload_bytes[update.client_id] = frame.num_bytes
            budget = self.budget_for(update.client_id)
            if budget is not None and frame.num_bytes > budget:
                over_budget.append((update, frame))
                continue
            attempts, penalty, attempt_records, arrived = self._transmit(
                update.client_id, frame, pending
            )
            frames.extend(attempt_records)
            if attempts > 1:
                # Every attempt crossed the wire; the client paid for all of
                # them (and for the backoff waits between them).
                self.last_upload_bytes[update.client_id] = frame.num_bytes * attempts
                self.last_penalty_seconds[update.client_id] = penalty
            if not arrived:
                # Retries exhausted: the update is a straggler under the
                # existing drop/defer rules — the in-process copy of the
                # frame is intact, so a deferral re-requests it next round.
                if self.drop_stragglers:
                    frames.append(FrameRecord(update.client_id, frame.num_bytes, "dropped"))
                else:
                    decoded = (
                        update
                        if identity
                        else self._decode_update(
                            frame,
                            pending.received,
                            task_id=pending.task_id,
                            round_index=pending.round_index,
                            client_id=update.client_id,
                        )
                    )
                    self._deferred.append(_DeferredUpload(decoded, frame.num_bytes))
                continue
            frames.append(FrameRecord(update.client_id, frame.num_bytes))
            delivered.append(
                update
                if identity
                else self._decode_update(
                    frame,
                    pending.received,
                    task_id=pending.task_id,
                    round_index=pending.round_index,
                    client_id=update.client_id,
                )
            )

        # Last round's deferred stragglers arrive with this round's uploads.
        arrivals = [item for item in self._deferred]
        self._deferred.clear()
        for item in arrivals:
            frames.append(FrameRecord(item.update.client_id, item.num_bytes, "deferred"))
            delivered.append(item.update)

        if not delivered and over_budget:
            # Keep-one rule: a round must aggregate something.  Deliver the
            # smallest over-budget frame (deterministic tiebreak by id).
            over_budget.sort(key=lambda pair: (pair[1].num_bytes, pair[0].client_id))
            update, frame = over_budget.pop(0)
            frames.append(FrameRecord(update.client_id, frame.num_bytes))
            delivered.insert(
                0,
                update
                if identity
                else self._decode_update(
                    frame,
                    pending.received,
                    task_id=pending.task_id,
                    round_index=pending.round_index,
                    client_id=update.client_id,
                ),
            )
        for update, frame in over_budget:
            if self.drop_stragglers:
                frames.append(FrameRecord(update.client_id, frame.num_bytes, "dropped"))
            else:
                decoded = (
                    update
                    if identity
                    else self._decode_update(
                        frame,
                        pending.received,
                        task_id=pending.task_id,
                        round_index=pending.round_index,
                        client_id=update.client_id,
                    )
                )
                self._deferred.append(_DeferredUpload(decoded, frame.num_bytes))

        frames.sort(key=lambda record: (record.status != "ok", record.client_id))
        self.ledger.record_measured_round(
            RoundCommRecord(
                task_id=pending.task_id,
                round_index=pending.round_index,
                codec=self.codec.name,
                broadcast_frames=tuple(pending.broadcast_frames),
                upload_frames=tuple(frames),
            )
        )
        return delivered

    def finalize(self) -> None:
        """Expire deferred uploads still in flight when the run ends.

        Without this, an upload deferred in the very last round would vanish
        from the accounting entirely — neither delivered, dropped nor
        expired — and delivered + dropped + expired would no longer cover
        every encoded upload.
        """
        if self._deferred:
            self.ledger.record_expired_uploads(len(self._deferred))
            self._deferred.clear()

    def restart(self) -> None:
        """Simulate a server process restart mid-run.

        The protocol soft state dies with the process: delta acknowledgements
        are forgotten (the next broadcast to every client goes dense — the
        recovery cost the bench measures) and deferred uploads still in the
        restarting server's memory expire.  The model, ledger and method are
        the *simulation's* durable state and survive outside the transport.
        """
        if self._pending is not None:
            raise RuntimeError("cannot restart the server with a round in flight")
        self._ack.clear()
        if self._deferred:
            self.ledger.record_expired_uploads(len(self._deferred))
            self._deferred.clear()

    def state_dict(self) -> Dict[str, Any]:
        if self._pending is not None:
            raise RuntimeError("cannot snapshot a transport with a round in flight")
        state = super().state_dict()
        state.update(
            ack=self._ack,
            budgets=dict(self._budgets),
            deferred=list(self._deferred),
            last_task_id=self._last_task_id,
        )
        return state

    def load_state_dict(self, state: Dict[str, Any]) -> None:
        super().load_state_dict(state)
        self._ack = dict(state["ack"])
        self._budgets = dict(state["budgets"])
        self._deferred = list(state["deferred"])
        self._last_task_id = state["last_task_id"]
        self._pending = None


def build_transport(
    transport: str,
    codec: str,
    ledger: CommunicationLedger,
    payload_codec: Optional[PayloadCodec] = None,
    seed: int = 0,
    bandwidth_limit: int = 0,
    drop_stragglers: bool = False,
    retries: int = 2,
    retry_backoff: float = 0.5,
    faults=None,
) -> Transport:
    """Construct a transport from the :class:`FederatedConfig` knobs."""
    if transport == "direct":
        return DirectTransport(ledger)
    if transport == "loopback":
        return LoopbackTransport(
            ledger=ledger,
            codec=build_codec(codec),
            payload_codec=payload_codec,
            seed=seed,
            bandwidth_limit=bandwidth_limit,
            drop_stragglers=drop_stragglers,
            retries=retries,
            retry_backoff=retry_backoff,
            faults=faults,
        )
    raise ValueError(f"unknown transport {transport!r}; choose 'direct' or 'loopback'")


__all__ = [
    "Transport",
    "DirectTransport",
    "LoopbackTransport",
    "TransportError",
    "FrameCorruptionError",
    "FrameDecodeError",
    "verify_frame",
    "build_transport",
]
