"""Client-side abstractions: the per-round client handle and the shared local SGD loop."""

from __future__ import annotations

import copy
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, Optional, Tuple

import numpy as np

from repro.autograd import tape as tape_mod
from repro.autograd.tape import Plan, PlanCache, PlanError, Tape, tracing
from repro.autograd.tensor import Tensor
from repro.datasets.base import ArrayDataset, DataLoader
from repro.federated.increment import ClientGroup
from repro.nn.module import Module
from repro.nn.optim import SGD
from repro.utils.logging_utils import get_logger

logger = get_logger(__name__)


@dataclass(frozen=True)
class LocalTrainingConfig:
    """Hyper-parameters of a client's local update (paper: E epochs of SGD)."""

    local_epochs: int = 1
    batch_size: int = 16
    learning_rate: float = 0.03
    momentum: float = 0.9
    weight_decay: float = 0.0
    max_grad_norm: Optional[float] = 5.0

    def __post_init__(self) -> None:
        if self.local_epochs < 1:
            raise ValueError("local_epochs must be at least 1")
        if self.batch_size < 1:
            raise ValueError("batch_size must be at least 1")
        if self.learning_rate <= 0:
            raise ValueError("learning_rate must be positive")


@dataclass(frozen=True)
class ShardRef:
    """Identity of a client's training shard, without the payload.

    The parallel executor's data plane ships this light reference with every
    round's handles and the shard bytes themselves only on a worker cache
    miss, so a shard crosses the process boundary once per task instead of
    once per round.  ``cache_key`` is the lookup key of the worker-side
    ``_WORKER_SHARDS`` cache; the fingerprint component invalidates stale
    entries whenever the shard's content changes (e.g. an in-between client
    concatenating its previous task's data at a task boundary).
    """

    client_id: int
    task_id: int
    fingerprint: str
    num_samples: int

    @property
    def cache_key(self) -> Tuple[int, int, str]:
        return (self.client_id, self.task_id, self.fingerprint)


@dataclass(frozen=True)
class VirtualClientSpec:
    """A client as a recipe: ``(seed, partition-spec)`` instead of a shard.

    The virtual-client plane (:mod:`repro.federated.virtual`) keeps the whole
    population as specs and materializes actual :class:`ArrayDataset` shards
    only for a round's selected cohort.  A spec is a pure description — every
    field is derivable from the run config plus the client's schedule history,
    so checkpoints never serialize shards and two materializations of the
    same spec are bit-for-bit identical.

    ``components`` lists the single-domain task ids whose per-task shards
    concatenate into the client's current training data, oldest first: a NEW
    client holds ``(t,)``, an IN_BETWEEN client ``(t_prev, t)`` — exactly the
    eager plane's concat-previous-with-new semantics.  ``population=0`` marks
    a schedule-driven spec (indices come from the shared quantity-shift
    partition of the takers); a positive value marks a fleet-mode spec
    (indices come from the client's own ``spawn_rng(seed, "vshard", task,
    client)`` draw over the domain pool).
    """

    client_id: int
    task_id: int
    group: ClientGroup
    seed: int
    concentration: float
    population: int
    components: Tuple[int, ...]
    domains_held: Tuple[int, ...] = ()


@dataclass
class ClientHandle:
    """Everything a method needs to run one client's local update for one round.

    The simulation constructs a fresh handle per (client, task); the ``group``
    field tells prompt-based methods whether the client is Old, In-between or
    New, which changes the DPCL positive/negative sampling (paper Sec. IV).
    """

    client_id: int
    task_id: int
    group: ClientGroup
    dataset: ArrayDataset
    rng: np.random.Generator
    training: LocalTrainingConfig
    domains_held: Tuple[int, ...] = ()
    metadata: Dict[str, float] = field(default_factory=dict)

    @property
    def num_samples(self) -> int:
        return len(self.dataset)

    def shard_ref(self) -> ShardRef:
        """Light identity of this handle's dataset for the shard-cache data plane."""
        return ShardRef(
            client_id=self.client_id,
            task_id=self.task_id,
            fingerprint=self.dataset.fingerprint(),
            num_samples=len(self.dataset),
        )

    def lighten(self) -> "ClientHandle":
        """A copy of this handle without its dataset payload.

        The parallel executor ships light handles over IPC and workers rebind
        the dataset from their shard cache before training; everything else
        (rng, training config, group, metadata) still travels per round.
        """
        return replace(self, dataset=None)

    def loader(self, shuffle: bool = True) -> DataLoader:
        return DataLoader(
            self.dataset,
            batch_size=self.training.batch_size,
            shuffle=shuffle,
            rng=self.rng,
        )


LossFn = Callable[[Module, Tensor, np.ndarray], Tensor]


def run_local_sgd(
    model: Module,
    client: ClientHandle,
    loss_fn: LossFn,
    parameters=None,
) -> float:
    """Run ``local_epochs`` of SGD on the client's data and return the mean loss.

    ``loss_fn(model, images, labels)`` computes the method's total loss for a
    mini-batch; this is the hook through which Finetune (plain CE), FedLwF
    (CE + KD), FedEWC (CE + Fisher penalty) and the prompt methods all reuse
    the same loop.
    """
    trainable = parameters if parameters is not None else model.parameters()
    trainable = [p for p in trainable if p.requires_grad]
    optimizer = SGD(
        trainable,
        lr=client.training.learning_rate,
        momentum=client.training.momentum,
        weight_decay=client.training.weight_decay,
        max_grad_norm=client.training.max_grad_norm,
    )
    model.train()
    if tape_mod.get_kernel() != "eager":
        return _run_local_sgd_tape(model, client, loss_fn, optimizer)
    total_loss = 0.0
    total_batches = 0
    for _ in range(client.training.local_epochs):
        for images, labels in client.loader():
            optimizer.zero_grad()
            loss = loss_fn(model, images, labels)
            loss.backward()
            optimizer.step()
            total_loss += float(loss.data)
            total_batches += 1
    return total_loss / max(total_batches, 1)


class _PlanState:
    """Lifecycle of one compiled plan: traced -> verified -> replay-only.

    ``bad`` marks a shape key that either failed to compile (the loss graph
    reaches tensors from outside the traced step) or failed verification (a
    replay did not reproduce the eager step exactly, e.g. a method bakes
    label-derived constants into its graph); such keys run eagerly forever.
    """

    __slots__ = ("plan", "verified", "bad")

    def __init__(self, plan: Optional[Plan]) -> None:
        self.plan = plan
        self.verified = False
        self.bad = plan is None


def _run_local_sgd_tape(
    model: Module,
    client: ClientHandle,
    loss_fn: LossFn,
    optimizer: SGD,
) -> float:
    """The ``kernel="tape"`` local loop: trace once per batch shape, replay after.

    The first batch of a given (image shape/dtype, label shape) traces the
    step and compiles a :class:`~repro.autograd.tape.Plan`; the second batch
    replays the plan *and* runs the eager step on the same inputs, comparing
    loss and every parameter gradient bit-for-bit (buffers and rng streams
    are rewound between the two so both see identical state).  Only after
    that exact match do later batches run replay-only.  Any mismatch or
    compile failure falls back to eager for that shape permanently, so the
    tape kernel is hash-identical to eager by construction.
    """
    plans = PlanCache()
    buffers = dict(model.named_buffers())
    total_loss = 0.0
    total_batches = 0
    for _ in range(client.training.local_epochs):
        for images, labels in client.loader():
            labels_np = np.asarray(labels, dtype=np.int64)
            key = (images.shape, str(images.dtype), labels_np.shape)
            state = plans.get(key)
            optimizer.zero_grad()
            if state is None:
                # First sight of this shape: trace the step while running it.
                tape = Tape()
                tape.register_dynamic("labels", labels_np)
                for name, buf in buffers.items():
                    tape.register_dynamic(f"buffer::{name}", buf)
                tape.mark_input("images", images)
                with tracing(tape):
                    loss = loss_fn(model, images, labels_np)
                try:
                    plans.put(key, _PlanState(Plan(tape, loss)))
                except PlanError as error:
                    logger.debug("plan compile failed (%s); eager fallback", error)
                    plans.put(key, _PlanState(None))
                loss.backward()
                optimizer.step()
                total_loss += float(loss.data)
            elif state.bad:
                loss = loss_fn(model, images, labels_np)
                loss.backward()
                optimizer.step()
                total_loss += float(loss.data)
            elif not state.verified:
                total_loss += _verify_and_step(
                    state, model, buffers, optimizer, loss_fn, images, labels_np
                )
            else:
                bindings = {"labels": labels_np, "images": images.data}
                loss_value, leaf_grads = state.plan.execute(bindings)
                state.plan.apply_grads(leaf_grads)
                optimizer.step()
                total_loss += float(loss_value)
            total_batches += 1
    return total_loss / max(total_batches, 1)


def _verify_and_step(
    state: _PlanState,
    model: Module,
    buffers: Dict[str, np.ndarray],
    optimizer: SGD,
    loss_fn: LossFn,
    images: Tensor,
    labels_np: np.ndarray,
) -> float:
    """Replay + eager on the same batch, compare exactly, step with eager grads."""
    plan = state.plan
    buffer_snapshot = {name: buf.copy() for name, buf in buffers.items()}
    rng_snapshots = [copy.deepcopy(g.bit_generator.state) for g in plan.rng_objects]
    replay_loss, replay_grads = plan.execute(
        {"labels": labels_np, "images": images.data}
    )
    # Rewind state the replay consumed, then run the authoritative eager step.
    for name, buf in buffers.items():
        buf[...] = buffer_snapshot[name]
    for generator, snapshot in zip(plan.rng_objects, rng_snapshots):
        generator.bit_generator.state = snapshot
    grads_before = {slot: p.grad for slot, p in plan.param_leaves}
    loss = loss_fn(model, images, labels_np)
    loss.backward()
    matches = np.array_equal(replay_loss, loss.data)
    if matches:
        for slot, param in plan.param_leaves:
            replayed = replay_grads.get(slot)
            before = grads_before[slot]
            expected = (
                replayed if before is None or replayed is None else before + replayed
            )
            if (param.grad is None) != (expected is None) or (
                param.grad is not None and not np.array_equal(param.grad, expected)
            ):
                matches = False
                break
    if matches:
        state.verified = True
    else:
        state.bad = True
        logger.warning(
            "tape replay diverged from eager on verification batch; "
            "falling back to eager for this shape"
        )
    optimizer.step()
    return float(loss.data)


__all__ = [
    "LocalTrainingConfig",
    "ShardRef",
    "VirtualClientSpec",
    "ClientHandle",
    "run_local_sgd",
]
