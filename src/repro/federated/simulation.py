"""The federated domain-incremental simulation loop (paper Algorithm 1).

The simulation drives an arbitrary :class:`repro.federated.method.FederatedMethod`
through a :class:`repro.continual.scenario.DomainIncrementalScenario`:

for every incremental task ``t``:
    * advance the client-increment schedule (Old / In-between / New groups),
    * partition the new domain's training data across the clients that take it
      (with quantity shift), letting In-between clients concatenate their
      previous domain's shard (Algorithm 1 line 17),
    * run ``R`` communication rounds of: random client selection, broadcast of
      the global model (plus the method's broadcast payload, e.g. clustered
      global prompts), local updates, aggregation;
    * evaluate the global model on the test sets of every seen domain and
      record the accuracy matrix.

The loop is entirely method-agnostic; RefFiL and the baselines only differ in
the hooks they implement.
"""

from __future__ import annotations

import os
import pickle
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.autograd.tape import kernel_mode, plan_optimize_mode
from repro.autograd.tensor import default_dtype, get_default_dtype
from repro.continual.evaluator import EvalBackend, GlobalEvaluator
from repro.continual.metrics import ContinualMetrics
from repro.continual.scenario import DomainIncrementalScenario, Task
from repro.datasets.base import ArrayDataset
from repro.datasets.partition import partition_domain_across_clients
from repro.federated.async_plane import TemporalPlaneRunner
from repro.federated.checkpoint import (
    CHECKPOINT_VERSION,
    CheckpointMismatchError,
    checkpoint_name,
    config_fingerprint,
    latest_checkpoint,
    load_checkpoint,
    prune_checkpoints,
    save_checkpoint,
)
from repro.federated.aggregation import build_reduce_backend
from repro.federated.client import ClientHandle
from repro.federated.clock import (
    CostModel,
    DeviceProfile,
    EventScheduler,
    PROFILE_TIERS,
    ProfileCache,
)
from repro.federated.communication import ClientUpdate, CommunicationLedger, build_codec
from repro.federated.config import FederatedConfig
from repro.federated.execution import ParallelEvalBackend, ParallelExecutor, build_executor
from repro.federated.faults import FaultInjector
from repro.federated.increment import ClientGroup, ClientIncrementSchedule, TaskAssignment
from repro.federated.method import FederatedMethod
from repro.federated.sampling import (
    NoAvailableClientsError,
    sample_clients,
    sample_clients_lazy,
)
from repro.federated.server import FederatedServer
from repro.federated.virtual import VirtualClientPlane
from repro.federated.transport import _flatten_message, _split_message, build_transport
from repro.serving.engine import InferenceEngine
from repro.serving.registry import ModelRegistry
from repro.serving.service import ServingFrontEnd
from repro.utils.logging_utils import get_logger
from repro.utils.rng import spawn_rng
from repro.utils.timing import Timer

logger = get_logger(__name__)


@dataclass
class SimulationResult:
    """Outcome of one complete federated domain-incremental run."""

    method_name: str
    metrics: ContinualMetrics
    per_task_accuracy: List[Dict[str, float]] = field(default_factory=list)
    round_losses: List[float] = field(default_factory=list)
    round_loss_components: List[Dict[str, float]] = field(default_factory=list)
    communication: Optional[CommunicationLedger] = None
    schedule_trace: List[Dict[str, int]] = field(default_factory=list)
    wall_clock_seconds: float = 0.0
    #: Mid-task evaluation snapshots recorded by ``eval_every``: one entry per
    #: evaluated round (per aggregation event in async/buffered modes),
    #: ``{"task_id", "round_index", "accuracies", "sim_time"}`` where
    #: ``accuracies`` maps every seen domain's name to its accuracy and
    #: ``sim_time`` is the simulated clock at the snapshot — together they are
    #: the accuracy-vs-simulated-time curve of the temporal plane.
    round_eval_history: List[Dict[str, object]] = field(default_factory=list)
    #: Final simulated wall-clock time (seconds on the temporal plane's
    #: clock).  ``0.0`` under the default instantaneous device profile.
    sim_time: float = 0.0
    #: The temporal plane's event trace: one ``{"time", "kind", ...}`` dict
    #: per event — ``round``/``idle_round``/``skipped_round`` in sync mode,
    #: ``dispatch``/``arrival``/``flush``/``budget_abandoned``/... in
    #: async/buffered modes.  Deterministic per seed.
    event_log: List[Dict[str, object]] = field(default_factory=list)
    #: The fault plane's recovery accounting: the injector's fired-fault
    #: counters plus ``worker_respawns``, the transport's lost/corrupt frame
    #: totals, ``checkpoints_written`` and ``resumed_from`` (the checkpoint
    #: path a resumed run started at, or None).  Empty when the fault plane
    #: and checkpointing are both off.
    fault_stats: Dict[str, object] = field(default_factory=dict)
    #: The serving plane's accounting: ``versions_published``, the final
    #: registry manifest summary, and — with ``serve=True`` — the front end's
    #: per-version request/latency telemetry.  Empty when ``registry_dir`` is
    #: unset.
    serving_stats: Dict[str, object] = field(default_factory=dict)


def _mean_update_metrics(updates: List[ClientUpdate]) -> Dict[str, float]:
    """Per-key client means over the updates that actually report each key.

    A round's loss breakdown (the Table VII components) must not depend on
    which client happens to come first in selection order: an update with no
    metrics — or with a partial set of keys — simply contributes nothing to
    the keys it does not report, instead of erasing the whole round's
    breakdown.  When every update reports every key (the normal case) this is
    the plain client mean, bit-for-bit.
    """
    values: Dict[str, List[float]] = {}
    for update in updates:
        for key, value in update.metrics.items():
            values.setdefault(key, []).append(float(value))
    return {key: float(np.mean(values[key])) for key in sorted(values)}


class FederatedDomainIncrementalSimulation:
    """Runs one method over one scenario under one federated configuration.

    The per-round client loop is delegated to a
    :class:`repro.federated.execution.Executor` selected by
    ``config.executor`` / ``config.num_workers``, seen-task evaluation to the
    eval backend selected by ``config.eval_executor`` (with optional mid-task
    snapshots every ``config.eval_every`` rounds), and the whole run executes
    under the compute dtype selected by ``config.dtype``.
    """

    def __init__(
        self,
        scenario: DomainIncrementalScenario,
        method: FederatedMethod,
        config: FederatedConfig,
    ) -> None:
        self.scenario = scenario
        self.method = method
        self.config = config
        with default_dtype(config.dtype):
            self.model = method.build_model()
        self.server = FederatedServer(self.model)
        self.schedule = ClientIncrementSchedule(config.increment)
        # The fault plane: constructed only when some fault can actually fire,
        # so the zero-fault configuration takes the exact historical code
        # paths (no injector consultations, no extra RNG draws) and stays
        # bit-for-bit identical.
        self.fault_injector: Optional[FaultInjector] = (
            FaultInjector(config.seed, config.faults) if config.faults.enabled else None
        )
        # The communication plane: every round's broadcast and uploads move
        # through the transport, which owns the server's ledger (measured
        # wire frames on the loopback transport, the legacy estimate on the
        # direct one) — so the server must not also record estimate rounds.
        self.transport = build_transport(
            config.transport,
            config.codec,
            ledger=self.server.ledger,
            payload_codec=method.payload_codec(),
            seed=config.seed,
            bandwidth_limit=config.bandwidth_limit,
            drop_stragglers=config.drop_stragglers,
            retries=config.retries,
            retry_backoff=config.retry_backoff,
            faults=self.fault_injector,
        )
        self.server.ledger_autorecord = False
        # The aggregation topology: the default flat star is the historical
        # bit-for-bit path; the tree backend reduces through edge aggregators
        # whose partials ride the same codec'd wire frames as uploads (edge
        # bytes measured in the ledger, CRC + retries under the fault plane).
        if config.reduce_backend != "flat":
            self.server.reduce_backend = build_reduce_backend(
                config.reduce_backend,
                fanout=config.tree_fanout,
                codec=build_codec(config.codec),
                ledger=self.server.ledger,
                faults=self.fault_injector,
                retries=config.retries,
                retry_backoff=config.retry_backoff,
            )
        # The virtual-client plane: clients as lazy (seed, partition-spec)
        # recipes, shards materialized per selected cohort only.  None keeps
        # the eager dicts below as the data plane (the historical path).
        self.virtual: Optional[VirtualClientPlane] = (
            VirtualClientPlane(config) if config.virtual_clients else None
        )
        # Worker deaths are replayed, not fatal, when the fault plane kills
        # workers on purpose; the respawn budget is generous (every round
        # could kill one worker, twice over) but finite, so a genuinely
        # crash-looping setup still surfaces as WorkerDiedError.
        max_respawns = (
            2 * scenario.num_tasks * config.rounds_per_task
            if config.faults.worker_kill_rate > 0.0
            else 0
        )
        self.executor = build_executor(
            config.executor,
            config.num_workers,
            config.shard_cache,
            max_respawns=max_respawns,
            kernel=config.kernel,
            plan_optimize=config.plan_optimize,
        )
        # The evaluation plane: when eval_executor="parallel", seen-task
        # evaluation fans over a pinned worker pool — the training executor's
        # own pool when it is parallel too (evaluation jobs interleave with
        # training chunks on the same workers), or a dedicated one otherwise.
        self.eval_executor: Optional[ParallelExecutor] = None
        self._owns_eval_executor = False
        eval_backend: Optional[EvalBackend] = None
        if config.eval_executor == "parallel":
            if isinstance(self.executor, ParallelExecutor):
                self.eval_executor = self.executor
            else:
                self.eval_executor = ParallelExecutor(
                    config.num_workers, shard_cache=config.shard_cache
                )
                self._owns_eval_executor = True
            eval_backend = ParallelEvalBackend(
                self.eval_executor, method, broadcast_fn=self.server.broadcast_view
            )
        # The bound method (not an equivalent lambda) so a parallel backend
        # can verify the evaluator's inference path is the method's own.
        self.evaluator = GlobalEvaluator(
            scenario,
            batch_size=config.eval_batch_size,
            predict_fn=method.predict_logits,
            backend=eval_backend,
        )
        # The most recent single-domain shard held by each client and the
        # domain indices a client has ever trained on.
        self._latest_shard: Dict[int, ArrayDataset] = {}
        self._training_data: Dict[int, ArrayDataset] = {}
        self._domains_held: Dict[int, List[int]] = {}
        self.round_losses: List[float] = []
        self.round_loss_components: List[Dict[str, float]] = []
        self.round_eval_history: List[Dict[str, object]] = []
        self.timer = Timer()
        # The temporal plane: a deterministic discrete-event clock, a cost
        # model turning measured work into simulated seconds, and per-client
        # device profiles drawn from the configured heterogeneity tier.  With
        # the default instantaneous tier every cost is zero and the clock
        # never moves, so the synchronous path stays bit-for-bit untimed.
        self.clock = EventScheduler()
        self.cost_model = CostModel()
        self.event_log: List[Dict[str, object]] = []
        # Bounded LRU: profiles are pure functions of (tier, seed, client),
        # so eviction just redraws — what keeps a 100k-virtual-client run's
        # temporal bookkeeping O(recent cohort) instead of O(population).
        self._profiles = ProfileCache(config.device_profile, config.seed)
        self._temporal_runner = TemporalPlaneRunner(self)
        #: Checkpoint bookkeeping: how many snapshots this process wrote and
        #: which checkpoint file (if any) this run resumed from.
        self.checkpoints_written = 0
        self._resumed_from: Optional[str] = None
        # The serving plane: with registry_dir set, the run publishes
        # versioned snapshots (task boundaries + every publish_every rounds);
        # with serve=True additionally, a front end over an inference engine
        # serves them concurrently, hot-swapping at every publish.  Both are
        # observational — trained numbers are identical with serving off.
        self.registry: Optional[ModelRegistry] = None
        self.serving: Optional[ServingFrontEnd] = None
        self.versions_published = 0
        if config.registry_dir:
            self.registry = ModelRegistry(config.registry_dir, keep=config.checkpoint_keep)
            if config.serve:
                engine = InferenceEngine(
                    self.registry,
                    method,
                    kernel="tape" if config.kernel == "tape" else "eager",
                )
                self.serving = ServingFrontEnd(engine).start()

    # ------------------------------------------------------------------ #
    # Data assignment per task
    # ------------------------------------------------------------------ #
    def _assign_task_data(self, task: Task) -> None:
        if self.virtual is not None:
            # Lazy plane: record the task's partition *indices* (schedule
            # mode) or nothing at all (fleet mode) — shards materialize at
            # selection time.  Replayed deterministically on resume, so
            # checkpoints carry specs, never shards.
            assignment = (
                None if self.virtual.fleet
                else self.schedule.assignment_for_task(task.task_id)
            )
            self.virtual.begin_task(task, assignment)
            return
        assignment = self.schedule.assignment_for_task(task.task_id)
        takers = assignment.clients_taking_new_domain
        rng = spawn_rng(self.config.seed, "partition", task.task_id)
        shards = partition_domain_across_clients(
            task.train, takers, rng, concentration=self.config.partition_concentration
        )
        # Scenarios are built before the simulation (possibly at a different
        # precision); convert each shard to the run's compute dtype once here,
        # so training batches and worker IPC stay at that precision instead of
        # re-casting per batch.
        shards = {client_id: shard.astype(get_default_dtype()) for client_id, shard in shards.items()}
        for client_id in assignment.active_clients:
            group = assignment.group_of(client_id)
            if group is ClientGroup.NEW:
                shard = shards[client_id]
                self._latest_shard[client_id] = shard
                self._training_data[client_id] = shard
                self._domains_held[client_id] = [task.task_id]
            elif group is ClientGroup.IN_BETWEEN:
                new_shard = shards[client_id]
                previous = self._latest_shard.get(client_id)
                if previous is not None and len(previous) > 0:
                    # Algorithm 1 line 17: D^t_m = concat(D^{t-1}_m, D^t_m).
                    self._training_data[client_id] = ArrayDataset.concatenate((previous, new_shard))
                else:
                    self._training_data[client_id] = new_shard
                self._latest_shard[client_id] = new_shard
                self._domains_held[client_id] = self._domains_held.get(client_id, []) + [task.task_id]
            else:  # ClientGroup.OLD keeps training on its existing data.
                if client_id not in self._training_data:
                    # A client that never received data (can happen with very
                    # small initial populations); give it an empty marker.
                    continue
        if self.config.executor == "parallel" and self.config.shard_cache:
            # Pay the shard-fingerprint hash at the task boundary (once per
            # shard) instead of inside the first round's critical path.  The
            # concatenated in-between shards built above are new arrays with
            # new fingerprints — exactly what invalidates workers' cached
            # entries from the previous task at the next round's handshake.
            for client_id in assignment.active_clients:
                dataset = self._training_data.get(client_id)
                if dataset is not None and len(dataset) > 0:
                    dataset.fingerprint()

    # ------------------------------------------------------------------ #
    # Temporal plane
    # ------------------------------------------------------------------ #
    def profile_for(self, client_id: int) -> DeviceProfile:
        """The client's device profile, drawn from the configured tier (LRU-cached)."""
        return self._profiles.get(client_id)

    def availability_predicate(self, task_id: int, slot: int):
        """The selection-time availability hook, or ``None`` for always-online tiers.

        Returning ``None`` (rather than an always-true predicate) keeps the
        instantaneous/homogeneous configurations on the exact historical
        ``sample_clients`` path — no hook, no behavioural difference.
        """
        tier = PROFILE_TIERS[self.config.device_profile]
        if tier.availability >= 1.0 and tier.churn <= 0.0:
            return None
        return lambda client_id: self.profile_for(client_id).is_online(
            self.config.seed, task_id, slot
        )

    def _client_dataset(self, client_id: int) -> ArrayDataset:
        """The client's current training data — eager dict or lazy materialization."""
        if self.virtual is not None:
            return self.virtual.materialize(client_id)
        return self._training_data[client_id]

    def _client_group(self, assignment: TaskAssignment, client_id: int) -> ClientGroup:
        if self.virtual is not None and self.virtual.fleet:
            return self.virtual.group_for(client_id)
        return assignment.group_of(client_id)

    def _client_domains(self, client_id: int) -> Tuple[int, ...]:
        if self.virtual is not None:
            return self.virtual.domains_for(client_id)
        return tuple(self._domains_held.get(client_id, []))

    def client_seconds(self, client_id: int) -> float:
        """Simulated cost of the client's most recent dispatch cycle.

        Measured work through the cost model: download frame bytes over the
        device link, epochs x batches at the device's per-step speed, upload
        frame bytes back.  Valid right after the transport's
        ``broadcast_round``/``collect_updates`` cycle for this client.
        """
        profile = self.profile_for(client_id)
        dataset = self._client_dataset(client_id)
        return (
            self.cost_model.transfer_seconds(
                profile, self.transport.last_broadcast_bytes.get(client_id, 0)
            )
            + self.cost_model.training_seconds(
                profile,
                len(dataset),
                self.config.local.batch_size,
                self.config.local.local_epochs,
            )
            + self.cost_model.transfer_seconds(
                profile, self.transport.last_upload_bytes.get(client_id, 0)
            )
            # Retry backoff the fault plane imposed on this client's upload
            # (zero without lost/corrupt attempts — the dict is then empty).
            + self.transport.last_penalty_seconds.get(client_id, 0.0)
        )

    def crash_seconds(self, client_id: int) -> float:
        """Simulated cost of a client that crashed mid-update this cycle.

        The download was already paid in full; training burned
        ``crash_fraction`` of its normal time before the crash; nothing was
        uploaded.
        """
        profile = self.profile_for(client_id)
        dataset = self._client_dataset(client_id)
        return self.cost_model.transfer_seconds(
            profile, self.transport.last_broadcast_bytes.get(client_id, 0)
        ) + self.config.faults.crash_fraction * self.cost_model.training_seconds(
            profile,
            len(dataset),
            self.config.local.batch_size,
            self.config.local.local_epochs,
        )

    def maybe_server_restart(self) -> None:
        """Fire the fault plane's periodic simulated server restart, if due.

        Called after every aggregation (sync rounds and async/buffered
        applications alike): the transport's protocol soft state — delta
        acknowledgements, deferred uploads — is wiped exactly as a real
        process restart would wipe it, and the event trace records the
        restart.  Durable state (model, ledger, method) lives outside the
        transport and survives.
        """
        injector = self.fault_injector
        if injector is None:
            return
        if injector.server_restarts(self.server.round_counter):
            self.transport.restart()
            self.log_event("server_restart", round_counter=self.server.round_counter)

    def log_event(self, kind: str, **data: object) -> None:
        """Append one stamped entry to the temporal plane's event trace."""
        self.event_log.append({"time": self.clock.now, "kind": kind, **data})

    def record_loss_components(self, updates: List[ClientUpdate]) -> None:
        self.round_loss_components.append(_mean_update_metrics(updates))

    def _time_exhausted(self) -> bool:
        limit = self.config.sim_time_limit
        return limit > 0 and self.clock.now >= limit

    # ------------------------------------------------------------------ #
    # Round loop (mode="sync")
    # ------------------------------------------------------------------ #
    def _run_round(self, task: Task, round_index: int) -> None:
        assignment = self.schedule.assignment_for_task(task.task_id)
        self.method.on_round_start(task.task_id, round_index, self.server)
        # The hook may mutate server state directly; a stale cached broadcast
        # (left by the previous round's eval snapshot) must not survive it.
        self.server.invalidate_broadcast()
        rng = spawn_rng(self.config.seed, "selection", task.task_id, round_index)
        fleet = self.virtual is not None and self.virtual.fleet
        if not fleet:
            if self.virtual is not None:
                # Schedule-mode virtual: the plane's take records coincide
                # with "has a non-empty shard", so this is the eager eligible
                # list — same clients, same order, same rng draws below.
                eligible = self.virtual.eligible(assignment)
            else:
                eligible = [
                    client_id
                    for client_id in assignment.active_clients
                    if client_id in self._training_data and len(self._training_data[client_id]) > 0
                ]
            if not eligible:
                raise RuntimeError(
                    f"no client has training data for task {task.task_id}; "
                    "check the increment schedule and partitioning configuration"
                )
        try:
            if fleet:
                # Fleet mode: an O(cohort) draw from range(population) — the
                # population is never instantiated as a list.
                selected = sample_clients_lazy(
                    self.config.population,
                    self.config.clients_per_round,
                    rng,
                    available=self.availability_predicate(task.task_id, round_index),
                )
            else:
                selected = sample_clients(
                    eligible,
                    self.config.clients_per_round,
                    rng,
                    available=self.availability_predicate(task.task_id, round_index),
                )
        except NoAvailableClientsError:
            # Every eligible device is offline this round: the server waits
            # out an idle tick instead of training — nothing aggregates, no
            # loss is recorded, and the trace says so explicitly.
            self.clock.advance(self.cost_model.idle_seconds)
            self.log_event("idle_round", task_id=task.task_id, round_index=round_index)
            return
        # The fault plane's per-round consultations.  Crashed clients still
        # receive the broadcast (they were selected; the server does not know
        # they will die) but never train to completion or upload.  A worker
        # kill is queued on the executor, which murders the victim process
        # just before the round's chunks go out — the self-healing collect
        # respawns it and replays the lost work.
        injector = self.fault_injector
        crashed: frozenset = frozenset()
        if injector is not None:
            crashed = frozenset(
                client_id
                for client_id in selected
                if injector.client_crashes(task.task_id, round_index, client_id)
            )
            for client_id in sorted(crashed):
                self.log_event(
                    "client_crash",
                    task_id=task.task_id,
                    round_index=round_index,
                    client_id=client_id,
                )
            if isinstance(self.executor, ParallelExecutor):
                victim = injector.worker_to_kill(
                    task.task_id, round_index, self.executor.num_workers
                )
                if victim is not None:
                    self.executor.request_worker_kill(victim)
        survivors = [client_id for client_id in selected if client_id not in crashed]
        handles = [
            ClientHandle(
                client_id=client_id,
                task_id=task.task_id,
                group=self._client_group(assignment, client_id),
                dataset=self._client_dataset(client_id),
                rng=spawn_rng(self.config.seed, "client", client_id, task.task_id, round_index),
                training=self.config.local,
                domains_held=self._client_domains(client_id),
                metadata={
                    "round_index": float(round_index),
                    "rounds_per_task": float(self.config.rounds_per_task),
                    "num_tasks": float(self.scenario.num_tasks),
                },
            )
            for client_id in survivors
        ]
        # One shared read-only broadcast per round (zero per-client copies),
        # delivered through the transport: clients train from the *decoded*
        # broadcast frame (identical to the server state for lossless codecs,
        # the dequantized state for lossy ones).
        with self.timer.measure("broadcast"):
            broadcast = self.transport.broadcast_round(
                self.server, selected, task.task_id, round_index
            )
        if handles:
            with self.timer.measure("local_update"):
                updates = self.executor.run_round(self.method, self.model, broadcast, handles)
        else:
            # Every selected client crashed before training; nothing to run.
            updates = []
        # Decode-before-aggregate: uploads become wire frames, the bandwidth
        # scenario drops/defers stragglers, and aggregation sees exactly what
        # arrived (plus any deferred uploads from the previous round).
        with self.timer.measure("uplink"):
            updates = self.transport.collect_updates(updates)
        # The synchronous barrier on the simulated clock: the round takes as
        # long as its slowest selected device — a crashed client burns its
        # download plus a fraction of its training time, a surviving one its
        # full measured cycle (including any retry backoff).
        barrier = max(
            self.crash_seconds(client_id) if client_id in crashed else self.client_seconds(client_id)
            for client_id in selected
        )
        if not updates:
            # Nothing reached aggregation: every selected client crashed, or
            # every upload exhausted its retries under drop_stragglers.  The
            # global model simply does not advance this round — no loss is
            # recorded, and the trace says so explicitly.
            self.clock.advance(barrier)
            self.log_event(
                "failed_round",
                task_id=task.task_id,
                round_index=round_index,
                clients=tuple(selected),
            )
            return
        with self.timer.measure("aggregate"):
            self.method.aggregate(self.server, updates)
        # Retry backoff the fault plane imposed on a tree reduce's edge hops
        # joins the round's barrier (zero for the flat star — collect_penalty
        # is a no-op returning 0.0 there).
        barrier += self.server.reduce_backend.collect_penalty()
        # server.aggregate() invalidates the cached broadcast itself, but a
        # method's aggregate override may mutate server state directly; the
        # mid-task eval below must never score a stale pre-round broadcast.
        self.server.invalidate_broadcast()
        self.maybe_server_restart()
        mean_loss = float(np.mean([update.train_loss for update in updates]))
        self.round_losses.append(mean_loss)
        self.record_loss_components(updates)
        if self.round_loss_components[-1]:
            logger.debug(
                "task %d round %d loss components: %s",
                task.task_id,
                round_index,
                ", ".join(f"{k}={v:.4f}" for k, v in self.round_loss_components[-1].items()),
            )
        logger.debug(
            "task %d round %d: %d clients, mean loss %.4f",
            task.task_id,
            round_index,
            len(updates),
            mean_loss,
        )
        # Zero under the instantaneous tier, so the untimed configuration
        # never sees the clock move.
        self.clock.advance(barrier)
        self.log_event(
            "round",
            task_id=task.task_id,
            round_index=round_index,
            clients=tuple(selected),
        )
        if self.config.eval_every and (round_index + 1) % self.config.eval_every == 0:
            # Mid-task snapshot of the paper's evaluation protocol: score the
            # freshly aggregated global model on every seen domain.  Recorded
            # outside the accuracy matrix (which admits one entry per task
            # pair) into the per-round history.
            self.model.load_state_dict(self.server.global_state)
            with self.timer.measure("round_evaluation"):
                accuracies = self.evaluator.evaluate_seen(self.model, task.task_id)
            self.round_eval_history.append(
                {
                    "task_id": task.task_id,
                    "round_index": round_index,
                    "accuracies": accuracies,
                    "sim_time": self.clock.now,
                }
            )
        if (
            self.registry is not None
            and self.config.publish_every > 0
            and (round_index + 1) % self.config.publish_every == 0
        ):
            # Attach the freshest accuracy snapshot when this very round was
            # just evaluated (publish_every aligned with eval_every); versions
            # between evaluations publish without one.
            snapshot_acc: Optional[Dict[str, float]] = None
            if self.round_eval_history:
                last = self.round_eval_history[-1]
                if last["task_id"] == task.task_id and last["round_index"] == round_index:
                    snapshot_acc = dict(last["accuracies"])  # type: ignore[arg-type]
            self._publish_version(task.task_id, round_index + 1, snapshot_acc)

    # ------------------------------------------------------------------ #
    # Checkpoint / resume
    # ------------------------------------------------------------------ #
    def _checkpoint_payload(self, start_task: int, start_round: int) -> Dict[str, object]:
        """Everything a fresh process needs to continue bit-for-bit.

        Model state and method broadcast payload travel flattened through the
        method's own ``payload_codec()`` (the same namespacing the wire
        format uses); the method object itself is pickled whole (it is
        required to be picklable for the parallel executor anyway).  Nothing
        rebuilt deterministically from the config is stored: datasets, client
        schedules, device profiles, virtual-client recipes (the resume path
        replays task assignment, which rebuilds the plane's specs — shards
        are never serialized), and every RNG — ``spawn_rng`` streams are
        pure functions of ``(seed, labels)``, so there is no generator state.
        """
        arrays, skeleton = _flatten_message(
            self.server.global_state, self.server.broadcast_payload, self.method.payload_codec()
        )
        return {
            "version": CHECKPOINT_VERSION,
            "fingerprint": config_fingerprint(self.config),
            "start_task": start_task,
            "start_round": start_round,
            "server": {
                "arrays": {key: np.array(value, copy=True) for key, value in arrays.items()},
                "skeleton": skeleton,
                "round_counter": self.server.round_counter,
            },
            "method_blob": pickle.dumps(self.method, protocol=pickle.HIGHEST_PROTOCOL),
            "transport": self.transport.state_dict(),
            "ledger_blob": pickle.dumps(self.server.ledger, protocol=pickle.HIGHEST_PROTOCOL),
            "round_losses": list(self.round_losses),
            "round_loss_components": [dict(entry) for entry in self.round_loss_components],
            "round_eval_history": list(self.round_eval_history),
            "event_log": list(self.event_log),
            "clock": {"now": self.clock.now, "seq": self.clock._seq},
            "evaluator": {
                "matrix": np.array(self.evaluator.accuracy_matrix._matrix, copy=True),
                "per_task_history": [dict(entry) for entry in self.evaluator.per_task_history],
            },
            "faults": None if self.fault_injector is None else self.fault_injector.state_dict(),
            "checkpoints_written": self.checkpoints_written,
        }

    def _write_checkpoint(self, start_task: int, start_round: int) -> None:
        """Persist a snapshot that resumes at ``(start_task, start_round)``."""
        if not self.config.checkpoint_dir:
            return
        path = os.path.join(
            self.config.checkpoint_dir, checkpoint_name(start_task, start_round)
        )
        save_checkpoint(path, self._checkpoint_payload(start_task, start_round))
        self.checkpoints_written += 1
        logger.debug("wrote checkpoint %s", path)
        if self.config.checkpoint_keep > 0:
            # Retention after the new snapshot is durable: a crash mid-prune
            # leaves extra old checkpoints, never fewer than checkpoint_keep.
            prune_checkpoints(self.config.checkpoint_dir, self.config.checkpoint_keep)

    # ------------------------------------------------------------------ #
    # Serving plane
    # ------------------------------------------------------------------ #
    def _publish_version(
        self, task_id: int, round_index: int, accuracies: Optional[Dict[str, float]] = None
    ) -> None:
        """Publish the current global model (+ broadcast payload) as a version.

        Mirrors the checkpoint payload's durable core — state and payload
        flattened through the method's own ``payload_codec()`` — but through
        the registry's codec-compressed, manifest-indexed container, and
        notifies a co-running front end so it hot-swaps at its next batch
        boundary.
        """
        if self.registry is None:
            return
        self.registry.publish(
            name=self.method.name,
            state=self.server.global_state,
            payload=self.server.broadcast_payload,
            payload_codec=self.method.payload_codec(),
            codec=self.config.serve_codec,
            task_id=task_id,
            round_index=round_index,
            fingerprint=config_fingerprint(self.config),
            accuracy=accuracies,
        )
        self.versions_published += 1
        if self.serving is not None:
            self.serving.notify_publish()

    def _serving_stats(self) -> Dict[str, object]:
        if self.registry is None:
            return {}
        stats: Dict[str, object] = {
            "versions_published": self.versions_published,
            "versions_retained": len(self.registry.list_versions()),
        }
        latest = self.registry.latest()
        stats["latest_version"] = latest.version if latest is not None else None
        if self.serving is not None:
            stats["frontend"] = self.serving.telemetry()
        return stats

    def _restore(self, payload: Dict[str, object]) -> None:
        """Load a checkpoint payload into this (freshly constructed) simulation."""
        with default_dtype(self.config.dtype):
            server_state = payload["server"]
            state, broadcast_payload = _split_message(
                dict(server_state["arrays"]), server_state["skeleton"], self.method.payload_codec()
            )
            self.server.global_state = state
            self.server.broadcast_payload = broadcast_payload
            self.server.round_counter = server_state["round_counter"]
            self.server.invalidate_broadcast()
            self.model.load_state_dict(state)
            # Swap the method's state in place: the evaluator (and any
            # parallel eval backend) holds bound references to *this* method
            # object, so the object identity must survive the restore.
            restored = pickle.loads(payload["method_blob"])
            self.method.__dict__.clear()
            self.method.__dict__.update(restored.__dict__)
            ledger = pickle.loads(payload["ledger_blob"])
            self.server.ledger = ledger
            self.transport.ledger = ledger
            if getattr(self.server.reduce_backend, "ledger", None) is not None:
                # A tree backend keeps accounting into the restored ledger.
                self.server.reduce_backend.ledger = ledger
            self.transport.load_state_dict(payload["transport"])
            self.round_losses[:] = payload["round_losses"]
            self.round_loss_components[:] = payload["round_loss_components"]
            self.round_eval_history[:] = payload["round_eval_history"]
            self.event_log[:] = payload["event_log"]
            self.clock.now = payload["clock"]["now"]
            self.clock._seq = payload["clock"]["seq"]
            self.evaluator.accuracy_matrix._matrix[:] = payload["evaluator"]["matrix"]
            self.evaluator.per_task_history[:] = payload["evaluator"]["per_task_history"]
            if self.fault_injector is not None and payload["faults"] is not None:
                self.fault_injector.load_state_dict(payload["faults"])
            self.checkpoints_written = payload["checkpoints_written"]

    def _maybe_resume(self) -> Tuple[int, int]:
        """Restore the latest checkpoint, returning the (task, round) to start at.

        A directory with no checkpoint yet means a fresh start — the same
        command line works for the first launch and for every relaunch after
        a crash.  A checkpoint from an incompatibly configured run raises
        :class:`CheckpointMismatchError` rather than silently diverging.
        """
        path = latest_checkpoint(self.config.checkpoint_dir)
        if path is None:
            return 0, 0
        payload = load_checkpoint(path)
        expected = config_fingerprint(self.config)
        if payload.get("fingerprint") != expected:
            raise CheckpointMismatchError(
                f"checkpoint {path!r} was written under a different configuration "
                "(fingerprint mismatch); refusing to resume into a diverging run"
            )
        self._restore(payload)
        self._resumed_from = path
        logger.info(
            "resumed from %s at task %d round %d",
            path,
            payload["start_task"],
            payload["start_round"],
        )
        return payload["start_task"], payload["start_round"]

    def _fault_stats(self) -> Dict[str, object]:
        stats: Dict[str, object] = {}
        if self.fault_injector is not None:
            stats.update(self.fault_injector.summary())
            if isinstance(self.executor, ParallelExecutor):
                stats["worker_respawns"] = self.executor.respawns
        if self.checkpoints_written or self._resumed_from is not None:
            stats["checkpoints_written"] = self.checkpoints_written
            stats["resumed_from"] = self._resumed_from
        return stats

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #
    def run_task(self, task: Task, start_round: int = 0, *, resumed: bool = False) -> Dict[str, float]:
        """Run one task — rounds in sync mode, the event loop otherwise —
        and return per-domain evaluation accuracies.

        ``start_round``/``resumed`` are the resume path's entry point: a
        mid-task checkpoint re-enters the round loop at ``start_round`` and
        must not replay ``on_task_start`` (it already ran before round 0 of
        the original process); data assignment always replays, because client
        shards are derived state the checkpoint deliberately does not carry.

        Local training runs under the configured autograd kernel (the
        ``kernel_mode`` wrapper reaches the serial and batched executors'
        in-process ``run_local_sgd`` calls; parallel workers receive the
        kernel with every train chunk instead).
        """
        with default_dtype(self.config.dtype), kernel_mode(self.config.kernel), plan_optimize_mode(self.config.plan_optimize):
            if not resumed:
                self.method.on_task_start(task.task_id, self.server)
                self.server.invalidate_broadcast()
            self._assign_task_data(task)
            if self.config.mode == "sync":
                for round_index in range(start_round, self.config.rounds_per_task):
                    if self._time_exhausted():
                        self.log_event(
                            "skipped_round", task_id=task.task_id, round_index=round_index
                        )
                        continue
                    self._run_round(task, round_index)
                    if (
                        self.config.checkpoint_every > 0
                        and (round_index + 1) % self.config.checkpoint_every == 0
                        and round_index + 1 < self.config.rounds_per_task
                    ):
                        self._write_checkpoint(task.task_id, round_index + 1)
            else:
                self._temporal_runner.run_task(task)
            self.method.on_task_end(task.task_id, self.server)
            # Whatever the hook did to the server must be visible to the
            # after-task evaluation below (the parallel eval backend scores
            # through server.broadcast_view()) and to the next task's rounds.
            self.server.invalidate_broadcast()
            self.model.load_state_dict(self.server.global_state)
            with self.timer.measure("evaluation"):
                return self.evaluator.evaluate_after_task(self.model, task.task_id)

    def run(self) -> SimulationResult:
        """Run the complete domain-incremental stream and return the summary.

        With ``checkpoint_dir`` set, a snapshot lands after every task (plus
        every ``checkpoint_every`` rounds in sync mode); with ``resume=True``
        the run first restores the latest snapshot and replays only the data
        assignment of already-finished tasks — the training they did lives in
        the checkpoint, so a killed-and-relaunched run reproduces the
        uninterrupted run bit-for-bit.
        """
        try:
            with self.timer.measure("total"):
                start_task, start_round = 0, 0
                if self.config.resume:
                    start_task, start_round = self._maybe_resume()
                for task in self.scenario:
                    if task.task_id < start_task:
                        # Already trained before the checkpoint: replay only
                        # the deterministic data assignment, so later tasks'
                        # in-between clients see the right previous shards.
                        with default_dtype(self.config.dtype):
                            self._assign_task_data(task)
                        continue
                    resumed_here = task.task_id == start_task and start_round > 0
                    results = self.run_task(
                        task,
                        start_round=start_round if resumed_here else 0,
                        resumed=resumed_here,
                    )
                    if self.config.checkpoint_dir:
                        self._write_checkpoint(task.task_id + 1, 0)
                    if self.registry is not None:
                        # Task boundaries always publish: this is the snapshot
                        # the paper's evaluation protocol scores, so it is the
                        # one a serving fleet should converge to.
                        self._publish_version(task.task_id + 1, 0, dict(results))
                    logger.info(
                        "[%s] task %d (%s): %s",
                        self.method.name,
                        task.task_id,
                        task.domain_name,
                        ", ".join(f"{name}={acc:.3f}" for name, acc in results.items()),
                    )
        finally:
            self.close()
        return SimulationResult(
            method_name=self.method.name,
            metrics=self.evaluator.summary(),
            per_task_accuracy=self.evaluator.per_task_history,
            round_losses=self.round_losses,
            round_loss_components=self.round_loss_components,
            communication=self.server.ledger,
            schedule_trace=self.schedule.schedule_trace(self.scenario.num_tasks),
            wall_clock_seconds=self.timer.total("total"),
            round_eval_history=self.round_eval_history,
            sim_time=self.clock.now,
            event_log=self.event_log,
            fault_stats=self._fault_stats(),
            serving_stats=self._serving_stats(),
        )

    def close(self) -> None:
        """Release executor resources (worker pools); idempotent.

        Shuts down both executors: the training executor and — when the
        simulation owns a dedicated parallel eval pool (``executor="serial"``
        with ``eval_executor="parallel"``) — the eval executor too.  Called
        by :meth:`run` on every exit path, including after a mid-round
        failure such as :class:`repro.federated.execution.WorkerDiedError` —
        each stage releases even when an earlier one raises, so no pool is
        ever leaked.  Use the simulation as a context manager when driving
        tasks manually via :meth:`run_task`.
        """
        try:
            if self.serving is not None:
                # Drain-then-stop: every request accepted before this point is
                # answered (on whichever version it was batched under).
                self.serving.stop()
        finally:
            try:
                self.transport.finalize()
            finally:
                try:
                    self.executor.close()
                finally:
                    if self._owns_eval_executor and self.eval_executor is not None:
                        self.eval_executor.close()

    def __enter__(self) -> "FederatedDomainIncrementalSimulation":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


__all__ = ["FederatedDomainIncrementalSimulation", "SimulationResult"]
