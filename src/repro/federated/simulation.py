"""The federated domain-incremental simulation loop (paper Algorithm 1).

The simulation drives an arbitrary :class:`repro.federated.method.FederatedMethod`
through a :class:`repro.continual.scenario.DomainIncrementalScenario`:

for every incremental task ``t``:
    * advance the client-increment schedule (Old / In-between / New groups),
    * partition the new domain's training data across the clients that take it
      (with quantity shift), letting In-between clients concatenate their
      previous domain's shard (Algorithm 1 line 17),
    * run ``R`` communication rounds of: random client selection, broadcast of
      the global model (plus the method's broadcast payload, e.g. clustered
      global prompts), local updates, aggregation;
    * evaluate the global model on the test sets of every seen domain and
      record the accuracy matrix.

The loop is entirely method-agnostic; RefFiL and the baselines only differ in
the hooks they implement.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.autograd.tensor import default_dtype, get_default_dtype
from repro.continual.evaluator import EvalBackend, GlobalEvaluator
from repro.continual.metrics import ContinualMetrics
from repro.continual.scenario import DomainIncrementalScenario, Task
from repro.datasets.base import ArrayDataset
from repro.datasets.partition import partition_domain_across_clients
from repro.federated.async_plane import TemporalPlaneRunner
from repro.federated.client import ClientHandle
from repro.federated.clock import (
    CostModel,
    DeviceProfile,
    EventScheduler,
    PROFILE_TIERS,
    build_profile,
)
from repro.federated.communication import ClientUpdate, CommunicationLedger
from repro.federated.config import FederatedConfig
from repro.federated.execution import ParallelEvalBackend, ParallelExecutor, build_executor
from repro.federated.increment import ClientGroup, ClientIncrementSchedule
from repro.federated.method import FederatedMethod
from repro.federated.sampling import NoAvailableClientsError, sample_clients
from repro.federated.server import FederatedServer
from repro.federated.transport import build_transport
from repro.utils.logging_utils import get_logger
from repro.utils.rng import spawn_rng
from repro.utils.timing import Timer

logger = get_logger(__name__)


@dataclass
class SimulationResult:
    """Outcome of one complete federated domain-incremental run."""

    method_name: str
    metrics: ContinualMetrics
    per_task_accuracy: List[Dict[str, float]] = field(default_factory=list)
    round_losses: List[float] = field(default_factory=list)
    round_loss_components: List[Dict[str, float]] = field(default_factory=list)
    communication: Optional[CommunicationLedger] = None
    schedule_trace: List[Dict[str, int]] = field(default_factory=list)
    wall_clock_seconds: float = 0.0
    #: Mid-task evaluation snapshots recorded by ``eval_every``: one entry per
    #: evaluated round (per aggregation event in async/buffered modes),
    #: ``{"task_id", "round_index", "accuracies", "sim_time"}`` where
    #: ``accuracies`` maps every seen domain's name to its accuracy and
    #: ``sim_time`` is the simulated clock at the snapshot — together they are
    #: the accuracy-vs-simulated-time curve of the temporal plane.
    round_eval_history: List[Dict[str, object]] = field(default_factory=list)
    #: Final simulated wall-clock time (seconds on the temporal plane's
    #: clock).  ``0.0`` under the default instantaneous device profile.
    sim_time: float = 0.0
    #: The temporal plane's event trace: one ``{"time", "kind", ...}`` dict
    #: per event — ``round``/``idle_round``/``skipped_round`` in sync mode,
    #: ``dispatch``/``arrival``/``flush``/``budget_abandoned``/... in
    #: async/buffered modes.  Deterministic per seed.
    event_log: List[Dict[str, object]] = field(default_factory=list)


def _mean_update_metrics(updates: List[ClientUpdate]) -> Dict[str, float]:
    """Per-key client means over the updates that actually report each key.

    A round's loss breakdown (the Table VII components) must not depend on
    which client happens to come first in selection order: an update with no
    metrics — or with a partial set of keys — simply contributes nothing to
    the keys it does not report, instead of erasing the whole round's
    breakdown.  When every update reports every key (the normal case) this is
    the plain client mean, bit-for-bit.
    """
    values: Dict[str, List[float]] = {}
    for update in updates:
        for key, value in update.metrics.items():
            values.setdefault(key, []).append(float(value))
    return {key: float(np.mean(values[key])) for key in sorted(values)}


class FederatedDomainIncrementalSimulation:
    """Runs one method over one scenario under one federated configuration.

    The per-round client loop is delegated to a
    :class:`repro.federated.execution.Executor` selected by
    ``config.executor`` / ``config.num_workers``, seen-task evaluation to the
    eval backend selected by ``config.eval_executor`` (with optional mid-task
    snapshots every ``config.eval_every`` rounds), and the whole run executes
    under the compute dtype selected by ``config.dtype``.
    """

    def __init__(
        self,
        scenario: DomainIncrementalScenario,
        method: FederatedMethod,
        config: FederatedConfig,
    ) -> None:
        self.scenario = scenario
        self.method = method
        self.config = config
        with default_dtype(config.dtype):
            self.model = method.build_model()
        self.server = FederatedServer(self.model)
        self.schedule = ClientIncrementSchedule(config.increment)
        # The communication plane: every round's broadcast and uploads move
        # through the transport, which owns the server's ledger (measured
        # wire frames on the loopback transport, the legacy estimate on the
        # direct one) — so the server must not also record estimate rounds.
        self.transport = build_transport(
            config.transport,
            config.codec,
            ledger=self.server.ledger,
            payload_codec=method.payload_codec(),
            seed=config.seed,
            bandwidth_limit=config.bandwidth_limit,
            drop_stragglers=config.drop_stragglers,
        )
        self.server.ledger_autorecord = False
        self.executor = build_executor(config.executor, config.num_workers, config.shard_cache)
        # The evaluation plane: when eval_executor="parallel", seen-task
        # evaluation fans over a pinned worker pool — the training executor's
        # own pool when it is parallel too (evaluation jobs interleave with
        # training chunks on the same workers), or a dedicated one otherwise.
        self.eval_executor: Optional[ParallelExecutor] = None
        self._owns_eval_executor = False
        eval_backend: Optional[EvalBackend] = None
        if config.eval_executor == "parallel":
            if isinstance(self.executor, ParallelExecutor):
                self.eval_executor = self.executor
            else:
                self.eval_executor = ParallelExecutor(
                    config.num_workers, shard_cache=config.shard_cache
                )
                self._owns_eval_executor = True
            eval_backend = ParallelEvalBackend(
                self.eval_executor, method, broadcast_fn=self.server.broadcast_view
            )
        # The bound method (not an equivalent lambda) so a parallel backend
        # can verify the evaluator's inference path is the method's own.
        self.evaluator = GlobalEvaluator(
            scenario,
            batch_size=config.eval_batch_size,
            predict_fn=method.predict_logits,
            backend=eval_backend,
        )
        # The most recent single-domain shard held by each client and the
        # domain indices a client has ever trained on.
        self._latest_shard: Dict[int, ArrayDataset] = {}
        self._training_data: Dict[int, ArrayDataset] = {}
        self._domains_held: Dict[int, List[int]] = {}
        self.round_losses: List[float] = []
        self.round_loss_components: List[Dict[str, float]] = []
        self.round_eval_history: List[Dict[str, object]] = []
        self.timer = Timer()
        # The temporal plane: a deterministic discrete-event clock, a cost
        # model turning measured work into simulated seconds, and per-client
        # device profiles drawn from the configured heterogeneity tier.  With
        # the default instantaneous tier every cost is zero and the clock
        # never moves, so the synchronous path stays bit-for-bit untimed.
        self.clock = EventScheduler()
        self.cost_model = CostModel()
        self.event_log: List[Dict[str, object]] = []
        self._profiles: Dict[int, DeviceProfile] = {}
        self._temporal_runner = TemporalPlaneRunner(self)

    # ------------------------------------------------------------------ #
    # Data assignment per task
    # ------------------------------------------------------------------ #
    def _assign_task_data(self, task: Task) -> None:
        assignment = self.schedule.assignment_for_task(task.task_id)
        takers = assignment.clients_taking_new_domain
        rng = spawn_rng(self.config.seed, "partition", task.task_id)
        shards = partition_domain_across_clients(
            task.train, takers, rng, concentration=self.config.partition_concentration
        )
        # Scenarios are built before the simulation (possibly at a different
        # precision); convert each shard to the run's compute dtype once here,
        # so training batches and worker IPC stay at that precision instead of
        # re-casting per batch.
        shards = {client_id: shard.astype(get_default_dtype()) for client_id, shard in shards.items()}
        for client_id in assignment.active_clients:
            group = assignment.group_of(client_id)
            if group is ClientGroup.NEW:
                shard = shards[client_id]
                self._latest_shard[client_id] = shard
                self._training_data[client_id] = shard
                self._domains_held[client_id] = [task.task_id]
            elif group is ClientGroup.IN_BETWEEN:
                new_shard = shards[client_id]
                previous = self._latest_shard.get(client_id)
                if previous is not None and len(previous) > 0:
                    # Algorithm 1 line 17: D^t_m = concat(D^{t-1}_m, D^t_m).
                    self._training_data[client_id] = ArrayDataset.concatenate((previous, new_shard))
                else:
                    self._training_data[client_id] = new_shard
                self._latest_shard[client_id] = new_shard
                self._domains_held[client_id] = self._domains_held.get(client_id, []) + [task.task_id]
            else:  # ClientGroup.OLD keeps training on its existing data.
                if client_id not in self._training_data:
                    # A client that never received data (can happen with very
                    # small initial populations); give it an empty marker.
                    continue
        if self.config.executor == "parallel" and self.config.shard_cache:
            # Pay the shard-fingerprint hash at the task boundary (once per
            # shard) instead of inside the first round's critical path.  The
            # concatenated in-between shards built above are new arrays with
            # new fingerprints — exactly what invalidates workers' cached
            # entries from the previous task at the next round's handshake.
            for client_id in assignment.active_clients:
                dataset = self._training_data.get(client_id)
                if dataset is not None and len(dataset) > 0:
                    dataset.fingerprint()

    # ------------------------------------------------------------------ #
    # Temporal plane
    # ------------------------------------------------------------------ #
    def profile_for(self, client_id: int) -> DeviceProfile:
        """The client's device profile, drawn once from the configured tier."""
        profile = self._profiles.get(client_id)
        if profile is None:
            profile = build_profile(self.config.device_profile, self.config.seed, client_id)
            self._profiles[client_id] = profile
        return profile

    def availability_predicate(self, task_id: int, slot: int):
        """The selection-time availability hook, or ``None`` for always-online tiers.

        Returning ``None`` (rather than an always-true predicate) keeps the
        instantaneous/homogeneous configurations on the exact historical
        ``sample_clients`` path — no hook, no behavioural difference.
        """
        tier = PROFILE_TIERS[self.config.device_profile]
        if tier.availability >= 1.0 and tier.churn <= 0.0:
            return None
        return lambda client_id: self.profile_for(client_id).is_online(
            self.config.seed, task_id, slot
        )

    def client_seconds(self, client_id: int) -> float:
        """Simulated cost of the client's most recent dispatch cycle.

        Measured work through the cost model: download frame bytes over the
        device link, epochs x batches at the device's per-step speed, upload
        frame bytes back.  Valid right after the transport's
        ``broadcast_round``/``collect_updates`` cycle for this client.
        """
        profile = self.profile_for(client_id)
        dataset = self._training_data[client_id]
        return (
            self.cost_model.transfer_seconds(
                profile, self.transport.last_broadcast_bytes.get(client_id, 0)
            )
            + self.cost_model.training_seconds(
                profile,
                len(dataset),
                self.config.local.batch_size,
                self.config.local.local_epochs,
            )
            + self.cost_model.transfer_seconds(
                profile, self.transport.last_upload_bytes.get(client_id, 0)
            )
        )

    def log_event(self, kind: str, **data: object) -> None:
        """Append one stamped entry to the temporal plane's event trace."""
        self.event_log.append({"time": self.clock.now, "kind": kind, **data})

    def record_loss_components(self, updates: List[ClientUpdate]) -> None:
        self.round_loss_components.append(_mean_update_metrics(updates))

    def _time_exhausted(self) -> bool:
        limit = self.config.sim_time_limit
        return limit > 0 and self.clock.now >= limit

    # ------------------------------------------------------------------ #
    # Round loop (mode="sync")
    # ------------------------------------------------------------------ #
    def _run_round(self, task: Task, round_index: int) -> None:
        assignment = self.schedule.assignment_for_task(task.task_id)
        self.method.on_round_start(task.task_id, round_index, self.server)
        # The hook may mutate server state directly; a stale cached broadcast
        # (left by the previous round's eval snapshot) must not survive it.
        self.server.invalidate_broadcast()
        rng = spawn_rng(self.config.seed, "selection", task.task_id, round_index)
        eligible = [
            client_id
            for client_id in assignment.active_clients
            if client_id in self._training_data and len(self._training_data[client_id]) > 0
        ]
        if not eligible:
            raise RuntimeError(
                f"no client has training data for task {task.task_id}; "
                "check the increment schedule and partitioning configuration"
            )
        try:
            selected = sample_clients(
                eligible,
                self.config.clients_per_round,
                rng,
                available=self.availability_predicate(task.task_id, round_index),
            )
        except NoAvailableClientsError:
            # Every eligible device is offline this round: the server waits
            # out an idle tick instead of training — nothing aggregates, no
            # loss is recorded, and the trace says so explicitly.
            self.clock.advance(self.cost_model.idle_seconds)
            self.log_event("idle_round", task_id=task.task_id, round_index=round_index)
            return
        handles = [
            ClientHandle(
                client_id=client_id,
                task_id=task.task_id,
                group=assignment.group_of(client_id),
                dataset=self._training_data[client_id],
                rng=spawn_rng(self.config.seed, "client", client_id, task.task_id, round_index),
                training=self.config.local,
                domains_held=tuple(self._domains_held.get(client_id, [])),
                metadata={
                    "round_index": float(round_index),
                    "rounds_per_task": float(self.config.rounds_per_task),
                    "num_tasks": float(self.scenario.num_tasks),
                },
            )
            for client_id in selected
        ]
        # One shared read-only broadcast per round (zero per-client copies),
        # delivered through the transport: clients train from the *decoded*
        # broadcast frame (identical to the server state for lossless codecs,
        # the dequantized state for lossy ones).
        with self.timer.measure("broadcast"):
            broadcast = self.transport.broadcast_round(
                self.server, selected, task.task_id, round_index
            )
        with self.timer.measure("local_update"):
            updates = self.executor.run_round(self.method, self.model, broadcast, handles)
        # Decode-before-aggregate: uploads become wire frames, the bandwidth
        # scenario drops/defers stragglers, and aggregation sees exactly what
        # arrived (plus any deferred uploads from the previous round).
        with self.timer.measure("uplink"):
            updates = self.transport.collect_updates(updates)
        with self.timer.measure("aggregate"):
            self.method.aggregate(self.server, updates)
        # server.aggregate() invalidates the cached broadcast itself, but a
        # method's aggregate override may mutate server state directly; the
        # mid-task eval below must never score a stale pre-round broadcast.
        self.server.invalidate_broadcast()
        mean_loss = float(np.mean([update.train_loss for update in updates]))
        self.round_losses.append(mean_loss)
        self.record_loss_components(updates)
        if self.round_loss_components[-1]:
            logger.debug(
                "task %d round %d loss components: %s",
                task.task_id,
                round_index,
                ", ".join(f"{k}={v:.4f}" for k, v in self.round_loss_components[-1].items()),
            )
        logger.debug(
            "task %d round %d: %d clients, mean loss %.4f",
            task.task_id,
            round_index,
            len(updates),
            mean_loss,
        )
        # The synchronous barrier on the simulated clock: the round takes as
        # long as its slowest selected device (measured bytes over its link
        # plus its local epochs at its speed).  Zero under the instantaneous
        # tier, so the untimed configuration never sees the clock move.
        self.clock.advance(max(self.client_seconds(client_id) for client_id in selected))
        self.log_event(
            "round",
            task_id=task.task_id,
            round_index=round_index,
            clients=tuple(selected),
        )
        if self.config.eval_every and (round_index + 1) % self.config.eval_every == 0:
            # Mid-task snapshot of the paper's evaluation protocol: score the
            # freshly aggregated global model on every seen domain.  Recorded
            # outside the accuracy matrix (which admits one entry per task
            # pair) into the per-round history.
            self.model.load_state_dict(self.server.global_state)
            with self.timer.measure("round_evaluation"):
                accuracies = self.evaluator.evaluate_seen(self.model, task.task_id)
            self.round_eval_history.append(
                {
                    "task_id": task.task_id,
                    "round_index": round_index,
                    "accuracies": accuracies,
                    "sim_time": self.clock.now,
                }
            )

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #
    def run_task(self, task: Task) -> Dict[str, float]:
        """Run one task — rounds in sync mode, the event loop otherwise —
        and return per-domain evaluation accuracies."""
        with default_dtype(self.config.dtype):
            self.method.on_task_start(task.task_id, self.server)
            self.server.invalidate_broadcast()
            self._assign_task_data(task)
            if self.config.mode == "sync":
                for round_index in range(self.config.rounds_per_task):
                    if self._time_exhausted():
                        self.log_event(
                            "skipped_round", task_id=task.task_id, round_index=round_index
                        )
                        continue
                    self._run_round(task, round_index)
            else:
                self._temporal_runner.run_task(task)
            self.method.on_task_end(task.task_id, self.server)
            # Whatever the hook did to the server must be visible to the
            # after-task evaluation below (the parallel eval backend scores
            # through server.broadcast_view()) and to the next task's rounds.
            self.server.invalidate_broadcast()
            self.model.load_state_dict(self.server.global_state)
            with self.timer.measure("evaluation"):
                return self.evaluator.evaluate_after_task(self.model, task.task_id)

    def run(self) -> SimulationResult:
        """Run the complete domain-incremental stream and return the summary."""
        try:
            with self.timer.measure("total"):
                for task in self.scenario:
                    results = self.run_task(task)
                    logger.info(
                        "[%s] task %d (%s): %s",
                        self.method.name,
                        task.task_id,
                        task.domain_name,
                        ", ".join(f"{name}={acc:.3f}" for name, acc in results.items()),
                    )
        finally:
            self.close()
        return SimulationResult(
            method_name=self.method.name,
            metrics=self.evaluator.summary(),
            per_task_accuracy=self.evaluator.per_task_history,
            round_losses=self.round_losses,
            round_loss_components=self.round_loss_components,
            communication=self.server.ledger,
            schedule_trace=self.schedule.schedule_trace(self.scenario.num_tasks),
            wall_clock_seconds=self.timer.total("total"),
            round_eval_history=self.round_eval_history,
            sim_time=self.clock.now,
            event_log=self.event_log,
        )

    def close(self) -> None:
        """Release executor resources (worker pools); idempotent.

        Shuts down both executors: the training executor and — when the
        simulation owns a dedicated parallel eval pool (``executor="serial"``
        with ``eval_executor="parallel"``) — the eval executor too.  Called
        by :meth:`run` on every exit path; use the simulation as a context
        manager when driving tasks manually via :meth:`run_task`.
        """
        self.transport.finalize()
        self.executor.close()
        if self._owns_eval_executor and self.eval_executor is not None:
            self.eval_executor.close()

    def __enter__(self) -> "FederatedDomainIncrementalSimulation":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


__all__ = ["FederatedDomainIncrementalSimulation", "SimulationResult"]
