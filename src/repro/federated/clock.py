"""The temporal plane's clock: simulated time, device profiles, cost model.

Real cross-device federations are never the instantaneous, always-online
population the synchronous round loop implies: devices differ in compute
speed and link quality, go offline between rounds, and sometimes sit out a
whole task.  This module provides the three deterministic primitives the
temporal plane (:mod:`repro.federated.async_plane`) is built from:

* :class:`EventScheduler` — a discrete-event queue over a simulated
  wall-clock.  Events are ordered by ``(time, seq)`` where ``seq`` is the
  scheduling order, so the pop sequence is a pure function of the schedule
  calls — ties never depend on hash order or wall time, and two runs with
  the same seed replay the exact same event trace.  An event can only be
  scheduled at or after the current clock (``delay >= 0``), which is the
  causality invariant the property tests enforce: nothing ever runs before
  the event that caused it.
* :class:`DeviceProfile` — one client's system heterogeneity: a compute
  speed multiplier, an uplink/downlink rate, a seeded per-round availability
  trace and per-task join/leave churn.  All randomness derives from
  ``spawn_rng(seed, "device", client_id, ...)``, so a client's profile and
  its online/offline trace are properties of the run seed, not of execution
  order.  Profiles come in named tiers (``device_profile`` config knob):
  ``instant`` (the default: zero cost, always online — the temporal no-op
  that keeps ``mode="sync"`` bit-for-bit identical to the untimed engine),
  ``homogeneous`` (uniform finite speeds), and the heterogeneity ladder
  ``mild`` / ``moderate`` / ``extreme``.
* :class:`CostModel` — turns a client's *measured* work into simulated
  seconds: training cost is batches x epochs at the profile's per-step speed,
  communication cost is the communication plane's measured frame bytes over
  the profile's link rate.  Nothing is sampled here; the same work always
  costs the same simulated time.
"""

from __future__ import annotations

import heapq
import math
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Dict, List, Tuple

from repro.utils.rng import spawn_rng


@dataclass(frozen=True)
class Event:
    """One scheduled occurrence on the simulated clock.

    Ordering is ``(time, seq)``: ``seq`` is assigned monotonically at
    scheduling time, so simultaneous events pop in the order they were
    scheduled — a deterministic tie-break that makes the whole event trace a
    function of the schedule calls alone.
    """

    time: float
    seq: int
    kind: str
    client_id: int = -1
    data: Dict[str, Any] = field(default_factory=dict)

    def sort_key(self) -> Tuple[float, int]:
        return (self.time, self.seq)


class EventScheduler:
    """Deterministic discrete-event queue with a simulated wall-clock.

    ``now`` only moves forward: :meth:`pop` advances it to the popped event's
    time, :meth:`advance` moves it explicitly (the sync mode's per-round
    barrier).  :meth:`schedule` takes a non-negative *delay* from ``now``, so
    an event caused by another event can never be scheduled before its cause.
    """

    def __init__(self) -> None:
        self.now = 0.0
        self._seq = 0
        self._heap: List[Tuple[Tuple[float, int], Event]] = []

    def schedule(self, delay: float, kind: str, client_id: int = -1, **data: Any) -> Event:
        """Schedule ``kind`` to occur ``delay`` simulated seconds from now."""
        if not (delay >= 0.0):  # also rejects NaN
            raise ValueError(f"event delay must be non-negative, got {delay!r}")
        event = Event(time=self.now + delay, seq=self._seq, kind=kind, client_id=client_id, data=dict(data))
        self._seq += 1
        heapq.heappush(self._heap, (event.sort_key(), event))
        return event

    def pop(self) -> Event:
        """Remove and return the earliest event, advancing the clock to it."""
        if not self._heap:
            raise IndexError("pop from an empty event queue")
        _, event = heapq.heappop(self._heap)
        self.now = event.time
        return event

    def advance(self, delta: float) -> float:
        """Move the clock forward by ``delta`` seconds; returns the new time."""
        if not (delta >= 0.0):
            raise ValueError(f"clock can only advance forward, got delta {delta!r}")
        self.now += delta
        return self.now

    def __len__(self) -> int:
        return len(self._heap)

    @property
    def empty(self) -> bool:
        return not self._heap


@dataclass(frozen=True)
class DeviceProfile:
    """One client's system-heterogeneity parameters.

    ``compute_multiplier`` scales the cost model's per-step seconds (``0.0``
    = instantaneous compute); ``link_rate`` is bytes per simulated second
    (``inf`` = instantaneous transfers); ``availability`` is the probability
    the device is online at any given selection point; ``churn`` is the
    probability the device sits out an entire task (the join/leave dynamic).
    The online/offline decisions are a deterministic trace derived from
    ``spawn_rng(seed, "device", client_id, ...)`` — see :meth:`is_online`.
    """

    client_id: int
    compute_multiplier: float
    link_rate: float
    availability: float = 1.0
    churn: float = 0.0

    @property
    def always_online(self) -> bool:
        return self.availability >= 1.0 and self.churn <= 0.0

    def in_task(self, seed: int, task_id: int) -> bool:
        """The churn trace: did this device sit out the whole task?

        Evaluated once per task — a churned-out device is offline for every
        selection point of it.  A pure function of ``(seed, client_id,
        task_id)``.
        """
        if self.churn <= 0.0:
            return True
        churn_draw = spawn_rng(seed, "device", self.client_id, "churn", task_id).random()
        return churn_draw >= self.churn

    def available_at(self, seed: int, task_id: int, slot: int) -> bool:
        """The per-slot availability component alone (churn not re-checked).

        For callers that already filtered candidates through :meth:`in_task`
        — the async plane does, once per task — so the constant churn draw is
        not re-derived on every probe.
        """
        if self.availability >= 1.0:
            return True
        avail_draw = spawn_rng(
            seed, "device", self.client_id, "avail", task_id, slot
        ).random()
        return avail_draw < self.availability

    def is_online(self, seed: int, task_id: int, slot: int) -> bool:
        """The seeded availability trace: is this device online at ``slot``?

        ``slot`` is the selection point within the task — the round index in
        sync mode, the dispatch probe index in async/buffered mode.  Churn is
        evaluated once per task (:meth:`in_task`); availability is evaluated
        per slot (:meth:`available_at`).  Both draws are pure functions of
        ``(seed, client_id, task_id, slot)``.
        """
        if self.always_online:
            return True
        return self.in_task(seed, task_id) and self.available_at(seed, task_id, slot)


@dataclass(frozen=True)
class _TierSpec:
    """Distribution parameters of one ``device_profile`` tier."""

    compute_base: float  # median per-step multiplier
    compute_spread: float  # lognormal sigma of the multiplier
    link_rate: float  # median bytes per simulated second
    link_spread: float  # lognormal sigma of the link rate
    availability: float
    churn: float


#: The named heterogeneity tiers of the ``device_profile`` knob.  ``instant``
#: is the temporal no-op (zero cost, always online); ``homogeneous`` gives
#: every device identical finite speed; ``mild`` / ``moderate`` / ``extreme``
#: are the heterogeneity ladder the async-plane bench sweeps.
PROFILE_TIERS: Dict[str, _TierSpec] = {
    "instant": _TierSpec(0.0, 0.0, math.inf, 0.0, 1.0, 0.0),
    "homogeneous": _TierSpec(1.0, 0.0, 2.0e6, 0.0, 1.0, 0.0),
    "mild": _TierSpec(1.0, 0.3, 2.0e6, 0.3, 0.95, 0.0),
    "moderate": _TierSpec(1.0, 0.6, 1.0e6, 0.6, 0.85, 0.05),
    "extreme": _TierSpec(1.0, 1.0, 5.0e5, 1.0, 0.7, 0.15),
}


def build_profile(tier: str, seed: int, client_id: int) -> DeviceProfile:
    """Draw one client's :class:`DeviceProfile` from a named tier.

    Per-client parameters are lognormal around the tier's medians, drawn from
    ``spawn_rng(seed, "device", client_id)`` — the same stream regardless of
    when (or how often) the profile is built.
    """
    if tier not in PROFILE_TIERS:
        raise ValueError(
            f"unknown device profile tier {tier!r}; choose from {sorted(PROFILE_TIERS)}"
        )
    spec = PROFILE_TIERS[tier]
    if spec.compute_spread == 0.0 and spec.link_spread == 0.0:
        return DeviceProfile(
            client_id=client_id,
            compute_multiplier=spec.compute_base,
            link_rate=spec.link_rate,
            availability=spec.availability,
            churn=spec.churn,
        )
    rng = spawn_rng(seed, "device", client_id)
    multiplier = spec.compute_base * math.exp(rng.normal(0.0, spec.compute_spread))
    link_rate = spec.link_rate * math.exp(rng.normal(0.0, spec.link_spread))
    return DeviceProfile(
        client_id=client_id,
        compute_multiplier=multiplier,
        link_rate=link_rate,
        availability=spec.availability,
        churn=spec.churn,
    )


class ProfileCache:
    """Bounded LRU of :class:`DeviceProfile`\\ s for fleet-scale populations.

    Profiles are pure functions of ``(tier, seed, client_id)``, so eviction
    is always safe — a miss just redraws the same profile bit-for-bit.  The
    bound is what keeps the temporal plane O(cohort) in memory under a 100k+
    virtual population: only recently consulted clients' profiles are
    resident, instead of one profile per client ever seen.
    """

    def __init__(self, tier: str, seed: int, maxsize: int = 8192) -> None:
        if maxsize < 1:
            raise ValueError("ProfileCache maxsize must be positive")
        self.tier = tier
        self.seed = seed
        self.maxsize = maxsize
        self._cache: "OrderedDict[int, DeviceProfile]" = OrderedDict()

    def get(self, client_id: int) -> DeviceProfile:
        profile = self._cache.get(client_id)
        if profile is None:
            profile = build_profile(self.tier, self.seed, client_id)
            self._cache[client_id] = profile
            while len(self._cache) > self.maxsize:
                self._cache.popitem(last=False)
        else:
            self._cache.move_to_end(client_id)
        return profile

    def __len__(self) -> int:
        return len(self._cache)


@dataclass(frozen=True)
class CostModel:
    """Measured work -> simulated seconds; deterministic by construction.

    ``step_seconds`` is the reference device's cost of one optimizer step
    (one mini-batch); a profile's ``compute_multiplier`` scales it.
    ``idle_seconds`` is the server's back-off when every device is offline at
    a selection point (the sync mode's skipped-round tick).
    """

    step_seconds: float = 0.02
    idle_seconds: float = 1.0

    def training_seconds(
        self, profile: DeviceProfile, num_samples: int, batch_size: int, local_epochs: int
    ) -> float:
        """Cost of the client's local update: epochs x batches at profile speed."""
        steps = local_epochs * max(1, -(-num_samples // batch_size))  # ceil
        return profile.compute_multiplier * self.step_seconds * steps

    def transfer_seconds(self, profile: DeviceProfile, num_bytes: int) -> float:
        """Cost of moving ``num_bytes`` (a measured frame length) over the link."""
        if num_bytes <= 0 or math.isinf(profile.link_rate):
            return 0.0
        return num_bytes / profile.link_rate


__all__ = [
    "Event",
    "EventScheduler",
    "DeviceProfile",
    "CostModel",
    "PROFILE_TIERS",
    "ProfileCache",
    "build_profile",
]
