"""The method interface implemented by RefFiL and by every baseline.

A :class:`FederatedMethod` encapsulates what differs between methods in the
federated domain-incremental loop: how the model is built, what the local
loss is, what extra payloads travel between clients and the server, how the
server post-processes aggregation, and how inference is performed during
evaluation.  The generic simulation
(:class:`repro.federated.simulation.FederatedDomainIncrementalSimulation`)
drives any implementation through the same Algorithm-1 skeleton so method
comparisons differ only in the method itself.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

import numpy as np

from repro.autograd.tensor import Tensor
from repro.federated.client import ClientHandle
from repro.federated.communication import ClientUpdate
from repro.federated.server import FederatedServer
from repro.nn.module import Module


class FederatedMethod:
    """Abstract strategy object; subclasses implement the method-specific hooks."""

    #: Human-readable name used in result tables.
    name: str = "abstract"

    def build_model(self) -> Module:
        """Construct the (client/global) model architecture."""
        raise NotImplementedError

    # ------------------------------------------------------------------ #
    # Lifecycle hooks (default: no-ops)
    # ------------------------------------------------------------------ #
    def on_task_start(self, task_id: int, server: FederatedServer) -> None:
        """Called once when a new incremental task begins (before any round)."""

    def on_task_end(self, task_id: int, server: FederatedServer) -> None:
        """Called once after the final round of a task (before evaluation)."""

    def on_round_start(self, task_id: int, round_index: int, server: FederatedServer) -> None:
        """Called at the start of every communication round."""

    # ------------------------------------------------------------------ #
    # Core hooks
    # ------------------------------------------------------------------ #
    def local_update(
        self,
        model: Module,
        global_state: Dict[str, np.ndarray],
        broadcast_payload: Dict[str, Any],
        client: ClientHandle,
    ) -> ClientUpdate:
        """Run one client's local training and return its update."""
        raise NotImplementedError

    def aggregate(self, server: FederatedServer, updates: List[ClientUpdate]) -> None:
        """Aggregate client updates into the server (default: plain FedAvg)."""
        server.aggregate(updates)

    def predict_logits(self, model: Module, images: Tensor) -> Tensor:
        """Inference path used by the evaluator (default: call the model directly)."""
        return model(images)


__all__ = ["FederatedMethod"]
