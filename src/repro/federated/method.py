"""The method interface implemented by RefFiL and by every baseline.

A :class:`FederatedMethod` encapsulates what differs between methods in the
federated domain-incremental loop: how the model is built, what the local
loss is, what extra payloads travel between clients and the server, how the
server post-processes aggregation, and how inference is performed during
evaluation.  The generic simulation
(:class:`repro.federated.simulation.FederatedDomainIncrementalSimulation`)
drives any implementation through the same Algorithm-1 skeleton so method
comparisons differ only in the method itself.

Picklability contract
---------------------
The round execution engine (:mod:`repro.federated.execution`) may run
:meth:`FederatedMethod.local_update` inside worker *processes*.  For that to
work, implementations must satisfy three rules:

1. **The method object must be picklable.**  Everything reachable from
   ``self`` — configs, prompt stores, teacher models, Fisher matrices — must
   survive ``pickle.dumps``.  In particular, do not store lambdas, open
   files, or generators-of-generators on the method.  Leaf
   :class:`~repro.nn.module.Parameter` tensors pickle fine; tensors carrying
   a live autograd graph (non-``None`` ``_backward``) do not, so ``detach()``
   anything you stash between rounds.
2. **``local_update`` must not rely on in-place mutation of ``self`` for
   cross-round state.**  Workers operate on a pickled *copy* of the method;
   mutations die with the worker.  Per-client state that must persist across
   rounds (e.g. RefFiL's static ablation prompts) is round-tripped through
   :meth:`export_client_state` / :meth:`import_client_state` instead.
3. **``local_update`` must treat ``global_state`` as read-only.**  The server
   broadcasts one shared, write-protected view per round; mutating it would
   corrupt every other client's view.  Copy before writing.

Server-side hooks (``on_task_start``, ``aggregate``, ...) always run in the
main process on the live method object and are unrestricted.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Any, Dict, List, Optional

import numpy as np

from repro.autograd.tensor import Tensor
from repro.federated.aggregation import blend_states
from repro.federated.client import ClientHandle
from repro.federated.communication import ClientUpdate, PayloadCodec, TreePayloadCodec
from repro.federated.server import FederatedServer
from repro.nn.module import Module


class FederatedMethod:
    """Abstract strategy object; subclasses implement the method-specific hooks."""

    #: Human-readable name used in result tables.
    name: str = "abstract"

    def build_model(self) -> Module:
        """Construct the (client/global) model architecture."""
        raise NotImplementedError

    # ------------------------------------------------------------------ #
    # Lifecycle hooks (default: no-ops)
    # ------------------------------------------------------------------ #
    def on_task_start(self, task_id: int, server: FederatedServer) -> None:
        """Called once when a new incremental task begins (before any round)."""

    def on_task_end(self, task_id: int, server: FederatedServer) -> None:
        """Called once after the final round of a task (before evaluation)."""

    def on_round_start(self, task_id: int, round_index: int, server: FederatedServer) -> None:
        """Called at the start of every communication round."""

    # ------------------------------------------------------------------ #
    # Core hooks
    # ------------------------------------------------------------------ #
    def local_update(
        self,
        model: Module,
        global_state: Dict[str, np.ndarray],
        broadcast_payload: Dict[str, Any],
        client: ClientHandle,
    ) -> ClientUpdate:
        """Run one client's local training and return its update.

        May execute in a worker process on a pickled copy of the method; see
        the module docstring for the picklability contract.
        """
        raise NotImplementedError

    def aggregate(self, server: FederatedServer, updates: List[ClientUpdate]) -> None:
        """Aggregate client updates into the server (default: plain FedAvg).

        The temporal plane's buffered mode calls this inside a
        ``server.aggregation_scale(...)`` scope, so overrides that delegate
        model aggregation to ``server.aggregate`` (all of them do) are
        staleness-weighted for free.
        """
        server.aggregate(updates)

    def apply_async_update(
        self, server: FederatedServer, update: ClientUpdate, mixing: float
    ) -> None:
        """Apply one asynchronous arrival (FedAsync: ``x <- (1-m) x + m x_k``).

        ``mixing`` is the staleness-discounted mixing rate in ``(0, 1]``.  The
        default blends the arriving state into the current global state
        (:func:`repro.federated.aggregation.blend_states`) and then runs the
        method's own :meth:`aggregate` hook on the *blended* single-update
        round — a single-update FedAvg is the identity on the model state, so
        the blend survives exactly, while any payload machinery an override
        wraps around ``server.aggregate`` (RefFiL's prompt clustering,
        FedEWC's Fisher merge) still sees the arrival.
        """
        blended_state = blend_states(server.global_state, update.state_dict, mixing)
        self.aggregate(server, [replace(update, state_dict=blended_state)])

    def predict_logits(self, model: Module, images: Tensor) -> Tensor:
        """Inference path used by the evaluator (default: call the model directly)."""
        return model(images)

    def payload_codec(self) -> PayloadCodec:
        """How this method's payloads become named wire arrays.

        The communication plane flattens broadcast and upload payloads into
        flat ``name -> ndarray`` dicts so the configured wire codec applies
        to them exactly as it does to model weights.  The default generic
        tree walk handles any picklable payload; methods with a known payload
        structure (RefFiL's per-class prompt groups) override this with a
        specialised codec.  Whatever is returned, ``unflatten(flatten(p))``
        must reproduce ``p`` exactly — the lossless-parity guarantee of
        ``codec="identity"``/``"delta"`` rests on it.
        """
        return TreePayloadCodec()

    # ------------------------------------------------------------------ #
    # Cross-process client-state round-trip (default: stateless)
    # ------------------------------------------------------------------ #
    def export_client_state(self, client_id: int) -> Optional[Any]:
        """Picklable per-client state produced by ``local_update``, if any.

        Called right after :meth:`local_update` — in the worker process when
        a parallel executor is active — so that per-client state mutated
        during the update (which would otherwise die with the worker) can be
        shipped back.  Return ``None`` (the default) when the method keeps no
        such state.
        """
        return None

    def import_client_state(self, client_id: int, state: Any) -> None:
        """Merge state exported by :meth:`export_client_state` into the live method.

        Called in the main process with each non-``None`` export, in client
        selection order, after the round's local updates complete.
        """


__all__ = ["FederatedMethod"]
