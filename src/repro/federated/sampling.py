"""Per-round random client selection (paper Algorithm 1, line 5).

Two samplers share this module.  :func:`sample_clients` is the historical
list-based path: it materializes the candidate set, filters availability, and
draws with ``rng.choice(..., replace=False)`` — byte-identical to every run
recorded before the virtual-client plane existed.  :func:`sample_clients_lazy`
is the fleet-scale path: it draws a uniform ``count``-subset of
``range(population)`` in O(count) work and memory by rejection (duplicate and
offline candidates are re-drawn), never building a population-sized list or
permutation.  The two are *different* uniform samplers — numpy's
``Generator.choice(replace=False)`` permutes internally, so reproducing its
draws in O(count) is impossible; the lazy sampler instead has its own
reference implementation asserted draw-for-draw in the tests.
"""

from __future__ import annotations

from typing import Callable, Container, List, Optional, Sequence

import numpy as np


class NoAvailableClientsError(RuntimeError):
    """Every active client was filtered out as offline.

    Raised instead of silently selecting offline clients so the temporal
    plane's churn/availability scenarios surface the condition explicitly;
    callers that can model "the server waits" (the simulation loop does)
    catch this and advance the simulated clock instead.
    """


def sample_clients(
    active_clients: Sequence[int],
    count: int,
    rng: np.random.Generator,
    available: Optional[Callable[[int], bool]] = None,
) -> List[int]:
    """Uniformly sample ``count`` distinct clients from the active set.

    When fewer clients are active than requested, all active clients are
    selected (the paper's smaller OfficeCaltech10 setup hits this case in the
    first tasks).

    ``available`` is the temporal plane's availability hook: a predicate
    applied to the active set *before* sampling (device offline this round,
    churned out for the task).  ``None`` — the default, and the only case the
    synchronous instantaneous-device path ever uses — is byte-identical to
    having no hook at all: the same clients reach the same ``rng`` draws.
    Raises :class:`NoAvailableClientsError` when the filter empties a
    non-empty active set, so churn can never silently select offline clients.
    """
    active = list(active_clients)
    if count <= 0:
        raise ValueError("selection count must be positive")
    if not active:
        raise ValueError("cannot sample from an empty active client set")
    if available is not None:
        online = [client_id for client_id in active if available(client_id)]
        if not online:
            raise NoAvailableClientsError(
                f"all {len(active)} active clients are offline after availability "
                "filtering; no client can be selected this round (the caller "
                "should advance the simulated clock and retry, not select an "
                "offline client)"
            )
        active = online
    if count >= len(active):
        return sorted(active)
    chosen = rng.choice(len(active), size=count, replace=False)
    return sorted(active[i] for i in chosen)


def sample_clients_lazy(
    population: int,
    count: int,
    rng: np.random.Generator,
    available: Optional[Callable[[int], bool]] = None,
    exclude: Optional[Container[int]] = None,
    max_probes: int = 0,
) -> List[int]:
    """Uniformly sample ``count`` distinct ids from ``range(population)``.

    O(count) expected work and memory: candidate ids are drawn one at a time
    with ``rng.integers(population)`` and rejected if already selected, in
    ``exclude`` (e.g. in-flight or rebooting clients), or offline per
    ``available``.  Only the selected set is ever held — a 100k-client
    population costs the same as a 100-client one.  Deterministic for a given
    ``rng`` state: the probe sequence is a pure function of the generator.

    When ``count`` reaches the population size the whole eligible range is
    returned (after filtering), mirroring :func:`sample_clients`'s
    everyone-selected case.  ``max_probes`` bounds the rejection loop
    (default ``max(1024, 64 * count)``); exhausting it raises
    :class:`NoAvailableClientsError` — the caller should advance the
    simulated clock, exactly as for the eager sampler's empty-filter case.
    """
    if count <= 0:
        raise ValueError("selection count must be positive")
    if population <= 0:
        raise ValueError("cannot sample from an empty population")

    def _eligible(client_id: int) -> bool:
        if exclude is not None and client_id in exclude:
            return False
        return available is None or available(client_id)

    if count >= population:
        online = [client_id for client_id in range(population) if _eligible(client_id)]
        if not online:
            raise NoAvailableClientsError(
                f"all {population} clients are excluded or offline; no client "
                "can be selected (the caller should advance the simulated "
                "clock and retry)"
            )
        return online

    if max_probes <= 0:
        max_probes = max(1024, 64 * count)
    selected: set = set()
    for _ in range(max_probes):
        candidate = int(rng.integers(population))
        if candidate in selected or not _eligible(candidate):
            continue
        selected.add(candidate)
        if len(selected) == count:
            return sorted(selected)
    raise NoAvailableClientsError(
        f"could not find {count} eligible clients in {max_probes} probes of a "
        f"population of {population} ({len(selected)} found); the population "
        "is effectively offline — advance the simulated clock and retry"
    )


__all__ = ["NoAvailableClientsError", "sample_clients", "sample_clients_lazy"]
