"""Per-round random client selection (paper Algorithm 1, line 5)."""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

import numpy as np


class NoAvailableClientsError(RuntimeError):
    """Every active client was filtered out as offline.

    Raised instead of silently selecting offline clients so the temporal
    plane's churn/availability scenarios surface the condition explicitly;
    callers that can model "the server waits" (the simulation loop does)
    catch this and advance the simulated clock instead.
    """


def sample_clients(
    active_clients: Sequence[int],
    count: int,
    rng: np.random.Generator,
    available: Optional[Callable[[int], bool]] = None,
) -> List[int]:
    """Uniformly sample ``count`` distinct clients from the active set.

    When fewer clients are active than requested, all active clients are
    selected (the paper's smaller OfficeCaltech10 setup hits this case in the
    first tasks).

    ``available`` is the temporal plane's availability hook: a predicate
    applied to the active set *before* sampling (device offline this round,
    churned out for the task).  ``None`` — the default, and the only case the
    synchronous instantaneous-device path ever uses — is byte-identical to
    having no hook at all: the same clients reach the same ``rng`` draws.
    Raises :class:`NoAvailableClientsError` when the filter empties a
    non-empty active set, so churn can never silently select offline clients.
    """
    active = list(active_clients)
    if count <= 0:
        raise ValueError("selection count must be positive")
    if not active:
        raise ValueError("cannot sample from an empty active client set")
    if available is not None:
        online = [client_id for client_id in active if available(client_id)]
        if not online:
            raise NoAvailableClientsError(
                f"all {len(active)} active clients are offline after availability "
                "filtering; no client can be selected this round (the caller "
                "should advance the simulated clock and retry, not select an "
                "offline client)"
            )
        active = online
    if count >= len(active):
        return sorted(active)
    chosen = rng.choice(len(active), size=count, replace=False)
    return sorted(active[i] for i in chosen)


__all__ = ["NoAvailableClientsError", "sample_clients"]
