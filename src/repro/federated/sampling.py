"""Per-round random client selection (paper Algorithm 1, line 5)."""

from __future__ import annotations

from typing import List, Sequence

import numpy as np


def sample_clients(
    active_clients: Sequence[int],
    count: int,
    rng: np.random.Generator,
) -> List[int]:
    """Uniformly sample ``count`` distinct clients from the active set.

    When fewer clients are active than requested, all active clients are
    selected (the paper's smaller OfficeCaltech10 setup hits this case in the
    first tasks).
    """
    active = list(active_clients)
    if count <= 0:
        raise ValueError("selection count must be positive")
    if not active:
        raise ValueError("cannot sample from an empty active client set")
    if count >= len(active):
        return sorted(active)
    chosen = rng.choice(len(active), size=count, replace=False)
    return sorted(active[i] for i in chosen)


__all__ = ["sample_clients"]
