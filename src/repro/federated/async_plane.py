"""Event-driven asynchronous federation: the temporal plane's round regimes.

The synchronous loop is a barrier: a round ends when its *slowest* selected
client finishes, and every client trains from the same global version.  Real
cross-device federations (the setting both the source paper's incremental
clients and rehearsal-free FCL work like Fed-CPrompt target) are governed by
stragglers, churn and staleness instead.  This module runs the same local
updates — through the same executor, transport and method hooks — under a
deterministic discrete-event scheduler (:mod:`repro.federated.clock`), in
two asynchronous regimes next to synchronous FedAvg:

* ``mode="async"`` — FedAsync (Xie et al., 2019): each arrival is applied
  the moment it lands on the simulated clock, blended into the global model
  at ``mixing = ASYNC_MIXING * (1 + staleness)^(-staleness_decay)`` where
  staleness counts global-model versions between the client's dispatch and
  its arrival.  The application runs through
  :meth:`~repro.federated.method.FederatedMethod.apply_async_update`, so
  method payload machinery (prompt clustering, Fisher merges) sees every
  arrival.
* ``mode="buffered"`` — FedBuff (Nguyen et al., 2022): arrivals accumulate
  in a buffer that flushes through the method's own ``aggregate`` hook every
  ``buffer_size`` arrivals (and once more at task end if a partial buffer
  remains), with each update's FedAvg weight scaled by its flush-time
  staleness discount via :meth:`FederatedServer.aggregation_scale`.

Both regimes dispatch ``clients_per_round`` clients concurrently and train
exactly ``rounds_per_task * clients_per_round`` local updates per task — the
same compute volume as the synchronous loop, so regimes are compared at
equal work and differ only in *when* updates are applied and how stale they
are when they land.

Execution order vs. event order: a client's local update is a pure function
of the broadcast it was dispatched with, so the *compute* runs eagerly at
dispatch time (on whichever executor is configured — the pinned worker pool
keeps absorbing the training), while the *application* of its result waits
for the arrival event.  The scheduler decides ordering and staleness; the
pool does the work.  Every delay in the event queue comes from the
deterministic cost model (measured batches x steps at the device's speed,
measured wire-frame bytes over its link), so the full event trace — and
therefore the trained model — is a pure function of the run seed.

Offline handling: dispatch candidates are availability-filtered through
:func:`~repro.federated.sampling.sample_clients`; a probe where every
candidate is offline schedules an idle retry tick instead of silently
selecting an offline device.  A task whose every eligible client churned out
trains nothing (the run continues — evaluation still measures the model);
remaining dispatch budget is likewise abandoned when only churned-out
devices are left.
"""

from __future__ import annotations

import bisect
from typing import List, Set, Tuple

import numpy as np

from repro.continual.scenario import Task
from repro.federated.aggregation import staleness_weight
from repro.federated.client import ClientHandle
from repro.federated.communication import ClientUpdate
from repro.federated.execution import ParallelExecutor
from repro.federated.sampling import (
    NoAvailableClientsError,
    sample_clients,
    sample_clients_lazy,
)
from repro.utils.logging_utils import get_logger
from repro.utils.rng import spawn_rng

logger = get_logger(__name__)

#: FedAsync's base mixing rate: the fraction of a zero-staleness arrival
#: blended into the global model.  Staleness discounts multiply it down.
ASYNC_MIXING = 0.5

#: Hard cap on dispatch probes per task (offline retries included) — a
#: deterministic backstop far above what any seeded availability trace needs.
_MAX_PROBES_PER_TASK = 100_000


class TemporalPlaneRunner:
    """Runs one task of a simulation in ``mode="async"`` or ``"buffered"``.

    Owned by a :class:`~repro.federated.simulation.
    FederatedDomainIncrementalSimulation`, whose clock, executor, transport,
    server, evaluator and result accumulators it drives; the simulation's
    synchronous machinery (task data assignment, after-task evaluation,
    lifecycle hooks) stays in charge around it.
    """

    def __init__(self, simulation) -> None:
        self.sim = simulation

    # ------------------------------------------------------------------ #
    # One task
    # ------------------------------------------------------------------ #
    def run_task(self, task: Task) -> None:
        sim = self.sim
        config = sim.config
        self._task = task
        self._fleet = sim.virtual is not None and sim.virtual.fleet
        if self._fleet:
            # Fleet mode: the population is never enumerated.  Eligibility,
            # churn and availability all become lazy per-probe predicates of
            # the candidate's id; the schedule plane is bypassed entirely.
            self._assignment = None
            self._eligible = None
        else:
            self._assignment = sim.schedule.assignment_for_task(task.task_id)
            if sim.virtual is not None:
                self._eligible = sim.virtual.eligible(self._assignment)
            else:
                self._eligible = [
                    client_id
                    for client_id in self._assignment.active_clients
                    if client_id in sim._training_data
                    and len(sim._training_data[client_id]) > 0
                ]
            if not self._eligible:
                raise RuntimeError(
                    f"no client has training data for task {task.task_id}; "
                    "check the increment schedule and partitioning configuration"
                )
        self._budget = config.rounds_per_task * config.clients_per_round
        self._buffer_k = config.buffer_size or config.clients_per_round
        self._dispatched = 0
        self._probe = 0
        self._aggregations = 0
        self._abandoned = False
        self._last_cohort = -1
        self._in_flight: Set[int] = set()
        #: Clients that crashed mid-update and are rebooting: out of
        #: ``_present`` until their rejoin event fires.  While any client is
        #: rebooting the budget is never abandoned — its rejoin will free
        #: dispatch capacity again.
        self._rebooting: Set[int] = set()
        #: Buffered mode's pending arrivals: (update, global version at dispatch).
        self._buffer: List[Tuple[ClientUpdate, int]] = []

        if self._fleet:
            # No materialized presence list under a virtual population: churn
            # is folded into the per-probe predicate instead (still the same
            # once-per-(client, task) draw — ``in_task`` is a pure function).
            self._present = None
            concurrency = min(config.clients_per_round, config.population)
        else:
            # Churn is constant within a task, so the surviving set is computed
            # once here; per-probe filtering below only draws availability.
            self._present = [
                client_id
                for client_id in self._eligible
                if sim.profile_for(client_id).in_task(config.seed, task.task_id)
            ]
            if not self._present:
                # Every eligible device churned out for this whole task: nothing
                # trains, the run continues (evaluation still measures the model).
                sim.log_event("task_offline", task_id=task.task_id, eligible=len(self._eligible))
                return
            concurrency = min(config.clients_per_round, len(self._eligible))
        for _ in range(concurrency):
            self._try_dispatch()

        clock = sim.clock
        while not clock.empty:
            event = clock.pop()
            if event.kind == "retry":
                self._try_dispatch()
                continue
            if event.kind == "client_crash":
                self._on_crash(event)
                continue
            if event.kind == "rejoin":
                self._on_rejoin(event)
                continue
            self._on_arrival(event)
            self._try_dispatch()

        if self._buffer:
            # A partial buffer at task end still flushes: those clients
            # trained, and the next task must not inherit unapplied work.
            self._flush_buffer()

    # ------------------------------------------------------------------ #
    # Dispatch
    # ------------------------------------------------------------------ #
    def _try_dispatch(self) -> None:
        sim = self.sim
        config = sim.config
        task_id = self._task.task_id
        if self._dispatched >= self._budget or self._abandoned:
            return
        if config.sim_time_limit > 0 and sim.clock.now >= config.sim_time_limit:
            if not self._abandoned:
                self._abandoned = True
                sim.log_event(
                    "time_exhausted",
                    task_id=task_id,
                    remaining_budget=self._budget - self._dispatched,
                )
            return
        if not self._fleet:
            present = [cid for cid in self._present if cid not in self._in_flight]
            if not present:
                # Either every churn-surviving client is mid-training (an arrival
                # will re-try) or only churned-out devices remain with nothing in
                # flight — and nothing rebooting that could come back — to free
                # another; then the budget cannot be spent.
                if not self._in_flight and not self._rebooting:
                    self._abandoned = True
                    sim.log_event(
                        "budget_abandoned",
                        task_id=task_id,
                        remaining_budget=self._budget - self._dispatched,
                    )
                return
        slot = self._probe
        self._probe += 1
        if self._probe > _MAX_PROBES_PER_TASK:
            raise RuntimeError(
                f"temporal plane exceeded {_MAX_PROBES_PER_TASK} dispatch probes "
                f"for task {task_id}; the availability trace never yields an "
                "online client"
            )
        rng = spawn_rng(config.seed, "async-selection", task_id, slot)
        try:
            if self._fleet:
                # O(1)-per-candidate rejection sampling over the virtual
                # population: churn and availability are drawn lazily for the
                # probed ids only, never for the whole fleet.
                chosen = sample_clients_lazy(
                    config.population,
                    1,
                    rng,
                    available=lambda cid: sim.profile_for(cid).in_task(config.seed, task_id)
                    and sim.profile_for(cid).available_at(config.seed, task_id, slot),
                    exclude=self._in_flight | self._rebooting,
                )
            else:
                chosen = sample_clients(
                    present,
                    1,
                    rng,
                    # present already passed the per-task churn filter; only the
                    # per-slot availability component is drawn here.
                    available=lambda cid: sim.profile_for(cid).available_at(
                        config.seed, task_id, slot
                    ),
                )
        except NoAvailableClientsError:
            # Everyone is momentarily offline: the server backs off one idle
            # tick and probes again (a fresh slot, hence fresh availability
            # draws) instead of selecting an offline device.
            sim.clock.schedule(sim.cost_model.idle_seconds, "retry")
            return
        self._dispatch(chosen[0])

    def _dispatch(self, client_id: int) -> None:
        sim = self.sim
        config = sim.config
        task_id = self._task.task_id
        index = self._dispatched
        self._dispatched += 1
        version = sim.server.round_counter
        # The dispatch cohort is the async analogue of a round: both the hook
        # and the handle metadata see round indices in [0, rounds_per_task),
        # honouring the sync-mode contract (e.g. final-round schedules fire
        # on the task's last cohort, not at dispatch #rounds_per_task-1).
        # The hook fires once per cohort — "the start of every communication
        # round", not of every dispatch — and only that boundary needs the
        # defensive broadcast invalidation (the hook may mutate server state
        # directly); dispatches in between reuse the cached serialization
        # whenever the model has not advanced (buffered mode between flushes).
        cohort = index // config.clients_per_round
        if cohort != self._last_cohort:
            self._last_cohort = cohort
            sim.method.on_round_start(task_id, cohort, sim.server)
            sim.server.invalidate_broadcast()
        broadcast = sim.transport.broadcast_round(sim.server, [client_id], task_id, index)
        injector = sim.fault_injector
        if injector is not None and injector.client_crashes(task_id, index, client_id):
            # The client downloaded the broadcast, burned a fraction of its
            # training time, then died: no upload ever lands.  The transport's
            # pending round is consumed empty (the ledger records the paid
            # download), and the crash becomes a first-class event — the
            # scheduler takes the client offline until its rejoin fires.
            sim.transport.collect_updates([])
            self._in_flight.add(client_id)
            sim.clock.schedule(
                sim.crash_seconds(client_id), "client_crash", client_id, index=index
            )
            sim.log_event(
                "dispatch", task_id=task_id, client_id=client_id, index=index, version=version
            )
            return
        if injector is not None and isinstance(sim.executor, ParallelExecutor):
            victim = injector.worker_to_kill(task_id, index, sim.executor.num_workers)
            if victim is not None:
                sim.executor.request_worker_kill(victim)
        handle = ClientHandle(
            client_id=client_id,
            task_id=task_id,
            group=sim._client_group(self._assignment, client_id),
            dataset=sim._client_dataset(client_id),
            rng=spawn_rng(config.seed, "client", client_id, task_id, "event", index),
            training=config.local,
            domains_held=sim._client_domains(client_id),
            metadata={
                "round_index": float(cohort),
                "rounds_per_task": float(config.rounds_per_task),
                "num_tasks": float(sim.scenario.num_tasks),
            },
        )
        # The compute happens now (the local update is a pure function of the
        # dispatch-time broadcast); only its *application* waits for the
        # arrival event.
        update = sim.executor.run_client(sim.method, sim.model, broadcast, handle)
        delivered = sim.transport.collect_updates([update])
        duration = sim.client_seconds(client_id)
        self._in_flight.add(client_id)
        sim.clock.schedule(
            duration, "arrival", client_id, updates=delivered, version=version, index=index
        )
        sim.log_event(
            "dispatch", task_id=task_id, client_id=client_id, index=index, version=version
        )

    # ------------------------------------------------------------------ #
    # Crash / rejoin
    # ------------------------------------------------------------------ #
    def _on_crash(self, event) -> None:
        """A dispatched client died mid-update: take it offline, then reboot."""
        sim = self.sim
        client_id = event.client_id
        self._in_flight.discard(client_id)
        if self._present is not None:
            index = bisect.bisect_left(self._present, client_id)
            if index < len(self._present) and self._present[index] == client_id:
                del self._present[index]
        self._rebooting.add(client_id)
        sim.clock.schedule(sim.cost_model.idle_seconds, "rejoin", client_id)
        sim.log_event(
            "client_crash",
            task_id=self._task.task_id,
            client_id=client_id,
            index=event.data["index"],
        )
        self._try_dispatch()

    def _on_rejoin(self, event) -> None:
        """A crashed client finished rebooting and is dispatchable again."""
        sim = self.sim
        client_id = event.client_id
        self._rebooting.discard(client_id)
        if self._present is not None:
            bisect.insort(self._present, client_id)
        sim.log_event("client_rejoin", task_id=self._task.task_id, client_id=client_id)
        self._try_dispatch()

    # ------------------------------------------------------------------ #
    # Arrival / aggregation
    # ------------------------------------------------------------------ #
    def _on_arrival(self, event) -> None:
        sim = self.sim
        config = sim.config
        task_id = self._task.task_id
        self._in_flight.discard(event.client_id)
        version = event.data["version"]
        for update in event.data["updates"]:
            staleness = sim.server.round_counter - version
            if config.mode == "async":
                weight = staleness_weight(staleness, config.staleness_decay)
                mixing = ASYNC_MIXING * weight
                sim.method.apply_async_update(sim.server, update, mixing)
                sim.server.invalidate_broadcast()
                sim.maybe_server_restart()
                sim.round_losses.append(float(update.train_loss))
                sim.record_loss_components([update])
                self._aggregations += 1
                sim.log_event(
                    "arrival",
                    task_id=task_id,
                    client_id=update.client_id,
                    staleness=staleness,
                    mixing=mixing,
                )
                self._maybe_eval()
            else:  # buffered
                self._buffer.append((update, version))
                sim.log_event(
                    "arrival",
                    task_id=task_id,
                    client_id=update.client_id,
                    staleness=staleness,
                    buffered=len(self._buffer),
                )
                if len(self._buffer) >= self._buffer_k:
                    self._flush_buffer()

    def _flush_buffer(self) -> None:
        sim = self.sim
        config = sim.config
        updates = [update for update, _ in self._buffer]
        scales = [
            staleness_weight(sim.server.round_counter - version, config.staleness_decay)
            for _, version in self._buffer
        ]
        self._buffer.clear()
        with sim.server.aggregation_scale(scales):
            sim.method.aggregate(sim.server, updates)
        sim.server.invalidate_broadcast()
        sim.maybe_server_restart()
        sim.round_losses.append(float(np.mean([u.train_loss for u in updates])))
        sim.record_loss_components(updates)
        self._aggregations += 1
        sim.log_event(
            "flush",
            task_id=self._task.task_id,
            size=len(updates),
            min_scale=min(scales),
        )
        self._maybe_eval()

    def _maybe_eval(self) -> None:
        sim = self.sim
        config = sim.config
        if config.eval_every and self._aggregations % config.eval_every == 0:
            sim.model.load_state_dict(sim.server.global_state)
            with sim.timer.measure("round_evaluation"):
                accuracies = sim.evaluator.evaluate_seen(sim.model, self._task.task_id)
            sim.round_eval_history.append(
                {
                    "task_id": self._task.task_id,
                    "round_index": self._aggregations - 1,
                    "accuracies": accuracies,
                    "sim_time": sim.clock.now,
                }
            )


__all__ = ["ASYNC_MIXING", "TemporalPlaneRunner"]
