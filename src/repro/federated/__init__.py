"""Federated-learning substrate.

This subpackage provides everything the paper's Algorithm 1 needs around the
learning method itself: FedAvg aggregation weighted by local dataset size,
per-round random client selection, the client-increment strategy that splits
participants into Old / In-between / New groups, simple communication
accounting, and the end-to-end federated domain-incremental simulation loop
that drives any :class:`repro.federated.method.FederatedMethod` (RefFiL or a
baseline) over a continual scenario.
"""

from repro.federated.aggregation import (
    FlatReduceBackend,
    ReduceBackend,
    TreeReduceBackend,
    blend_states,
    build_reduce_backend,
    fedavg,
    staleness_weight,
    weighted_average_arrays,
)
from repro.federated.sampling import NoAvailableClientsError, sample_clients, sample_clients_lazy
from repro.federated.clock import (
    CostModel,
    DeviceProfile,
    Event,
    EventScheduler,
    PROFILE_TIERS,
    ProfileCache,
    build_profile,
)
from repro.federated.async_plane import ASYNC_MIXING, TemporalPlaneRunner
from repro.federated.increment import (
    ClientGroup,
    ClientIncrementSchedule,
    ClientIncrementConfig,
    TaskAssignment,
)
from repro.federated.communication import (
    ArrayCodec,
    ClientUpdate,
    CommunicationLedger,
    FrameRecord,
    PayloadCodec,
    RoundCommRecord,
    TreePayloadCodec,
    WireFrame,
    build_codec,
    codec_is_lossless,
)
from repro.federated.client import (
    ClientHandle,
    LocalTrainingConfig,
    ShardRef,
    VirtualClientSpec,
    run_local_sgd,
)
from repro.federated.virtual import VirtualClientPlane
from repro.federated.server import BroadcastHandle, FederatedServer
from repro.federated.transport import (
    DirectTransport,
    FrameCorruptionError,
    FrameDecodeError,
    LoopbackTransport,
    Transport,
    TransportError,
    build_transport,
    verify_frame,
)
from repro.federated.faults import FaultInjector, FaultSpec
from repro.federated.checkpoint import (
    CHECKPOINT_VERSION,
    CheckpointCorruptionError,
    CheckpointError,
    CheckpointMismatchError,
    checkpoint_name,
    config_fingerprint,
    latest_checkpoint,
    load_checkpoint,
    parse_checkpoint_name,
    save_checkpoint,
    simulation_state_hash,
)
from repro.federated.method import FederatedMethod
from repro.federated.config import FederatedConfig
from repro.federated.execution import (
    EvalIPC,
    EvalJob,
    EvalSliceRef,
    Executor,
    ParallelEvalBackend,
    ParallelExecutor,
    RoundIPC,
    SerialExecutor,
    WorkerDiedError,
    batch_aligned_slices,
    build_executor,
)
from repro.federated.simulation import FederatedDomainIncrementalSimulation, SimulationResult

__all__ = [
    "fedavg",
    "blend_states",
    "staleness_weight",
    "weighted_average_arrays",
    "ReduceBackend",
    "FlatReduceBackend",
    "TreeReduceBackend",
    "build_reduce_backend",
    "sample_clients",
    "sample_clients_lazy",
    "NoAvailableClientsError",
    "CostModel",
    "DeviceProfile",
    "Event",
    "EventScheduler",
    "PROFILE_TIERS",
    "ProfileCache",
    "build_profile",
    "ASYNC_MIXING",
    "TemporalPlaneRunner",
    "ClientGroup",
    "ClientIncrementSchedule",
    "ClientIncrementConfig",
    "TaskAssignment",
    "ClientUpdate",
    "CommunicationLedger",
    "ArrayCodec",
    "FrameRecord",
    "PayloadCodec",
    "RoundCommRecord",
    "TreePayloadCodec",
    "WireFrame",
    "build_codec",
    "codec_is_lossless",
    "Transport",
    "DirectTransport",
    "LoopbackTransport",
    "build_transport",
    "TransportError",
    "FrameCorruptionError",
    "FrameDecodeError",
    "verify_frame",
    "FaultSpec",
    "FaultInjector",
    "CHECKPOINT_VERSION",
    "CheckpointError",
    "CheckpointCorruptionError",
    "CheckpointMismatchError",
    "checkpoint_name",
    "parse_checkpoint_name",
    "latest_checkpoint",
    "save_checkpoint",
    "load_checkpoint",
    "config_fingerprint",
    "simulation_state_hash",
    "ClientHandle",
    "LocalTrainingConfig",
    "ShardRef",
    "VirtualClientSpec",
    "VirtualClientPlane",
    "run_local_sgd",
    "BroadcastHandle",
    "FederatedServer",
    "FederatedMethod",
    "FederatedConfig",
    "Executor",
    "SerialExecutor",
    "ParallelExecutor",
    "ParallelEvalBackend",
    "RoundIPC",
    "EvalIPC",
    "EvalJob",
    "EvalSliceRef",
    "WorkerDiedError",
    "batch_aligned_slices",
    "build_executor",
    "FederatedDomainIncrementalSimulation",
    "SimulationResult",
]
