"""The round execution engine: how a round's selected clients actually run.

Between ``broadcast`` and ``aggregate`` a communication round is
embarrassingly parallel: every selected client trains independently from the
same global state.  This module turns that structure into a pluggable
:class:`Executor`:

* :class:`SerialExecutor` — trains the clients one after another on the
  simulation's shared model instance, reproducing the historical
  single-process behaviour bit-for-bit (same client order, same RNG streams,
  same floating-point summation order).
* :class:`ParallelExecutor` — fans the clients out over a
  ``concurrent.futures.ProcessPoolExecutor``.  The round's broadcast is
  serialized exactly once (via :meth:`BroadcastHandle.serialized`) and shipped
  to at most ``num_workers`` chunk tasks — never once per client — and each
  worker process trains on a cached per-process model replica.  Updates are
  reassembled in the original selection order so FedAvg accumulates in the
  same order as the serial path and results stay identical for a given seed.

Both executors hand every client the *same* read-only broadcast state, so no
per-client ``clone_state_dict`` happens anywhere on the hot path.

Methods must follow the picklability contract documented in
:mod:`repro.federated.method` to be usable under the parallel executor.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import sys
from concurrent.futures import ProcessPoolExecutor
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.autograd.tensor import get_default_dtype, set_default_dtype
from repro.federated.client import ClientHandle
from repro.federated.communication import ClientUpdate
from repro.federated.method import FederatedMethod
from repro.federated.server import BroadcastHandle
from repro.nn.module import Module
from repro.nn.serialization import (
    deserialize_state,
    readonly_payload_view,
    readonly_state_view,
)

# --------------------------------------------------------------------------- #
# Worker-process machinery (module level so it pickles by reference)
# --------------------------------------------------------------------------- #

#: Per-worker-process cache of model replicas, keyed by the method identity and
#: the broadcast state signature, so a replica is built once per process and
#: then only reloaded with fresh weights every round.
_WORKER_REPLICAS: Dict[tuple, Module] = {}


def _replica_key(method: FederatedMethod, state: Dict[str, np.ndarray]) -> tuple:
    # State shapes alone cannot distinguish architectures that differ in
    # non-shape knobs (e.g. attention head counts), so the method's config
    # repr is folded into the key as a build fingerprint.
    signature = tuple((name, value.shape, str(value.dtype)) for name, value in state.items())
    fingerprint = repr(getattr(method, "config", None))
    return (type(method).__module__, type(method).__qualname__, method.name, fingerprint, signature)


def _replica_for(method: FederatedMethod, state: Dict[str, np.ndarray]) -> Module:
    key = _replica_key(method, state)
    model = _WORKER_REPLICAS.get(key)
    if model is None:
        model = method.build_model()
        _WORKER_REPLICAS[key] = model
    return model


def _run_client_chunk(
    method_blob: bytes,
    broadcast_blob: bytes,
    indexed_clients: Sequence[Tuple[int, ClientHandle]],
    dtype_name: str,
) -> List[Tuple[int, ClientUpdate, Any]]:
    """Train one worker's share of the round's clients.

    Receives the round-shared data (method + broadcast) as pre-pickled blobs:
    the parent serialized each exactly once and every chunk reuses the same
    bytes.  Returns ``(selection_index, update, exported_client_state)``
    triples so the parent can restore selection order and merge method state.
    """
    set_default_dtype(dtype_name)
    method: FederatedMethod = pickle.loads(method_blob)
    state, payload = deserialize_state(broadcast_blob)
    # numpy's writeable=False flag does not survive pickling; re-protect the
    # shared state and payload so a contract-violating method fails here
    # exactly as it would under the serial executor, instead of silently
    # corrupting what later clients in this chunk reload.
    state = readonly_state_view(state)
    payload = readonly_payload_view(payload)
    model = _replica_for(method, state)
    results: List[Tuple[int, ClientUpdate, Any]] = []
    for index, client in indexed_clients:
        model.load_state_dict(state)
        update = method.local_update(model, state, payload, client)
        results.append((index, update, method.export_client_state(client.client_id)))
    return results


# --------------------------------------------------------------------------- #
# Executors
# --------------------------------------------------------------------------- #


class Executor:
    """Strategy for running one round's local updates; see the module docstring."""

    def run_round(
        self,
        method: FederatedMethod,
        model: Module,
        broadcast: BroadcastHandle,
        clients: Sequence[ClientHandle],
    ) -> List[ClientUpdate]:
        """Run every client's local update and return updates in client order."""
        raise NotImplementedError

    def close(self) -> None:
        """Release any worker resources (idempotent)."""

    def __enter__(self) -> "Executor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class SerialExecutor(Executor):
    """Sequential execution on the caller's model — the historical behaviour."""

    def run_round(
        self,
        method: FederatedMethod,
        model: Module,
        broadcast: BroadcastHandle,
        clients: Sequence[ClientHandle],
    ) -> List[ClientUpdate]:
        updates: List[ClientUpdate] = []
        for client in clients:
            model.load_state_dict(broadcast.state)
            updates.append(
                method.local_update(model, broadcast.state, broadcast.payload, client)
            )
        return updates


class ParallelExecutor(Executor):
    """Process-pool execution with a single-serialization broadcast.

    ``num_workers`` defaults to the machine's CPU count.  The pool is created
    lazily on the first round and reused across rounds and tasks; call
    :meth:`close` (or use the executor as a context manager) to tear it down.
    Worker processes inherit the parent's compute dtype so float32 runs stay
    float32 inside the workers.
    """

    def __init__(self, num_workers: Optional[int] = None) -> None:
        self.num_workers = max(1, num_workers if num_workers else (os.cpu_count() or 1))
        self._pool: Optional[ProcessPoolExecutor] = None

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            # Prefer cheap fork workers only on Linux; macOS forks are unsafe
            # with live BLAS/Objective-C threads (hence its spawn default),
            # and the worker entry point is a module-level function, so the
            # platform default works everywhere else.
            if sys.platform.startswith("linux") and "fork" in multiprocessing.get_all_start_methods():
                context = multiprocessing.get_context("fork")
            else:
                context = multiprocessing.get_context()
            self._pool = ProcessPoolExecutor(max_workers=self.num_workers, mp_context=context)
        return self._pool

    def run_round(
        self,
        method: FederatedMethod,
        model: Module,
        broadcast: BroadcastHandle,
        clients: Sequence[ClientHandle],
    ) -> List[ClientUpdate]:
        pool = self._ensure_pool()
        method_blob = pickle.dumps(method, protocol=pickle.HIGHEST_PROTOCOL)
        broadcast_blob = broadcast.serialized()
        dtype_name = get_default_dtype().name
        indexed = list(enumerate(clients))
        num_chunks = min(self.num_workers, len(indexed))
        chunks = [indexed[i::num_chunks] for i in range(num_chunks)]
        futures = [
            pool.submit(_run_client_chunk, method_blob, broadcast_blob, chunk, dtype_name)
            for chunk in chunks
        ]
        gathered: List[Tuple[int, ClientUpdate, Any]] = []
        for future in futures:
            gathered.extend(future.result())
        gathered.sort(key=lambda item: item[0])
        updates: List[ClientUpdate] = []
        for _, update, exported in gathered:
            updates.append(update)
            if exported is not None:
                method.import_client_state(update.client_id, exported)
        return updates

    def close(self) -> None:
        if self._pool is not None:
            # cancel_futures: when a run dies mid-round, don't block the
            # propagating exception on queued chunks that haven't started.
            self._pool.shutdown(wait=True, cancel_futures=True)
            self._pool = None

    def __del__(self) -> None:  # pragma: no cover - best-effort cleanup
        try:
            if self._pool is not None:
                self._pool.shutdown(wait=False, cancel_futures=True)
                self._pool = None
        except Exception:
            pass


def build_executor(executor: str = "serial", num_workers: int = 0) -> Executor:
    """Construct an executor from the :class:`FederatedConfig` knobs."""
    if executor == "serial":
        return SerialExecutor()
    if executor == "parallel":
        return ParallelExecutor(num_workers)
    raise ValueError(f"unknown executor {executor!r}; choose 'serial' or 'parallel'")


__all__ = ["Executor", "SerialExecutor", "ParallelExecutor", "build_executor"]
