"""The round execution engine: how a round's selected clients actually run.

Between ``broadcast`` and ``aggregate`` a communication round is
embarrassingly parallel: every selected client trains independently from the
same global state.  This module turns that structure into a pluggable
:class:`Executor`:

* :class:`SerialExecutor` — trains the clients one after another on the
  simulation's shared model instance, reproducing the historical
  single-process behaviour bit-for-bit (same client order, same RNG streams,
  same floating-point summation order).
* :class:`ParallelExecutor` — fans the clients out over a pool of pinned
  worker processes.  The round's broadcast is serialized exactly once (via
  :meth:`BroadcastHandle.serialized`) and shipped to at most ``num_workers``
  chunk tasks — never once per client — and each worker process trains on a
  cached per-process model replica.  Updates are reassembled in the original
  selection order so FedAvg accumulates in the same order as the serial path
  and results stay identical for a given seed.

The client data plane
---------------------
Client shards dominate per-round IPC yet only change at task boundaries, so
the parallel executor ships them through a per-worker cache instead of
re-pickling them every round:

* handles cross the boundary *light* (:meth:`ClientHandle.lighten` plus a
  :class:`~repro.federated.client.ShardRef`), and workers rebind the dataset
  from the module-level ``_WORKER_SHARDS`` cache keyed by
  ``(client_id, task_id, fingerprint)`` — mirroring ``_WORKER_REPLICAS``;
* workers are *pinned*: each has a dedicated task queue
  (:class:`_PinnedWorkerPool`), so the parent knows exactly which worker runs
  which chunk and tracks every worker's shard inventory.  That inventory is
  the cache-miss handshake — shard bytes are attached to a chunk only for
  keys the receiving worker does not already hold, i.e. once per
  (client, task) rather than once per round;
* the fingerprint component of the key invalidates stale entries whenever a
  shard's content changes — in-between clients concatenating their previous
  task's shard produce a new fingerprint — and both sides evict entries from
  other tasks when a round for a new task arrives, bounding worker memory to
  one task's shards.

Per-round accounting of everything shipped (method, broadcast, shard bytes,
hits/misses) is appended to :attr:`ParallelExecutor.ipc_log` as
:class:`RoundIPC` records; ``benchmarks/bench_round_parallel.py`` turns those
into the ``round_ipc`` section of ``BENCH_round.json``.

The evaluation plane
--------------------
The paper's evaluation protocol (Sec. V-A) scores the global model on *every*
seen domain after each learning step — an O(T²) forward-pass workload per run
(O(T·R) with mid-task ``eval_every`` snapshots) that the same pinned pool
absorbs between training rounds:

* :meth:`ParallelExecutor.run_eval` fans :class:`EvalJob` units — one
  (seen-task, batch-aligned test-shard slice) each — over the workers and
  reassembles per-slice *integer* correct/total counts in job order.  Slices
  are cut on the serial ``DataLoader``'s batch grid
  (:func:`batch_aligned_slices`), so every worker runs exactly the batches
  the serial path would run and the summed counts reproduce serial
  accuracies bit-for-bit;
* test sets are immutable for the whole run, so slices enter a per-worker
  ``_WORKER_EVAL_SHARDS`` cache keyed by
  ``(task_id, slice_index, fingerprint)`` — mirroring ``_WORKER_SHARDS`` —
  and cross IPC **once per run**: the parent mirrors each worker's eval
  inventory exactly like the training data plane, attaching slice bytes only
  on a genuine miss.  A new fingerprint for a (task, slice) pair (e.g. a
  dtype switch) replaces the stale entry on both sides;
* :class:`ParallelEvalBackend` adapts the fan-out to the
  :class:`repro.continual.evaluator.GlobalEvaluator` backend interface, and
  per-call accounting lands in :attr:`ParallelExecutor.eval_ipc_log` as
  :class:`EvalIPC` records (the ``eval_plane`` section of
  ``BENCH_round.json``, via ``benchmarks/bench_eval_parallel.py``).

Both executors hand every client the *same* read-only broadcast state, so no
per-client ``clone_state_dict`` happens anywhere on the hot path.

Methods must follow the picklability contract documented in
:mod:`repro.federated.method` to be usable under the parallel executor.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import sys
import traceback
from dataclasses import dataclass, replace
from queue import Empty
from typing import Any, Callable, Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.autograd.tape import KERNELS, set_kernel, set_plan_optimize
from repro.autograd.tensor import get_default_dtype, set_default_dtype
from repro.continual.evaluator import EvalBackend, PredictFn, count_correct
from repro.continual.scenario import Task
from repro.datasets.base import ArrayDataset
from repro.federated.client import ClientHandle, ShardRef
from repro.federated.communication import ClientUpdate
from repro.federated.method import FederatedMethod
from repro.federated.server import BroadcastHandle
from repro.nn.module import Module
from repro.nn.serialization import (
    deserialize_state,
    readonly_payload_view,
    readonly_state_view,
)

# --------------------------------------------------------------------------- #
# Worker-process machinery (module level so it pickles by reference)
# --------------------------------------------------------------------------- #

#: Per-worker-process cache of model replicas, keyed by the method identity and
#: the broadcast state signature, so a replica is built once per process and
#: then only reloaded with fresh weights every round.
_WORKER_REPLICAS: Dict[tuple, Module] = {}

#: Per-worker-process cache of client dataset shards, keyed by
#: ``ShardRef.cache_key`` = (client_id, task_id, fingerprint).  Entries are
#: installed from the shard bytes the parent attaches on a cache miss and
#: evicted when a chunk for a different task arrives (shards are immutable
#: within a task, so nothing else can invalidate them mid-task).
_WORKER_SHARDS: Dict[Tuple[int, int, str], ArrayDataset] = {}

#: Per-worker-process cache of test-set slices for the evaluation plane,
#: keyed by ``EvalSliceRef.cache_key`` = (task_id, slice_index, fingerprint).
#: Test sets never change within a run, so entries live for the pool's
#: lifetime and each slice crosses IPC once per run; a changed fingerprint
#: for the same (task, slice) pair (e.g. a dtype switch between simulations
#: on a long-lived pool) replaces the stale entry at install time.
_WORKER_EVAL_SHARDS: Dict[Tuple[int, int, str], ArrayDataset] = {}

_ShardKey = Tuple[int, int, str]


def _replica_key(method: FederatedMethod, state: Dict[str, np.ndarray]) -> tuple:
    # State shapes alone cannot distinguish architectures that differ in
    # non-shape knobs (e.g. attention head counts), so the method's config
    # repr is folded into the key as a build fingerprint.  The compute dtype
    # is part of the key too: a long-lived worker that switches default dtype
    # between simulations must not reuse a replica whose non-state buffers
    # were built at the previous precision.
    signature = tuple((name, value.shape, str(value.dtype)) for name, value in state.items())
    fingerprint = repr(getattr(method, "config", None))
    return (
        type(method).__module__,
        type(method).__qualname__,
        method.name,
        fingerprint,
        get_default_dtype().name,
        signature,
    )


def _replica_for(method: FederatedMethod, state: Dict[str, np.ndarray]) -> Module:
    key = _replica_key(method, state)
    model = _WORKER_REPLICAS.get(key)
    if model is None:
        model = method.build_model()
        _WORKER_REPLICAS[key] = model
    return model


def _run_client_chunk(
    method_blob: bytes,
    broadcast_blob: bytes,
    indexed_clients: Sequence[Tuple[int, ClientHandle]],
    dtype_name: str,
    kernel: str = "eager",
    plan_optimize: bool = True,
) -> List[Tuple[int, ClientUpdate, Any]]:
    """Train one worker's share of the round's clients.

    Receives the round-shared data (method + broadcast) as pre-pickled blobs:
    the parent serialized each exactly once and every chunk reuses the same
    bytes.  Returns ``(selection_index, update, exported_client_state)``
    triples so the parent can restore selection order and merge method state.
    The parent's autograd kernel travels with every chunk (like the compute
    dtype) so ``kernel="tape"`` runs trace-and-replay inside the workers too.
    """
    set_default_dtype(dtype_name)
    set_kernel(kernel)
    set_plan_optimize(plan_optimize)
    method: FederatedMethod = pickle.loads(method_blob)
    state, payload = deserialize_state(broadcast_blob)
    # numpy's writeable=False flag does not survive pickling; re-protect the
    # shared state and payload so a contract-violating method fails here
    # exactly as it would under the serial executor, instead of silently
    # corrupting what later clients in this chunk reload.
    state = readonly_state_view(state)
    payload = readonly_payload_view(payload)
    model = _replica_for(method, state)
    results: List[Tuple[int, ClientUpdate, Any]] = []
    for index, client in indexed_clients:
        model.load_state_dict(state)
        update = method.local_update(model, state, payload, client)
        results.append((index, update, method.export_client_state(client.client_id)))
    return results


def _install_shards(shard_blobs: Dict[_ShardKey, bytes]) -> None:
    """Unpack the shard payloads the parent attached for this worker's misses."""
    for key, blob in shard_blobs.items():
        _WORKER_SHARDS[key] = pickle.loads(blob)


def _evict_stale_shards(task_id: int) -> None:
    """Drop cached shards from other tasks (shards only change at task boundaries)."""
    for key in [key for key in _WORKER_SHARDS if key[1] != task_id]:
        del _WORKER_SHARDS[key]


def _resolve_chunk(
    items: Sequence[Tuple[int, ClientHandle, Optional[ShardRef]]],
) -> List[Tuple[int, ClientHandle]]:
    """Rebind each light handle's dataset from the worker shard cache."""
    resolved: List[Tuple[int, ClientHandle]] = []
    for index, client, ref in items:
        if ref is not None:
            shard = _WORKER_SHARDS.get(ref.cache_key)
            if shard is None:
                raise RuntimeError(
                    f"worker shard cache miss for client {ref.client_id} "
                    f"task {ref.task_id}: the parent's inventory claims this "
                    "shard was already shipped to this worker — pinned-queue "
                    "bookkeeping and worker eviction are out of sync"
                )
            if len(shard) != ref.num_samples:
                raise RuntimeError(
                    f"worker shard cache corruption for client {ref.client_id} "
                    f"task {ref.task_id}: cached shard has {len(shard)} samples "
                    f"but the handle expects {ref.num_samples}"
                )
            client = replace(client, dataset=shard)
        resolved.append((index, client))
    return resolved


@dataclass(frozen=True)
class EvalSliceRef:
    """Identity of one batch-aligned test-set slice, without the payload.

    The evaluation plane's analogue of :class:`~repro.federated.client.ShardRef`:
    rides every eval job over IPC while the slice bytes themselves ship only on
    a worker cache miss — once per run, since test sets are immutable.
    """

    task_id: int
    slice_index: int
    fingerprint: str
    num_samples: int

    @property
    def cache_key(self) -> Tuple[int, int, str]:
        return (self.task_id, self.slice_index, self.fingerprint)


@dataclass(frozen=True)
class EvalJob:
    """One unit of evaluation work: score one slice of one seen task's test set."""

    task_id: int
    slice_index: int
    dataset: ArrayDataset
    batch_size: int

    def slice_ref(self) -> EvalSliceRef:
        return EvalSliceRef(
            task_id=self.task_id,
            slice_index=self.slice_index,
            fingerprint=self.dataset.fingerprint(),
            num_samples=len(self.dataset),
        )


def batch_aligned_slices(
    dataset: ArrayDataset, batch_size: int, num_slices: int
) -> List[ArrayDataset]:
    """Cut ``dataset`` into at most ``num_slices`` contiguous slices on the
    serial ``DataLoader``'s batch grid.

    Every slice boundary falls on a multiple of ``batch_size``, so evaluating
    the slices independently runs *exactly* the mini-batches a serial pass
    over the whole dataset runs — same batch shapes, same floating-point
    forward passes — and the per-slice integer correct counts sum to the
    serial count.  That is the invariant behind the eval plane's bit-for-bit
    serial/parallel parity.
    """
    if batch_size < 1:
        raise ValueError("batch_size must be at least 1")
    if num_slices < 1:
        raise ValueError("num_slices must be at least 1")
    if len(dataset) == 0:
        raise ValueError("cannot slice an empty dataset")
    num_batches = -(-len(dataset) // batch_size)  # ceil
    pieces = min(num_slices, num_batches)
    slices: List[ArrayDataset] = []
    for index in range(pieces):
        start = (index * num_batches // pieces) * batch_size
        end = min(((index + 1) * num_batches // pieces) * batch_size, len(dataset))
        slices.append(dataset.subset(np.arange(start, end)))
    return slices


def _install_eval_shards(shard_blobs: Dict[_ShardKey, bytes]) -> None:
    """Install the eval-slice payloads the parent attached for this worker's misses.

    A fresh fingerprint for an already-held (task, slice) pair replaces the
    stale entry, so the cache is bounded by one copy of the test suite even
    when a long-lived pool switches compute dtype between simulations.
    """
    for key, blob in shard_blobs.items():
        for stale in [k for k in _WORKER_EVAL_SHARDS if k[:2] == key[:2] and k != key]:
            del _WORKER_EVAL_SHARDS[stale]
        _WORKER_EVAL_SHARDS[key] = pickle.loads(blob)


def _run_eval_chunk(
    method_blob: bytes,
    broadcast_blob: bytes,
    items: Sequence[Tuple[int, EvalSliceRef, int]],
    dtype_name: str,
) -> List[Tuple[int, int, int]]:
    """Score one worker's share of the evaluation jobs.

    Loads the broadcast state into the cached per-process replica once, then
    counts correct predictions per slice through the method's own inference
    path (``predict_logits``).  Returns ``(job_index, correct, total)``
    triples; integer counts make the parent-side reassembly exact.
    """
    set_default_dtype(dtype_name)
    method: FederatedMethod = pickle.loads(method_blob)
    state, _ = deserialize_state(broadcast_blob)
    state = readonly_state_view(state)
    model = _replica_for(method, state)
    model.load_state_dict(state)
    results: List[Tuple[int, int, int]] = []
    for job_index, ref, batch_size in items:
        shard = _WORKER_EVAL_SHARDS.get(ref.cache_key)
        if shard is None:
            raise RuntimeError(
                f"worker eval-shard cache miss for task {ref.task_id} "
                f"slice {ref.slice_index}: the parent's inventory claims this "
                "slice was already shipped to this worker — pinned-queue "
                "bookkeeping and worker install are out of sync"
            )
        if len(shard) != ref.num_samples:
            raise RuntimeError(
                f"worker eval-shard cache corruption for task {ref.task_id} "
                f"slice {ref.slice_index}: cached slice has {len(shard)} samples "
                f"but the job expects {ref.num_samples}"
            )
        correct = count_correct(
            model, shard, batch_size=batch_size, predict_fn=method.predict_logits
        )
        results.append((job_index, correct, len(shard)))
    return results


class WorkerDiedError(RuntimeError):
    """A pinned pool worker died without reporting its chunk's result.

    Raised instead of blocking forever on the result queue (the pre-fault-
    plane failure mode) whether or not fault injection is active.  Carries
    everything a caller needs to react: which workers died with which exit
    codes, the client ids whose updates were lost with them, and the results
    other workers had already reported (so a self-healing executor can absorb
    them and replay only the lost chunks).
    """

    def __init__(
        self,
        worker_ids: Sequence[int],
        exit_codes: Sequence[Optional[int]],
        client_ids: Sequence[int] = (),
        partial_outcomes: Optional[List[tuple]] = None,
    ) -> None:
        super().__init__()
        self.worker_ids = list(worker_ids)
        self.exit_codes = list(exit_codes)
        self.client_ids = list(client_ids)
        self.partial_outcomes = partial_outcomes if partial_outcomes is not None else []

    def __str__(self) -> str:
        message = (
            f"worker process(es) {self.worker_ids} died without reporting a "
            f"result (exit codes {self.exit_codes})"
        )
        if self.client_ids:
            message += f"; pending client ids {self.client_ids}"
        return message


def _encode_error(exc: BaseException) -> Tuple[Optional[bytes], str]:
    """Make a worker failure shippable: the exception if picklable, plus text."""
    text = "".join(traceback.format_exception(type(exc), exc, exc.__traceback__))
    try:
        blob = pickle.dumps(exc, protocol=pickle.HIGHEST_PROTOCOL)
    except Exception:
        blob = None
    return blob, text


def _raise_worker_error(encoded: Tuple[Optional[bytes], str]) -> None:
    blob, text = encoded
    if blob is not None:
        try:
            exc = pickle.loads(blob)
        except Exception:
            exc = None
        if isinstance(exc, BaseException):
            # Re-raise with the original type (so callers can still catch it)
            # but chain the worker-side traceback, which the parent-side stack
            # cannot show.
            raise exc from RuntimeError(f"worker traceback:\n{text}")
    raise RuntimeError(f"worker process failed:\n{text}")


def _worker_main(worker_id: int, task_queue, result_queue) -> None:
    """Entry point of one pinned worker; loops until the ``None`` sentinel.

    Messages are ``(kind, payload)`` pairs: ``"train"`` chunks run local
    updates through the client data plane, ``"eval"`` chunks score test-set
    slices through the evaluation plane.  Both planes share the worker's
    model replica cache, so evaluation jobs reuse the replica the training
    rounds already built.  A ``"die"`` message is the fault plane's
    deterministic worker kill: the process exits immediately with the given
    code, reporting nothing — exactly like a real crash.
    """
    while True:
        message = task_queue.get()
        if message is None:
            return
        kind, payload = message
        if kind == "die":
            os._exit(int(payload))
        try:
            if kind == "train":
                (
                    method_blob,
                    broadcast_blob,
                    items,
                    shard_blobs,
                    dtype_name,
                    task_id,
                    kernel,
                    plan_optimize,
                ) = payload
                _install_shards(shard_blobs)
                _evict_stale_shards(task_id)
                results = _run_client_chunk(
                    method_blob,
                    broadcast_blob,
                    _resolve_chunk(items),
                    dtype_name,
                    kernel,
                    plan_optimize,
                )
            elif kind == "eval":
                method_blob, broadcast_blob, items, shard_blobs, dtype_name = payload
                _install_eval_shards(shard_blobs)
                results = _run_eval_chunk(method_blob, broadcast_blob, items, dtype_name)
            else:
                raise RuntimeError(f"unknown worker message kind {kind!r}")
            result_queue.put((worker_id, "ok", results))
        except BaseException as exc:  # ship the failure instead of dying silently
            result_queue.put((worker_id, "error", _encode_error(exc)))


class _PinnedWorkerPool:
    """``num_workers`` long-lived processes, each with a dedicated task queue.

    ``concurrent.futures.ProcessPoolExecutor`` hands tasks to whichever worker
    grabs them first, so a parent can never know which process holds which
    cached shard.  Pinning each worker to its own queue makes the worker-side
    caches addressable: the parent decides which worker runs which chunk, so
    it can mirror every worker's shard inventory exactly and attach shard
    bytes only for genuine misses.
    """

    def __init__(self, num_workers: int, context) -> None:
        self._context = context
        self._result_queue = context.Queue()
        self._task_queues = [context.Queue() for _ in range(num_workers)]
        self._processes = [
            context.Process(
                target=_worker_main,
                args=(worker_id, task_queue, self._result_queue),
                daemon=True,
            )
            for worker_id, task_queue in enumerate(self._task_queues)
        ]
        for process in self._processes:
            process.start()

    def submit(self, worker_id: int, message: tuple) -> None:
        self._task_queues[worker_id].put(message)

    def collect(self, pending: Set[int]) -> List[tuple]:
        """Gather one result per pending worker, failing fast if one dies.

        Only the workers with an outstanding chunk are liveness-checked; an
        idle worker dying (nothing submitted to it this round) must not abort
        a round whose results are all coming from live workers.  A dead
        pending worker raises :class:`WorkerDiedError` carrying the results
        already gathered, so a healing caller loses only the dead workers'
        chunks.
        """
        pending = set(pending)
        outcomes: List[tuple] = []
        while pending:
            try:
                outcome = self._result_queue.get(timeout=1.0)
            except Empty:
                dead = sorted(
                    worker_id
                    for worker_id in pending
                    if not self._processes[worker_id].is_alive()
                )
                if dead:
                    codes = [self._processes[worker_id].exitcode for worker_id in dead]
                    raise WorkerDiedError(dead, codes, partial_outcomes=outcomes)
                continue
            outcomes.append(outcome)
            pending.discard(outcome[0])
        return outcomes

    def respawn(self, worker_id: int) -> None:
        """Replace a dead worker with a fresh process on a fresh task queue.

        Anything still sitting in the dead worker's queue (the lost chunk, a
        pending kill) dies with the queue; the replacement starts with empty
        module-level caches, which is why the healing caller must forget the
        worker's mirrored inventories before resubmitting.
        """
        process = self._processes[worker_id]
        if process.is_alive():
            process.terminate()
        process.join(timeout=5.0)
        stale_queue = self._task_queues[worker_id]
        try:
            stale_queue.close()
            stale_queue.cancel_join_thread()
        except Exception:
            pass
        task_queue = self._context.Queue()
        self._task_queues[worker_id] = task_queue
        replacement = self._context.Process(
            target=_worker_main,
            args=(worker_id, task_queue, self._result_queue),
            daemon=True,
        )
        self._processes[worker_id] = replacement
        replacement.start()

    def close(self) -> None:
        for task_queue in self._task_queues:
            try:
                task_queue.put(None)
            except Exception:
                pass
        for process in self._processes:
            process.join(timeout=5.0)
        for process in self._processes:
            if process.is_alive():
                process.terminate()
                process.join(timeout=1.0)
        for queue in self._task_queues + [self._result_queue]:
            queue.close()
            queue.cancel_join_thread()

    def terminate(self) -> None:
        for process in self._processes:
            if process.is_alive():
                process.terminate()


def _assign_clients_to_workers(
    indexed: Sequence[Tuple[int, ClientHandle]], num_workers: int
) -> List[List[Tuple[int, ClientHandle]]]:
    """Deterministic client→worker assignment: stable first, then balanced.

    A client's home worker is ``client_id % num_workers``, so its cached
    shard is found again every round of a task; overfull homes then spill
    their excess onto the least-loaded workers so a round's wall clock stays
    one chunk deep.  Spilled clients may pay an extra shard shipment on the
    recipient worker — correctness never depends on where a chunk runs, only
    the IPC volume does.
    """
    buckets: List[List[Tuple[int, ClientHandle]]] = [[] for _ in range(num_workers)]
    for item in indexed:
        buckets[item[1].client_id % num_workers].append(item)
    target = -(-len(indexed) // num_workers)  # ceil
    overflow: List[Tuple[int, ClientHandle]] = []
    for bucket in buckets:
        while len(bucket) > target:
            overflow.append(bucket.pop())
    for item in overflow:
        recipient = min(range(num_workers), key=lambda w: (len(buckets[w]), w))
        buckets[recipient].append(item)
    return buckets


# --------------------------------------------------------------------------- #
# Executors
# --------------------------------------------------------------------------- #


class Executor:
    """Strategy for running one round's local updates; see the module docstring."""

    def run_round(
        self,
        method: FederatedMethod,
        model: Module,
        broadcast: BroadcastHandle,
        clients: Sequence[ClientHandle],
    ) -> List[ClientUpdate]:
        """Run every client's local update and return updates in client order."""
        raise NotImplementedError

    def run_client(
        self,
        method: FederatedMethod,
        model: Module,
        broadcast: BroadcastHandle,
        client: ClientHandle,
    ) -> ClientUpdate:
        """One client's local update — the temporal plane's dispatch unit.

        The event-driven async/buffered modes dispatch clients one arrival at
        a time in simulated-clock order; each dispatch is a single-client
        round on whichever executor is configured, so the pinned worker pool
        (shard cache, replica cache and all) keeps doing the compute while
        the scheduler decides ordering and staleness.
        """
        return self.run_round(method, model, broadcast, [client])[0]

    def close(self) -> None:
        """Release any worker resources (idempotent)."""

    def __enter__(self) -> "Executor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class SerialExecutor(Executor):
    """Sequential execution on the caller's model — the historical behaviour."""

    def run_round(
        self,
        method: FederatedMethod,
        model: Module,
        broadcast: BroadcastHandle,
        clients: Sequence[ClientHandle],
    ) -> List[ClientUpdate]:
        updates: List[ClientUpdate] = []
        for client in clients:
            model.load_state_dict(broadcast.state)
            updates.append(
                method.local_update(model, broadcast.state, broadcast.payload, client)
            )
        return updates


class BatchedExecutor(SerialExecutor):
    """Lockstep execution: one vectorized plan step trains the whole cohort.

    The ``kernel="batched"`` executor.  Eligible clients (see
    :mod:`repro.federated.lockstep`) are grouped by training schedule and
    trained through a single stacked plan replay per step; everything else
    degenerates to the serial path (which under a non-eager kernel is the
    tape kernel's trace-and-replay loop).  ``telemetry`` counts how the
    round's clients actually executed, for the kernel-plane bench.
    """

    def __init__(self) -> None:
        # Local import: lockstep pulls in the baselines package for its
        # eligibility check, which itself imports this module at load time.
        from repro.federated.lockstep import LockstepTelemetry

        self.telemetry = LockstepTelemetry()

    def run_round(
        self,
        method: FederatedMethod,
        model: Module,
        broadcast: BroadcastHandle,
        clients: Sequence[ClientHandle],
    ) -> List[ClientUpdate]:
        from repro.federated.lockstep import run_lockstep_round

        return run_lockstep_round(method, model, broadcast, clients, self.telemetry)


@dataclass(frozen=True)
class RoundIPC:
    """What one completed parallel round shipped to its workers.

    ``method_bytes`` and ``broadcast_bytes`` count the blob size times the
    number of worker messages that embedded it (each pinned queue copies the
    shared bytes), so all three byte fields are comparable measures of actual
    cross-process traffic.  ``num_messages`` is that message count, so
    ``broadcast_bytes / num_messages`` recovers the single broadcast blob
    length — under the loopback transport's ``identity`` codec that blob *is*
    the per-client broadcast wire frame, which is how the
    :class:`~repro.federated.communication.CommunicationLedger` and this log
    reconcile exactly where both observe the same traffic.  Failed rounds are
    not logged.
    """

    task_id: int
    num_clients: int
    method_bytes: int
    broadcast_bytes: int
    shard_bytes: int
    shards_shipped: int
    cache_hits: int
    num_messages: int = 0


@dataclass(frozen=True)
class EvalIPC:
    """What one :meth:`ParallelExecutor.run_eval` call shipped to its workers.

    Same byte conventions as :class:`RoundIPC`: ``method_bytes`` and
    ``broadcast_bytes`` count blob size times worker messages.  With the
    cache on, ``shard_bytes`` is non-zero only the first time a (task, slice)
    pair reaches its worker — once per run.  Failed calls are not logged.
    """

    num_jobs: int
    method_bytes: int
    broadcast_bytes: int
    shard_bytes: int
    shards_shipped: int
    cache_hits: int


class ParallelExecutor(Executor):
    """Pinned-worker-pool execution with a single-serialization broadcast and a
    per-worker shard cache (the client data plane; see the module docstring).

    ``num_workers`` defaults to the machine's CPU count.  The pool is created
    lazily on the first round and reused across rounds and tasks; call
    :meth:`close` (or use the executor as a context manager) to tear it down.
    Worker processes inherit the parent's compute dtype so float32 runs stay
    float32 inside the workers.

    ``shard_cache=True`` (the default) ships each client's dataset only when
    the receiving worker does not already hold it — once per (client, task)
    instead of once per round.  ``shard_cache=False`` keeps the light-handle
    protocol but treats every round as a miss, re-shipping every selected
    shard (the pre-cache behaviour, kept as a fallback and as the bench
    baseline).  Either way :attr:`ipc_log` records one :class:`RoundIPC`
    entry per round.
    """

    #: Exit code of a fault-plane worker kill, distinguishable from real crashes.
    KILL_EXIT_CODE = 86

    def __init__(
        self,
        num_workers: Optional[int] = None,
        shard_cache: bool = True,
        max_respawns: int = 0,
        kernel: str = "eager",
        plan_optimize: bool = True,
    ) -> None:
        self.num_workers = max(1, num_workers if num_workers else (os.cpu_count() or 1))
        self.shard_cache = shard_cache
        #: Autograd kernel every train chunk runs under (``"eager"`` or
        #: ``"tape"``; the lockstep ``"batched"`` kernel is serial-only).
        self.kernel = kernel
        #: Whether compiled plans inside the workers run the optimizer passes
        #: (bit-for-bit with unoptimized replay; shipped with every chunk).
        self.plan_optimize = plan_optimize
        #: Self-healing budget: how many dead workers this executor may
        #: replace over its lifetime before a death propagates as
        #: :class:`WorkerDiedError`.  ``0`` (the default) disables healing —
        #: a worker death always raises, the fault-plane-off contract.
        self.max_respawns = max_respawns
        #: Workers respawned so far (the bench's recovery counter).
        self.respawns = 0
        self.ipc_log: List[RoundIPC] = []
        self.eval_ipc_log: List[EvalIPC] = []
        self._pool: Optional[_PinnedWorkerPool] = None
        self._inventories: List[Set[_ShardKey]] = []
        self._eval_inventories: List[Set[_ShardKey]] = []
        self._pending_kills: List[int] = []

    def request_worker_kill(self, worker_id: int) -> None:
        """Schedule a deterministic worker death before the next round's chunks.

        The fault plane's injection point: a ``"die"`` message is queued ahead
        of the worker's next chunk, so the process exits exactly like a
        crashed worker would — chunk lost, caches gone — and the healing
        collect path detects, respawns and replays.
        """
        if not 0 <= worker_id < self.num_workers:
            raise ValueError(
                f"worker_id must be in [0, {self.num_workers}), got {worker_id}"
            )
        self._pending_kills.append(worker_id)

    def _build_train_message(
        self,
        worker_id: int,
        bucket: Sequence[Tuple[int, ClientHandle]],
        method_blob: bytes,
        broadcast_blob: bytes,
        dtype_name: str,
        task_id: int,
        stats: Dict[str, int],
    ) -> tuple:
        """Build one worker's train chunk, updating its mirrored inventory.

        A pure function of the round's blobs and the worker's inventory, so a
        healing replay after a respawn (inventory wiped to empty) rebuilds a
        chunk that re-ships every shard and reproduces the lost computation
        bit-for-bit.
        """
        # Mirror the worker's task-boundary eviction exactly: the worker
        # drops other-task entries when this chunk arrives, so the parent
        # must forget them at the same moment (and only for workers that
        # actually receive a chunk).
        inventory = {key for key in self._inventories[worker_id] if key[1] == task_id}
        self._inventories[worker_id] = inventory
        items: List[Tuple[int, ClientHandle, ShardRef]] = []
        shard_blobs: Dict[_ShardKey, bytes] = {}
        for index, client in bucket:
            ref = client.shard_ref()
            key = ref.cache_key
            if self.shard_cache and key in inventory:
                stats["cache_hits"] += 1
            elif key not in shard_blobs:
                blob = pickle.dumps(client.dataset, protocol=pickle.HIGHEST_PROTOCOL)
                shard_blobs[key] = blob
                stats["shard_bytes"] += len(blob)
                stats["shards_shipped"] += 1
                if self.shard_cache:
                    inventory.add(key)
            items.append((index, client.lighten(), ref))
        return (
            "train",
            (
                method_blob,
                broadcast_blob,
                items,
                shard_blobs,
                dtype_name,
                task_id,
                self.kernel,
                self.plan_optimize,
            ),
        )

    def _build_eval_message(
        self,
        worker_id: int,
        bucket: Sequence[Tuple[int, EvalJob]],
        method_blob: bytes,
        broadcast_blob: bytes,
        dtype_name: str,
        stats: Dict[str, int],
    ) -> tuple:
        """Build one worker's eval chunk, updating its mirrored eval inventory."""
        inventory = self._eval_inventories[worker_id]
        items: List[Tuple[int, EvalSliceRef, int]] = []
        shard_blobs: Dict[_ShardKey, bytes] = {}
        for index, job in bucket:
            ref = job.slice_ref()
            key = ref.cache_key
            if self.shard_cache and key in inventory:
                stats["cache_hits"] += 1
            elif key not in shard_blobs:
                blob = pickle.dumps(job.dataset, protocol=pickle.HIGHEST_PROTOCOL)
                shard_blobs[key] = blob
                stats["shard_bytes"] += len(blob)
                stats["shards_shipped"] += 1
                if self.shard_cache:
                    # Mirror the worker's install-time replacement: a new
                    # fingerprint for this (task, slice) pair supersedes the
                    # stale entry on both sides.
                    for stale in [k for k in inventory if k[:2] == key[:2]]:
                        inventory.discard(stale)
                    inventory.add(key)
            items.append((index, ref, job.batch_size))
        return ("eval", (method_blob, broadcast_blob, items, shard_blobs, dtype_name))

    def _collect_healing(
        self,
        pool: _PinnedWorkerPool,
        pending_workers: Set[int],
        buckets: Dict[int, Sequence[tuple]],
        rebuild: Callable[[int], tuple],
    ) -> List[tuple]:
        """Collect every pending chunk, healing worker deaths within budget.

        A dead worker's already-reported peers are absorbed from the error;
        the dead worker is respawned, its mirrored inventories (both planes)
        forgotten — the fresh process holds nothing — and its chunk rebuilt
        and resubmitted.  The replay is bit-for-bit: a chunk is a pure
        function of the round's blobs.  Beyond ``max_respawns`` the
        :class:`WorkerDiedError` propagates with the lost client ids filled
        in.
        """
        outcomes: List[tuple] = []
        pending = set(pending_workers)
        while pending:
            try:
                outcomes.extend(pool.collect(pending))
                break
            except WorkerDiedError as error:
                outcomes.extend(error.partial_outcomes)
                pending -= {outcome[0] for outcome in error.partial_outcomes}
                dead = [worker_id for worker_id in error.worker_ids if worker_id in pending]
                pending -= set(dead)
                if self.respawns + len(dead) > self.max_respawns:
                    error.client_ids = sorted(
                        item.client_id
                        for worker_id in dead
                        for _, item in buckets.get(worker_id, [])
                        if isinstance(item, ClientHandle)
                    )
                    raise
                for worker_id in dead:
                    pool.respawn(worker_id)
                    self.respawns += 1
                    self._inventories[worker_id] = set()
                    self._eval_inventories[worker_id] = set()
                    pool.submit(worker_id, rebuild(worker_id))
                    pending.add(worker_id)
        return outcomes

    def _ensure_pool(self) -> _PinnedWorkerPool:
        if self._pool is None:
            # Prefer cheap fork workers only on Linux; macOS forks are unsafe
            # with live BLAS/Objective-C threads (hence its spawn default),
            # and the worker entry point is a module-level function, so the
            # platform default works everywhere else.
            if sys.platform.startswith("linux") and "fork" in multiprocessing.get_all_start_methods():
                context = multiprocessing.get_context("fork")
            else:
                context = multiprocessing.get_context()
            self._pool = _PinnedWorkerPool(self.num_workers, context)
            self._inventories = [set() for _ in range(self.num_workers)]
            self._eval_inventories = [set() for _ in range(self.num_workers)]
        return self._pool

    def run_round(
        self,
        method: FederatedMethod,
        model: Module,
        broadcast: BroadcastHandle,
        clients: Sequence[ClientHandle],
    ) -> List[ClientUpdate]:
        if not clients:
            return []
        task_ids = {client.task_id for client in clients}
        if len(task_ids) > 1:
            # Task-boundary eviction (parent and worker) keys on the round's
            # single task id; a mixed round would evict freshly installed
            # shards mid-chunk.
            raise ValueError(
                f"a round's clients must share one task_id, got {sorted(task_ids)}"
            )
        pool = self._ensure_pool()
        method_blob = pickle.dumps(method, protocol=pickle.HIGHEST_PROTOCOL)
        broadcast_blob = broadcast.serialized()
        dtype_name = get_default_dtype().name
        task_id = clients[0].task_id
        indexed = list(enumerate(clients))
        buckets = _assign_clients_to_workers(indexed, self.num_workers)
        # Build every chunk message before submitting anything, and tear the
        # pool down on any failure in the build/submit/collect path: a
        # partially-submitted round would leave results in flight for the
        # next round's collect to mis-consume, and a partially-updated
        # inventory would desynchronise from workers that never received
        # their chunk.  close() clears both.
        stats = {"shard_bytes": 0, "shards_shipped": 0, "cache_hits": 0}
        try:
            bucket_map: Dict[int, Sequence[tuple]] = {}
            messages: List[Tuple[int, tuple]] = []
            for worker_id, bucket in enumerate(buckets):
                if not bucket:
                    continue
                bucket_map[worker_id] = bucket
                messages.append(
                    (
                        worker_id,
                        self._build_train_message(
                            worker_id, bucket, method_blob, broadcast_blob, dtype_name, task_id, stats
                        ),
                    )
                )
            # Fault-plane worker kills fire ahead of the round's chunks, so
            # the victim dies before (or instead of) running its work — the
            # chunk is genuinely lost and the healing path must replay it.
            for victim in self._pending_kills:
                pool.submit(victim, ("die", self.KILL_EXIT_CODE))
            self._pending_kills = []
            for worker_id, message in messages:
                pool.submit(worker_id, message)
            outcomes = self._collect_healing(
                pool,
                {worker_id for worker_id, _ in messages},
                bucket_map,
                lambda worker_id: self._build_train_message(
                    worker_id, bucket_map[worker_id], method_blob, broadcast_blob, dtype_name, task_id, stats
                ),
            )
        except Exception:
            self.close()
            raise
        shard_bytes = stats["shard_bytes"]
        shards_shipped = stats["shards_shipped"]
        cache_hits = stats["cache_hits"]
        gathered: List[Tuple[int, ClientUpdate, Any]] = []
        failure: Optional[Tuple[Optional[bytes], str]] = None
        for worker_id, status, payload in outcomes:
            if status == "error":
                failure = failure if failure is not None else payload
                # The worker may have failed mid-install, so its shard cache
                # is in an unknown state; forget its inventory and re-ship
                # everything on its next chunk (re-installs are idempotent).
                self._inventories[worker_id].clear()
            else:
                gathered.extend(payload)
        if failure is not None:
            # All chunks were already collected above, so the queues are clean
            # and the pool stays reusable after the exception propagates.
            _raise_worker_error(failure)
        self.ipc_log.append(
            RoundIPC(
                task_id=task_id,
                num_clients=len(indexed),
                method_bytes=len(method_blob) * len(messages),
                broadcast_bytes=len(broadcast_blob) * len(messages),
                shard_bytes=shard_bytes,
                shards_shipped=shards_shipped,
                cache_hits=cache_hits,
                num_messages=len(messages),
            )
        )
        gathered.sort(key=lambda item: item[0])
        updates: List[ClientUpdate] = []
        for _, update, exported in gathered:
            updates.append(update)
            if exported is not None:
                method.import_client_state(update.client_id, exported)
        return updates

    def run_eval(
        self,
        method: FederatedMethod,
        broadcast: BroadcastHandle,
        jobs: Sequence[EvalJob],
    ) -> List[Tuple[int, int]]:
        """Score every evaluation job on the pool; return (correct, total) in job order.

        The evaluation plane's fan-out: jobs are pinned to workers by
        ``(task_id + slice_index) % num_workers`` — deterministic, so a slice
        lands on the same worker every call and its cached bytes are found
        again — and slice payloads are attached only for keys the receiving
        worker does not already hold (mirrored inventories, exactly like the
        training data plane).  ``shard_cache=False`` re-ships every slice on
        every call (the bench baseline); counts are identical either way.
        """
        if not jobs:
            return []
        pool = self._ensure_pool()
        method_blob = pickle.dumps(method, protocol=pickle.HIGHEST_PROTOCOL)
        broadcast_blob = broadcast.serialized()
        dtype_name = get_default_dtype().name
        buckets: List[List[Tuple[int, EvalJob]]] = [[] for _ in range(self.num_workers)]
        for index, job in enumerate(jobs):
            buckets[(job.task_id + job.slice_index) % self.num_workers].append((index, job))
        # Same failure discipline as run_round: a partially-submitted call
        # would leave results in flight and inventories desynchronised, so
        # any build/submit/collect failure tears the pool down (close()
        # clears both planes' inventories).
        stats = {"shard_bytes": 0, "shards_shipped": 0, "cache_hits": 0}
        try:
            bucket_map: Dict[int, Sequence[tuple]] = {}
            messages: List[Tuple[int, tuple]] = []
            for worker_id, bucket in enumerate(buckets):
                if not bucket:
                    continue
                bucket_map[worker_id] = bucket
                messages.append(
                    (
                        worker_id,
                        self._build_eval_message(
                            worker_id, bucket, method_blob, broadcast_blob, dtype_name, stats
                        ),
                    )
                )
            for worker_id, message in messages:
                pool.submit(worker_id, message)
            outcomes = self._collect_healing(
                pool,
                {worker_id for worker_id, _ in messages},
                bucket_map,
                lambda worker_id: self._build_eval_message(
                    worker_id, bucket_map[worker_id], method_blob, broadcast_blob, dtype_name, stats
                ),
            )
        except Exception:
            self.close()
            raise
        shard_bytes = stats["shard_bytes"]
        shards_shipped = stats["shards_shipped"]
        cache_hits = stats["cache_hits"]
        gathered: List[Tuple[int, int, int]] = []
        failure: Optional[Tuple[Optional[bytes], str]] = None
        for worker_id, status, payload in outcomes:
            if status == "error":
                failure = failure if failure is not None else payload
                # The worker may have failed mid-install; forget its eval
                # inventory and re-ship on its next chunk (installs are
                # idempotent).
                self._eval_inventories[worker_id].clear()
            else:
                gathered.extend(payload)
        if failure is not None:
            _raise_worker_error(failure)
        self.eval_ipc_log.append(
            EvalIPC(
                num_jobs=len(jobs),
                method_bytes=len(method_blob) * len(messages),
                broadcast_bytes=len(broadcast_blob) * len(messages),
                shard_bytes=shard_bytes,
                shards_shipped=shards_shipped,
                cache_hits=cache_hits,
            )
        )
        gathered.sort(key=lambda item: item[0])
        return [(correct, total) for _, correct, total in gathered]

    def close(self) -> None:
        self._pending_kills = []
        if self._pool is not None:
            self._pool.close()
            self._pool = None
            self._inventories = []
            self._eval_inventories = []

    def __del__(self) -> None:  # pragma: no cover - best-effort cleanup
        try:
            if self._pool is not None:
                self._pool.terminate()
                self._pool = None
        except Exception:
            pass


class ParallelEvalBackend(EvalBackend):
    """Fans a :class:`GlobalEvaluator`'s seen-task suite over a pinned pool.

    Each test set is cut once on the serial ``DataLoader``'s batch grid
    (:func:`batch_aligned_slices`, at most ``executor.num_workers`` slices)
    and cached — with its content fingerprints pre-computed — per
    (task, dtype, batch size), so repeated evaluations re-hash nothing and
    re-ship nothing.  Scoring runs through the *method's* own pickled
    inference path (``predict_logits``) inside the workers — the same
    computation the serial backend performs when the evaluator's
    ``predict_fn`` is the method's bound ``predict_logits`` (the simulation
    wires exactly that), so accuracies match the serial backend bit-for-bit.
    Any *other* ``predict_fn`` is rejected loudly: closures cannot cross the
    process boundary, and silently substituting the method path would break
    the backend contract.

    ``broadcast_fn`` supplies the round-style broadcast handle whose state the
    workers load before scoring (the simulation passes
    ``server.broadcast_view``, which shares any handle already cached within
    the current round; the simulation invalidates it around every
    server-facing method hook, so each evaluation serializes the state at
    most once).  Without one, a handle is built from the evaluated model's
    own state dict.
    """

    def __init__(
        self,
        executor: ParallelExecutor,
        method: FederatedMethod,
        broadcast_fn: Optional[Callable[[], BroadcastHandle]] = None,
    ) -> None:
        self.executor = executor
        self.method = method
        self.broadcast_fn = broadcast_fn
        self._slices: Dict[Tuple[int, str, int], List[ArrayDataset]] = {}

    def _slices_for(
        self, task_id: int, dataset: ArrayDataset, batch_size: int
    ) -> List[ArrayDataset]:
        # Content-keyed (the fingerprint covers dtype and values, and is
        # memoised on the dataset) so a backend reused across scenarios — or
        # across dtype switches — can never score stale slices.
        key = (task_id, dataset.fingerprint(), batch_size)
        if key not in self._slices:
            # One slicing at a time per task, like the evaluator's
            # converted-test cache: a content/dtype switch evicts the task's
            # stale slicing, bounding the cache to one copy of the suite.
            for stale in [k for k in self._slices if k[0] == task_id and k != key]:
                del self._slices[stale]
            slices = batch_aligned_slices(dataset, batch_size, self.executor.num_workers)
            for piece in slices:
                piece.fingerprint()  # pay the per-slice content hash once
            self._slices[key] = slices
        return self._slices[key]

    def evaluate(
        self,
        model: Module,
        pairs: Sequence[Tuple[Task, ArrayDataset]],
        batch_size: int,
        predict_fn: Optional[PredictFn] = None,
    ) -> List[float]:
        if predict_fn != self.method.predict_logits:
            # Workers score through the pickled method's own predict_logits.
            # A caller-supplied closure cannot cross the process boundary, and
            # None would make the serial backend score plain model(images) —
            # which diverges from predict_logits for prompt-based methods —
            # so anything but the method's own bound hook is rejected loudly
            # rather than silently breaking the backend bit-for-bit contract.
            raise ValueError(
                "ParallelEvalBackend evaluates through its method's own "
                "predict_logits inside worker processes; construct the "
                "GlobalEvaluator with predict_fn=method.predict_logits (the "
                "simulation does), or use SerialEvalBackend for custom "
                "inference hooks"
            )
        broadcast = (
            self.broadcast_fn()
            if self.broadcast_fn is not None
            else BroadcastHandle(model.state_dict(), {})
        )
        jobs: List[EvalJob] = []
        spans: List[Tuple[int, int]] = []
        for task, dataset in pairs:
            slices = self._slices_for(task.task_id, dataset, batch_size)
            start = len(jobs)
            jobs.extend(
                EvalJob(task_id=task.task_id, slice_index=index, dataset=piece, batch_size=batch_size)
                for index, piece in enumerate(slices)
            )
            spans.append((start, len(jobs)))
        counts = self.executor.run_eval(self.method, broadcast, jobs)
        accuracies: List[float] = []
        for start, end in spans:
            correct = sum(count for count, _ in counts[start:end])
            total = sum(total for _, total in counts[start:end])
            accuracies.append(correct / total)
        return accuracies


def build_executor(
    executor: str = "serial",
    num_workers: int = 0,
    shard_cache: bool = True,
    max_respawns: int = 0,
    kernel: str = "eager",
    plan_optimize: bool = True,
) -> Executor:
    """Construct an executor from the :class:`FederatedConfig` knobs.

    ``plan_optimize`` only needs carrying by the parallel executor (it ships
    with every train chunk); the in-process executors read the process-global
    flag the simulation sets via ``plan_optimize_mode``.
    """
    if kernel not in KERNELS:
        raise ValueError(f"unknown kernel {kernel!r}; choose one of {KERNELS}")
    if kernel == "batched":
        if executor != "serial":
            raise ValueError(
                "kernel='batched' requires executor='serial': lockstep already "
                "vectorizes the cohort, a worker pool underneath it would "
                "shard the very groups it batches"
            )
        return BatchedExecutor()
    if executor == "serial":
        return SerialExecutor()
    if executor == "parallel":
        return ParallelExecutor(
            num_workers,
            shard_cache=shard_cache,
            max_respawns=max_respawns,
            kernel=kernel,
            plan_optimize=plan_optimize,
        )
    raise ValueError(f"unknown executor {executor!r}; choose 'serial' or 'parallel'")


__all__ = [
    "Executor",
    "SerialExecutor",
    "BatchedExecutor",
    "ParallelExecutor",
    "ParallelEvalBackend",
    "RoundIPC",
    "EvalIPC",
    "EvalJob",
    "EvalSliceRef",
    "WorkerDiedError",
    "batch_aligned_slices",
    "build_executor",
]
