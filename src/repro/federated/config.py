"""Configuration of a federated domain-incremental run."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.autograd.tape import KERNELS
from repro.federated.client import LocalTrainingConfig
from repro.federated.clock import PROFILE_TIERS
from repro.federated.communication import build_codec
from repro.federated.faults import FaultSpec
from repro.federated.increment import ClientIncrementConfig


@dataclass(frozen=True)
class FederatedConfig:
    """Everything the simulation loop needs besides the method and the data.

    Attributes
    ----------
    increment:
        Client-population dynamics (initial clients, increment per task,
        transfer fraction).
    clients_per_round:
        How many of the active clients are selected each communication round
        (the paper's "10 initially selected" / "select 8 clients" settings).
    rounds_per_task:
        Global communication rounds per incremental task (R in Algorithm 1).
    local:
        Local SGD hyper-parameters shared by all clients.
    partition_concentration:
        Dirichlet concentration of the quantity-shift partitioner (smaller =
        more extreme data-volume imbalance between clients).
    seed:
        Master seed; every stochastic component derives its stream from it.
    executor:
        How a round's selected clients run: ``"serial"`` (historical
        single-process loop) or ``"parallel"`` (process-pool fan-out; see
        :mod:`repro.federated.execution`).  Results are identical for a given
        seed either way.
    num_workers:
        Worker processes for the parallel executor; ``0`` means one per CPU.
        Ignored when ``executor="serial"``.
    shard_cache:
        Whether the parallel executor's client data plane caches dataset
        shards inside worker processes (default on).  With the cache, a
        client's shard crosses the process boundary once per task — light
        handles plus a shard fingerprint travel every round, shard bytes only
        on a worker's first sight of a (client, task) pair.  ``False``
        re-ships every selected shard every round (the pre-cache behaviour);
        results are bit-for-bit identical either way.  Ignored when
        ``executor="serial"``.
    dtype:
        Compute precision of the whole pipeline: ``"float64"`` (reference) or
        ``"float32"`` (≈2x lower memory bandwidth; accuracy differences are
        within noise at these scales).
    kernel:
        How a client's local SGD steps execute (the kernel plane;
        :mod:`repro.autograd.tape`): ``"eager"`` (default) is the historical
        closure-based autograd loop; ``"tape"`` traces each batch shape once
        into a compiled plan and replays it — verified hash-identical to
        eager on its first replay, falling back to eager on any divergence;
        ``"batched"`` additionally stacks eligible same-schedule clients
        along a leading axis and trains the whole cohort through one
        vectorized plan step per batch (:mod:`repro.federated.lockstep`) —
        exact in structure (same draws, same step counts) but tolerance-level
        in floats, and requires ``executor="serial"``.
    plan_optimize:
        Whether compiled plans run the compile-time optimizer passes
        (:mod:`repro.autograd.planopt`): dead-code elimination, slot liveness
        with a per-plan buffer arena, and elementwise fusion.  Optimized
        replay is bit-for-bit with unoptimized replay (hash-asserted in the
        test suite), so this is purely a performance lever — default on, and
        folded out of the run-cache key.  Ignored under ``kernel="eager"``.
    eval_executor:
        How the seen-task evaluation suite runs: ``"serial"`` (historical
        in-process loop) or ``"parallel"`` (fan seen tasks × batch-aligned
        test-shard slices over the pinned worker pool — shared with the
        training plane when ``executor="parallel"``; see
        :class:`repro.federated.execution.ParallelEvalBackend`).  Accuracy
        matrices are bit-for-bit identical either way.
    eval_every:
        ``0`` (default) evaluates only after each task's final round.  A
        positive ``k`` additionally scores the global model on every seen
        domain after every ``k``-th round of each task, recording the
        snapshots into ``SimulationResult.round_eval_history`` — the paper's
        per-round accuracy curves, an O(T·R) evaluation workload.  A final
        round's snapshot scores the freshly aggregated state *before* the
        method's ``on_task_end`` hook runs, so it is kept separate from (not
        reused for) the accuracy matrix's after-task evaluation: the two
        coincide only for methods whose ``on_task_end`` leaves the inference
        path untouched.
    transport:
        How broadcasts and uploads move (:mod:`repro.federated.transport`):
        ``"loopback"`` (default) encodes every message into a real wire frame
        through ``codec``, records *measured* frame lengths in the
        communication ledger, and decodes before training/aggregation;
        ``"direct"`` passes objects straight through with the legacy
        ``nbytes``-estimate ledger (zero overhead, zero wire fidelity).
    codec:
        Wire codec of the loopback transport: ``"identity"`` (raw pickle) and
        ``"delta"`` (sparse diff vs. the last acknowledged broadcast) are
        lossless — results are bit-for-bit identical to ``"direct"``;
        ``"quantize8"`` / ``"quantize16"`` (uniform per-tensor quantization)
        and ``"topk"`` / ``"topk:<fraction>"`` (upload-only magnitude
        sparsification) trade accuracy for bytes.  Ignored when
        ``transport="direct"``.
    bandwidth_limit:
        Per-round uplink byte budget per client; ``0`` (default) is
        unlimited.  Each client's effective budget is the limit scaled by a
        deterministic per-client multiplier (drawn from the run seed), so
        some clients are structurally slow — the constrained-device
        straggler scenario.  Requires ``transport="loopback"`` and
        ``mode="sync"`` (the event-driven modes model slow uplinks through
        ``device_profile`` link rates instead; a per-round budget is a
        synchronous-cohort concept).
    drop_stragglers:
        What happens to an upload frame over its client's budget: ``True``
        drops it (the update never aggregates; the download was still
        charged), ``False`` (default) defers it to the next round's
        aggregation (deferred frames expire at task boundaries).  A round
        that would lose every upload always keeps the smallest frame.
    mode:
        The temporal plane's aggregation regime
        (:mod:`repro.federated.async_plane`): ``"sync"`` (default) is the
        synchronous round loop (with homogeneous instantaneous device
        profiles, bit-for-bit identical to the untimed engine); ``"async"``
        applies each client's update the moment it arrives on the simulated
        clock, FedAsync-style, with polynomial staleness decay;
        ``"buffered"`` aggregates every ``buffer_size`` arrivals,
        FedBuff-style, with staleness-scaled FedAvg weights.  All three
        train the same total number of local updates per task
        (``rounds_per_task * clients_per_round``), so regimes are compared
        at equal compute.
    device_profile:
        Named system-heterogeneity tier (:data:`repro.federated.clock.
        PROFILE_TIERS`): ``"instant"`` (default; zero simulated cost, always
        online — the temporal no-op), ``"homogeneous"`` (identical finite
        device speeds), or the heterogeneity ladder ``"mild"`` /
        ``"moderate"`` / ``"extreme"`` (increasingly spread compute speeds
        and link rates, decreasing availability, per-task churn).  Every
        client's profile and its online/offline trace derive from
        ``spawn_rng(seed, "device", client_id, ...)``.
    buffer_size:
        Buffered mode's K: aggregate whenever K arrivals have accumulated
        (a partial buffer left at the end of a task still flushes).  ``0``
        (default) means ``clients_per_round`` — the synchronous cohort size.
        Ignored outside ``mode="buffered"``.
    staleness_decay:
        Exponent ``a`` of the polynomial staleness discount
        ``(1 + staleness)^(-a)`` applied to async arrivals and buffered
        flush weights (staleness = global-model versions between a client's
        dispatch and its arrival).  ``0`` disables the discount.  Ignored in
        sync mode.
    sim_time_limit:
        Simulated-seconds budget for the whole run: once the simulated clock
        reaches it, no further work is dispatched (rounds still pending in
        sync mode are skipped; async work already in flight still arrives).
        ``0`` (default) is unlimited.  With ``device_profile="instant"`` the
        clock never advances, so a limit only bites under a finite-cost
        profile.
    faults:
        The fault plane's schedule (:class:`repro.federated.faults.FaultSpec`):
        per-round client-crash probability, per-attempt upload loss/corruption
        probabilities, per-round worker-kill probability, and a periodic
        simulated server restart.  The default all-zero spec never constructs
        an injector — the zero-fault path is bit-for-bit identical to a build
        without the fault plane.  Frame faults (loss/corruption) require
        ``transport="loopback"``; there is no wire to fault on ``"direct"``.
    retries:
        Upload retry budget of the loopback transport: a lost or corrupt
        frame is retransmitted up to this many times (``retries + 1`` total
        attempts) before the update falls to the drop/defer straggler rules.
        Every attempt's bytes are charged to the ledger; the backoff waits
        between attempts are charged to the straggler barrier / event clock.
    retry_backoff:
        Simulated seconds of the first retry wait; each further retry doubles
        it (exponential backoff).  ``0`` retries instantly.
    checkpoint_every:
        Sync mode: additionally snapshot the run every N rounds within a task
        (``0``, the default, checkpoints only at task boundaries).  Requires
        ``checkpoint_dir``.  Task-boundary checkpoints are written in every
        mode whenever ``checkpoint_dir`` is set.
    checkpoint_dir:
        Directory for crash-safe snapshots (:mod:`repro.federated.checkpoint`).
        Empty (default) disables checkpointing entirely — and the simulation
        then performs zero extra work, preserving bit-for-bit identity.
    resume:
        Start from the latest checkpoint in ``checkpoint_dir`` instead of from
        scratch.  The checkpoint's config fingerprint must match (checkpoint
        bookkeeping knobs excluded); a fresh directory silently starts from
        scratch, so the same command line works for the first launch and
        every relaunch after a crash.
    checkpoint_keep:
        Retention bound on ``ckpt-*.ckpt`` files: after every checkpoint
        write, all but the newest K are pruned (oldest resume positions
        first, each removal atomic).  ``0`` (default) keeps every checkpoint
        — the historical unbounded behaviour.  The serving plane's registry
        applies the same last-K policy to published versions.
    serve:
        Stand up the serving plane alongside training: an
        :class:`~repro.serving.engine.InferenceEngine` plus
        :class:`~repro.serving.service.ServingFrontEnd` (exposed as
        ``simulation.serving``) serve predictions from the registry while the
        run publishes into it, hot-swapping at every publish.  Requires
        ``registry_dir``.  Purely observational: trained numbers are
        bit-for-bit identical with serving on or off.
    publish_every:
        Sync mode: additionally publish a registry version every N rounds
        within a task (``0``, the default, publishes only at task
        boundaries).  Requires ``registry_dir``.  Task-boundary versions are
        published in every mode whenever ``registry_dir`` is set.
    registry_dir:
        Directory of the serving plane's model registry
        (:mod:`repro.serving.registry`).  Empty (default) disables publishing
        entirely — the simulation then performs zero extra work, preserving
        bit-for-bit identity.
    serve_codec:
        Wire codec published versions are compressed with — the same specs as
        ``codec`` (``"identity"`` / ``"delta"`` lossless, ``"quantize8"`` /
        ``"quantize16"`` / ``"topk[:f]"`` lossy).  A version stores its
        *encoded* form, so every consumer of a version decodes the same
        arrays deterministically.
    virtual_clients:
        Client identity becomes a lazy *recipe* instead of an eager object
        (:mod:`repro.federated.virtual`): shards are materialized only for
        the round's selected cohort (O(clients_per_round) memory) and
        released afterwards.  With ``population=0`` the population is still
        driven by ``increment`` and every materialized shard is bit-for-bit
        identical to the eager path for the same seed — the whole run
        reproduces the eager run exactly.  Default off (eager shards).
    population:
        ``0`` (default): the client population is whatever ``increment``
        schedules.  A positive N switches to *fleet mode*: N virtual clients
        (requires ``virtual_clients=True``), every one of them eligible for
        every task, each drawing a per-task quantity-shift shard recipe from
        ``spawn_rng(seed, "vshard", task_id, client_id)``.  Selection,
        availability, churn and crash draws all stay O(cohort) per round, so
        ``population=100_000`` costs the same memory as ``population=1_000``.
    reduce_backend:
        How a cohort's updates aggregate (:mod:`repro.federated.aggregation`):
        ``"flat"`` (default) is the star — one server-side FedAvg, bit-for-bit
        the historical path; ``"tree"`` reduces through a fan-out tree of edge
        aggregators whose weighted partial sums ride codec'd wire frames to
        their parents (edge→root bytes measured in the ledger, CRC + bounded
        retries on every hop).  Tree and flat agree to float tolerance, not
        bit-for-bit: flat normalizes weights before accumulating, the tree
        sums partials and divides once at the root.  Requires
        ``transport="loopback"`` (edge hops need a wire to ride).
    tree_fanout:
        Children per aggregator node of the reduce tree (≥ 2).  A cohort no
        larger than the fan-out degenerates to a single root reduce with zero
        edge frames.  Ignored when ``reduce_backend="flat"``.
    """

    increment: ClientIncrementConfig = field(default_factory=ClientIncrementConfig)
    clients_per_round: int = 5
    rounds_per_task: int = 3
    local: LocalTrainingConfig = field(default_factory=LocalTrainingConfig)
    partition_concentration: float = 1.0
    eval_batch_size: int = 64
    seed: int = 0
    executor: str = "serial"
    num_workers: int = 0
    shard_cache: bool = True
    dtype: str = "float64"
    kernel: str = "eager"
    plan_optimize: bool = True
    eval_executor: str = "serial"
    eval_every: int = 0
    transport: str = "loopback"
    codec: str = "identity"
    bandwidth_limit: int = 0
    drop_stragglers: bool = False
    mode: str = "sync"
    device_profile: str = "instant"
    buffer_size: int = 0
    staleness_decay: float = 0.5
    sim_time_limit: float = 0.0
    faults: FaultSpec = field(default_factory=FaultSpec)
    retries: int = 2
    retry_backoff: float = 0.5
    checkpoint_every: int = 0
    checkpoint_dir: str = ""
    resume: bool = False
    checkpoint_keep: int = 0
    serve: bool = False
    publish_every: int = 0
    registry_dir: str = ""
    serve_codec: str = "identity"
    virtual_clients: bool = False
    population: int = 0
    reduce_backend: str = "flat"
    tree_fanout: int = 2

    def __post_init__(self) -> None:
        if self.clients_per_round < 1:
            raise ValueError("clients_per_round must be at least 1")
        if self.rounds_per_task < 1:
            raise ValueError("rounds_per_task must be at least 1")
        if self.partition_concentration <= 0:
            raise ValueError("partition_concentration must be positive")
        if self.executor not in ("serial", "parallel"):
            raise ValueError(f"executor must be 'serial' or 'parallel', got {self.executor!r}")
        if self.num_workers < 0:
            raise ValueError("num_workers must be non-negative")
        if self.kernel not in KERNELS:
            raise ValueError(
                f"kernel must be one of {KERNELS}, got {self.kernel!r}"
            )
        if self.kernel == "batched" and self.executor != "serial":
            raise ValueError(
                "kernel='batched' requires executor='serial': lockstep "
                "vectorizes the round's cohort itself, so a worker pool "
                "underneath it would shard the very groups it batches"
            )
        if self.eval_executor not in ("serial", "parallel"):
            raise ValueError(
                f"eval_executor must be 'serial' or 'parallel', got {self.eval_executor!r}"
            )
        if self.eval_every < 0:
            raise ValueError("eval_every must be non-negative (0 disables mid-task evaluation)")
        if self.transport not in ("direct", "loopback"):
            raise ValueError(
                f"transport must be 'direct' or 'loopback', got {self.transport!r}"
            )
        build_codec(self.codec)  # raises ValueError on an unknown codec spec
        if self.bandwidth_limit < 0:
            raise ValueError("bandwidth_limit must be non-negative (0 means unlimited)")
        if self.bandwidth_limit > 0 and self.transport != "loopback":
            raise ValueError(
                "bandwidth_limit requires transport='loopback' (the direct "
                "transport never builds the frames a budget would apply to)"
            )
        if self.bandwidth_limit > 0 and self.mode != "sync":
            raise ValueError(
                "bandwidth_limit requires mode='sync': the event-driven modes "
                "collect one upload per arrival, so the transport's keep-one "
                "rule would always deliver the sole over-budget frame and the "
                "budget would be silently inert (model slow uplinks there with "
                "device_profile link rates instead)"
            )
        if self.mode not in ("sync", "async", "buffered"):
            raise ValueError(
                f"mode must be 'sync', 'async' or 'buffered', got {self.mode!r}"
            )
        if self.device_profile not in PROFILE_TIERS:
            raise ValueError(
                f"device_profile must be one of {sorted(PROFILE_TIERS)}, "
                f"got {self.device_profile!r}"
            )
        if self.buffer_size < 0:
            raise ValueError(
                "buffer_size must be non-negative (0 means clients_per_round)"
            )
        if self.staleness_decay < 0:
            raise ValueError("staleness_decay must be non-negative (0 disables decay)")
        if self.sim_time_limit < 0:
            raise ValueError("sim_time_limit must be non-negative (0 means unlimited)")
        if not isinstance(self.faults, FaultSpec):
            raise ValueError(f"faults must be a FaultSpec, got {type(self.faults).__name__}")
        if (
            self.faults.upload_loss_rate > 0.0 or self.faults.upload_corruption_rate > 0.0
        ) and self.transport != "loopback":
            raise ValueError(
                "upload loss/corruption faults require transport='loopback' "
                "(the direct transport never builds the frames a fault would hit)"
            )
        if self.retries < 0:
            raise ValueError("retries must be non-negative (0 means a single attempt)")
        if self.retry_backoff < 0:
            raise ValueError("retry_backoff must be non-negative (0 retries instantly)")
        if self.checkpoint_every < 0:
            raise ValueError(
                "checkpoint_every must be non-negative (0 checkpoints only at task boundaries)"
            )
        if self.checkpoint_every > 0 and not self.checkpoint_dir:
            raise ValueError("checkpoint_every requires checkpoint_dir")
        if self.checkpoint_every > 0 and self.mode != "sync":
            raise ValueError(
                "checkpoint_every requires mode='sync' (the event-driven modes "
                "have no mid-task round boundary to snapshot at; task-boundary "
                "checkpoints still work in every mode via checkpoint_dir)"
            )
        if self.resume and not self.checkpoint_dir:
            raise ValueError("resume requires checkpoint_dir")
        if self.checkpoint_keep < 0:
            raise ValueError(
                "checkpoint_keep must be non-negative (0 keeps every checkpoint)"
            )
        if self.publish_every < 0:
            raise ValueError(
                "publish_every must be non-negative (0 publishes only at task boundaries)"
            )
        if self.publish_every > 0 and not self.registry_dir:
            raise ValueError("publish_every requires registry_dir")
        if self.publish_every > 0 and self.mode != "sync":
            raise ValueError(
                "publish_every requires mode='sync' (the event-driven modes "
                "have no mid-task round boundary to publish at; task-boundary "
                "versions are still published in every mode via registry_dir)"
            )
        if self.serve and not self.registry_dir:
            raise ValueError(
                "serve requires registry_dir (the front end serves registry versions)"
            )
        build_codec(self.serve_codec)  # raises ValueError on an unknown codec spec
        if self.population < 0:
            raise ValueError(
                "population must be non-negative (0 means the increment "
                "schedule drives the population)"
            )
        if self.population > 0 and not self.virtual_clients:
            raise ValueError(
                "population > 0 requires virtual_clients=True: a fleet-scale "
                "population only exists as lazy recipes, never as eager shards"
            )
        if self.reduce_backend not in ("flat", "tree"):
            raise ValueError(
                f"reduce_backend must be 'flat' or 'tree', got {self.reduce_backend!r}"
            )
        if self.reduce_backend == "tree" and self.transport != "loopback":
            raise ValueError(
                "reduce_backend='tree' requires transport='loopback' (edge "
                "aggregators ship their partial reduces as wire frames)"
            )
        if self.tree_fanout < 2:
            raise ValueError("tree_fanout must be at least 2")
        try:
            resolved = np.dtype(self.dtype)
        except TypeError as error:
            raise ValueError(f"dtype must be 'float64' or 'float32', got {self.dtype!r}") from error
        if resolved not in (np.dtype(np.float64), np.dtype(np.float32)):
            raise ValueError(f"dtype must be 'float64' or 'float32', got {self.dtype!r}")


__all__ = ["FederatedConfig"]
