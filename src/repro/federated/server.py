"""Central server: holds the global model state and performs aggregation."""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional, Sequence

import numpy as np

from repro.federated.aggregation import FlatReduceBackend, ReduceBackend, blend_states
from repro.federated.communication import ClientUpdate, CommunicationLedger
from repro.nn.module import Module
from repro.nn.serialization import (
    clone_state_dict,
    readonly_payload_view,
    readonly_state_view,
    serialize_state,
)


class BroadcastHandle:
    """One round's broadcast, shared by every selected client without copies.

    ``state`` is a write-protected, no-copy view of the canonical global state
    (see :func:`repro.nn.serialization.readonly_state_view`); handing the same
    handle to all ``M`` clients of a round therefore costs zero array copies,
    where the legacy :meth:`FederatedServer.broadcast` deep-copied the whole
    model once per client.  :meth:`serialized` pickles the state and payload
    at most once per round, so parallel executors ship a single serialization
    to their workers instead of re-pickling per client.
    """

    __slots__ = ("state", "payload", "_blob")

    def __init__(self, state: Dict[str, np.ndarray], payload: Dict[str, Any]) -> None:
        self.state = readonly_state_view(state)
        self.payload = readonly_payload_view(payload)
        self._blob: Optional[bytes] = None

    def serialized(self) -> bytes:
        """The pickled ``(state, payload)`` pair, computed lazily exactly once."""
        if self._blob is None:
            self._blob = serialize_state(self.state, self.payload)
        return self._blob


class FederatedServer:
    """The global coordinator ``M_G`` of paper Algorithm 1.

    The server owns the canonical global model state, broadcasts it (plus any
    method-specific payload such as clustered global prompts) to selected
    clients, aggregates their updates with FedAvg and tracks communication
    volume.
    """

    def __init__(self, model: Module, reduce_backend: Optional[ReduceBackend] = None) -> None:
        self.model = model
        self.global_state: Dict[str, np.ndarray] = model.state_dict()
        self.broadcast_payload: Dict[str, Any] = {}
        self.ledger = CommunicationLedger()
        #: Aggregation topology (:mod:`repro.federated.aggregation`): the
        #: default flat backend is one server-side FedAvg, bit-for-bit the
        #: historical path; a tree backend reduces through edge aggregators
        #: whose partials ride measured wire frames.
        self.reduce_backend: ReduceBackend = (
            reduce_backend if reduce_backend is not None else FlatReduceBackend()
        )
        #: When True (standalone server use), :meth:`aggregate` records an
        #: estimate-based ledger round itself.  A transport
        #: (:mod:`repro.federated.transport`) owns the ledger instead — it
        #: records measured wire frames per direction — and switches this off.
        self.ledger_autorecord = True
        self.round_counter = 0
        self._broadcast_handle: Optional[BroadcastHandle] = None
        self._aggregation_scale: Optional[Sequence[float]] = None

    def broadcast(self) -> Dict[str, np.ndarray]:
        """Return a copy of the global state for a client to load.

        Legacy per-client path; the simulation loop now uses
        :meth:`broadcast_view`, which shares one read-only view across all
        clients of a round instead of deep-copying per client.
        """
        return clone_state_dict(self.global_state)

    def broadcast_view(self) -> BroadcastHandle:
        """Return the round's shared zero-copy broadcast handle.

        The handle is cached until the global state or payload changes, so
        repeated calls within one round are free and its cached serialization
        is reused across all workers of a parallel round.  ``aggregate`` and
        ``set_broadcast_payload`` invalidate it themselves; callers that let a
        method hook mutate ``global_state`` directly must call
        :meth:`invalidate_broadcast` afterwards (the simulation loop does,
        after every server-facing hook), or the cached handle would keep
        serving the pre-hook state.
        """
        if self._broadcast_handle is None:
            self._broadcast_handle = BroadcastHandle(self.global_state, self.broadcast_payload)
        return self._broadcast_handle

    def invalidate_broadcast(self) -> None:
        """Drop the cached broadcast handle (and its serialization)."""
        self._broadcast_handle = None

    def aggregate(self, updates: List[ClientUpdate]) -> Dict[str, np.ndarray]:
        """FedAvg the updates into a new global state (weighted by |D_m|).

        When an :meth:`aggregation_scale` scope is active, each update's
        sample weight is additionally multiplied by its scale factor — the
        temporal plane's staleness-aware buffered flush.  Outside such a
        scope this is plain FedAvg, bit-for-bit.
        """
        if not updates:
            raise ValueError("cannot aggregate zero client updates")
        scale = self._aggregation_scale
        if scale is not None and len(scale) != len(updates):
            raise ValueError(
                f"aggregation_scale has {len(scale)} factors but {len(updates)} "
                "updates arrived; the scope must cover exactly the updates it "
                "was declared for"
            )
        new_state = self.reduce_backend.reduce(
            [update.state_dict for update in updates],
            [update.num_samples for update in updates],
            scale=scale,
            coordinate=self.round_counter,
        )
        self._aggregation_scale = None  # a scope covers exactly one aggregation
        self.global_state = new_state
        self.model.load_state_dict(new_state)
        if self.ledger_autorecord:
            self.ledger.record_round(updates, new_state, self.broadcast_payload)
        self.round_counter += 1
        self._broadcast_handle = None
        return new_state

    @contextmanager
    def aggregation_scale(self, scale: Sequence[float]) -> Iterator[None]:
        """Scope a per-update weight multiplier over the next :meth:`aggregate`.

        The temporal plane staleness-weights a buffered flush *through* the
        method's own ``aggregate`` hook (which may do arbitrary payload work
        around ``server.aggregate``), so the scale travels on the server
        instead of every method signature: the first ``aggregate`` inside the
        scope consumes it, and it never leaks past the ``with`` block.
        """
        self._aggregation_scale = list(scale)
        try:
            yield
        finally:
            self._aggregation_scale = None

    def apply_update(self, update: ClientUpdate, mixing: float) -> Dict[str, np.ndarray]:
        """FedAsync-style per-arrival application: ``x <- (1-m) x + m x_k``.

        ``mixing`` is the staleness-discounted mixing rate in ``(0, 1]``; the
        blend itself is :func:`repro.federated.aggregation.blend_states`.
        The standalone-server counterpart of
        :meth:`FederatedMethod.apply_async_update` (which methods route
        through their own ``aggregate`` hook so payload machinery sees the
        arrival).  Counts as one global-model version (``round_counter``),
        which is exactly what the temporal plane's staleness bookkeeping
        measures.
        """
        new_state = blend_states(self.global_state, update.state_dict, mixing)
        self.global_state = new_state
        self.model.load_state_dict(new_state)
        self.round_counter += 1
        self._broadcast_handle = None
        return new_state

    def load_into(self, model: Module) -> None:
        """Load the current global state into an arbitrary model instance."""
        model.load_state_dict(self.global_state)

    def set_broadcast_payload(self, payload: Dict[str, Any]) -> None:
        """Attach method-specific broadcast content (e.g. RefFiL's global prompts)."""
        self.broadcast_payload = payload
        self._broadcast_handle = None


__all__ = ["FederatedServer", "BroadcastHandle"]
