"""Central server: holds the global model state and performs aggregation."""

from __future__ import annotations

from typing import Any, Dict, List, Optional

import numpy as np

from repro.federated.aggregation import fedavg
from repro.federated.communication import ClientUpdate, CommunicationLedger
from repro.nn.module import Module
from repro.nn.serialization import clone_state_dict


class FederatedServer:
    """The global coordinator ``M_G`` of paper Algorithm 1.

    The server owns the canonical global model state, broadcasts it (plus any
    method-specific payload such as clustered global prompts) to selected
    clients, aggregates their updates with FedAvg and tracks communication
    volume.
    """

    def __init__(self, model: Module) -> None:
        self.model = model
        self.global_state: Dict[str, np.ndarray] = model.state_dict()
        self.broadcast_payload: Dict[str, Any] = {}
        self.ledger = CommunicationLedger()
        self.round_counter = 0

    def broadcast(self) -> Dict[str, np.ndarray]:
        """Return a copy of the global state for a client to load."""
        return clone_state_dict(self.global_state)

    def aggregate(self, updates: List[ClientUpdate]) -> Dict[str, np.ndarray]:
        """FedAvg the updates into a new global state (weighted by |D_m|)."""
        if not updates:
            raise ValueError("cannot aggregate zero client updates")
        new_state = fedavg(
            [update.state_dict for update in updates],
            [update.num_samples for update in updates],
        )
        self.global_state = new_state
        self.model.load_state_dict(new_state)
        self.ledger.record_round(updates, new_state, self.broadcast_payload)
        self.round_counter += 1
        return new_state

    def load_into(self, model: Module) -> None:
        """Load the current global state into an arbitrary model instance."""
        model.load_state_dict(self.global_state)

    def set_broadcast_payload(self, payload: Dict[str, Any]) -> None:
        """Attach method-specific broadcast content (e.g. RefFiL's global prompts)."""
        self.broadcast_payload = payload


__all__ = ["FederatedServer"]
