"""Client-to-server messages and communication accounting.

RefFiL's pitch includes being deployable on "privacy-sensitive and
resource-constrained devices", so the simulation tracks how many bytes each
method ships per round: model weights (all methods) plus the averaged local
prompt groups (RefFiL) or prompt pools (the dagger baselines).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

import numpy as np


@dataclass
class ClientUpdate:
    """Everything a selected client uploads at the end of a round.

    Attributes
    ----------
    client_id:
        The uploading client.
    state_dict:
        The locally trained model parameters.
    num_samples:
        Size of the client's local training set (the FedAvg weight).
    payload:
        Method-specific extras; RefFiL puts its per-class averaged local
        prompt group (``LPG_m``) here, baselines leave it empty.
    train_loss:
        Mean local training loss (for logging / convergence monitoring).
    metrics:
        Optional per-component loss breakdown (e.g. RefFiL's ``loss_ce`` /
        ``loss_gpl`` / ``loss_dpcl`` terms of Eq. 14, keyed for the Table VII
        ablation).  Logging-only: not counted as communication volume.
    """

    client_id: int
    state_dict: Dict[str, np.ndarray]
    num_samples: int
    payload: Dict[str, Any] = field(default_factory=dict)
    train_loss: float = 0.0
    metrics: Dict[str, float] = field(default_factory=dict)

    def upload_bytes(self) -> int:
        """Approximate upload size of this update in bytes."""
        total = sum(np.asarray(value).nbytes for value in self.state_dict.values())
        total += _payload_bytes(self.payload)
        return total


def _payload_bytes(payload: Any) -> int:
    if isinstance(payload, np.ndarray):
        return payload.nbytes
    if isinstance(payload, dict):
        return sum(_payload_bytes(value) for value in payload.values())
    if isinstance(payload, (list, tuple)):
        return sum(_payload_bytes(value) for value in payload)
    if isinstance(payload, (int, float, bool)):
        return 8
    if isinstance(payload, str):
        return len(payload.encode())
    return 0


@dataclass
class CommunicationLedger:
    """Accumulates per-round communication volume for a whole run."""

    uploaded_bytes: int = 0
    broadcast_bytes: int = 0
    rounds: int = 0
    per_round: List[Dict[str, int]] = field(default_factory=list)

    def record_round(self, updates: List[ClientUpdate], broadcast_state: Dict[str, np.ndarray],
                     broadcast_payload: Optional[Dict[str, Any]] = None) -> None:
        """Account one communication round (uploads from clients + broadcast to them)."""
        upload = sum(update.upload_bytes() for update in updates)
        broadcast_one = sum(np.asarray(v).nbytes for v in broadcast_state.values())
        broadcast_one += _payload_bytes(broadcast_payload or {})
        broadcast = broadcast_one * max(len(updates), 1)
        self.uploaded_bytes += upload
        self.broadcast_bytes += broadcast
        self.rounds += 1
        self.per_round.append({"upload": upload, "broadcast": broadcast})

    @property
    def total_bytes(self) -> int:
        return self.uploaded_bytes + self.broadcast_bytes

    def mean_upload_per_round(self) -> float:
        return self.uploaded_bytes / self.rounds if self.rounds else 0.0


__all__ = ["ClientUpdate", "CommunicationLedger"]
