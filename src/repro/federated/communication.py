"""Wire-format primitives of the communication plane: frames, codecs, ledger.

RefFiL's pitch includes being deployable on "privacy-sensitive and
resource-constrained devices", so communication volume is a first-class
quantity here — not an ``nbytes`` estimate but the length of the encoded
frame that would actually cross the wire.  The pieces fit together like
this (the transports in :mod:`repro.federated.transport` drive them):

* a :class:`WireFrame` is one encoded message (server→client broadcast or
  client→server upload); ``num_bytes`` is its measured size;
* an :class:`ArrayCodec` turns a flat ``name -> ndarray`` dict into the
  frame body and back — ``identity`` (raw pickle, today's semantics),
  ``delta`` (sparse lossless diff against a reference), ``quantize8`` /
  ``quantize16`` (uniform per-tensor quantization) and ``topk``
  (magnitude sparsification of the diff, upload-only);
* a :class:`PayloadCodec` flattens a method's structured payload (e.g.
  RefFiL's per-class prompt groups) into named arrays so the array codec
  applies to prompts exactly as it does to model weights, instead of the
  payload riding as an opaque pickled dict;
* the :class:`CommunicationLedger` accumulates per-round, per-client,
  per-direction measured frame sizes (:class:`RoundCommRecord`), plus the
  legacy estimate API for transports that never build frames.

Lossless codecs (``identity``, ``delta``) round-trip every array
bit-exactly — the property-test suite enforces it over all dtypes and
shapes — so simulations run through them produce accuracy matrices
identical to runs without any wire format at all.
"""

from __future__ import annotations

import pickle
import zlib
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

# --------------------------------------------------------------------------- #
# Client update (what a client uploads each round)
# --------------------------------------------------------------------------- #


@dataclass
class ClientUpdate:
    """Everything a selected client uploads at the end of a round.

    Attributes
    ----------
    client_id:
        The uploading client.
    state_dict:
        The locally trained model parameters.
    num_samples:
        Size of the client's local training set (the FedAvg weight).
    payload:
        Method-specific extras; RefFiL puts its per-class averaged local
        prompt group (``LPG_m``) here, baselines leave it empty.
    train_loss:
        Mean local training loss (for logging / convergence monitoring).
    metrics:
        Optional per-component loss breakdown (e.g. RefFiL's ``loss_ce`` /
        ``loss_gpl`` / ``loss_dpcl`` terms of Eq. 14, keyed for the Table VII
        ablation).  Logging-only: not counted as communication volume.
    """

    client_id: int
    state_dict: Dict[str, np.ndarray]
    num_samples: int
    payload: Dict[str, Any] = field(default_factory=dict)
    train_loss: float = 0.0
    metrics: Dict[str, float] = field(default_factory=dict)

    def upload_bytes(self) -> int:
        """Approximate (``nbytes``) upload size; see the ledger for measured sizes."""
        total = sum(np.asarray(value).nbytes for value in self.state_dict.values())
        total += _payload_bytes(self.payload)
        return total


def _payload_bytes(payload: Any) -> int:
    if isinstance(payload, np.ndarray):
        return payload.nbytes
    if isinstance(payload, dict):
        return sum(_payload_bytes(value) for value in payload.values())
    if isinstance(payload, (list, tuple)):
        return sum(_payload_bytes(value) for value in payload)
    if isinstance(payload, (int, float, bool)):
        return 8
    if isinstance(payload, str):
        return len(payload.encode())
    return 0


# --------------------------------------------------------------------------- #
# Wire frames
# --------------------------------------------------------------------------- #


@dataclass(frozen=True)
class WireFrame:
    """One encoded message of the communication plane.

    ``body`` is the serialized payload as it would cross the wire; the
    ledger's numbers are ``len(body)`` — measured, not estimated.  ``kind``
    and ``codec`` are bookkeeping for the simulation side and are not
    counted (a real protocol would fold them into a fixed-size header, which
    is also where ``checksum`` — the CRC32 of ``body`` used by the fault
    plane's corruption detection — would live).
    """

    kind: str  # "broadcast" | "upload"
    codec: str
    body: bytes
    checksum: Optional[int] = None

    @property
    def num_bytes(self) -> int:
        return len(self.body)

    def checksum_ok(self) -> bool:
        """True when the body matches its checksum (or no checksum was recorded)."""
        return self.checksum is None or zlib.crc32(self.body) == self.checksum


def encode_frame(
    kind: str,
    codec: "ArrayCodec",
    arrays: Dict[str, np.ndarray],
    meta: Any,
    reference: Optional[Dict[str, np.ndarray]] = None,
) -> WireFrame:
    """Encode a flat array dict (plus picklable metadata) into one frame."""
    plan = codec.encode(arrays, reference)
    body = pickle.dumps((meta, plan), protocol=pickle.HIGHEST_PROTOCOL)
    return WireFrame(kind=kind, codec=codec.name, body=body, checksum=zlib.crc32(body))


def decode_frame(
    frame: WireFrame,
    codec: "ArrayCodec",
    reference: Optional[Dict[str, np.ndarray]] = None,
) -> Tuple[Dict[str, np.ndarray], Any]:
    """Inverse of :func:`encode_frame`: returns ``(arrays, meta)``."""
    meta, plan = pickle.loads(frame.body)
    return codec.decode(plan, reference), meta


# --------------------------------------------------------------------------- #
# Array codecs
# --------------------------------------------------------------------------- #


class ArrayCodec:
    """Strategy turning a flat ``name -> ndarray`` dict into frame bodies.

    ``encode`` produces a picklable *plan* (the frame body is its pickle);
    ``decode`` inverts it.  ``reference`` is the receiver's copy of the last
    message it acknowledged — codecs with ``uses_reference`` encode against
    it (and the decoder must be handed the *same* reference).  Codecs with
    ``lossless`` round-trip bit-exactly; lossy codecs preserve shape and
    dtype but not values.  ``broadcast_safe`` marks codecs usable on the
    server→client direction: sparsifying a *full model broadcast* against
    nothing would destroy it, so ``topk`` is upload-only and transports fall
    back to ``identity`` frames downlink.
    """

    name: str = "abstract"
    lossless: bool = False
    uses_reference: bool = False
    broadcast_safe: bool = True

    def encode(
        self, arrays: Dict[str, np.ndarray], reference: Optional[Dict[str, np.ndarray]] = None
    ) -> Any:
        raise NotImplementedError

    def decode(
        self, plan: Any, reference: Optional[Dict[str, np.ndarray]] = None
    ) -> Dict[str, np.ndarray]:
        raise NotImplementedError


class IdentityCodec(ArrayCodec):
    """Raw pickle of the arrays — today's semantics, bit-exact by construction."""

    name = "identity"
    lossless = True

    def encode(self, arrays, reference=None):
        return {key: np.asarray(value) for key, value in arrays.items()}

    def decode(self, plan, reference=None):
        return {key: np.asarray(value) for key, value in plan.items()}


def _compatible(reference: Optional[Dict[str, np.ndarray]], key: str, value: np.ndarray):
    """The reference array a diff-style codec may encode ``key`` against, if any."""
    if reference is None:
        return None
    base = reference.get(key)
    if base is None:
        return None
    base = np.asarray(base)
    if base.shape != value.shape or base.dtype != value.dtype:
        return None
    return base


def _index_dtype(size: int) -> np.dtype:
    return np.dtype(np.int32) if size < 2**31 else np.dtype(np.int64)


class DeltaCodec(ArrayCodec):
    """Lossless sparse diff against the last acknowledged message.

    Per array: ``same`` when nothing changed, a ``(indices, values)`` pair of
    the changed positions when few changed, and a dense fallback when the
    reference is missing/incompatible or when more than half the elements
    changed (indices would cost more than the array).  Changed values are
    shipped verbatim — NaNs compare unequal to themselves, so they always
    ship and the round-trip stays bit-exact.
    """

    name = "delta"
    lossless = True
    uses_reference = True
    _DENSE_FRACTION = 0.5

    def encode(self, arrays, reference=None):
        plan: Dict[str, tuple] = {}
        for key, value in arrays.items():
            value = np.asarray(value)
            base = _compatible(reference, key, value)
            if base is None or value.size == 0:
                plan[key] = ("dense", value)
                continue
            flat_new = value.reshape(-1)
            flat_old = base.reshape(-1)
            changed = np.flatnonzero(~(flat_new == flat_old))
            if changed.size == 0:
                plan[key] = ("same",)
            elif changed.size > self._DENSE_FRACTION * value.size:
                plan[key] = ("dense", value)
            else:
                indices = changed.astype(_index_dtype(value.size))
                plan[key] = ("sparse", value.shape, indices, flat_new[changed].copy())
        return plan

    def decode(self, plan, reference=None):
        arrays: Dict[str, np.ndarray] = {}
        for key, record in plan.items():
            mode = record[0]
            if mode == "dense":
                arrays[key] = np.asarray(record[1])
            elif mode == "same":
                if reference is None or key not in reference:
                    raise ValueError(
                        f"delta frame marks {key!r} unchanged but the decoder has no reference"
                    )
                arrays[key] = np.array(reference[key], copy=True)
            else:  # sparse
                _, shape, indices, values = record
                if reference is None or key not in reference:
                    raise ValueError(
                        f"delta frame is sparse for {key!r} but the decoder has no reference"
                    )
                flat = np.array(reference[key], copy=True).reshape(-1)
                flat[indices] = values
                arrays[key] = flat.reshape(shape)
        return arrays


class QuantizeCodec(ArrayCodec):
    """Uniform per-tensor quantization of float arrays to ``bits``-bit integers.

    Each float array ships as ``(lo, scale, integer codes)``; non-float
    arrays (labels, counters, masks) and arrays containing non-finite values
    ship dense — quantizing a NaN/inf range is meaningless.  Decoding maps
    codes back to ``lo + code * scale`` in the original dtype, so shapes and
    dtypes are preserved while values lose precision (the accuracy delta the
    bench reports).
    """

    lossless = False

    def __init__(self, bits: int) -> None:
        if bits not in (8, 16):
            raise ValueError(f"quantization supports 8 or 16 bits, got {bits}")
        self.bits = bits
        self.name = f"quantize{bits}"
        self._qdtype = np.uint8 if bits == 8 else np.uint16
        self._levels = (1 << bits) - 1

    def encode(self, arrays, reference=None):
        plan: Dict[str, tuple] = {}
        for key, value in arrays.items():
            value = np.asarray(value)
            if value.dtype.kind != "f" or value.size == 0 or not np.isfinite(value).all():
                plan[key] = ("dense", value)
                continue
            lo = float(value.min())
            hi = float(value.max())
            if hi == lo:
                plan[key] = ("const", str(value.dtype), value.shape, lo)
                continue
            scale = (hi - lo) / self._levels
            codes = np.rint((value - lo) / scale).astype(self._qdtype)
            plan[key] = ("q", str(value.dtype), value.shape, lo, scale, codes)
        return plan

    def decode(self, plan, reference=None):
        arrays: Dict[str, np.ndarray] = {}
        for key, record in plan.items():
            mode = record[0]
            if mode == "dense":
                arrays[key] = np.asarray(record[1])
            elif mode == "const":
                _, dtype, shape, lo = record
                arrays[key] = np.full(shape, lo, dtype=np.dtype(dtype))
            else:
                _, dtype, shape, lo, scale, codes = record
                arrays[key] = (lo + codes.astype(np.float64) * scale).astype(
                    np.dtype(dtype)
                ).reshape(shape)
        return arrays


class TopKCodec(ArrayCodec):
    """Magnitude sparsification of the diff against the reference (upload-only).

    Keeps the ``fraction`` of positions whose change from the reference is
    largest in magnitude and ships their *exact new values*; the receiver
    keeps its reference values everywhere else.  Without a reference (or for
    non-float arrays) the array ships dense — sparsifying a message the
    receiver has no base for would destroy it, which is also why the codec
    is not ``broadcast_safe``: transports send full ``identity`` frames
    downlink and sparsify only the uplink, as gradient-sparsification
    systems do.
    """

    name = "topk"
    lossless = False
    uses_reference = True
    broadcast_safe = False

    def __init__(self, fraction: float = 0.1) -> None:
        if not 0.0 < fraction <= 1.0:
            raise ValueError(f"topk fraction must be in (0, 1], got {fraction}")
        self.fraction = fraction
        self.name = "topk" if fraction == 0.1 else f"topk:{fraction:g}"

    def encode(self, arrays, reference=None):
        plan: Dict[str, tuple] = {}
        for key, value in arrays.items():
            value = np.asarray(value)
            base = _compatible(reference, key, value)
            if base is None or value.dtype.kind != "f" or value.size == 0:
                plan[key] = ("dense", value)
                continue
            flat_new = value.reshape(-1)
            diff = flat_new - base.reshape(-1)
            k = max(1, int(np.ceil(self.fraction * value.size)))
            if k >= value.size:
                plan[key] = ("dense", value)
                continue
            kept = np.argpartition(np.abs(diff), value.size - k)[-k:]
            kept.sort()
            indices = kept.astype(_index_dtype(value.size))
            plan[key] = ("sparse", value.shape, indices, flat_new[kept].copy())
        return plan

    def decode(self, plan, reference=None):
        arrays: Dict[str, np.ndarray] = {}
        for key, record in plan.items():
            if record[0] == "dense":
                arrays[key] = np.asarray(record[1])
            else:
                _, shape, indices, values = record
                if reference is None or key not in reference:
                    raise ValueError(
                        f"topk frame is sparse for {key!r} but the decoder has no reference"
                    )
                flat = np.array(reference[key], copy=True).reshape(-1)
                flat[indices] = values
                arrays[key] = flat.reshape(shape)
        return arrays


#: Canonical codec names accepted by :func:`build_codec` (``topk`` also takes
#: an optional fraction suffix, e.g. ``"topk:0.05"``).
CODEC_NAMES = ("identity", "delta", "quantize8", "quantize16", "topk")


def build_codec(spec: str) -> ArrayCodec:
    """Construct an :class:`ArrayCodec` from its config-string spec."""
    if spec == "identity":
        return IdentityCodec()
    if spec == "delta":
        return DeltaCodec()
    if spec == "quantize8":
        return QuantizeCodec(8)
    if spec == "quantize16":
        return QuantizeCodec(16)
    if spec == "topk" or spec.startswith("topk:"):
        fraction = 0.1
        if spec.startswith("topk:"):
            try:
                fraction = float(spec.split(":", 1)[1])
            except ValueError as error:
                raise ValueError(f"invalid topk fraction in codec spec {spec!r}") from error
        return TopKCodec(fraction)
    raise ValueError(f"unknown codec {spec!r}; choose from {', '.join(CODEC_NAMES)}")


def codec_is_lossless(spec: str) -> bool:
    """True when runs through this codec reproduce no-wire numbers bit-for-bit."""
    return build_codec(spec).lossless


# --------------------------------------------------------------------------- #
# Payload codecs (method payloads -> named arrays)
# --------------------------------------------------------------------------- #


@dataclass(frozen=True)
class _ArraySlot:
    """Placeholder left in a payload skeleton where an array was extracted."""

    name: str


class PayloadCodec:
    """Flattens a method payload into named arrays plus a structural skeleton.

    The arrays join the model state in the wire frame, so delta/quantize/topk
    apply to prompt payloads exactly as they do to weights; the skeleton (a
    small picklable tree) rides in the frame metadata.  ``unflatten`` must
    invert ``flatten`` exactly — the lossless-parity guarantee of the whole
    plane rests on it, and the property-test suite enforces it.
    """

    def flatten(self, payload: Any) -> Tuple[Dict[str, np.ndarray], Any]:
        raise NotImplementedError

    def unflatten(self, arrays: Dict[str, np.ndarray], skeleton: Any) -> Any:
        raise NotImplementedError


class TreePayloadCodec(PayloadCodec):
    """Generic payload codec: walk the dict/list/tuple tree, pull out arrays.

    Array leaves are replaced by :class:`_ArraySlot` markers named after
    their path (dict keys by ``repr`` so ``0`` and ``"0"`` cannot collide);
    every other leaf stays in the skeleton and round-trips through pickle.
    """

    def flatten(self, payload):
        arrays: Dict[str, np.ndarray] = {}

        def walk(node: Any, path: str) -> Any:
            if isinstance(node, np.ndarray):
                arrays[path] = node
                return _ArraySlot(path)
            if isinstance(node, dict):
                return {
                    key: walk(value, f"{path}/k:{key!r}") for key, value in node.items()
                }
            if isinstance(node, tuple) and hasattr(node, "_fields"):  # namedtuple
                return type(node)(
                    *(walk(value, f"{path}/i:{i}") for i, value in enumerate(node))
                )
            if isinstance(node, (list, tuple)):
                return type(node)(
                    walk(value, f"{path}/i:{i}") for i, value in enumerate(node)
                )
            return node

        skeleton = walk(payload, "p")
        return arrays, skeleton

    def unflatten(self, arrays, skeleton):
        def rebuild(node: Any) -> Any:
            if isinstance(node, _ArraySlot):
                return np.asarray(arrays[node.name])
            if isinstance(node, dict):
                return {key: rebuild(value) for key, value in node.items()}
            if isinstance(node, tuple) and hasattr(node, "_fields"):
                return type(node)(*(rebuild(value) for value in node))
            if isinstance(node, (list, tuple)):
                return type(node)(rebuild(value) for value in node)
            return node

        return rebuild(skeleton)


# --------------------------------------------------------------------------- #
# Communication ledger
# --------------------------------------------------------------------------- #


@dataclass(frozen=True)
class FrameRecord:
    """One client's frame (or failed transmission attempt) in one round."""

    client_id: int
    num_bytes: int
    #: ``ok`` — delivered in its round; ``deferred`` — an over-budget upload
    #: that arrived a round late; ``dropped`` — an over-budget upload the
    #: straggler policy discarded (its bytes never count as delivered);
    #: ``lost`` — a transmission attempt the fault plane lost on the wire;
    #: ``corrupt`` — an attempt that arrived but failed its checksum.  Lost
    #: and corrupt attempts are per-attempt records: a retried upload leaves
    #: one failed record per failed attempt plus its final record.
    status: str = "ok"


@dataclass(frozen=True)
class RoundCommRecord:
    """Measured traffic of one communication round, per client and direction."""

    task_id: int
    round_index: int
    codec: str
    broadcast_frames: Tuple[FrameRecord, ...]
    upload_frames: Tuple[FrameRecord, ...]

    @property
    def broadcast_bytes(self) -> int:
        return sum(frame.num_bytes for frame in self.broadcast_frames)

    @property
    def upload_bytes(self) -> int:
        """Bytes of uploads that reached the server (failed attempts excluded)."""
        return sum(f.num_bytes for f in self.upload_frames if f.status in ("ok", "deferred"))

    @property
    def dropped_upload_bytes(self) -> int:
        return sum(f.num_bytes for f in self.upload_frames if f.status == "dropped")

    @property
    def failed_attempt_bytes(self) -> int:
        """Bytes of transmission attempts the fault plane lost or corrupted."""
        return sum(f.num_bytes for f in self.upload_frames if f.status in ("lost", "corrupt"))


@dataclass
class CommunicationLedger:
    """Accumulates per-round communication volume for a whole run.

    Two recording paths feed it:

    * :meth:`record_measured_round` — the wire-format path: per-client
      :class:`FrameRecord` sizes measured from actual encoded frames
      (``measured_rounds`` counts these, ``records`` keeps the detail);
    * :meth:`record_round` — the legacy estimate path (``nbytes`` sums) kept
      for transport-less server use and the ``direct`` transport.  Broadcast
      is charged per *selected* client (``num_selected``), not per reporting
      client: a straggler that never uploads still received its download.
    """

    uploaded_bytes: int = 0
    broadcast_bytes: int = 0
    rounds: int = 0
    per_round: List[Dict[str, int]] = field(default_factory=list)
    measured_rounds: int = 0
    estimated_rounds: int = 0
    dropped_upload_bytes: int = 0
    dropped_uploads: int = 0
    deferred_uploads: int = 0
    expired_uploads: int = 0
    lost_frames: int = 0
    corrupt_frames: int = 0
    records: List[RoundCommRecord] = field(default_factory=list)
    #: Hierarchical-aggregation traffic: edge aggregators shipping weighted
    #: partial reduces up the tree (``reduce_backend="tree"``).  ``edge_bytes``
    #: counts every transmission attempt (a retried hop paid the wire twice);
    #: ``edge_frames`` counts delivered partials; the lost/corrupt counters
    #: count failed per-attempt records, mirroring the upload-frame fault
    #: accounting.  All zero under the flat star.
    edge_bytes: int = 0
    edge_frames: int = 0
    edge_lost_frames: int = 0
    edge_corrupt_frames: int = 0

    def record_round(
        self,
        updates: List[ClientUpdate],
        broadcast_state: Dict[str, np.ndarray],
        broadcast_payload: Optional[Dict[str, Any]] = None,
        num_selected: Optional[int] = None,
    ) -> None:
        """Account one round from ``nbytes`` estimates (no frames were built)."""
        upload = sum(update.upload_bytes() for update in updates)
        broadcast_one = sum(np.asarray(v).nbytes for v in broadcast_state.values())
        broadcast_one += _payload_bytes(broadcast_payload or {})
        receivers = num_selected if num_selected is not None else max(len(updates), 1)
        broadcast = broadcast_one * receivers
        self.uploaded_bytes += upload
        self.broadcast_bytes += broadcast
        self.rounds += 1
        self.estimated_rounds += 1
        self.per_round.append({"upload": upload, "broadcast": broadcast})

    def record_measured_round(self, record: RoundCommRecord) -> None:
        """Account one round from measured wire-frame lengths."""
        self.uploaded_bytes += record.upload_bytes
        self.broadcast_bytes += record.broadcast_bytes
        self.dropped_upload_bytes += record.dropped_upload_bytes
        self.dropped_uploads += sum(1 for f in record.upload_frames if f.status == "dropped")
        self.deferred_uploads += sum(1 for f in record.upload_frames if f.status == "deferred")
        self.lost_frames += sum(1 for f in record.upload_frames if f.status == "lost")
        self.corrupt_frames += sum(1 for f in record.upload_frames if f.status == "corrupt")
        self.rounds += 1
        self.measured_rounds += 1
        self.per_round.append(
            {"upload": record.upload_bytes, "broadcast": record.broadcast_bytes}
        )
        self.records.append(record)

    def record_expired_uploads(self, count: int) -> None:
        """Deferred uploads that never arrived (e.g. flushed at a task boundary)."""
        self.expired_uploads += count

    def record_edge_reduce(self, frames: List[FrameRecord]) -> None:
        """Account one tree reduce's edge→parent hops (all attempts)."""
        for frame in frames:
            self.edge_bytes += frame.num_bytes
            if frame.status == "ok":
                self.edge_frames += 1
            elif frame.status == "lost":
                self.edge_lost_frames += 1
            elif frame.status == "corrupt":
                self.edge_corrupt_frames += 1

    @property
    def measured(self) -> bool:
        """True when every recorded round came from actual encoded frames."""
        return self.measured_rounds > 0 and self.estimated_rounds == 0

    @property
    def total_bytes(self) -> int:
        return self.uploaded_bytes + self.broadcast_bytes + self.edge_bytes

    def mean_upload_per_round(self) -> float:
        return self.uploaded_bytes / self.rounds if self.rounds else 0.0


__all__ = [
    "ClientUpdate",
    "CommunicationLedger",
    "FrameRecord",
    "RoundCommRecord",
    "WireFrame",
    "ArrayCodec",
    "IdentityCodec",
    "DeltaCodec",
    "QuantizeCodec",
    "TopKCodec",
    "CODEC_NAMES",
    "build_codec",
    "codec_is_lossless",
    "encode_frame",
    "decode_frame",
    "PayloadCodec",
    "TreePayloadCodec",
]
