"""Lockstep multi-client batching: one vectorized plan step trains K clients.

The ``kernel="batched"`` execution path.  Between broadcast and aggregation a
round's selected clients all start from the same global state and (for the
cross-entropy family of methods) run the *same program* — only their
parameters and mini-batches differ.  This module exploits that: it traces one
client's SGD step into a :class:`~repro.autograd.tape.Plan`, stacks the
cohort's parameters, buffers and batches along a leading client axis, and
replays a single vectorized step for all K clients at once
(:meth:`Plan.execute_batched` + :class:`~repro.nn.optim.BatchedSGD`), turning
K model-sized forward/backward passes per step into one K-stacked pass.

Exactness contract
------------------
Lockstep is *exact in structure* — every client sees exactly the mini-batches
its own rng would have drawn under the serial path, in the same order, for
the same number of steps — but *tolerance-level in floats*: stacked matmuls
and reductions accumulate in a different order than K separate calls, so
trained weights match eager per-client training to float tolerance rather
than bit-for-bit (the documented accuracy of the batched kernel).

Eligibility and fallback
------------------------
A client trains in lockstep only when all of the following hold; anything
else falls back to the per-client path (which under ``kernel="batched"`` is
the tape kernel — itself verified hash-identical to eager):

* the method is a :class:`~repro.baselines.base.CrossEntropyFederatedMethod`
  that does **not** override ``local_update`` (its local loop is exactly
  ``run_local_sgd`` over ``batch_loss``);
* at least two clients share a lockstep group — same
  :class:`~repro.federated.client.LocalTrainingConfig`, same shard length and
  same sample shape/dtype, which guarantees equal step counts and equal batch
  shapes (the *equal step count* requirement of the vectorized plan);
* the traced step compiles and is batchable (no rng-consuming ops such as
  active dropout, no trainable state outside the stacked parameters).

Fallback never corrupts determinism: client rng states are snapshotted before
lockstep pre-draws any batches and rewound if the group is abandoned, so the
per-client path consumes exactly the draws it would have consumed anyway.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.autograd.tape import Plan, PlanCache, PlanError, PlanNotBatchable, Tape, tracing
from repro.federated.client import ClientHandle
from repro.federated.communication import ClientUpdate
from repro.federated.method import FederatedMethod
from repro.federated.server import BroadcastHandle
from repro.nn.module import Module
from repro.nn.optim import BatchedSGD
from repro.utils.logging_utils import get_logger

logger = get_logger(__name__)


@dataclass
class LockstepTelemetry:
    """Counters of how a run's clients actually executed (bench material)."""

    lockstep_rounds: int = 0  #: rounds that ran at least one vectorized group
    lockstep_clients: int = 0  #: clients trained through a stacked plan
    fallback_clients: int = 0  #: clients that ran the per-client path
    plans_compiled: int = 0  #: distinct (group, batch shape) traces compiled
    plan_cache_hits: int = 0  #: per-step plan lookups served from the LRU cache
    plan_cache_misses: int = 0  #: lookups that had to trace + compile
    plan_cache_evictions: int = 0  #: compiled plans dropped by the LRU bound


def _method_is_eligible(method: FederatedMethod) -> bool:
    """True when the method's local loop is exactly the shared SGD loop."""
    # Local import: baselines import the federated package at module load.
    from repro.baselines.base import CrossEntropyFederatedMethod

    return (
        isinstance(method, CrossEntropyFederatedMethod)
        and type(method).local_update is CrossEntropyFederatedMethod.local_update
    )


def _group_key(client: ClientHandle) -> Tuple:
    """Clients with equal keys run equal step counts with equal batch shapes."""
    images = client.dataset.images
    return (
        client.training,
        len(client.dataset),
        tuple(images.shape[1:]),
        str(images.dtype),
    )


class _CompiledStep:
    """One traced batch shape: the plan plus its slot <-> parameter-name map.

    Also owns the per-shape replay scratch the step loop reuses instead of
    reallocating: the stacked image/label input buffers (filled in place with
    ``np.stack(..., out=...)`` each step) and the slot-keyed view of the
    group's persistent parameter stacks (the stack arrays are updated in
    place by :class:`~repro.nn.optim.BatchedSGD`, so the dict built once at
    compile time stays valid for every later step).
    """

    __slots__ = ("plan", "slot_to_name", "extra_stacks", "images_buf", "labels_buf", "param_stacks")

    def __init__(
        self,
        plan: Plan,
        slot_to_name: Dict[int, str],
        extra_stacks: Dict[int, np.ndarray],
    ) -> None:
        self.plan = plan
        self.slot_to_name = slot_to_name
        self.extra_stacks = extra_stacks
        self.images_buf: Optional[np.ndarray] = None
        self.labels_buf: Optional[np.ndarray] = None
        self.param_stacks: Optional[Dict[int, np.ndarray]] = None


def _compile_step(
    method: FederatedMethod,
    model: Module,
    client: ClientHandle,
    images: Any,
    labels_np: np.ndarray,
    k: int,
) -> _CompiledStep:
    """Trace one client step on a throwaway model copy and prepare it for K.

    The deep copy isolates the trace's side effects (batch-norm running-stat
    updates, any rng the forward might consume) from the live model, so an
    abandoned group leaves no trace and the fallback path sees pristine
    state.  Replay binds parameters/buffers by slot, so the copy's values are
    never read again after compilation.
    """
    trace_model = copy.deepcopy(model)
    trace_model.train()
    tape = Tape()
    tape.register_dynamic("labels", labels_np)
    for name, buf in trace_model.named_buffers():
        tape.register_dynamic(f"buffer::{name}", buf)
    tape.mark_input("images", images)
    with tracing(tape):
        loss = method.batch_loss(trace_model, images, labels_np, client)
    plan = Plan(tape, loss)
    stacked_slots = [slot for slot, p in plan.param_leaves if p.requires_grad]
    plan.prepare_batched(stacked_slots)
    name_by_id = {id(p): name for name, p in trace_model.named_parameters()}
    slot_to_name: Dict[int, str] = {}
    extra_stacks: Dict[int, np.ndarray] = {}
    for slot, param in plan.param_leaves:
        if not param.requires_grad:
            continue
        name = name_by_id.get(id(param))
        if name is not None:
            slot_to_name[slot] = name
        else:
            # A requires-grad leaf outside the model (e.g. a frozen-by-no_grad
            # teacher's parameters): stacked so the plan accepts it, but it
            # never receives gradients, so the stack stays a broadcast copy.
            extra_stacks[slot] = np.broadcast_to(
                param.data, (k,) + param.data.shape
            ).copy()
    return _CompiledStep(plan, slot_to_name, extra_stacks)


def _train_group(
    method: FederatedMethod,
    model: Module,
    broadcast: BroadcastHandle,
    group: Sequence[Tuple[int, ClientHandle]],
    telemetry: LockstepTelemetry,
) -> Optional[List[Tuple[int, ClientUpdate]]]:
    """Train one lockstep group; None (with rngs rewound) means fall back."""
    rng_snapshots = [
        copy.deepcopy(client.rng.bit_generator.state) for _, client in group
    ]
    try:
        return _train_group_inner(method, model, broadcast, group, telemetry)
    except PlanError as error:
        logger.debug("lockstep group fell back to per-client path: %s", error)
        for (_, client), snapshot in zip(group, rng_snapshots):
            client.rng.bit_generator.state = snapshot
        return None


def _train_group_inner(
    method: FederatedMethod,
    model: Module,
    broadcast: BroadcastHandle,
    group: Sequence[Tuple[int, ClientHandle]],
    telemetry: LockstepTelemetry,
) -> List[Tuple[int, ClientUpdate]]:
    k = len(group)
    training = group[0][1].training
    model.load_state_dict(broadcast.state)
    model.train()

    # Pre-draw every epoch's mini-batches per client, in selection order,
    # from each client's own rng — exactly the draws the serial loop makes.
    per_client_steps: List[List[Tuple[Any, np.ndarray]]] = []
    for _, client in group:
        loader = client.loader()
        steps: List[Tuple[Any, np.ndarray]] = []
        for _ in range(training.local_epochs):
            for images, labels in loader:
                steps.append((images, np.asarray(labels, dtype=np.int64)))
        per_client_steps.append(steps)
    n_steps = len(per_client_steps[0])
    if any(len(steps) != n_steps for steps in per_client_steps):
        raise PlanNotBatchable("clients in group drew unequal step counts")

    # Stacks start as K broadcast copies of the round's global state; the
    # vectorized optimizer then walks each client's slice independently.
    param_stacks_by_name = {
        name: np.broadcast_to(p.data, (k,) + p.data.shape).copy()
        for name, p in model.named_parameters()
        if p.requires_grad
    }
    buffer_stacks = {
        name: np.broadcast_to(buf, (k,) + buf.shape).copy()
        for name, buf in model.named_buffers()
    }
    optimizer = BatchedSGD(
        k,
        lr=training.learning_rate,
        momentum=training.momentum,
        weight_decay=training.weight_decay,
        max_grad_norm=training.max_grad_norm,
    )

    compiled = PlanCache()
    buffer_bindings = {
        f"buffer::{name}": stack for name, stack in buffer_stacks.items()
    }
    loss_totals = np.zeros(k)
    try:
        for step in range(n_steps):
            images0, labels0 = per_client_steps[0][step]
            shape_key = (images0.data.shape, str(images0.data.dtype), labels0.shape)
            for steps in per_client_steps[1:]:
                images_c, labels_c = steps[step]
                if (images_c.data.shape, str(images_c.data.dtype), labels_c.shape) != shape_key:
                    raise PlanNotBatchable("clients in group drew unequal batch shapes")
            entry = compiled.get(shape_key)
            if entry is None:
                entry = _compile_step(method, model, group[0][1], images0, labels0, k)
                compiled.put(shape_key, entry)
                telemetry.plans_compiled += 1
                entry.images_buf = np.empty(
                    (k,) + images0.data.shape, dtype=images0.data.dtype
                )
                entry.labels_buf = np.empty((k,) + labels0.shape, dtype=labels0.dtype)
                entry.param_stacks = {
                    slot: param_stacks_by_name[name]
                    for slot, name in entry.slot_to_name.items()
                }
                entry.param_stacks.update(entry.extra_stacks)
            np.stack(
                [steps[step][0].data for steps in per_client_steps],
                out=entry.images_buf,
            )
            np.stack(
                [steps[step][1] for steps in per_client_steps], out=entry.labels_buf
            )
            bindings: Dict[str, Any] = {
                "images": entry.images_buf,
                "labels": entry.labels_buf,
            }
            bindings.update(buffer_bindings)
            loss_vec, grads = entry.plan.execute_batched(k, bindings, entry.param_stacks)
            named_grads = {
                entry.slot_to_name[slot]: grad
                for slot, grad in grads.items()
                if slot in entry.slot_to_name
            }
            optimizer.step(param_stacks_by_name, named_grads)
            loss_totals += np.asarray(loss_vec).reshape(k)
    finally:
        telemetry.plan_cache_hits += compiled.hits
        telemetry.plan_cache_misses += compiled.misses
        telemetry.plan_cache_evictions += compiled.evictions

    # Unstack each client's slice back into the live model to build its
    # update exactly as the serial path would (state_dict copies, payload
    # computed on the trained weights).
    results: List[Tuple[int, ClientUpdate]] = []
    for kk, (index, client) in enumerate(group):
        for name, param in model.named_parameters():
            if name in param_stacks_by_name:
                param.data[...] = param_stacks_by_name[name][kk]
        for name, buf in model.named_buffers():
            buf[...] = buffer_stacks[name][kk]
        update = ClientUpdate(
            client_id=client.client_id,
            state_dict=model.state_dict(),
            num_samples=client.num_samples,
            payload=method.extra_payload(model, client),
            train_loss=float(loss_totals[kk]) / max(n_steps, 1),
        )
        results.append((index, update))
    return results


def run_lockstep_round(
    method: FederatedMethod,
    model: Module,
    broadcast: BroadcastHandle,
    clients: Sequence[ClientHandle],
    telemetry: Optional[LockstepTelemetry] = None,
) -> List[ClientUpdate]:
    """Run one round's local updates, vectorizing every eligible client group.

    Returns updates in selection order, exactly like the serial executor.
    Ineligible methods, singleton groups and groups whose trace fails to
    compile or batch all run the per-client path.
    """
    telemetry = telemetry if telemetry is not None else LockstepTelemetry()
    updates: List[Optional[ClientUpdate]] = [None] * len(clients)

    if not _method_is_eligible(method):
        telemetry.fallback_clients += len(clients)
        return [
            _run_client_serial(method, model, broadcast, client) for client in clients
        ]

    groups: Dict[Tuple, List[Tuple[int, ClientHandle]]] = {}
    for index, client in enumerate(clients):
        groups.setdefault(_group_key(client), []).append((index, client))

    ran_lockstep = False
    for group in groups.values():
        trained = (
            _train_group(method, model, broadcast, group, telemetry)
            if len(group) >= 2
            else None
        )
        if trained is None:
            for index, client in group:
                updates[index] = _run_client_serial(method, model, broadcast, client)
            telemetry.fallback_clients += len(group)
        else:
            for index, update in trained:
                updates[index] = update
            telemetry.lockstep_clients += len(group)
            ran_lockstep = True
    if ran_lockstep:
        telemetry.lockstep_rounds += 1
    return [update for update in updates if update is not None]


def _run_client_serial(
    method: FederatedMethod,
    model: Module,
    broadcast: BroadcastHandle,
    client: ClientHandle,
) -> ClientUpdate:
    """The per-client fallback: identical to SerialExecutor's inner loop."""
    model.load_state_dict(broadcast.state)
    return method.local_update(model, broadcast.state, broadcast.payload, client)


__all__ = ["LockstepTelemetry", "run_lockstep_round"]
