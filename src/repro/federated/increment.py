"""Client increment strategy: Old / In-between / New participant groups.

Paper Sec. II ("Client increment strategy"): participants are divided into
three dynamic groups for each incremental task --

* ``Uo`` (*Old*): clients that keep training only on data from past domains,
* ``Ub`` (*In-between*): clients that transition to the new domain while still
  holding their previous domain's data (they train on the concatenation,
  Algorithm 1 line 17),
* ``Un`` (*New*): clients that join the federation at this task and only ever
  see the new domain.

At every task transition a configurable fraction (80% in the paper's default
setup) of the existing clients move to the new domain (becoming ``Ub``) and a
fixed number of brand-new clients join (``Un``); the rest stay on their old
data (``Uo``).  As tasks progress the federation therefore grows, which is the
"gradual transition" the paper contrasts with the cliff-style task switches of
prior FCL work (Fig. 1a).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.utils.rng import spawn_rng


class ClientGroup(Enum):
    """Which of the paper's three participant groups a client belongs to for a task."""

    OLD = "old"
    IN_BETWEEN = "in_between"
    NEW = "new"


@dataclass(frozen=True)
class ClientIncrementConfig:
    """Static description of the client population dynamics.

    Attributes
    ----------
    initial_clients:
        Number of clients present for the first task.
    increment_per_task:
        Number of brand-new clients added at every subsequent task.
    transfer_fraction:
        Fraction of existing clients that transition to each new task's domain
        (the paper's "80% of the M clients from task t transition").
    seed:
        Seed for the (deterministic) choice of which clients transition.
    """

    initial_clients: int = 10
    increment_per_task: int = 2
    transfer_fraction: float = 0.8
    seed: int = 0

    def __post_init__(self) -> None:
        if self.initial_clients < 1:
            raise ValueError("initial_clients must be at least 1")
        if self.increment_per_task < 0:
            raise ValueError("increment_per_task cannot be negative")
        if not 0.0 <= self.transfer_fraction <= 1.0:
            raise ValueError("transfer_fraction must be in [0, 1]")


@dataclass
class TaskAssignment:
    """Group membership of every active client for one task."""

    task_id: int
    groups: Dict[int, ClientGroup] = field(default_factory=dict)

    @property
    def active_clients(self) -> List[int]:
        return sorted(self.groups)

    def clients_in(self, group: ClientGroup) -> List[int]:
        return sorted(cid for cid, g in self.groups.items() if g is group)

    @property
    def new_clients(self) -> List[int]:
        return self.clients_in(ClientGroup.NEW)

    @property
    def in_between_clients(self) -> List[int]:
        return self.clients_in(ClientGroup.IN_BETWEEN)

    @property
    def old_clients(self) -> List[int]:
        return self.clients_in(ClientGroup.OLD)

    @property
    def clients_taking_new_domain(self) -> List[int]:
        """Clients that receive a shard of the new task's domain (Ub plus Un)."""
        return sorted(set(self.new_clients) | set(self.in_between_clients))

    def group_of(self, client_id: int) -> ClientGroup:
        return self.groups[client_id]


class ClientIncrementSchedule:
    """Generates the per-task group assignments deterministically.

    For the first task every client is *New* (the federation is bootstrapping).
    For each later task, ``transfer_fraction`` of the previously active clients
    become *In-between*, the rest become *Old*, and ``increment_per_task``
    brand-new client ids are appended as *New*.
    """

    def __init__(self, config: ClientIncrementConfig) -> None:
        self.config = config
        self._assignments: Dict[int, TaskAssignment] = {}
        self._next_client_id = 0

    def _new_client_ids(self, count: int) -> List[int]:
        ids = list(range(self._next_client_id, self._next_client_id + count))
        self._next_client_id += count
        return ids

    def assignment_for_task(self, task_id: int) -> TaskAssignment:
        """Return (building it if necessary) the assignment for ``task_id``.

        Assignments must be requested in task order; requesting task ``t``
        materialises all assignments up to ``t``.
        """
        if task_id < 0:
            raise IndexError("task_id must be non-negative")
        for t in range(task_id + 1):
            if t not in self._assignments:
                self._assignments[t] = self._build_assignment(t)
        return self._assignments[task_id]

    def _build_assignment(self, task_id: int) -> TaskAssignment:
        if task_id == 0:
            ids = self._new_client_ids(self.config.initial_clients)
            return TaskAssignment(task_id=0, groups={cid: ClientGroup.NEW for cid in ids})
        previous = self._assignments[task_id - 1]
        existing = previous.active_clients
        rng = spawn_rng(self.config.seed, "increment", task_id)
        num_transfer = int(round(self.config.transfer_fraction * len(existing)))
        num_transfer = min(num_transfer, len(existing))
        transfer_ids = set(
            rng.choice(existing, size=num_transfer, replace=False).tolist()
        ) if num_transfer > 0 else set()
        groups: Dict[int, ClientGroup] = {}
        for client_id in existing:
            groups[client_id] = (
                ClientGroup.IN_BETWEEN if client_id in transfer_ids else ClientGroup.OLD
            )
        for client_id in self._new_client_ids(self.config.increment_per_task):
            groups[client_id] = ClientGroup.NEW
        return TaskAssignment(task_id=task_id, groups=groups)

    def total_clients_after_task(self, task_id: int) -> int:
        """Size of the federation once task ``task_id`` has started (paper: M = Mo + Mb + Mn)."""
        self.assignment_for_task(task_id)
        return self._next_client_id

    def schedule_trace(self, num_tasks: int) -> List[Dict[str, int]]:
        """Per-task group sizes; used by the Fig. 1 increment-schedule bench."""
        trace = []
        for task_id in range(num_tasks):
            assignment = self.assignment_for_task(task_id)
            trace.append(
                {
                    "task": task_id,
                    "old": len(assignment.old_clients),
                    "in_between": len(assignment.in_between_clients),
                    "new": len(assignment.new_clients),
                    "total": len(assignment.active_clients),
                }
            )
        return trace


__all__ = ["ClientGroup", "ClientIncrementConfig", "TaskAssignment", "ClientIncrementSchedule"]
