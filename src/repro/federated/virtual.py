"""The virtual-client plane: clients as lazy recipes, shards on demand.

The eager data plane materializes every active client's shard at task start —
O(population) memory and setup cost, fine for the paper's tens of clients,
impossible for a fleet.  This module turns client identity into a
:class:`~repro.federated.client.VirtualClientSpec` — a pure ``(seed,
partition-spec)`` recipe — and materializes actual :class:`ArrayDataset`
shards only for a round's selected cohort, holding them in a small LRU so
memory is O(clients_per_round) regardless of population.

Two population modes share the plane:

* **Schedule mode** (``population=0``): the population is still driven by the
  :class:`~repro.federated.increment.ClientIncrementSchedule`.  At each task
  boundary the plane performs the *index-level* half of the eager partition —
  the exact same ``spawn_rng(seed, "partition", task_id)`` draws over the
  exact same taker list — and records, per client, only which tasks it last
  took.  Materialization then replays the eager recipe (``subset`` →
  ``astype`` → concat for in-between clients), which commutes with the eager
  order of operations elementwise, so every materialized shard is bit-for-bit
  identical to the eager shard and a whole virtual run reproduces the eager
  run hash-for-hash.

* **Fleet mode** (``population=N``): N virtual clients, all of them taking
  every task (a shared whole-domain Dirichlet partition is infeasible when
  the population dwarfs the domain).  Each client's per-task shard is its own
  quantity-shift draw from ``spawn_rng(seed, "vshard", task_id, client_id)``:
  a lognormal sample count (spread ``1/sqrt(concentration)``, mirroring the
  Dirichlet knob's imbalance direction) and a uniform index choice over the
  domain pool — clients share samples, the standard fleet-simulator design.
  Everything about a client is O(1): no per-client state exists until the
  client is selected, and none survives the LRU.

Checkpoints never see shards: the plane's bookkeeping is derived state,
rebuilt by the resume path's deterministic replay of task assignment —
"serialize specs, not shards" holds by construction.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.autograd.tensor import get_default_dtype
from repro.continual.scenario import Task
from repro.datasets.base import ArrayDataset
from repro.datasets.partition import partition_indices_for_clients
from repro.federated.client import VirtualClientSpec
from repro.federated.config import FederatedConfig
from repro.federated.increment import ClientGroup, TaskAssignment
from repro.utils.rng import spawn_rng

#: Fleet-mode shard sizing: never below the eager partitioner's
#: ``min_per_client``, base size one eighth of the domain.
_FLEET_MIN_SAMPLES = 2
_FLEET_BASE_DIVISOR = 8


class VirtualClientPlane:
    """Owns the population's recipes and the cohort's materialized shards."""

    def __init__(self, config: FederatedConfig) -> None:
        self.config = config
        self.fleet = config.population > 0
        self.population = config.population
        #: Domain training sets by task id (references into the scenario —
        #: the scenario already holds them; the plane adds no copies).
        self._task_train: Dict[int, ArrayDataset] = {}
        #: Schedule mode: the shared partition's index array per (task,
        #: taker) — one int per sample, never image data.
        self._indices: Dict[Tuple[int, int], np.ndarray] = {}
        #: Schedule mode per-client history: the task a client last took, the
        #: task it took before that (for in-between concat), the group it had
        #: at its last take, and every task it ever took.
        self._last_taken: Dict[int, int] = {}
        self._prev_taken: Dict[int, Optional[int]] = {}
        self._group_at_take: Dict[int, ClientGroup] = {}
        self._held: Dict[int, List[int]] = {}
        self._current_task = -1
        # The cohort cache: a handful of materialized shards, evicted LRU.
        # Sized a few cohorts deep so sync rounds, async in-flight dispatches
        # and the buffered flush window all hit; eviction is always safe
        # (materialization is a pure function, a miss just recomputes).
        self._cache: "OrderedDict[Tuple[int, Tuple[int, ...]], ArrayDataset]" = OrderedDict()
        self._cache_size = max(16, 4 * config.clients_per_round, 2 * config.buffer_size)

    # ------------------------------------------------------------------ #
    # Task boundaries
    # ------------------------------------------------------------------ #
    def begin_task(self, task: Task, assignment: Optional[TaskAssignment]) -> None:
        """Advance the plane's bookkeeping for one task (replayed on resume).

        Schedule mode performs the same partition draw as the eager plane —
        ``spawn_rng(seed, "partition", task_id)`` over
        ``assignment.clients_taking_new_domain`` — but keeps only the index
        arrays.  Fleet mode records nothing: every client's recipe is already
        a pure function of ``(seed, task_id, client_id)``.
        """
        self._current_task = task.task_id
        self._task_train[task.task_id] = task.train
        if self.fleet:
            return
        if assignment is None:
            raise ValueError("schedule-mode virtual clients need a task assignment")
        takers = assignment.clients_taking_new_domain
        rng = spawn_rng(self.config.seed, "partition", task.task_id)
        index_map = partition_indices_for_clients(
            task.train.labels, takers, rng, self.config.partition_concentration
        )
        for client_id, indices in index_map.items():
            self._indices[(task.task_id, client_id)] = indices
        for client_id in assignment.active_clients:
            group = assignment.group_of(client_id)
            if group is ClientGroup.NEW:
                self._last_taken[client_id] = task.task_id
                self._prev_taken[client_id] = None
                self._group_at_take[client_id] = ClientGroup.NEW
                self._held[client_id] = [task.task_id]
            elif group is ClientGroup.IN_BETWEEN:
                self._prev_taken[client_id] = self._last_taken.get(client_id)
                self._last_taken[client_id] = task.task_id
                self._group_at_take[client_id] = ClientGroup.IN_BETWEEN
                self._held[client_id] = self._held.get(client_id, []) + [task.task_id]
            # ClientGroup.OLD keeps training on its existing recipe.

    # ------------------------------------------------------------------ #
    # Specs
    # ------------------------------------------------------------------ #
    def spec_for(self, client_id: int) -> VirtualClientSpec:
        """The client's current recipe (its ``group`` is the group at last take)."""
        if self.fleet:
            if self._current_task == 0:
                group, components = ClientGroup.NEW, (0,)
            else:
                group = ClientGroup.IN_BETWEEN
                components = (self._current_task - 1, self._current_task)
            held = tuple(range(self._current_task + 1))
        else:
            if client_id not in self._last_taken:
                raise KeyError(f"client {client_id} has no training data yet")
            group = self._group_at_take[client_id]
            components = self._components(client_id)
            held = tuple(self._held.get(client_id, ()))
        return VirtualClientSpec(
            client_id=client_id,
            task_id=self._current_task,
            group=group,
            seed=self.config.seed,
            concentration=self.config.partition_concentration,
            population=self.population,
            components=components,
            domains_held=held,
        )

    def _components(self, client_id: int) -> Tuple[int, ...]:
        last = self._last_taken[client_id]
        if self._group_at_take[client_id] is ClientGroup.IN_BETWEEN:
            previous = self._prev_taken.get(client_id)
            if previous is not None:
                return (previous, last)
        return (last,)

    def eligible(self, assignment: TaskAssignment) -> List[int]:
        """Active clients holding data — the eager eligible list, exactly.

        Every client that ever took a task holds ≥ ``min_per_client`` samples
        (the partition invariant), so "has a take record" coincides with the
        eager plane's "has a non-empty shard".
        """
        return [
            client_id
            for client_id in assignment.active_clients
            if client_id in self._last_taken
        ]

    def group_for(self, client_id: int) -> ClientGroup:
        """Fleet mode's schedule-free group: NEW on task 0, IN_BETWEEN after."""
        return ClientGroup.NEW if self._current_task == 0 else ClientGroup.IN_BETWEEN

    def domains_for(self, client_id: int) -> Tuple[int, ...]:
        if self.fleet:
            return tuple(range(self._current_task + 1))
        return tuple(self._held.get(client_id, ()))

    # ------------------------------------------------------------------ #
    # Materialization
    # ------------------------------------------------------------------ #
    def materialize(self, client_id: int) -> ArrayDataset:
        """The client's current training shard, built on demand and LRU-cached.

        Bit-for-bit contract (schedule mode): ``subset`` selects rows and
        ``astype`` converts elementwise, so ``subset → astype`` per component
        followed by ``concatenate`` reproduces the eager plane's arrays
        exactly — the same index draws, the same cast, the same concat order.
        """
        if self.fleet:
            components: Tuple[int, ...] = (
                (0,) if self._current_task == 0
                else (self._current_task - 1, self._current_task)
            )
        else:
            components = self._components(client_id)
        key = (client_id, components)
        cached = self._cache.get(key)
        if cached is not None:
            self._cache.move_to_end(key)
            return cached
        parts = [self._single_shard(task_id, client_id) for task_id in components]
        shard = parts[0] if len(parts) == 1 else ArrayDataset.concatenate(tuple(parts))
        self._cache[key] = shard
        while len(self._cache) > self._cache_size:
            self._cache.popitem(last=False)
        return shard

    def _single_shard(self, task_id: int, client_id: int) -> ArrayDataset:
        domain = self._task_train[task_id]
        if self.fleet:
            indices = self._fleet_indices(task_id, client_id, len(domain))
        else:
            indices = self._indices[(task_id, client_id)]
        return domain.subset(indices).astype(get_default_dtype())

    def _fleet_indices(self, task_id: int, client_id: int, domain_size: int) -> np.ndarray:
        """Fleet mode's per-client quantity-shift draw; O(domain), O(1) in N."""
        rng = spawn_rng(self.config.seed, "vshard", task_id, client_id)
        sigma = 1.0 / np.sqrt(self.config.partition_concentration)
        base = max(_FLEET_MIN_SAMPLES, domain_size // _FLEET_BASE_DIVISOR)
        size = int(np.clip(
            int(round(base * rng.lognormal(0.0, sigma))),
            _FLEET_MIN_SAMPLES,
            domain_size,
        ))
        return np.sort(rng.choice(domain_size, size=size, replace=False)).astype(np.int64)


__all__ = ["VirtualClientPlane"]
