"""Crash-safe checkpoints: versioned, compressed, atomically written snapshots.

A killed run must resume *bit-for-bit*, so a checkpoint is a complete record
of the simulation's durable state — model arrays, method payloads (through the
method's own ``payload_codec()``), transport soft state, ledger, clock, event
log, accuracy matrix, and the fault trace so far.  What it deliberately does
NOT record is anything rebuilt deterministically from the config: datasets,
client schedules, device profiles, and every RNG (``spawn_rng`` draws are pure
functions of ``(seed, labels)``, so there is no generator state to save).

The on-disk format is a small self-validating container::

    RPCK | version u32 | crc32 u32 | zlib(pickle(payload))

written via ``tmp + fsync + os.replace`` so a crash mid-write can never leave
a truncated file under the final name — the resume scan either sees the old
complete checkpoint or the new complete checkpoint, never garbage.

File names encode the *resume start position*, not the save position:
``ckpt-t0002-r00003.ckpt`` means "resume at task 2, round 3".  A task-end
checkpoint of task ``t`` is therefore named ``(t + 1, 0)``.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import re
import struct
import zlib
from dataclasses import replace
from typing import Any, Dict, Optional, Tuple

CHECKPOINT_VERSION = 1
_MAGIC = b"RPCK"
_HEADER = struct.Struct(">4sII")
_NAME_RE = re.compile(r"^ckpt-t(\d{4})-r(\d{5})\.ckpt$")


class CheckpointError(RuntimeError):
    """Base class for checkpoint load/save failures."""


class CheckpointCorruptionError(CheckpointError):
    """The checkpoint file is truncated, mangled, or from an unknown version."""


class CheckpointMismatchError(CheckpointError):
    """The checkpoint was written by a run with an incompatible configuration."""


def checkpoint_name(start_task: int, start_round: int) -> str:
    """File name for a checkpoint that resumes at ``(start_task, start_round)``."""
    if start_task < 0 or start_round < 0:
        raise ValueError("checkpoint positions must be non-negative")
    return f"ckpt-t{start_task:04d}-r{start_round:05d}.ckpt"


def parse_checkpoint_name(name: str) -> Optional[Tuple[int, int]]:
    """``(start_task, start_round)`` encoded in ``name``, or None if not a checkpoint."""
    match = _NAME_RE.match(name)
    if match is None:
        return None
    return int(match.group(1)), int(match.group(2))


def latest_checkpoint(directory: str) -> Optional[str]:
    """Path of the furthest-along checkpoint in ``directory``, or None."""
    if not directory or not os.path.isdir(directory):
        return None
    best: Optional[Tuple[int, int]] = None
    best_name = None
    for name in os.listdir(directory):
        position = parse_checkpoint_name(name)
        if position is None:
            continue
        if best is None or position > best:
            best = position
            best_name = name
    if best_name is None:
        return None
    return os.path.join(directory, best_name)


def retain_last(items: list, keep: int) -> Tuple[list, list]:
    """Split an oldest-first list into ``(kept, pruned)`` under a last-K policy.

    ``keep=0`` retains everything.  This is the single retention rule shared
    by checkpoint pruning and the serving plane's registry: both order their
    artifacts oldest-first and keep only the newest ``keep``.
    """
    if keep < 0:
        raise ValueError("keep must be non-negative (0 retains everything)")
    if keep == 0 or len(items) <= keep:
        return list(items), []
    return list(items[-keep:]), list(items[:-keep])


def prune_checkpoints(directory: str, keep: int) -> list:
    """Delete all but the newest ``keep`` checkpoints; returns removed paths.

    Ordering follows the resume-position encoded in each file name (exactly
    what :func:`latest_checkpoint` maximises), so the pruned prefix is the
    oldest resume points.  Deletion happens strictly after the caller's newest
    checkpoint is durably on disk (each ``os.remove`` is atomic), so a crash
    mid-prune can only leave *extra* old checkpoints, never zero.
    """
    if keep == 0 or not directory or not os.path.isdir(directory):
        return []
    named = []
    for name in os.listdir(directory):
        position = parse_checkpoint_name(name)
        if position is not None:
            named.append((position, name))
    named.sort()
    _, pruned = retain_last([name for _, name in named], keep)
    removed = []
    for name in pruned:
        path = os.path.join(directory, name)
        try:
            os.remove(path)
        except FileNotFoundError:
            continue
        removed.append(path)
    return removed


def save_checkpoint(path: str, payload: Dict[str, Any]) -> None:
    """Atomically write ``payload`` to ``path`` (tmp + fsync + rename)."""
    blob = zlib.compress(pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL))
    header = _HEADER.pack(_MAGIC, CHECKPOINT_VERSION, zlib.crc32(blob))
    directory = os.path.dirname(path) or "."
    os.makedirs(directory, exist_ok=True)
    tmp_path = path + ".tmp"
    with open(tmp_path, "wb") as handle:
        handle.write(header)
        handle.write(blob)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp_path, path)


def load_checkpoint(path: str) -> Dict[str, Any]:
    """Read and validate a checkpoint written by :func:`save_checkpoint`."""
    with open(path, "rb") as handle:
        raw = handle.read()
    if len(raw) < _HEADER.size:
        raise CheckpointCorruptionError(f"checkpoint {path!r} is truncated ({len(raw)} bytes)")
    magic, version, crc = _HEADER.unpack_from(raw)
    if magic != _MAGIC:
        raise CheckpointCorruptionError(f"checkpoint {path!r} has bad magic {magic!r}")
    if version != CHECKPOINT_VERSION:
        raise CheckpointCorruptionError(
            f"checkpoint {path!r} has version {version}, expected {CHECKPOINT_VERSION}"
        )
    blob = raw[_HEADER.size :]
    if zlib.crc32(blob) != crc:
        raise CheckpointCorruptionError(f"checkpoint {path!r} failed its checksum")
    try:
        payload = pickle.loads(zlib.decompress(blob))
    except Exception as error:  # zlib.error, pickle errors, EOFError, ...
        raise CheckpointCorruptionError(f"checkpoint {path!r} failed to decode: {error}") from error
    if not isinstance(payload, dict):
        raise CheckpointCorruptionError(f"checkpoint {path!r} holds {type(payload).__name__}, not a dict")
    return payload


def config_fingerprint(config: Any) -> str:
    """Digest of everything in the config that affects simulation trajectory.

    Checkpoint bookkeeping knobs (where/how often to save, how many to keep,
    whether to resume) are masked out so the kill-and-resume flow — which
    necessarily differs in exactly those knobs — still matches the fingerprint
    of the original run.  The serving plane's publish knobs are masked for the
    same reason: publishing versions observes a run without changing its
    trajectory, so a served run and a silent run share one fingerprint.
    """
    masked = replace(
        config,
        checkpoint_every=0,
        checkpoint_dir="",
        checkpoint_keep=0,
        resume=False,
        serve=False,
        publish_every=0,
        registry_dir="",
        serve_codec="identity",
    )
    return hashlib.sha256(repr(masked).encode("utf-8")).hexdigest()


def simulation_state_hash(simulation: Any) -> str:
    """Order-stable digest of a simulation's trainable + evaluation state.

    Used by the resume tests: an interrupted-and-resumed run and an
    uninterrupted run must produce identical hashes at the same point.
    """
    import numpy as np

    digest = hashlib.sha256()
    for key in sorted(simulation.server.global_state):
        array = np.ascontiguousarray(simulation.server.global_state[key])
        digest.update(key.encode("utf-8"))
        digest.update(str(array.dtype).encode("utf-8"))
        digest.update(array.tobytes())
    matrix = simulation.evaluator.accuracy_matrix._matrix
    digest.update(np.ascontiguousarray(matrix).tobytes())
    digest.update(np.asarray(simulation.round_losses, dtype=np.float64).tobytes())
    digest.update(str(simulation.server.round_counter).encode("utf-8"))
    return digest.hexdigest()


__all__ = [
    "CHECKPOINT_VERSION",
    "CheckpointError",
    "CheckpointCorruptionError",
    "CheckpointMismatchError",
    "checkpoint_name",
    "parse_checkpoint_name",
    "latest_checkpoint",
    "retain_last",
    "prune_checkpoints",
    "save_checkpoint",
    "load_checkpoint",
    "config_fingerprint",
    "simulation_state_hash",
]
