"""RefFiL as a pluggable :class:`repro.federated.FederatedMethod`.

This is the object the experiment harness instantiates.  It wires together
the composite model (backbone + CDAP), the client trainer (local losses of
Eq. 13/12/9) and the server prompt aggregator (FedAvg + FINCH clustering),
and exposes the ablation switches used in Table VII and the temperature
hyper-parameters swept in Table VIII.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Optional

import numpy as np

from repro.autograd.tensor import Tensor
from repro.core.client import RefFiLClientTrainer
from repro.core.dpcl import DPCLConfig
from repro.core.model import RefFiLModel
from repro.core.server import RefFiLPromptAggregator, aggregate_with_prompts
from repro.federated.client import ClientHandle
from repro.federated.communication import ClientUpdate, TreePayloadCodec
from repro.federated.method import FederatedMethod
from repro.federated.server import FederatedServer
from repro.models.backbone import BackboneConfig


@dataclass(frozen=True)
class RefFiLConfig:
    """Everything that configures a RefFiL run besides the federated loop itself."""

    backbone: BackboneConfig = field(default_factory=BackboneConfig)
    prompt_length: int = 4
    max_tasks: int = 8
    dpcl: DPCLConfig = field(default_factory=DPCLConfig)
    max_prompt_representatives: int = 8
    use_cdap: bool = True
    use_gpl: bool = True
    use_dpcl: bool = True

    def with_components(self, use_cdap: bool, use_gpl: bool, use_dpcl: bool) -> "RefFiLConfig":
        """Return a copy with different ablation switches (Table VII rows)."""
        return replace(self, use_cdap=use_cdap, use_gpl=use_gpl, use_dpcl=use_dpcl)


class RefFiLPromptCodec(TreePayloadCodec):
    """Wire codec for RefFiL's prompt payloads: stacked matrices, not opaque dicts.

    RefFiL's two payload shapes are dicts of per-class vectors — the uploaded
    ``LPG_m`` (``{"prompt_groups": {label: (d,)}}``) and the broadcast prompt
    store (``{"class_<k>": (N_k, d)}``).  The generic tree codec would ship
    one tiny named array per class; this codec stacks each into a single
    labels/vectors pair, so the wire codec (delta / quantize / topk) sees two
    dense matrices instead of dozens of fragments and per-array framing
    overhead disappears.  Unrecognised payloads fall back to the tree walk,
    and both shapes round-trip exactly — values, dtypes and dict order.
    """

    def flatten(self, payload):
        flat = self._flatten_prompt_groups(payload)
        if flat is None:
            flat = self._flatten_store(payload)
        return flat if flat is not None else super().flatten(payload)

    def unflatten(self, arrays, skeleton):
        if isinstance(skeleton, tuple) and skeleton and skeleton[0] == "reffil-lpg":
            labels = arrays["lpg/labels"]
            vectors = np.asarray(arrays["lpg/vectors"])
            return {
                "prompt_groups": {
                    str(int(label)): vectors[index].copy()
                    for index, label in enumerate(labels)
                }
            }
        if isinstance(skeleton, tuple) and skeleton and skeleton[0] == "reffil-store":
            labels = arrays["gps/labels"]
            counts = arrays["gps/counts"]
            vectors = np.asarray(arrays["gps/vectors"])
            store: Dict[str, np.ndarray] = {}
            start = 0
            for label, count in zip(labels, counts):
                store[f"class_{int(label)}"] = vectors[start : start + int(count)].copy()
                start += int(count)
            return store
        return super().unflatten(arrays, skeleton)

    @staticmethod
    def _canonical_int(text: str) -> Optional[int]:
        """``int(text)`` when ``str(int(text)) == text``; None otherwise."""
        try:
            value = int(text)
        except ValueError:
            return None
        return value if str(value) == text else None

    @classmethod
    def _flatten_prompt_groups(cls, payload):
        if not (isinstance(payload, dict) and set(payload) == {"prompt_groups"}):
            return None
        groups = payload["prompt_groups"]
        if not (isinstance(groups, dict) and groups):
            return None
        labels: List[int] = []
        vectors: List[np.ndarray] = []
        for key, vector in groups.items():
            label = cls._canonical_int(key) if isinstance(key, str) else None
            if label is None or not (isinstance(vector, np.ndarray) and vector.ndim == 1):
                return None
            labels.append(label)
            vectors.append(vector)
        if len({(v.dtype, v.shape) for v in vectors}) != 1:
            return None
        arrays = {
            "lpg/labels": np.asarray(labels, dtype=np.int64),
            "lpg/vectors": np.stack(vectors),
        }
        return arrays, ("reffil-lpg",)

    @classmethod
    def _flatten_store(cls, payload):
        if not (isinstance(payload, dict) and payload):
            return None
        labels: List[int] = []
        counts: List[int] = []
        matrices: List[np.ndarray] = []
        for key, matrix in payload.items():
            if not (isinstance(key, str) and key.startswith("class_")):
                return None
            label = cls._canonical_int(key[len("class_"):])
            if label is None or not (isinstance(matrix, np.ndarray) and matrix.ndim == 2):
                return None
            labels.append(label)
            counts.append(matrix.shape[0])
            matrices.append(matrix)
        if len({(m.dtype, m.shape[1]) for m in matrices}) != 1:
            return None
        arrays = {
            "gps/labels": np.asarray(labels, dtype=np.int64),
            "gps/counts": np.asarray(counts, dtype=np.int64),
            "gps/vectors": np.concatenate(matrices, axis=0),
        }
        return arrays, ("reffil-store",)


class RefFiLMethod(FederatedMethod):
    """The full RefFiL algorithm (Algorithm 1) behind the generic method interface."""

    def __init__(self, config: RefFiLConfig) -> None:
        if config.use_dpcl and not (config.use_gpl or config.use_cdap):
            # The paper notes DPCL "cannot function in isolation": it needs the
            # prompt-sharing machinery that CDAP/GPL provide.
            raise ValueError("DPCL requires at least one of CDAP or GPL to be enabled")
        self.config = config
        self.name = self._build_name(config)
        self.client_trainer = RefFiLClientTrainer(
            dpcl_config=config.dpcl,
            use_cdap=config.use_cdap,
            use_gpl=config.use_gpl,
            use_dpcl=config.use_dpcl,
        )
        self.prompt_aggregator = RefFiLPromptAggregator(
            num_classes=config.backbone.num_classes,
            embed_dim=config.backbone.embed_dim,
            max_representatives=config.max_prompt_representatives,
        )

    @staticmethod
    def _build_name(config: RefFiLConfig) -> str:
        if config.use_cdap and config.use_gpl and config.use_dpcl:
            return "RefFiL"
        enabled = [
            label
            for label, flag in (
                ("CDAP", config.use_cdap),
                ("GPL", config.use_gpl),
                ("DPCL", config.use_dpcl),
            )
            if flag
        ]
        return "RefFiL[" + "+".join(enabled) + "]" if enabled else "RefFiL[none]"

    # ------------------------------------------------------------------ #
    # FederatedMethod interface
    # ------------------------------------------------------------------ #
    def build_model(self) -> RefFiLModel:
        return RefFiLModel(
            backbone_config=self.config.backbone,
            prompt_length=self.config.prompt_length,
            max_tasks=self.config.max_tasks,
        )

    def local_update(
        self,
        model: RefFiLModel,
        global_state: Dict[str, np.ndarray],
        broadcast_payload: Dict[str, Any],
        client: ClientHandle,
    ) -> ClientUpdate:
        # The broadcast payload carries the clustered store; rebuild the client view.
        store = self.prompt_aggregator.store
        if broadcast_payload:
            store = self.prompt_aggregator.store.from_payload(
                broadcast_payload,
                num_classes=self.config.backbone.num_classes,
                embed_dim=self.config.backbone.embed_dim,
            )
        return self.client_trainer.local_update(model, store, client)

    def aggregate(self, server: FederatedServer, updates: List[ClientUpdate]) -> None:
        aggregate_with_prompts(server, self.prompt_aggregator, updates)

    def export_client_state(self, client_id: int) -> Optional[np.ndarray]:
        """Cross-process round-trip of the static ablation prompt (if CDAP is off).

        With CDAP enabled RefFiL keeps no per-client state, so the parallel
        executor ships nothing back; the static-prompt ablation trains one
        persistent prompt per client, which must survive the worker process.
        """
        if self.config.use_cdap:
            return None
        return self.client_trainer.export_static_prompt(client_id)

    def import_client_state(self, client_id: int, state: np.ndarray) -> None:
        self.client_trainer.load_static_prompt(client_id, state)

    def payload_codec(self) -> RefFiLPromptCodec:
        """Prompt groups and the clustered store ship as stacked label/vector pairs."""
        return RefFiLPromptCodec()

    def predict_logits(self, model: RefFiLModel, images: Tensor) -> Tensor:
        """Inference: condition on CDAP prompts generated without the task ID.

        The paper states the task ID is not used at inference; the generator's
        task-agnostic path produces instance-level prompts from the tokens
        alone, which matches the local-prompt path the L_CE objective trains.
        When the generator is ablated away (Table VII rows without CDAP) the
        averaged global prompts are used instead, falling back to a prompt-free
        forward before any global prompts exist.
        """
        if self.config.use_cdap:
            prompts = model.generate_prompts(images, task_id=None)
            return model.backbone(images, prompts)
        averaged = self.prompt_aggregator.store.averaged_prompt_matrix()
        if averaged is None:
            return model.backbone(images)
        return model.backbone(images, Tensor(averaged))


__all__ = ["RefFiLConfig", "RefFiLMethod", "RefFiLPromptCodec"]
