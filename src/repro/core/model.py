"""The composite RefFiL client model: prompted backbone + CDAP generator.

Both parts are part of the model state dict, so FedAvg aggregates them
together -- in particular the CDAP's CCDA layer becomes the "globally
transferable linear layer" of the paper because every round averages it
across the selected clients.
"""

from __future__ import annotations

from typing import Optional

from repro.autograd.tensor import Tensor
from repro.core.cdap import CDAPConfig, CDAPGenerator
from repro.models.backbone import BackboneConfig, PromptedBackbone
from repro.nn.module import Module


class RefFiLModel(Module):
    """Backbone plus CDAP prompt generator, trained and aggregated as one unit."""

    def __init__(
        self,
        backbone_config: BackboneConfig,
        prompt_length: int = 4,
        max_tasks: int = 8,
        key_dim: int = 16,
        cdap_hidden: int = 32,
    ) -> None:
        super().__init__()
        self.backbone = PromptedBackbone(backbone_config)
        self.cdap = CDAPGenerator(
            CDAPConfig(
                embed_dim=backbone_config.embed_dim,
                num_tokens=self.backbone.num_patch_tokens + 1,
                prompt_length=prompt_length,
                max_tasks=max_tasks,
                key_dim=key_dim,
                mlp_hidden=cdap_hidden,
                seed=backbone_config.seed,
            )
        )

    @property
    def embed_dim(self) -> int:
        return self.backbone.config.embed_dim

    @property
    def num_classes(self) -> int:
        return self.backbone.config.num_classes

    def generate_prompts(self, images: Tensor, task_id: Optional[int]) -> Tensor:
        """Run CDAP on the image's token sequence.

        With ``task_id=None`` the task-agnostic path is used (inference).
        """
        tokens = self.backbone.input_tokens(images)
        if task_id is None:
            return self.cdap.generate_without_task(tokens)
        return self.cdap(tokens, task_id)

    def forward(self, images: Tensor, prompts: Optional[Tensor] = None) -> Tensor:
        """Plain classification forward (optionally with explicit prompt tokens)."""
        return self.backbone(images, prompts)


__all__ = ["RefFiLModel"]
