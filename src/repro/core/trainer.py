"""One-call convenience wrapper used by the examples and the quickstart."""

from __future__ import annotations

from typing import Optional

from repro.continual.scenario import DomainIncrementalScenario
from repro.core.method import RefFiLConfig, RefFiLMethod
from repro.datasets.registry import build_dataset, get_dataset_spec
from repro.datasets.synthetic import DomainDatasetSpec
from repro.federated.config import FederatedConfig
from repro.federated.simulation import FederatedDomainIncrementalSimulation, SimulationResult
from repro.models.backbone import BackboneConfig


def train_refil(
    dataset_name: str = "office_caltech",
    federated: Optional[FederatedConfig] = None,
    refil: Optional[RefFiLConfig] = None,
    dataset_spec: Optional[DomainDatasetSpec] = None,
    num_tasks: Optional[int] = None,
) -> SimulationResult:
    """Train RefFiL on one of the registered datasets and return the run summary.

    This is the 10-line happy path: build the synthetic dataset, wrap it in a
    domain-incremental scenario, instantiate RefFiL with a backbone sized for
    the dataset, and run the federated simulation.
    """
    spec = dataset_spec if dataset_spec is not None else get_dataset_spec(dataset_name)
    dataset = build_dataset(dataset_name, spec_override=spec)
    scenario = DomainIncrementalScenario(dataset, num_tasks=num_tasks)
    federated = federated if federated is not None else FederatedConfig()
    if refil is None:
        backbone = BackboneConfig(
            image_size=spec.image_size,
            num_classes=spec.num_classes,
            seed=federated.seed,
        )
        refil = RefFiLConfig(backbone=backbone, max_tasks=max(scenario.num_tasks, 1))
    method = RefFiLMethod(refil)
    simulation = FederatedDomainIncrementalSimulation(scenario, method, federated)
    return simulation.run()


__all__ = ["train_refil"]
