"""Global Prompt Learning (GPL) loss, paper Eq. 12.

The averaged global prompt matrix ``\\bar{P}_g`` (one representative prompt per
class, built by :meth:`repro.core.prompts.GlobalPromptStore.averaged_prompt_matrix`)
is injected as prompt tokens next to the image's feature-map tokens, and the
classifier must still predict the correct class.  Because these prompt tokens
summarise *other clients' domains*, minimising the cross-entropy on them forces
the backbone to rely on domain-invariant evidence -- this is the mechanism by
which RefFiL shares "diverse stimuli" across the federation.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.autograd import functional as F
from repro.autograd.tensor import Tensor
from repro.models.backbone import PromptedBackbone


def gpl_loss(
    backbone: PromptedBackbone,
    patch_tokens: Tensor,
    labels: np.ndarray,
    averaged_global_prompts: Optional[np.ndarray],
) -> Optional[Tensor]:
    """Cross-entropy of the global-prompt-conditioned prediction (Eq. 12).

    Returns ``None`` while no global prompts exist yet (the very first rounds),
    in which case the caller omits the term from the total objective.
    """
    if averaged_global_prompts is None or averaged_global_prompts.shape[0] == 0:
        return None
    prompts = Tensor(averaged_global_prompts)
    logits = backbone.forward_from_patches(patch_tokens, prompts)
    return F.cross_entropy(logits, labels)


__all__ = ["gpl_loss"]
