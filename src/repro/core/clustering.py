"""Global prompt clustering (paper Eq. 7-8).

The server receives one LPG vector per (client, class).  Directly averaging
them would wash out domain-characteristic structure when most clients are on
the new domain (the prompt-imbalance problem the paper describes), so the
prompts of each class are clustered with FINCH and each cluster contributes
one representative (its centroid).  Prompts from different domains are
unlikely to be cosine first-neighbours, so clusters align with domains.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Sequence

import numpy as np

from repro.clustering.finch import finch


def cluster_class_prompts(prompt_vectors: np.ndarray, max_representatives: int = 8) -> np.ndarray:
    """Cluster one class's prompt vectors and return cluster-centroid representatives.

    With fewer than three vectors clustering is meaningless and the vectors
    are returned unchanged.  ``max_representatives`` caps the number of
    representatives kept per class (most-populated clusters first) so the
    broadcast payload stays bounded as the federation grows.
    """
    prompt_vectors = np.atleast_2d(np.asarray(prompt_vectors, dtype=np.float64))
    if prompt_vectors.shape[0] <= 2:
        return prompt_vectors.copy()
    result = finch(prompt_vectors)
    labels = result.finest
    centroids = []
    sizes = []
    for cluster in range(int(labels.max()) + 1):
        members = prompt_vectors[labels == cluster]
        centroids.append(members.mean(axis=0))
        sizes.append(members.shape[0])
    order = np.argsort(-np.asarray(sizes))[:max_representatives]
    return np.stack([centroids[i] for i in order], axis=0)


def cluster_prompt_groups(
    prompt_groups: Sequence[Mapping[int, np.ndarray]],
    existing: Mapping[int, np.ndarray] | None = None,
    max_representatives: int = 8,
) -> Dict[int, np.ndarray]:
    """Cluster freshly uploaded LPGs (optionally together with existing representatives).

    Parameters
    ----------
    prompt_groups:
        One mapping per uploading client: class label -> LPG vector.
    existing:
        The store's current representatives.  Including them lets prompts from
        earlier domains survive rounds in which no old-domain client was
        selected -- this is what keeps the global prompt set *diverse across
        domains* rather than collapsing onto the newest one.
    max_representatives:
        Cap on representatives per class.

    Returns
    -------
    Mapping from class label to an array of representatives ``(N_k, d)``.
    """
    pooled: Dict[int, list] = {}
    for group in prompt_groups:
        for label, vector in group.items():
            pooled.setdefault(int(label), []).append(np.asarray(vector, dtype=np.float64))
    if existing:
        for label, array in existing.items():
            for vector in np.atleast_2d(array):
                pooled.setdefault(int(label), []).append(np.asarray(vector, dtype=np.float64))
    clustered: Dict[int, np.ndarray] = {}
    for label, vectors in pooled.items():
        stacked = np.stack(vectors, axis=0)
        clustered[label] = cluster_class_prompts(stacked, max_representatives=max_representatives)
    return clustered


__all__ = ["cluster_class_prompts", "cluster_prompt_groups"]
