"""RefFiL client-side local update (paper Algorithm 1, lines 12-30).

For every mini-batch the client computes (Eq. 14):

    ``L = L_CE + L_GPL + L_DPCL``

* ``L_CE``  -- cross-entropy of the prediction conditioned on the locally
  generated CDAP prompts (Eq. 13),
* ``L_GPL`` -- cross-entropy of the prediction conditioned on the averaged
  global prompts (Eq. 12),
* ``L_DPCL`` -- the prompt contrastive loss against the clustered global
  prompts with decayed temperature (Eq. 9-10).

During the final local epoch the generated prompts are pooled per class into
the client's Local Prompt Group which is uploaded alongside the model update.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro.autograd import functional as F
from repro.autograd.tensor import Tensor
from repro.core.dpcl import DPCLConfig, decayed_temperature, dpcl_loss
from repro.core.gpl import gpl_loss
from repro.core.model import RefFiLModel
from repro.core.prompts import GlobalPromptStore, LocalPromptCollector
from repro.federated.client import ClientHandle
from repro.federated.communication import ClientUpdate
from repro.nn.module import Parameter
from repro.nn.optim import SGD
from repro.utils.rng import spawn_rng


@dataclass
class RefFiLLossBreakdown:
    """Per-batch loss components (Eq. 14), kept for logging and the Table VII ablation."""

    cross_entropy: float = 0.0
    gpl: float = 0.0
    dpcl: float = 0.0
    total: float = 0.0

    def accumulate(self, other: "RefFiLLossBreakdown") -> None:
        self.cross_entropy += other.cross_entropy
        self.gpl += other.gpl
        self.dpcl += other.dpcl
        self.total += other.total

    def mean_over(self, batches: int) -> "RefFiLLossBreakdown":
        count = max(batches, 1)
        return RefFiLLossBreakdown(
            cross_entropy=self.cross_entropy / count,
            gpl=self.gpl / count,
            dpcl=self.dpcl / count,
            total=self.total / count,
        )

    def as_metrics(self) -> Dict[str, float]:
        """Flat dict for :attr:`repro.federated.communication.ClientUpdate.metrics`."""
        return {
            "loss_ce": self.cross_entropy,
            "loss_gpl": self.gpl,
            "loss_dpcl": self.dpcl,
            "loss_total": self.total,
        }


class RefFiLClientTrainer:
    """Runs one client's local RefFiL update.

    The ablation switches mirror Table VII: with ``use_cdap`` off the client
    uses a plain learnable prompt parameter instead of the instance-conditioned
    generator; ``use_gpl`` / ``use_dpcl`` gate the corresponding loss terms.
    """

    def __init__(
        self,
        dpcl_config: DPCLConfig,
        use_cdap: bool = True,
        use_gpl: bool = True,
        use_dpcl: bool = True,
    ) -> None:
        self.dpcl_config = dpcl_config
        self.use_cdap = use_cdap
        self.use_gpl = use_gpl
        self.use_dpcl = use_dpcl
        self._static_prompts: Dict[int, Parameter] = {}

    # ------------------------------------------------------------------ #
    # Ablation helper: static prompts when the CDAP generator is disabled
    # ------------------------------------------------------------------ #
    def _static_prompt_for(self, model: RefFiLModel, client_id: int) -> Parameter:
        if client_id not in self._static_prompts:
            rng = spawn_rng(client_id, "static-prompt")
            self._static_prompts[client_id] = Parameter(
                0.02 * rng.standard_normal((model.cdap.prompt_length, model.embed_dim))
            )
        return self._static_prompts[client_id]

    def export_static_prompt(self, client_id: int) -> Optional[np.ndarray]:
        """The client's trained static prompt, if one exists (cross-process export)."""
        prompt = self._static_prompts.get(client_id)
        return None if prompt is None else prompt.data.copy()

    def load_static_prompt(self, client_id: int, data: np.ndarray) -> None:
        """Install a static prompt exported by a worker process."""
        self._static_prompts[client_id] = Parameter(data)

    # ------------------------------------------------------------------ #
    # Main entry point
    # ------------------------------------------------------------------ #
    def local_update(
        self,
        model: RefFiLModel,
        store: GlobalPromptStore,
        client: ClientHandle,
    ) -> ClientUpdate:
        """Train locally for ``client.training.local_epochs`` epochs and build the update."""
        collector = LocalPromptCollector(model.embed_dim)
        averaged_globals = store.averaged_prompt_matrix()
        temperature = decayed_temperature(self.dpcl_config, task_number=client.task_id + 1)
        static_prompt = (
            None if self.use_cdap else self._static_prompt_for(model, client.client_id)
        )

        trainable = [p for p in model.parameters() if p.requires_grad]
        if static_prompt is not None:
            trainable = trainable + [static_prompt]
        optimizer = SGD(
            trainable,
            lr=client.training.learning_rate,
            momentum=client.training.momentum,
            weight_decay=client.training.weight_decay,
            max_grad_norm=client.training.max_grad_norm,
        )

        model.train()
        totals = RefFiLLossBreakdown()
        batches = 0
        epochs = client.training.local_epochs
        for epoch in range(epochs):
            final_epoch = epoch == epochs - 1
            for images, labels in client.loader():
                optimizer.zero_grad()
                loss, breakdown = self._batch_loss(
                    model,
                    images,
                    labels,
                    client,
                    averaged_globals,
                    store,
                    temperature,
                    static_prompt,
                    collector if final_epoch else None,
                )
                loss.backward()
                optimizer.step()
                totals.accumulate(breakdown)
                batches += 1

        payload = {
            "prompt_groups": {
                str(label): vector for label, vector in collector.local_prompt_group().items()
            }
        }
        means = totals.mean_over(batches)
        return ClientUpdate(
            client_id=client.client_id,
            state_dict=model.state_dict(),
            num_samples=client.num_samples,
            payload=payload,
            train_loss=means.total,
            metrics=means.as_metrics(),
        )

    # ------------------------------------------------------------------ #
    # Loss assembly for one batch
    # ------------------------------------------------------------------ #
    def _batch_loss(
        self,
        model: RefFiLModel,
        images: Tensor,
        labels: np.ndarray,
        client: ClientHandle,
        averaged_globals: Optional[np.ndarray],
        store: GlobalPromptStore,
        temperature: float,
        static_prompt: Optional[Parameter],
        collector: Optional[LocalPromptCollector],
    ) -> Tuple[Tensor, RefFiLLossBreakdown]:
        backbone = model.backbone
        patch_tokens = backbone.patch_tokens(images)
        batch = patch_tokens.shape[0]

        # Local prompts: CDAP-generated (Eq. 4) or the static ablation prompt.
        if self.use_cdap:
            cls = backbone.cls_token.broadcast_to((batch, 1, model.embed_dim))
            input_tokens = Tensor.concatenate([cls, patch_tokens], axis=1)
            local_prompts = model.cdap(input_tokens, client.task_id)
        else:
            local_prompts = static_prompt.reshape(
                1, static_prompt.shape[0], static_prompt.shape[1]
            ).broadcast_to((batch, static_prompt.shape[0], static_prompt.shape[1]))

        # L_CE: prediction conditioned on the local prompts (Eq. 13).
        local_logits = backbone.forward_from_patches(patch_tokens, local_prompts)
        loss = F.cross_entropy(local_logits, labels)
        breakdown = RefFiLLossBreakdown(cross_entropy=float(loss.data))

        # L_GPL: prediction conditioned on the averaged global prompts (Eq. 12).
        if self.use_gpl:
            gpl = gpl_loss(backbone, patch_tokens, labels, averaged_globals)
            if gpl is not None:
                breakdown.gpl = float(gpl.data)
                loss = loss + gpl

        # L_DPCL: contrastive alignment of local prompts with global prompts (Eq. 9).
        if self.use_dpcl:
            dpcl = dpcl_loss(local_prompts, labels, store, client.group, temperature)
            if dpcl is not None:
                breakdown.dpcl = self.dpcl_config.weight * float(dpcl.data)
                loss = loss + self.dpcl_config.weight * dpcl

        if collector is not None:
            collector.add_batch(local_prompts.detach(), labels)
        breakdown.total = float(loss.data)
        return loss, breakdown


__all__ = ["RefFiLClientTrainer", "RefFiLLossBreakdown"]
