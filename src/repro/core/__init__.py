"""RefFiL: the paper's contribution.

The pieces map one-to-one onto the paper's Sec. IV:

* :mod:`repro.core.cdap` -- the Client-wise Domain Adaptive Prompt generator
  (LN -> MLP -> CCDA layer -> FiLM modulation conditioned on a task-ID key
  embedding), Eq. 4.
* :mod:`repro.core.prompts` -- local prompt collection / averaging into Local
  Prompt Groups (Eq. 5) and the server-side global prompt store (Eq. 6-8, 11).
* :mod:`repro.core.clustering` -- FINCH-based global prompt clustering
  (Eq. 7-8).
* :mod:`repro.core.dpcl` -- the Domain-specific Prompt Contrastive Learning
  loss with temperature decay (Eq. 9-10).
* :mod:`repro.core.gpl` -- the Global Prompt Learning loss (Eq. 12).
* :mod:`repro.core.model` -- the composite client model (backbone + CDAP).
* :mod:`repro.core.method` -- the :class:`repro.federated.FederatedMethod`
  implementation that plugs RefFiL into the federated simulation
  (Algorithm 1), with ablation switches for Table VII.
* :mod:`repro.core.trainer` -- a one-call convenience wrapper used by the
  examples.
"""

from repro.core.cdap import CDAPGenerator, CDAPConfig
from repro.core.prompts import LocalPromptCollector, GlobalPromptStore
from repro.core.clustering import cluster_prompt_groups
from repro.core.dpcl import DPCLConfig, decayed_temperature, dpcl_loss
from repro.core.gpl import gpl_loss
from repro.core.model import RefFiLModel
from repro.core.method import RefFiLMethod, RefFiLConfig
from repro.core.trainer import train_refil

__all__ = [
    "CDAPGenerator",
    "CDAPConfig",
    "LocalPromptCollector",
    "GlobalPromptStore",
    "cluster_prompt_groups",
    "DPCLConfig",
    "decayed_temperature",
    "dpcl_loss",
    "gpl_loss",
    "RefFiLModel",
    "RefFiLMethod",
    "RefFiLConfig",
    "train_refil",
]
