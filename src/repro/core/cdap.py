"""Client-wise Domain Adaptive Prompt (CDAP) generator.

Paper Eq. 4: given the input token sequence ``I`` (the [CLS] + patch tokens of
one image) and a task-conditional embedding ``v``, the generator produces an
instance-level prompt

    ``P_m = alpha_v * CCDA(MLP(LN(I)^T))^T + lambda_v  in R^{p x d}``

where

* ``LN`` normalises the tokens,
* the ``MLP`` acts across the *token* axis (the tokens are transposed to
  ``d x (n+1)`` first) and compresses the ``n+1`` tokens down to ``p`` prompt
  slots,
* ``CCDA`` is a globally shared linear layer over the embedding dimension --
  because it is part of the model state it is FedAvg-aggregated every round,
  which is what makes it "cross-client domain adaptation",
* ``[alpha_v, lambda_v] = phi(v)`` is a FiLM-style affine modulation predicted
  from the task-ID key embedding ``v`` (Perez et al., 2018).  The task ID is
  only used during training; inference never calls the generator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.autograd.tensor import Tensor
from repro.nn.embedding import Embedding
from repro.nn.linear import Linear
from repro.nn.mlp import MLP
from repro.nn.module import Module
from repro.nn.norm import LayerNorm
from repro.utils.rng import spawn_rng


@dataclass(frozen=True)
class CDAPConfig:
    """Hyper-parameters of the CDAP generator."""

    embed_dim: int = 32
    num_tokens: int = 17
    prompt_length: int = 4
    max_tasks: int = 8
    key_dim: int = 16
    mlp_hidden: int = 32
    seed: int = 0

    def __post_init__(self) -> None:
        if self.prompt_length < 1:
            raise ValueError("prompt_length must be at least 1")
        if self.num_tokens < 2:
            raise ValueError("num_tokens must include [CLS] plus at least one patch token")
        if self.max_tasks < 1:
            raise ValueError("max_tasks must be at least 1")


class CDAPGenerator(Module):
    """Generates per-instance, domain-adaptive prompt tokens (paper Eq. 4)."""

    def __init__(self, config: CDAPConfig) -> None:
        super().__init__()
        self.config = config
        rng = spawn_rng(config.seed, "cdap")
        self.norm = LayerNorm(config.embed_dim)
        # The MLP acts on the transposed tokens: it maps the (n+1) token axis
        # down to the p prompt slots, independently for every embedding channel.
        self.token_mlp = MLP(
            config.num_tokens,
            [config.mlp_hidden],
            config.prompt_length,
            activation="gelu",
            rng=rng,
        )
        # CCDA: the globally transferable linear layer over the embedding dim.
        self.ccda = Linear(config.embed_dim, config.embed_dim, rng=rng)
        # Task-specific key embedding and the FiLM parameter predictor phi.
        self.task_keys = Embedding(config.max_tasks, config.key_dim, rng=rng)
        self.film = Linear(config.key_dim, 2 * config.embed_dim, rng=rng)

    @property
    def prompt_length(self) -> int:
        return self.config.prompt_length

    @property
    def embed_dim(self) -> int:
        return self.config.embed_dim

    def forward(self, tokens: Tensor, task_id: int) -> Tensor:
        """Generate prompts of shape ``(batch, prompt_length, embed_dim)``.

        Parameters
        ----------
        tokens:
            The input token sequence ``I`` of shape ``(batch, n+1, d)``
            produced by :meth:`repro.models.PromptedBackbone.input_tokens`.
        task_id:
            Zero-based index of the current incremental task (training only).
        """
        if tokens.ndim != 3:
            raise ValueError(f"tokens must be (batch, n+1, d), got {tokens.shape}")
        batch, num_tokens, dim = tokens.shape
        if num_tokens != self.config.num_tokens:
            raise ValueError(
                f"CDAP was built for {self.config.num_tokens} tokens but received {num_tokens}"
            )
        if dim != self.config.embed_dim:
            raise ValueError(
                f"CDAP was built for embed_dim {self.config.embed_dim} but received {dim}"
            )
        if not 0 <= task_id < self.config.max_tasks:
            raise IndexError(
                f"task_id {task_id} out of range for max_tasks {self.config.max_tasks}"
            )
        normed = self.norm(tokens)  # (B, n+1, d)
        transposed = normed.transpose(0, 2, 1)  # (B, d, n+1)
        compressed = self.token_mlp(transposed)  # (B, d, p)
        prompt_base = compressed.transpose(0, 2, 1)  # (B, p, d)
        adapted = self.ccda(prompt_base)  # (B, p, d)
        key = self.task_keys(np.asarray([task_id]))  # (1, key_dim)
        film_params = self.film(key)  # (1, 2d)
        alpha = film_params[:, : self.config.embed_dim].reshape(1, 1, self.config.embed_dim)
        lam = film_params[:, self.config.embed_dim :].reshape(1, 1, self.config.embed_dim)
        return adapted * (alpha + 1.0) + lam

    def generate_without_task(self, tokens: Tensor) -> Tensor:
        """Prompt generation with the FiLM modulation disabled.

        The paper states the task ID "is not utilized during the inference
        stage"; this path produces prompts from the tokens alone and is what a
        deployed client would run on unlabelled, task-agnostic data.
        """
        normed = self.norm(tokens)
        transposed = normed.transpose(0, 2, 1)
        compressed = self.token_mlp(transposed)
        prompt_base = compressed.transpose(0, 2, 1)
        return self.ccda(prompt_base)


__all__ = ["CDAPConfig", "CDAPGenerator"]
