"""RefFiL server-side logic: FedAvg plus global prompt clustering.

Paper Algorithm 1, lines 8-10: after aggregating the model weights the server
collects the uploaded Local Prompt Groups, clusters them per class with FINCH
(together with the representatives it already holds, so prompts from earlier
domains are not lost) and broadcasts the clustered store with the next global
model.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.core.clustering import cluster_prompt_groups
from repro.core.prompts import GlobalPromptStore
from repro.federated.communication import ClientUpdate
from repro.federated.server import FederatedServer


class RefFiLPromptAggregator:
    """Maintains the clustered global prompt store across rounds and tasks."""

    def __init__(self, num_classes: int, embed_dim: int, max_representatives: int = 8) -> None:
        self.store = GlobalPromptStore(num_classes, embed_dim)
        self.max_representatives = max_representatives

    def ingest(self, updates: List[ClientUpdate]) -> GlobalPromptStore:
        """Cluster freshly uploaded prompt groups into the store and return it."""
        uploaded = []
        for update in updates:
            groups = update.payload.get("prompt_groups", {})
            if not groups:
                continue
            uploaded.append({int(label): np.asarray(vector) for label, vector in groups.items()})
        if uploaded:
            clustered = cluster_prompt_groups(
                uploaded,
                existing=self.store.representatives,
                max_representatives=self.max_representatives,
            )
            self.store.replace(clustered)
        return self.store

    def broadcast_payload(self) -> Dict[str, np.ndarray]:
        """The payload attached to every broadcast: the clustered prompts."""
        return self.store.to_payload()


def aggregate_with_prompts(
    server: FederatedServer,
    aggregator: RefFiLPromptAggregator,
    updates: List[ClientUpdate],
) -> None:
    """One full RefFiL aggregation step: FedAvg, then prompt clustering, then payload refresh."""
    server.aggregate(updates)
    aggregator.ingest(updates)
    server.set_broadcast_payload(aggregator.broadcast_payload())


__all__ = ["RefFiLPromptAggregator", "aggregate_with_prompts"]
