"""Local prompt collection and the server-side global prompt store.

Client side (paper Eq. 5, Algorithm 1 lines 26-29): during the final local
epoch the client collects the prompts its CDAP generator produced for every
sample, averages them per class into its *Local Prompt Group* ``LPG_m`` (one
``d``-dimensional vector per class) and uploads that to the server.

Server side (Eq. 6-8, 11): the server gathers the ``LPG`` vectors of all
participating clients, clusters them per class with FINCH to obtain a set of
representative, domain-characteristic prompts ``\\hat{P}_g``, and also exposes
the per-class averages ``\\bar{P}_g`` used by the GPL loss.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional

import numpy as np

from repro.autograd.tensor import Tensor


class LocalPromptCollector:
    """Accumulates CDAP prompts per class and averages them into an LPG."""

    def __init__(self, embed_dim: int) -> None:
        self.embed_dim = embed_dim
        self._sums: Dict[int, np.ndarray] = {}
        self._counts: Dict[int, int] = {}

    def add_batch(self, prompts: Tensor, labels: np.ndarray) -> None:
        """Record a batch of generated prompts.

        ``prompts`` has shape ``(batch, prompt_length, embed_dim)``; each
        sample's prompt tokens are mean-pooled to a single ``d``-vector before
        accumulation (Eq. 5 averages prompts into one representative per
        class).
        """
        values = prompts.data
        if values.ndim != 3 or values.shape[-1] != self.embed_dim:
            raise ValueError(
                f"prompts must have shape (batch, p, {self.embed_dim}), got {values.shape}"
            )
        pooled = values.mean(axis=1)  # (batch, d)
        labels = np.asarray(labels, dtype=np.int64)
        if labels.shape[0] != pooled.shape[0]:
            raise ValueError("labels and prompts batch size mismatch")
        for vector, label in zip(pooled, labels):
            key = int(label)
            if key not in self._sums:
                self._sums[key] = np.zeros(self.embed_dim)
                self._counts[key] = 0
            self._sums[key] += vector
            self._counts[key] += 1

    def __len__(self) -> int:
        return sum(self._counts.values())

    @property
    def classes_seen(self) -> List[int]:
        return sorted(self._sums)

    def local_prompt_group(self) -> Dict[int, np.ndarray]:
        """The client's LPG: one averaged prompt vector per class seen locally."""
        return {
            label: self._sums[label] / max(self._counts[label], 1)
            for label in self._sums
        }

    def reset(self) -> None:
        self._sums.clear()
        self._counts.clear()


class GlobalPromptStore:
    """Server-side container of clustered, per-class representative prompts.

    ``representatives[k]`` is an array of shape ``(N_k, d)`` -- the FINCH
    cluster centroids of all clients' class-``k`` LPG vectors (Eq. 8).  The
    averaged global prompt matrix ``\\bar{P}_g`` of Eq. 11 stacks the per-class
    averages into a ``(num_classes, d)`` prompt-token matrix that the GPL loss
    feeds through the classifier alongside the feature map.
    """

    def __init__(self, num_classes: int, embed_dim: int) -> None:
        if num_classes < 1:
            raise ValueError("num_classes must be at least 1")
        self.num_classes = num_classes
        self.embed_dim = embed_dim
        self.representatives: Dict[int, np.ndarray] = {}

    # ------------------------------------------------------------------ #
    # Mutation
    # ------------------------------------------------------------------ #
    def replace(self, representatives: Mapping[int, np.ndarray]) -> None:
        """Replace the store contents with freshly clustered representatives."""
        cleaned: Dict[int, np.ndarray] = {}
        for label, vectors in representatives.items():
            array = np.atleast_2d(np.asarray(vectors, dtype=np.float64))
            if array.shape[-1] != self.embed_dim:
                raise ValueError(
                    f"class {label} prompts have dim {array.shape[-1]}, expected {self.embed_dim}"
                )
            if not 0 <= int(label) < self.num_classes:
                raise KeyError(f"class label {label} out of range [0, {self.num_classes})")
            cleaned[int(label)] = array
        self.representatives = cleaned

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return sum(array.shape[0] for array in self.representatives.values())

    @property
    def is_empty(self) -> bool:
        return len(self) == 0

    def class_prompts(self, label: int) -> np.ndarray:
        """All representative prompts of one class (possibly empty)."""
        return self.representatives.get(int(label), np.zeros((0, self.embed_dim)))

    def all_prompts(self) -> np.ndarray:
        """Every representative prompt stacked into ``(total, d)``."""
        if self.is_empty:
            return np.zeros((0, self.embed_dim))
        return np.concatenate(
            [self.representatives[label] for label in sorted(self.representatives)], axis=0
        )

    def prompts_excluding(self, label: int) -> np.ndarray:
        """Every representative prompt not belonging to ``label`` (DPCL negatives pool)."""
        others = [
            array
            for other, array in sorted(self.representatives.items())
            if other != int(label) and array.shape[0] > 0
        ]
        if not others:
            return np.zeros((0, self.embed_dim))
        return np.concatenate(others, axis=0)

    def averaged_prompt_matrix(self) -> Optional[np.ndarray]:
        """The GPL prompt tokens ``\\bar{P}_g`` of Eq. 11: one average per class.

        Classes with no representatives yet fall back to the overall mean so
        the matrix always has ``num_classes`` rows once any prompt exists.
        Returns ``None`` while the store is completely empty.
        """
        if self.is_empty:
            return None
        overall = self.all_prompts().mean(axis=0)
        matrix = np.tile(overall, (self.num_classes, 1))
        for label, array in self.representatives.items():
            if array.shape[0] > 0:
                matrix[label] = array.mean(axis=0)
        return matrix

    # ------------------------------------------------------------------ #
    # Serialisation (what actually travels over the "network")
    # ------------------------------------------------------------------ #
    def to_payload(self) -> Dict[str, np.ndarray]:
        """Serialise for broadcasting to clients."""
        return {f"class_{label}": array.copy() for label, array in self.representatives.items()}

    @classmethod
    def from_payload(
        cls, payload: Mapping[str, np.ndarray], num_classes: int, embed_dim: int
    ) -> "GlobalPromptStore":
        """Rebuild a store from a broadcast payload."""
        store = cls(num_classes, embed_dim)
        representatives = {}
        for key, value in payload.items():
            if not key.startswith("class_"):
                continue
            representatives[int(key.split("_", 1)[1])] = np.asarray(value)
        store.replace(representatives)
        return store

    def payload_bytes(self) -> int:
        return sum(array.nbytes for array in self.representatives.values())


__all__ = ["LocalPromptCollector", "GlobalPromptStore"]
