"""Domain-specific Prompt Contrastive Learning (DPCL) with temperature decay.

Paper Eq. 9-10.  For every sample the locally generated prompt ``u_i`` is
pulled toward the semantically closest global prompt(s) of its class (the
positives ``P+``) and pushed away from the remaining global prompts (the
negatives ``P-``), with an InfoNCE-style loss whose temperature shrinks as
tasks accumulate:

    ``tau' = max(tau_min, tau * (1 - (gamma + (t - 1) * beta)))``

Old/New clients (one domain) take the single closest class prompt as
positive; In-between clients (two domains) take the two closest.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.autograd import functional as F
from repro.autograd.tensor import Tensor
from repro.core.prompts import GlobalPromptStore
from repro.federated.increment import ClientGroup


@dataclass(frozen=True)
class DPCLConfig:
    """Hyper-parameters of the contrastive loss (paper's defaults in Sec. V-A)."""

    tau: float = 0.9
    tau_min: float = 0.3
    gamma: float = 0.1
    beta: float = 0.05
    enable_decay: bool = True
    weight: float = 1.0

    def __post_init__(self) -> None:
        if not 0 < self.tau_min <= self.tau:
            raise ValueError("require 0 < tau_min <= tau")
        if not 0.0 <= self.gamma <= 1.0:
            raise ValueError("gamma must be in [0, 1]")
        if not 0.0 <= self.beta <= 1.0:
            raise ValueError("beta must be in [0, 1]")


def decayed_temperature(config: DPCLConfig, task_number: int) -> float:
    """Temperature for the given 1-based task number (paper Eq. 10).

    With ``enable_decay`` off the base temperature is returned unchanged (the
    "w/o tau'" row of Table VIII).
    """
    if task_number < 1:
        raise ValueError("task_number is 1-based and must be >= 1")
    if not config.enable_decay:
        return config.tau
    decay = config.gamma + (task_number - 1) * config.beta
    return max(config.tau_min, config.tau * (1.0 - decay))


def _positive_count_for(group: ClientGroup) -> int:
    """Uo / Un clients hold one domain -> 1 positive; Ub hold two -> 2 positives."""
    return 2 if group is ClientGroup.IN_BETWEEN else 1


def dpcl_loss(
    local_prompts: Tensor,
    labels: np.ndarray,
    store: GlobalPromptStore,
    group: ClientGroup,
    temperature: float,
) -> Optional[Tensor]:
    """Contrastive loss between locally generated prompts and global prompts.

    Parameters
    ----------
    local_prompts:
        CDAP output of shape ``(batch, prompt_length, d)``.
    labels:
        Integer class labels of the batch.
    store:
        The clustered global prompt store broadcast by the server.
    group:
        The client's increment group (determines the number of positives).
    temperature:
        The decayed temperature ``tau'``.

    Returns
    -------
    A scalar loss tensor, or ``None`` when the store has no usable prompts yet
    (first rounds of the first task) -- the caller simply omits the term.
    """
    if store.is_empty:
        return None
    if temperature <= 0:
        raise ValueError("temperature must be positive")
    labels = np.asarray(labels, dtype=np.int64)
    pooled = local_prompts.mean(axis=1)  # (batch, d), differentiable
    num_positives = _positive_count_for(group)

    per_sample_losses = []
    for index in range(pooled.shape[0]):
        label = int(labels[index])
        class_prompts = store.class_prompts(label)
        negatives_pool = store.prompts_excluding(label)
        if class_prompts.shape[0] == 0:
            # No global knowledge about this class yet; skip the sample.
            continue
        anchor = pooled[index]  # (d,)
        # Choose positives by cosine similarity against the (constant) globals.
        anchor_values = anchor.data
        similarities = _cosine_to_all(anchor_values, class_prompts)
        take = min(num_positives, class_prompts.shape[0])
        positive_idx = np.argsort(-similarities)[:take]
        positives = class_prompts[positive_idx]
        # Remaining same-class prompts join the negatives (they represent other domains).
        remaining_idx = np.setdiff1d(np.arange(class_prompts.shape[0]), positive_idx)
        negatives = class_prompts[remaining_idx]
        if negatives_pool.shape[0] > 0:
            negatives = (
                np.concatenate([negatives, negatives_pool], axis=0)
                if negatives.shape[0] > 0
                else negatives_pool
            )
        if negatives.shape[0] == 0:
            # Without negatives the InfoNCE ratio is degenerate; skip.
            continue
        pos_sim = F.cosine_similarity(
            anchor.reshape(1, -1).broadcast_to((positives.shape[0], anchor_values.shape[0])),
            Tensor(positives),
        )
        neg_sim = F.cosine_similarity(
            anchor.reshape(1, -1).broadcast_to((negatives.shape[0], anchor_values.shape[0])),
            Tensor(negatives),
        )
        pos_exp = (pos_sim * (1.0 / temperature)).exp().sum()
        neg_exp = (neg_sim * (1.0 / temperature)).exp().sum()
        per_sample_losses.append(-(pos_exp / (pos_exp + neg_exp)).log())

    if not per_sample_losses:
        return None
    total = per_sample_losses[0]
    for loss in per_sample_losses[1:]:
        total = total + loss
    return total * (1.0 / len(per_sample_losses))


def _cosine_to_all(anchor: np.ndarray, candidates: np.ndarray) -> np.ndarray:
    """Plain-numpy cosine similarity of one vector against candidate rows."""
    anchor_norm = anchor / max(np.linalg.norm(anchor), 1e-12)
    candidate_norms = candidates / np.maximum(
        np.linalg.norm(candidates, axis=1, keepdims=True), 1e-12
    )
    return candidate_norms @ anchor_norm


__all__ = ["DPCLConfig", "decayed_temperature", "dpcl_loss"]
