"""Key-query matched prompt pool (the mechanism behind L2P and DualPrompt's expert prompts).

A pool holds ``pool_size`` prompts, each a ``(prompt_length, embed_dim)``
token block with an associated learnable key vector.  Given a query (here the
mean patch-token embedding of the image), the ``top_k`` prompts with the most
cosine-similar keys are prepended to the token sequence, and a pull loss
encourages the selected keys to move toward the queries that picked them.

The paper's dagger variants (FedL2P-dagger, FedDualPrompt-dagger) keep the pool
enabled; the plain variants replace it with a single shared prompt, which is
what the ``enabled`` flag models.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.autograd import functional as F
from repro.autograd.tensor import Tensor
from repro.nn import init
from repro.nn.module import Module, Parameter
from repro.utils.rng import spawn_rng


@dataclass(frozen=True)
class PromptPoolConfig:
    """Size and selection hyper-parameters of a prompt pool."""

    pool_size: int = 6
    prompt_length: int = 2
    embed_dim: int = 32
    top_k: int = 2
    seed: int = 0

    def __post_init__(self) -> None:
        if self.pool_size < 1:
            raise ValueError("pool_size must be at least 1")
        if not 1 <= self.top_k <= self.pool_size:
            raise ValueError("top_k must be in [1, pool_size]")
        if self.prompt_length < 1:
            raise ValueError("prompt_length must be at least 1")


class PromptPool(Module):
    """Learnable prompt pool with cosine key-query selection."""

    def __init__(self, config: PromptPoolConfig) -> None:
        super().__init__()
        self.config = config
        rng = spawn_rng(config.seed, "prompt-pool")
        self.prompts = Parameter(
            init.normal((config.pool_size, config.prompt_length, config.embed_dim), std=0.02, rng=rng)
        )
        self.keys = Parameter(init.normal((config.pool_size, config.embed_dim), std=0.02, rng=rng))

    def select(self, query: Tensor) -> Tuple[Tensor, Tensor, np.ndarray]:
        """Select the top-k prompts for each query.

        Parameters
        ----------
        query:
            Detached query embeddings of shape ``(batch, embed_dim)``.

        Returns
        -------
        ``(prompt_tokens, pull_loss, indices)`` where ``prompt_tokens`` has
        shape ``(batch, top_k * prompt_length, embed_dim)``, ``pull_loss`` is
        the mean ``1 - cos(query, selected_key)`` and ``indices`` records which
        pool entries each sample picked (for frequency statistics / tests).
        """
        if query.ndim != 2 or query.shape[1] != self.config.embed_dim:
            raise ValueError(
                f"query must be (batch, {self.config.embed_dim}), got {query.shape}"
            )
        batch = query.shape[0]
        # Selection itself is a hard, non-differentiable top-k on detached values.
        query_values = query.data
        key_values = self.keys.data
        query_norm = query_values / np.maximum(
            np.linalg.norm(query_values, axis=1, keepdims=True), 1e-12
        )
        key_norm = key_values / np.maximum(np.linalg.norm(key_values, axis=1, keepdims=True), 1e-12)
        similarity = query_norm @ key_norm.T  # (batch, pool)
        indices = np.argsort(-similarity, axis=1)[:, : self.config.top_k]  # (batch, top_k)

        selected_prompts = self.prompts[indices]  # (batch, top_k, p, d)
        prompt_tokens = selected_prompts.reshape(
            batch, self.config.top_k * self.config.prompt_length, self.config.embed_dim
        )
        selected_keys = self.keys[indices]  # (batch, top_k, d)
        query_expanded = query.reshape(batch, 1, self.config.embed_dim).broadcast_to(
            (batch, self.config.top_k, self.config.embed_dim)
        )
        pull = 1.0 - F.cosine_similarity(query_expanded, selected_keys)  # (batch, top_k)
        return prompt_tokens, pull.mean(), indices

    def selection_histogram(self, indices: np.ndarray) -> np.ndarray:
        """How often each pool entry was selected in ``indices`` (diagnostics)."""
        return np.bincount(np.asarray(indices).reshape(-1), minlength=self.config.pool_size)


class SinglePrompt(Module):
    """A single shared learnable prompt: the pool-disabled ("fair comparison") variant."""

    def __init__(self, prompt_length: int, embed_dim: int, seed: int = 0) -> None:
        super().__init__()
        rng = spawn_rng(seed, "single-prompt")
        self.prompt = Parameter(init.normal((prompt_length, embed_dim), std=0.02, rng=rng))

    def tokens(self, batch: int) -> Tensor:
        length, dim = self.prompt.shape
        return self.prompt.reshape(1, length, dim).broadcast_to((batch, length, dim))


__all__ = ["PromptPoolConfig", "PromptPool", "SinglePrompt"]
