"""FedEWC: Elastic Weight Consolidation adapted to federated domain-incremental learning.

Kirkpatrick et al.'s EWC penalises movement of parameters that were important
for previous tasks, weighting the quadratic penalty by the (diagonal) Fisher
information.  In the federated adaptation:

* during the *last round* of every task each selected client estimates a local
  diagonal Fisher on its own data (squared gradients of the log-likelihood)
  and uploads it with its model update;
* the server averages the local Fishers into a global Fisher and anchors the
  penalty at the end-of-task global parameters;
* from the next task onward every client adds
  ``lambda/2 * sum_i F_i (theta_i - theta*_i)^2`` to its local loss.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

import numpy as np

from repro.autograd import functional as F
from repro.autograd.tensor import Tensor
from repro.baselines.base import BaselineConfig, CrossEntropyFederatedMethod
from repro.federated.aggregation import weighted_average_arrays
from repro.federated.client import ClientHandle
from repro.federated.communication import ClientUpdate
from repro.federated.server import FederatedServer
from repro.nn.module import Module


class FedEWCMethod(CrossEntropyFederatedMethod):
    """Cross-entropy plus a Fisher-weighted quadratic penalty toward the previous task's optimum."""

    name = "FedEWC"

    def __init__(
        self,
        config: BaselineConfig,
        constraint: float = 300.0,
        fisher_batches: int = 2,
    ) -> None:
        super().__init__(config)
        if constraint < 0:
            raise ValueError("constraint must be non-negative")
        self.constraint = constraint
        self.fisher_batches = fisher_batches
        self._fisher: Optional[Dict[str, np.ndarray]] = None
        self._anchor: Optional[Dict[str, np.ndarray]] = None

    # ------------------------------------------------------------------ #
    # Local objective
    # ------------------------------------------------------------------ #
    def batch_loss(
        self, model: Module, images: Tensor, labels: np.ndarray, client: ClientHandle
    ) -> Tensor:
        loss = F.cross_entropy(model(images), labels)
        if self._fisher is None or self._anchor is None or self.constraint == 0:
            return loss
        penalty: Optional[Tensor] = None
        for name, param in model.named_parameters():
            if not param.requires_grad or name not in self._fisher:
                continue
            diff = param - Tensor(self._anchor[name])
            term = (Tensor(self._fisher[name]) * diff * diff).sum()
            penalty = term if penalty is None else penalty + term
        if penalty is None:
            return loss
        return loss + (self.constraint / 2.0) * penalty

    # ------------------------------------------------------------------ #
    # Fisher estimation (uploaded during the final round of a task)
    # ------------------------------------------------------------------ #
    def _is_final_round(self, client: ClientHandle) -> bool:
        round_index = client.metadata.get("round_index", 0.0)
        rounds_per_task = client.metadata.get("rounds_per_task", 1.0)
        return round_index >= rounds_per_task - 1

    def _estimate_local_fisher(self, model: Module, client: ClientHandle) -> Dict[str, np.ndarray]:
        fisher = {
            name: np.zeros_like(param.data)
            for name, param in model.named_parameters()
            if param.requires_grad
        }
        batches_used = 0
        for images, labels in client.loader():
            if batches_used >= self.fisher_batches:
                break
            model.zero_grad()
            loss = F.cross_entropy(model(images), labels)
            loss.backward()
            for name, param in model.named_parameters():
                if param.requires_grad and param.grad is not None:
                    fisher[name] += param.grad ** 2
            batches_used += 1
        if batches_used:
            for name in fisher:
                fisher[name] /= batches_used
        model.zero_grad()
        return fisher

    def extra_payload(self, model: Module, client: ClientHandle) -> Dict[str, Any]:
        if not self._is_final_round(client):
            return {}
        fisher = self._estimate_local_fisher(model, client)
        return {"fisher": fisher}

    # ------------------------------------------------------------------ #
    # Server side: average the Fishers, anchor at end-of-task parameters
    # ------------------------------------------------------------------ #
    def aggregate(self, server: FederatedServer, updates: List[ClientUpdate]) -> None:
        server.aggregate(updates)
        uploaded = [update.payload["fisher"] for update in updates if "fisher" in update.payload]
        if not uploaded:
            return
        averaged: Dict[str, np.ndarray] = {}
        for name in uploaded[0]:
            averaged[name] = np.mean([fisher[name] for fisher in uploaded], axis=0)
        # Normalise so the constraint strength is comparable across tasks.
        max_value = max(float(array.max()) for array in averaged.values())
        if max_value > 0:
            for name in averaged:
                averaged[name] = averaged[name] / max_value
        self._fisher = averaged
        self._anchor = {
            name: value.copy()
            for name, value in server.global_state.items()
            if not name.startswith("buffer::")
        }

    def apply_async_update(
        self, server: FederatedServer, update: ClientUpdate, mixing: float
    ) -> None:
        """Async arrivals blend the Fisher information too.

        The base hook replays :meth:`aggregate` on a single-arrival round,
        where the cohort mean degenerates to the one client's Fisher — a
        last-writer-wins overwrite of the population estimate.  The FedAsync
        analogue of the sync-mode cohort average is an exponential moving
        average at the arrival's mixing rate, so a stale or lone client
        nudges the global Fisher instead of replacing it.  The anchor needs
        no such treatment: it tracks the (already blended) global state.
        """
        prior = self._fisher
        super().apply_async_update(server, update, mixing)
        fresh = self._fisher
        if (
            prior is not None
            and fresh is not None
            and fresh is not prior  # the arrival actually carried a Fisher
            and set(prior) == set(fresh)
        ):
            self._fisher = {
                name: weighted_average_arrays(
                    [prior[name], fresh[name]], [1.0 - mixing, mixing]
                )
                for name in fresh
            }

    @property
    def has_penalty(self) -> bool:
        return self._fisher is not None and self._anchor is not None


__all__ = ["FedEWCMethod"]
