"""Rehearsal-free federated continual-learning baselines.

The paper benchmarks RefFiL against federated adaptations of five
centralised continual-learning methods (Sec. V-A "Baselines"):

* **Finetune** -- plain FedAvg with cross-entropy; the lower bound that
  suffers full catastrophic forgetting.
* **FedLwF** -- Learning-without-Forgetting: knowledge distillation from the
  previous task's global model.
* **FedEWC** -- Elastic Weight Consolidation: a Fisher-information penalty
  anchored at the previous task's global parameters.
* **FedL2P** -- Learning-to-Prompt with a key-query matched prompt pool; the
  dagger variant keeps the pool enabled, the plain variant replaces it with a
  single shared prompt (the paper's "fair comparison" setting).
* **FedDualPrompt** -- DualPrompt's General + Expert prompts; the dagger
  variant keeps per-task expert prompts with key matching.

All baselines share the same :class:`repro.models.PromptedBackbone` and the
same federated loop; only the local objective and the prompt machinery differ.
"""

from repro.baselines.base import BaselineConfig, CrossEntropyFederatedMethod
from repro.baselines.finetune import FinetuneMethod
from repro.baselines.fedlwf import FedLwFMethod
from repro.baselines.fedewc import FedEWCMethod
from repro.baselines.prompt_pool import PromptPool, PromptPoolConfig
from repro.baselines.fedl2p import FedL2PMethod, L2PModel
from repro.baselines.feddualprompt import FedDualPromptMethod, DualPromptModel
from repro.baselines.registry import available_methods, build_method

__all__ = [
    "BaselineConfig",
    "CrossEntropyFederatedMethod",
    "FinetuneMethod",
    "FedLwFMethod",
    "FedEWCMethod",
    "PromptPool",
    "PromptPoolConfig",
    "FedL2PMethod",
    "L2PModel",
    "FedDualPromptMethod",
    "DualPromptModel",
    "available_methods",
    "build_method",
]
