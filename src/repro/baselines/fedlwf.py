"""FedLwF: Learning without Forgetting adapted to federated domain-incremental learning.

Li & Hoiem's LwF regularises the current model with a knowledge-distillation
loss against a frozen copy of the model from before the task switch.  In the
federated adaptation the teacher is the *global* model snapshotted at the end
of the previous task, which every client can reconstruct from the broadcast
state without storing any data.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.autograd import functional as F
from repro.autograd.tensor import Tensor, no_grad
from repro.baselines.base import BaselineConfig, CrossEntropyFederatedMethod
from repro.federated.client import ClientHandle
from repro.federated.server import FederatedServer
from repro.models.backbone import PromptedBackbone
from repro.nn.module import Module


class FedLwFMethod(CrossEntropyFederatedMethod):
    """Cross-entropy plus temperature-scaled distillation from the previous task's global model."""

    name = "FedLwF"

    def __init__(
        self,
        config: BaselineConfig,
        distillation_weight: float = 1.0,
        temperature: float = 2.0,
    ) -> None:
        super().__init__(config)
        if distillation_weight < 0:
            raise ValueError("distillation_weight must be non-negative")
        self.distillation_weight = distillation_weight
        self.temperature = temperature
        self._teacher: Optional[Module] = None
        self._teacher_state: Optional[Dict[str, np.ndarray]] = None

    # ------------------------------------------------------------------ #
    # Task lifecycle: snapshot the global model as the new teacher
    # ------------------------------------------------------------------ #
    def on_task_start(self, task_id: int, server: FederatedServer) -> None:
        if task_id == 0:
            return
        self._teacher_state = {key: value.copy() for key, value in server.global_state.items()}
        if self._teacher is None:
            self._teacher = PromptedBackbone(self.config.backbone)
        self._teacher.load_state_dict(self._teacher_state)
        self._teacher.eval()

    @property
    def has_teacher(self) -> bool:
        return self._teacher is not None and self._teacher_state is not None

    # ------------------------------------------------------------------ #
    # Local objective
    # ------------------------------------------------------------------ #
    def batch_loss(
        self, model: Module, images: Tensor, labels: np.ndarray, client: ClientHandle
    ) -> Tensor:
        logits = model(images)
        loss = F.cross_entropy(logits, labels)
        if self.has_teacher and self.distillation_weight > 0:
            with no_grad():
                teacher_logits = self._teacher(images)
            distillation = F.knowledge_distillation_loss(
                logits, teacher_logits, temperature=self.temperature
            )
            loss = loss + self.distillation_weight * distillation
        return loss


__all__ = ["FedLwFMethod"]
