"""FedDualPrompt: DualPrompt (Wang et al., 2022) adapted to federated learning.

DualPrompt replaces L2P's single pool with two complementary prompt types:

* a **General prompt** (G-prompt) shared by every task, carrying
  task-invariant instructions, and
* **Expert prompts** (E-prompts), one per task, selected by the task identity
  during training and by key-query matching at inference.

The plain variant ("prompt pool deactivated" in the paper's fair-comparison
setting) keeps the G-prompt and a single shared E-prompt; the dagger variant
keeps the per-task E-prompt bank with learned keys.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.autograd import functional as F
from repro.autograd.tensor import Tensor
from repro.baselines.base import BaselineConfig, CrossEntropyFederatedMethod
from repro.baselines.prompt_pool import SinglePrompt
from repro.federated.client import ClientHandle
from repro.models.backbone import BackboneConfig, PromptedBackbone
from repro.nn import init
from repro.nn.module import Module, Parameter
from repro.utils.rng import spawn_rng


class DualPromptModel(Module):
    """Backbone plus General and Expert prompts."""

    def __init__(
        self,
        backbone_config: BackboneConfig,
        num_tasks: int,
        general_length: int = 2,
        expert_length: int = 2,
        use_expert_bank: bool = True,
    ) -> None:
        super().__init__()
        if num_tasks < 1:
            raise ValueError("num_tasks must be at least 1")
        self.backbone = PromptedBackbone(backbone_config)
        self.num_tasks = num_tasks
        self.use_expert_bank = use_expert_bank
        rng = spawn_rng(backbone_config.seed, "dualprompt")
        embed_dim = backbone_config.embed_dim
        self.general_prompt = Parameter(init.normal((general_length, embed_dim), std=0.02, rng=rng))
        if use_expert_bank:
            self.expert_prompts = Parameter(
                init.normal((num_tasks, expert_length, embed_dim), std=0.02, rng=rng)
            )
            self.expert_keys = Parameter(init.normal((num_tasks, embed_dim), std=0.02, rng=rng))
            self.shared_expert = None
        else:
            self.expert_prompts = None
            self.expert_keys = None
            self.shared_expert = SinglePrompt(expert_length, embed_dim, seed=backbone_config.seed)

    # ------------------------------------------------------------------ #
    # Prompt assembly
    # ------------------------------------------------------------------ #
    def _general_tokens(self, batch: int) -> Tensor:
        length, dim = self.general_prompt.shape
        return self.general_prompt.reshape(1, length, dim).broadcast_to((batch, length, dim))

    def _expert_tokens(self, patch_tokens: Tensor, task_id: Optional[int]):
        """Expert prompt tokens plus the key-matching pull loss (zero when not applicable)."""
        batch = patch_tokens.shape[0]
        if not self.use_expert_bank:
            return self.shared_expert.tokens(batch), Tensor(0.0)
        if task_id is not None:
            indices = np.full(batch, int(task_id), dtype=np.int64)
        else:
            # Inference: pick the expert whose key best matches the query.
            query = patch_tokens.mean(axis=1).data
            query_norm = query / np.maximum(np.linalg.norm(query, axis=1, keepdims=True), 1e-12)
            keys = self.expert_keys.data
            key_norm = keys / np.maximum(np.linalg.norm(keys, axis=1, keepdims=True), 1e-12)
            indices = (query_norm @ key_norm.T).argmax(axis=1)
        expert_tokens = self.expert_prompts[indices]  # (batch, e_len, d)
        selected_keys = self.expert_keys[indices]  # (batch, d)
        query = patch_tokens.mean(axis=1).detach()
        pull = (1.0 - F.cosine_similarity(query, selected_keys)).mean()
        return expert_tokens, pull

    def forward_with_pull(self, images: Tensor, task_id: Optional[int] = None):
        patches = self.backbone.patch_tokens(images)
        batch = patches.shape[0]
        expert_tokens, pull_loss = self._expert_tokens(patches, task_id)
        prompts = Tensor.concatenate([self._general_tokens(batch), expert_tokens], axis=1)
        logits = self.backbone.forward_from_patches(patches, prompts)
        return logits, pull_loss

    def forward(self, images: Tensor, task_id: Optional[int] = None) -> Tensor:
        logits, _ = self.forward_with_pull(images, task_id)
        return logits


class FedDualPromptMethod(CrossEntropyFederatedMethod):
    """Federated DualPrompt; ``use_expert_bank=True`` is the dagger variant."""

    name = "FedDualPrompt"

    def __init__(
        self,
        config: BaselineConfig,
        num_tasks: int,
        use_expert_bank: bool = False,
        general_length: int = 2,
        expert_length: int = 2,
        pull_constraint: float = 0.5,
    ) -> None:
        super().__init__(config)
        self.num_tasks = num_tasks
        self.use_expert_bank = use_expert_bank
        self.general_length = general_length
        self.expert_length = expert_length
        self.pull_constraint = pull_constraint
        self.name = "FedDualPrompt†" if use_expert_bank else "FedDualPrompt"

    def build_model(self) -> DualPromptModel:
        return DualPromptModel(
            self.config.backbone,
            num_tasks=self.num_tasks,
            general_length=self.general_length,
            expert_length=self.expert_length,
            use_expert_bank=self.use_expert_bank,
        )

    def batch_loss(
        self, model: DualPromptModel, images: Tensor, labels: np.ndarray, client: ClientHandle
    ) -> Tensor:
        task_id = min(client.task_id, self.num_tasks - 1)
        logits, pull_loss = model.forward_with_pull(images, task_id=task_id)
        loss = F.cross_entropy(logits, labels)
        if self.use_expert_bank and self.pull_constraint > 0:
            loss = loss + self.pull_constraint * pull_loss
        return loss

    def predict_logits(self, model: DualPromptModel, images: Tensor) -> Tensor:
        return model(images, task_id=None)


__all__ = ["DualPromptModel", "FedDualPromptMethod"]
