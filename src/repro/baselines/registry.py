"""Method registry: build any of the paper's eight compared methods by name.

The names match the rows of Tables I-VI: ``finetune``, ``fedlwf``, ``fedewc``,
``fedl2p``, ``fedl2p_pool`` (dagger), ``feddualprompt``, ``feddualprompt_pool``
(dagger) and ``refil``, plus the ablation variants ``refil_<components>`` used
by Table VII.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.baselines.base import BaselineConfig
from repro.baselines.feddualprompt import FedDualPromptMethod
from repro.baselines.fedewc import FedEWCMethod
from repro.baselines.fedl2p import FedL2PMethod
from repro.baselines.fedlwf import FedLwFMethod
from repro.baselines.finetune import FinetuneMethod
from repro.core.dpcl import DPCLConfig
from repro.core.method import RefFiLConfig, RefFiLMethod
from repro.federated.method import FederatedMethod
from repro.models.backbone import BackboneConfig

_METHOD_NAMES: Tuple[str, ...] = (
    "finetune",
    "fedlwf",
    "fedewc",
    "fedl2p",
    "fedl2p_pool",
    "feddualprompt",
    "feddualprompt_pool",
    "refil",
    "refil_cdap",
    "refil_gpl",
    "refil_cdap_gpl",
    "refil_gpl_dpcl",
)


def available_methods() -> Tuple[str, ...]:
    """Names accepted by :func:`build_method`."""
    return _METHOD_NAMES


def build_method(
    name: str,
    backbone: BackboneConfig,
    num_tasks: int,
    dpcl: Optional[DPCLConfig] = None,
    prompt_length: int = 4,
) -> FederatedMethod:
    """Instantiate a method by its registry name.

    Parameters
    ----------
    name:
        One of :func:`available_methods`.
    backbone:
        Backbone configuration shared by every method (fair comparison).
    num_tasks:
        Number of incremental tasks in the scenario (needed by DualPrompt's
        expert bank and RefFiL's task-key embedding).
    dpcl:
        Optional override of RefFiL's contrastive-temperature configuration
        (used by the Table VIII sensitivity sweep).
    prompt_length:
        Length of RefFiL's generated prompts.
    """
    key = name.lower()
    baseline_config = BaselineConfig(backbone=backbone)
    dpcl_config = dpcl if dpcl is not None else DPCLConfig()

    def refil_with(use_cdap: bool, use_gpl: bool, use_dpcl: bool) -> RefFiLMethod:
        return RefFiLMethod(
            RefFiLConfig(
                backbone=backbone,
                prompt_length=prompt_length,
                max_tasks=max(num_tasks, 1),
                dpcl=dpcl_config,
                use_cdap=use_cdap,
                use_gpl=use_gpl,
                use_dpcl=use_dpcl,
            )
        )

    if key == "finetune":
        return FinetuneMethod(baseline_config)
    if key == "fedlwf":
        return FedLwFMethod(baseline_config)
    if key == "fedewc":
        return FedEWCMethod(baseline_config)
    if key == "fedl2p":
        return FedL2PMethod(baseline_config, use_pool=False)
    if key == "fedl2p_pool":
        return FedL2PMethod(baseline_config, use_pool=True)
    if key == "feddualprompt":
        return FedDualPromptMethod(baseline_config, num_tasks=num_tasks, use_expert_bank=False)
    if key == "feddualprompt_pool":
        return FedDualPromptMethod(baseline_config, num_tasks=num_tasks, use_expert_bank=True)
    if key == "refil":
        return refil_with(True, True, True)
    if key == "refil_cdap":
        return refil_with(True, False, False)
    if key == "refil_gpl":
        return refil_with(False, True, False)
    if key == "refil_cdap_gpl":
        return refil_with(True, True, False)
    if key == "refil_gpl_dpcl":
        return refil_with(False, True, True)
    raise KeyError(f"unknown method {name!r}; available: {', '.join(_METHOD_NAMES)}")


__all__ = ["available_methods", "build_method"]
