"""FedL2P: Learning-to-Prompt (Wang et al., 2022) adapted to federated learning.

L2P keeps a pool of prompts selected per input by key-query matching; the
selected prompts are prepended to the token sequence and trained jointly with
a pull loss that draws keys toward the queries that selected them.  The
federated adaptation simply lets FedAvg aggregate the pool (prompts + keys)
along with the backbone.

``use_pool=False`` reproduces the paper's "prompt pool deactivated" fair
comparison setting, where a single shared prompt replaces the pool;
``use_pool=True`` is the dagger variant of the tables.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.autograd import functional as F
from repro.autograd.tensor import Tensor
from repro.baselines.base import BaselineConfig, CrossEntropyFederatedMethod
from repro.baselines.prompt_pool import PromptPool, PromptPoolConfig, SinglePrompt
from repro.federated.client import ClientHandle
from repro.models.backbone import BackboneConfig, PromptedBackbone
from repro.nn.module import Module


class L2PModel(Module):
    """Backbone plus a (pooled or single) prompt source."""

    def __init__(
        self,
        backbone_config: BackboneConfig,
        pool_config: Optional[PromptPoolConfig],
        prompt_length: int = 2,
    ) -> None:
        super().__init__()
        self.backbone = PromptedBackbone(backbone_config)
        self.use_pool = pool_config is not None
        if self.use_pool:
            self.pool = PromptPool(pool_config)
            self.single_prompt = None
        else:
            self.pool = None
            self.single_prompt = SinglePrompt(
                prompt_length, backbone_config.embed_dim, seed=backbone_config.seed
            )

    def query(self, patch_tokens: Tensor) -> Tensor:
        """The L2P query function: mean patch-token embedding, detached."""
        return patch_tokens.mean(axis=1).detach()

    def forward_with_pull(self, images: Tensor):
        """Return ``(logits, pull_loss)``; pull loss is zero without a pool."""
        patches = self.backbone.patch_tokens(images)
        if self.use_pool:
            prompts, pull_loss, _ = self.pool.select(self.query(patches))
        else:
            prompts = self.single_prompt.tokens(patches.shape[0])
            pull_loss = Tensor(0.0)
        logits = self.backbone.forward_from_patches(patches, prompts)
        return logits, pull_loss

    def forward(self, images: Tensor) -> Tensor:
        logits, _ = self.forward_with_pull(images)
        return logits


class FedL2PMethod(CrossEntropyFederatedMethod):
    """Federated L2P; set ``use_pool=True`` for the dagger variant."""

    name = "FedL2P"

    def __init__(
        self,
        config: BaselineConfig,
        use_pool: bool = False,
        pool_size: int = 6,
        prompt_length: int = 2,
        top_k: int = 2,
        pull_constraint: float = 0.5,
    ) -> None:
        super().__init__(config)
        self.use_pool = use_pool
        self.prompt_length = prompt_length
        self.pull_constraint = pull_constraint
        self.pool_config = (
            PromptPoolConfig(
                pool_size=pool_size,
                prompt_length=prompt_length,
                embed_dim=config.backbone.embed_dim,
                top_k=top_k,
                seed=config.backbone.seed,
            )
            if use_pool
            else None
        )
        self.name = "FedL2P†" if use_pool else "FedL2P"

    def build_model(self) -> L2PModel:
        return L2PModel(self.config.backbone, self.pool_config, prompt_length=self.prompt_length)

    def batch_loss(
        self, model: L2PModel, images: Tensor, labels: np.ndarray, client: ClientHandle
    ) -> Tensor:
        logits, pull_loss = model.forward_with_pull(images)
        loss = F.cross_entropy(logits, labels)
        if self.use_pool and self.pull_constraint > 0:
            loss = loss + self.pull_constraint * pull_loss
        return loss

    def predict_logits(self, model: L2PModel, images: Tensor) -> Tensor:
        return model(images)


__all__ = ["L2PModel", "FedL2PMethod"]
