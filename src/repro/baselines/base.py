"""Shared scaffolding for the federated baselines."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List

import numpy as np

from repro.autograd import functional as F
from repro.autograd.tensor import Tensor
from repro.federated.client import ClientHandle, run_local_sgd
from repro.federated.communication import ClientUpdate
from repro.federated.method import FederatedMethod
from repro.models.backbone import BackboneConfig, PromptedBackbone
from repro.nn.module import Module


@dataclass(frozen=True)
class BaselineConfig:
    """Configuration shared by every baseline: just the backbone (plus extras per method)."""

    backbone: BackboneConfig = field(default_factory=BackboneConfig)


class CrossEntropyFederatedMethod(FederatedMethod):
    """A federated method whose local objective is plain cross-entropy.

    Subclasses override :meth:`batch_loss` to add their regularisers (LwF's
    distillation term, EWC's Fisher penalty) and may override
    :meth:`extra_payload` to upload method-specific statistics.
    """

    name = "CE-base"

    def __init__(self, config: BaselineConfig) -> None:
        self.config = config

    def build_model(self) -> Module:
        return PromptedBackbone(self.config.backbone)

    # ------------------------------------------------------------------ #
    # Hooks for subclasses
    # ------------------------------------------------------------------ #
    def batch_loss(
        self, model: Module, images: Tensor, labels: np.ndarray, client: ClientHandle
    ) -> Tensor:
        """Loss for one mini-batch; default is plain cross-entropy."""
        return F.cross_entropy(model(images), labels)

    def extra_payload(self, model: Module, client: ClientHandle) -> Dict[str, Any]:
        """Method-specific extras to attach to the client update (default: none)."""
        return {}

    # ------------------------------------------------------------------ #
    # FederatedMethod interface
    # ------------------------------------------------------------------ #
    def local_update(
        self,
        model: Module,
        global_state: Dict[str, np.ndarray],
        broadcast_payload: Dict[str, Any],
        client: ClientHandle,
    ) -> ClientUpdate:
        mean_loss = run_local_sgd(
            model,
            client,
            loss_fn=lambda m, images, labels: self.batch_loss(m, images, labels, client),
        )
        return ClientUpdate(
            client_id=client.client_id,
            state_dict=model.state_dict(),
            num_samples=client.num_samples,
            payload=self.extra_payload(model, client),
            train_loss=mean_loss,
        )

    def predict_logits(self, model: Module, images: Tensor) -> Tensor:
        return model(images)


__all__ = ["BaselineConfig", "CrossEntropyFederatedMethod"]
