"""Finetune baseline: FedAvg with plain cross-entropy and no forgetting mitigation.

This is the paper's lower bound ("straightforward model updates but
significantly impacted by catastrophic forgetting") and the reference point
for the Table VII ablation deltas.
"""

from __future__ import annotations

from repro.baselines.base import BaselineConfig, CrossEntropyFederatedMethod


class FinetuneMethod(CrossEntropyFederatedMethod):
    """Plain federated finetuning on whatever data each client currently holds."""

    name = "Finetune"

    def __init__(self, config: BaselineConfig) -> None:
        super().__init__(config)


__all__ = ["FinetuneMethod"]
