"""Datasets: procedural domain-shift image data and federated partitioning.

The paper evaluates on four public image datasets with domain shift
(Digits-Five, OfficeCaltech10, PACS, DomainNet).  Those datasets cannot be
downloaded in this offline environment, so :mod:`repro.datasets.synthetic`
provides a procedural generator in which each *class* is a parametric spatial
pattern and each *domain* applies a distinct rendering style (colour mixing,
background, texture, noise, inversion).  The wrappers in
``digits_five`` / ``office_caltech`` / ``pacs`` / ``domainnet`` mirror the
class/domain structure and relative sizes of the real datasets; see DESIGN.md
for the substitution rationale.
"""

from repro.datasets.base import ArrayDataset, DataLoader, train_test_split
from repro.datasets.synthetic import (
    DomainDatasetSpec,
    DomainStyle,
    SyntheticDomainDataset,
    generate_domain_split,
)
from repro.datasets.registry import (
    available_datasets,
    build_dataset,
    get_alternate_domain_order,
    get_dataset_spec,
    load_domain,
)
from repro.datasets.partition import quantity_shift_partition, partition_domain_across_clients

__all__ = [
    "ArrayDataset",
    "DataLoader",
    "train_test_split",
    "DomainDatasetSpec",
    "DomainStyle",
    "SyntheticDomainDataset",
    "generate_domain_split",
    "available_datasets",
    "build_dataset",
    "get_alternate_domain_order",
    "get_dataset_spec",
    "load_domain",
    "quantity_shift_partition",
    "partition_domain_across_clients",
]
