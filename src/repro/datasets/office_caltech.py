"""OfficeCaltech10 analogue: 10 classes, four domains, small sample counts.

The real OfficeCaltech10 has only 2,533 images over the domains Amazon,
Caltech, Webcam and DSLR, which is why the paper runs it with fewer clients
(10 instead of 20).  The synthetic analogue preserves that scarcity: it is the
smallest of the four dataset specs.
"""

from __future__ import annotations

from repro.datasets.synthetic import DomainDatasetSpec

OFFICE_CALTECH_DOMAINS = ("amazon", "caltech", "webcam", "dslr")

OFFICE_CALTECH_SPEC = DomainDatasetSpec(
    name="office_caltech",
    num_classes=10,
    domains=OFFICE_CALTECH_DOMAINS,
    image_size=16,
    train_per_domain=160,
    test_per_domain=80,
    seed=23,
)

#: Domain order used in Table II / Table IV ("new domain order").
OFFICE_CALTECH_ALTERNATE_ORDER = ("caltech", "amazon", "dslr", "webcam")

__all__ = ["OFFICE_CALTECH_SPEC", "OFFICE_CALTECH_DOMAINS", "OFFICE_CALTECH_ALTERNATE_ORDER"]
