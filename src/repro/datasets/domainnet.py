"""FedDomainNet analogue: the paper's 48-class, 6-domain subset of DomainNet.

DomainNet is by far the hardest of the four datasets (sparse data spread over
many classes); the synthetic analogue keeps six domains and a larger class
count than the other specs so that, as in the paper, absolute accuracies are
much lower and method gaps narrower.  The default class count is 24 (half of
the paper's 48) to keep CPU runtimes reasonable; the experiment configs can
restore 48 via ``DomainDatasetSpec.scaled(num_classes=48)``.
"""

from __future__ import annotations

from repro.datasets.synthetic import DomainDatasetSpec

DOMAINNET_DOMAINS = ("clipart", "infograph", "painting", "quickdraw", "real", "sketch")

FED_DOMAINNET_SPEC = DomainDatasetSpec(
    name="fed_domainnet",
    num_classes=24,
    domains=DOMAINNET_DOMAINS,
    image_size=16,
    train_per_domain=360,
    test_per_domain=140,
    seed=51,
)

#: Domain order used in Table II / Table IV ("new domain order").
DOMAINNET_ALTERNATE_ORDER = ("infograph", "sketch", "quickdraw", "real", "painting", "clipart")

__all__ = ["FED_DOMAINNET_SPEC", "DOMAINNET_DOMAINS", "DOMAINNET_ALTERNATE_ORDER"]
