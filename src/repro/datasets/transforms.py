"""Domain rendering styles and image-space transforms.

Each *domain* of a synthetic dataset is described by a :class:`DomainStyle`:
a colour mixing matrix, background colour, brightness/contrast curve, a
domain texture (a fixed oriented grating overlaid on every image of the
domain), additive noise and an optional polarity inversion.  Styles are large
enough covariate shifts that a plain CNN trained on one domain degrades
sharply on the others -- the precondition for the catastrophic-forgetting
phenomenon the paper studies -- while the class-defining spatial pattern
stays recoverable in every domain.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

import numpy as np


@dataclass
class DomainStyle:
    """Parameters of one domain's rendering pipeline."""

    name: str
    color_matrix: np.ndarray  # (3, 3) mixing of [pattern, 1-pattern, texture]
    background: np.ndarray  # (3,) base colour added to every pixel
    brightness: float = 0.0
    contrast: float = 1.0
    noise_std: float = 0.05
    invert: bool = False
    texture_frequency: float = 0.0
    texture_angle: float = 0.0
    texture_weight: float = 0.0
    channel_permutation: Tuple[int, int, int] = (0, 1, 2)
    blur: bool = False
    orientation: int = 0  # index into the 8 dihedral transforms (rot90 x flip)

    def __post_init__(self) -> None:
        self.color_matrix = np.asarray(self.color_matrix, dtype=np.float64)
        self.background = np.asarray(self.background, dtype=np.float64)
        if self.color_matrix.shape != (3, 3):
            raise ValueError("color_matrix must be 3x3")
        if self.background.shape != (3,):
            raise ValueError("background must have 3 entries")
        if not 0 <= self.orientation < 8:
            raise ValueError("orientation must index one of the 8 dihedral transforms")


def sample_domain_style(name: str, rng: np.random.Generator) -> DomainStyle:
    """Draw a random but deterministic (given ``rng``) rendering style for a domain.

    The style is built so that the *channel and polarity that carry the class
    signal differ per domain*: one randomly chosen channel is dominated by the
    class pattern, another by its inverse, the third mostly by the domain
    texture.  A CNN that latches onto one domain's channel/polarity layout
    therefore transfers poorly to the next domain, which is the covariate
    shift that drives catastrophic forgetting in the paper's experiments.
    """
    dominant, inverse, textured = rng.permutation(3)
    color_matrix = np.zeros((3, 3))
    color_matrix[dominant] = [rng.uniform(0.9, 1.1), rng.uniform(0.0, 0.1), rng.uniform(0.0, 0.15)]
    color_matrix[inverse] = [rng.uniform(0.0, 0.1), rng.uniform(0.5, 0.9), rng.uniform(0.0, 0.2)]
    color_matrix[textured] = [rng.uniform(0.0, 0.25), rng.uniform(0.0, 0.25), rng.uniform(0.4, 0.8)]
    background = rng.uniform(0.0, 0.35, size=3)
    return DomainStyle(
        name=name,
        color_matrix=color_matrix,
        background=background,
        brightness=rng.uniform(-0.1, 0.1),
        contrast=rng.uniform(0.8, 1.3),
        noise_std=rng.uniform(0.02, 0.08),
        invert=bool(rng.random() < 0.5),
        texture_frequency=rng.uniform(1.0, 4.0),
        texture_angle=rng.uniform(0.0, np.pi),
        texture_weight=rng.uniform(0.05, 0.3),
        channel_permutation=tuple(rng.permutation(3).tolist()),
        blur=bool(rng.random() < 0.25),
        orientation=int(rng.integers(0, 8)),
    )


def dihedral_transform(pattern: np.ndarray, orientation: int) -> np.ndarray:
    """Apply one of the 8 square symmetries (rotations and flips) to a 2-D pattern.

    Each domain renders the class pattern in its own orientation; within a
    domain the task stays equally learnable, but convolutional features tuned
    to one orientation transfer poorly to another -- a strong, purely
    covariate domain shift of the kind that drives catastrophic forgetting.
    """
    rotated = np.rot90(pattern, k=orientation % 4)
    if orientation >= 4:
        rotated = np.fliplr(rotated)
    return rotated.copy()


def domain_texture(size: int, style: DomainStyle) -> np.ndarray:
    """The domain's fixed oriented grating, shape ``(size, size)`` in [0, 1]."""
    if style.texture_weight <= 0.0 or style.texture_frequency <= 0.0:
        return np.zeros((size, size))
    ys, xs = np.meshgrid(np.linspace(0, 1, size), np.linspace(0, 1, size), indexing="ij")
    projected = xs * np.cos(style.texture_angle) + ys * np.sin(style.texture_angle)
    grating = 0.5 * (1.0 + np.sin(2.0 * np.pi * style.texture_frequency * projected))
    return grating


def box_blur(image: np.ndarray) -> np.ndarray:
    """Cheap 3x3 box blur applied channel-wise to a (C, H, W) image."""
    padded = np.pad(image, ((0, 0), (1, 1), (1, 1)), mode="edge")
    out = np.zeros_like(image)
    for dy in range(3):
        for dx in range(3):
            out += padded[:, dy : dy + image.shape[1], dx : dx + image.shape[2]]
    return out / 9.0


def render_pattern(
    pattern: np.ndarray,
    style: DomainStyle,
    rng: Optional[np.random.Generator] = None,
) -> np.ndarray:
    """Render a class pattern ``(H, W)`` into a ``(3, H, W)`` image under a domain style."""
    pattern = dihedral_transform(pattern, style.orientation)
    size = pattern.shape[0]
    texture = domain_texture(size, style)
    stack = np.stack([pattern, 1.0 - pattern, texture], axis=0)  # (3, H, W)
    image = np.einsum("ck,khw->chw", style.color_matrix, stack)
    image = image + style.background[:, None, None]
    if style.texture_weight > 0:
        image = (1.0 - style.texture_weight) * image + style.texture_weight * texture[None]
    image = (image - 0.5) * style.contrast + 0.5 + style.brightness
    if style.invert:
        image = 1.0 - image
    image = image[list(style.channel_permutation)]
    if style.blur:
        image = box_blur(image)
    if rng is not None and style.noise_std > 0:
        image = image + rng.normal(0.0, style.noise_std, size=image.shape)
    return np.clip(image, 0.0, 1.0)


def shift_pattern(pattern: np.ndarray, dy: int, dx: int) -> np.ndarray:
    """Translate a pattern by (dy, dx) pixels with zero padding (sample jitter)."""
    shifted = np.zeros_like(pattern)
    h, w = pattern.shape
    src_y = slice(max(0, -dy), min(h, h - dy))
    src_x = slice(max(0, -dx), min(w, w - dx))
    dst_y = slice(max(0, dy), min(h, h + dy))
    dst_x = slice(max(0, dx), min(w, w + dx))
    shifted[dst_y, dst_x] = pattern[src_y, src_x]
    return shifted


__all__ = [
    "DomainStyle",
    "sample_domain_style",
    "domain_texture",
    "dihedral_transform",
    "render_pattern",
    "shift_pattern",
    "box_blur",
]
