"""Dataset registry: look datasets up by the names used in the paper's tables."""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.datasets.base import ArrayDataset
from repro.datasets.digits_five import DIGITS_FIVE_ALTERNATE_ORDER, DIGITS_FIVE_SPEC
from repro.datasets.domainnet import DOMAINNET_ALTERNATE_ORDER, FED_DOMAINNET_SPEC
from repro.datasets.office_caltech import OFFICE_CALTECH_ALTERNATE_ORDER, OFFICE_CALTECH_SPEC
from repro.datasets.pacs import PACS_ALTERNATE_ORDER, PACS_SPEC
from repro.datasets.synthetic import DomainDatasetSpec, SyntheticDomainDataset, generate_domain_split

_SPECS: Dict[str, DomainDatasetSpec] = {
    "digits_five": DIGITS_FIVE_SPEC,
    "office_caltech": OFFICE_CALTECH_SPEC,
    "pacs": PACS_SPEC,
    "fed_domainnet": FED_DOMAINNET_SPEC,
}

_ALTERNATE_ORDERS: Dict[str, Tuple[str, ...]] = {
    "digits_five": DIGITS_FIVE_ALTERNATE_ORDER,
    "office_caltech": OFFICE_CALTECH_ALTERNATE_ORDER,
    "pacs": PACS_ALTERNATE_ORDER,
    "fed_domainnet": DOMAINNET_ALTERNATE_ORDER,
}


def available_datasets() -> Tuple[str, ...]:
    """Names of every registered dataset."""
    return tuple(sorted(_SPECS))


def get_dataset_spec(name: str) -> DomainDatasetSpec:
    """Look up the spec of a registered dataset by name."""
    try:
        return _SPECS[name]
    except KeyError as error:
        raise KeyError(
            f"unknown dataset {name!r}; available: {', '.join(available_datasets())}"
        ) from error


def get_alternate_domain_order(name: str) -> Tuple[str, ...]:
    """The shuffled domain order used for the Table II / IV experiments."""
    get_dataset_spec(name)
    return _ALTERNATE_ORDERS[name]


def build_dataset(name: str, spec_override: Optional[DomainDatasetSpec] = None) -> SyntheticDomainDataset:
    """Instantiate a registered dataset (optionally with a scaled-down spec)."""
    spec = spec_override if spec_override is not None else get_dataset_spec(name)
    return SyntheticDomainDataset(spec)


def load_domain(name: str, domain: str, split: str = "train") -> ArrayDataset:
    """Directly load one domain split of a registered dataset."""
    spec = get_dataset_spec(name)
    return generate_domain_split(spec, spec.domain_index(domain), split)


__all__ = [
    "available_datasets",
    "get_dataset_spec",
    "get_alternate_domain_order",
    "build_dataset",
    "load_domain",
]
