"""Procedural domain-shift image datasets.

A dataset is described by a :class:`DomainDatasetSpec`: a number of classes,
a list of named domains and per-domain sample counts.  Each class owns a
spatial *pattern* (an oriented grating plus class-specific Gaussian blobs)
and each domain owns a :class:`repro.datasets.transforms.DomainStyle`
rendering pipeline.  A sample is a jittered copy of its class pattern rendered
under its domain's style plus per-sample noise.

The construction has the two properties the paper's evaluation relies on:

* **Shared label space across domains** -- the class pattern geometry is
  identical in every domain, so domain-invariant knowledge exists and can in
  principle be learned (what RefFiL's GPL/DPCL losses are for).
* **Large covariate shift between domains** -- colour statistics, background,
  texture and polarity differ per domain, so a model finetuned on the next
  domain rapidly degrades on earlier ones (catastrophic forgetting), which is
  what the Avg/Last/FGT/BwT metrics quantify.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.datasets.base import ArrayDataset
from repro.datasets.transforms import DomainStyle, render_pattern, sample_domain_style, shift_pattern
from repro.utils.rng import spawn_rng


@dataclass(frozen=True)
class DomainDatasetSpec:
    """Static description of a synthetic multi-domain dataset."""

    name: str
    num_classes: int
    domains: Tuple[str, ...]
    image_size: int = 16
    channels: int = 3
    train_per_domain: int = 200
    test_per_domain: int = 80
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_classes < 2:
            raise ValueError("a classification dataset needs at least 2 classes")
        if len(self.domains) < 2:
            raise ValueError("a domain-incremental dataset needs at least 2 domains")
        if self.channels != 3:
            raise ValueError("the synthetic renderer produces RGB images (channels=3)")
        if self.train_per_domain < self.num_classes or self.test_per_domain < self.num_classes:
            raise ValueError("per-domain sample counts must be at least num_classes")

    @property
    def num_domains(self) -> int:
        return len(self.domains)

    def domain_index(self, domain: str) -> int:
        try:
            return self.domains.index(domain)
        except ValueError as error:
            raise KeyError(f"unknown domain {domain!r} for dataset {self.name!r}") from error

    def scaled(
        self,
        train_per_domain: Optional[int] = None,
        test_per_domain: Optional[int] = None,
        num_classes: Optional[int] = None,
        image_size: Optional[int] = None,
    ) -> "DomainDatasetSpec":
        """Return a copy with smaller sample counts / class counts (for tiny presets)."""
        return DomainDatasetSpec(
            name=self.name,
            num_classes=num_classes if num_classes is not None else self.num_classes,
            domains=self.domains,
            image_size=image_size if image_size is not None else self.image_size,
            channels=self.channels,
            train_per_domain=train_per_domain if train_per_domain is not None else self.train_per_domain,
            test_per_domain=test_per_domain if test_per_domain is not None else self.test_per_domain,
            seed=self.seed,
        )


def class_pattern(spec: DomainDatasetSpec, class_index: int) -> np.ndarray:
    """Deterministic spatial pattern of a class, shape ``(H, W)`` in ``[0, 1]``.

    Classes are spread evenly over the space of grating orientations and
    frequencies (rather than drawn independently, which could place two
    classes arbitrarily close together), and each class additionally gets two
    Gaussian blobs at class-specific positions on a ring.  The result is a set
    of crisp, well-separated spatial signatures that survive every domain's
    rendering style.
    """
    rng = spawn_rng(spec.seed, spec.name, "class", class_index)
    size = spec.image_size
    ys, xs = np.meshgrid(np.linspace(0, 1, size), np.linspace(0, 1, size), indexing="ij")
    # Spread orientations/frequencies deterministically over the class range.
    angle = np.pi * (class_index / spec.num_classes) + rng.uniform(-0.1, 0.1)
    frequency = 1.5 + 2.5 * ((class_index * 7) % spec.num_classes) / spec.num_classes
    phase = rng.uniform(0, 2 * np.pi)
    projected = xs * np.cos(angle) + ys * np.sin(angle)
    grating = 0.5 * (1.0 + np.sin(2 * np.pi * frequency * projected + phase))
    pattern = 0.4 * grating
    # Two blobs on a ring at class-specific angular positions.
    for blob_index in range(2):
        theta = 2 * np.pi * (class_index + 0.37 * blob_index) / spec.num_classes + blob_index * np.pi
        cy = 0.5 + 0.28 * np.sin(theta)
        cx = 0.5 + 0.28 * np.cos(theta)
        sigma = 0.10 + 0.05 * ((class_index + blob_index) % 3) / 3.0
        blob = np.exp(-(((ys - cy) ** 2 + (xs - cx) ** 2) / (2 * sigma ** 2)))
        pattern += 0.8 * blob
    pattern = pattern / pattern.max()
    # Sharpen contrast so the signature stays visible after domain rendering.
    pattern = pattern ** 2
    return pattern


def domain_style(spec: DomainDatasetSpec, domain_index: int) -> DomainStyle:
    """Deterministic rendering style for one domain of the dataset."""
    if not 0 <= domain_index < spec.num_domains:
        raise IndexError(f"domain index {domain_index} out of range for {spec.name}")
    rng = spawn_rng(spec.seed, spec.name, "domain", domain_index)
    return sample_domain_style(spec.domains[domain_index], rng)


def _generate_samples(
    spec: DomainDatasetSpec,
    domain_index: int,
    split: str,
    count: int,
) -> Tuple[np.ndarray, np.ndarray]:
    style = domain_style(spec, domain_index)
    patterns = [class_pattern(spec, k) for k in range(spec.num_classes)]
    rng = spawn_rng(spec.seed, spec.name, "samples", domain_index, split)
    images = np.zeros((count, 3, spec.image_size, spec.image_size))
    labels = np.zeros(count, dtype=np.int64)
    max_shift = max(1, spec.image_size // 16)
    for i in range(count):
        label = i % spec.num_classes
        labels[i] = label
        dy, dx = rng.integers(-max_shift, max_shift + 1, size=2)
        jittered = shift_pattern(patterns[label], int(dy), int(dx))
        amplitude = rng.uniform(0.9, 1.1)
        jittered = np.clip(jittered * amplitude, 0.0, 1.0)
        images[i] = render_pattern(jittered, style, rng)
    order = rng.permutation(count)
    return images[order], labels[order]


def generate_domain_split(
    spec: DomainDatasetSpec, domain_index: int, split: str = "train"
) -> ArrayDataset:
    """Generate the train or test split of one domain as an :class:`ArrayDataset`."""
    if split not in ("train", "test"):
        raise ValueError(f"split must be 'train' or 'test', got {split!r}")
    count = spec.train_per_domain if split == "train" else spec.test_per_domain
    images, labels = _generate_samples(spec, domain_index, split, count)
    return ArrayDataset(images, labels)


class SyntheticDomainDataset:
    """All domains of a spec, generated lazily and cached.

    This is the object the continual-learning scenario iterates over: each
    incremental task corresponds to one domain (same classes, new style).
    """

    def __init__(self, spec: DomainDatasetSpec) -> None:
        self.spec = spec
        self._cache: Dict[Tuple[int, str], ArrayDataset] = {}

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def num_classes(self) -> int:
        return self.spec.num_classes

    @property
    def domains(self) -> Tuple[str, ...]:
        return self.spec.domains

    def domain_split(self, domain_index: int, split: str) -> ArrayDataset:
        key = (domain_index, split)
        if key not in self._cache:
            self._cache[key] = generate_domain_split(self.spec, domain_index, split)
        return self._cache[key]

    def train(self, domain_index: int) -> ArrayDataset:
        return self.domain_split(domain_index, "train")

    def test(self, domain_index: int) -> ArrayDataset:
        return self.domain_split(domain_index, "test")

    def reordered(self, domain_order: Sequence[int]) -> "ReorderedDomainDataset":
        """Return a view presenting the same domains in a new order.

        Used by the Table II / Table IV "new domain order" experiments: the
        underlying per-domain data is identical, only the order in which tasks
        are encountered changes.
        """
        return ReorderedDomainDataset(self, domain_order)


class ReorderedDomainDataset:
    """A permutation view over a :class:`SyntheticDomainDataset`.

    Exposes the same interface (``name``, ``num_classes``, ``domains``,
    ``train``, ``test``, ``domain_split``) so the continual scenario can use
    either interchangeably.
    """

    def __init__(self, base: SyntheticDomainDataset, domain_order: Sequence[int]) -> None:
        order = [int(i) for i in domain_order]
        if sorted(order) != list(range(base.spec.num_domains)):
            raise ValueError(
                f"domain_order must be a permutation of range({base.spec.num_domains}), got {order}"
            )
        self._base = base
        self._order = order
        self.spec = base.spec

    @property
    def name(self) -> str:
        return self._base.name

    @property
    def num_classes(self) -> int:
        return self._base.num_classes

    @property
    def domains(self) -> Tuple[str, ...]:
        return tuple(self._base.domains[i] for i in self._order)

    def domain_split(self, domain_index: int, split: str) -> ArrayDataset:
        return self._base.domain_split(self._order[domain_index], split)

    def train(self, domain_index: int) -> ArrayDataset:
        return self.domain_split(domain_index, "train")

    def test(self, domain_index: int) -> ArrayDataset:
        return self.domain_split(domain_index, "test")


__all__ = [
    "DomainDatasetSpec",
    "DomainStyle",
    "SyntheticDomainDataset",
    "ReorderedDomainDataset",
    "class_pattern",
    "domain_style",
    "generate_domain_split",
]
