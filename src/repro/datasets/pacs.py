"""PACS analogue: 7 classes, four domains with strong style gaps.

PACS (Photo, Art painting, Cartoon, Sketch) is the canonical domain
generalisation benchmark; its domains differ mainly in rendering style, which
is exactly what the synthetic domain styles model (colour mixing, texture,
polarity inversion for the sketch-like domain).
"""

from __future__ import annotations

from repro.datasets.synthetic import DomainDatasetSpec

PACS_DOMAINS = ("photo", "cartoon", "sketch", "art_painting")

PACS_SPEC = DomainDatasetSpec(
    name="pacs",
    num_classes=7,
    domains=PACS_DOMAINS,
    image_size=16,
    train_per_domain=280,
    test_per_domain=110,
    seed=37,
)

#: Domain order used in Table II / Table IV (only the first two domains swap).
PACS_ALTERNATE_ORDER = ("cartoon", "photo", "sketch", "art_painting")

__all__ = ["PACS_SPEC", "PACS_DOMAINS", "PACS_ALTERNATE_ORDER"]
