"""Federated, non-iid quantity-shift data partitioning.

The paper's FDIL setting (Sec. II) states that client datasets "are
non-independent and identically distributed (non-iid), exhibiting a form of
quantity shift": every client sees the same classes but with very different
amounts of data.  :func:`quantity_shift_partition` draws per-client quantity
shares from a Dirichlet distribution and splits each class's samples
proportionally, so every client keeps every class (the domain-incremental
requirement) while total data volume varies strongly across clients.

Partition invariant
-------------------
Quantity shift skews *how much* data a client holds, never *which classes*
it sees.  Concretely, for every class with at least ``num_clients`` samples,
**every client receives at least one sample of that class** — both in the
proportional allocation (a per-class coverage floor tops up zero counts from
the largest counts) and after ``min_per_client`` rebalancing (stealing
rotates across a donor's classes and never takes a donor's last sample of a
class while any donor still has a spare one).  Rebalancing that cannot reach
``min_per_client`` raises instead of silently returning a starved client.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from repro.datasets.base import ArrayDataset


def _steal_one(
    pools: List[Dict[int, List[int]]],
    receiver: int,
    min_per_client: int,
    cursors: List[int],
    class_totals: Dict[int, int],
) -> None:
    """Move one sample from the best donor into ``receiver``'s pool.

    Donors are visited largest-first (deterministic tie-break on client id)
    and must stay strictly above ``min_per_client`` themselves.  Within a
    donor, the per-donor cursor rotates round-robin across its classes so
    repeated steals spread over the donor's whole label set instead of
    draining one class.  A donor's last sample of a class is protected in
    escalating passes: first only duplicated samples are taken, then last
    samples of *invariant-exempt* classes (fewer than ``num_clients`` samples
    overall, so full coverage was never possible), and only when nothing else
    exists anywhere a last sample of a covered class — donors therefore keep
    the partition invariant whenever it is satisfiable at all.
    """
    num_clients = len(pools)
    sizes = [sum(len(indices) for indices in pool.values()) for pool in pools]
    donors = sorted(
        (
            client
            for client in range(num_clients)
            if client != receiver and sizes[client] > min_per_client
        ),
        key=lambda client: (-sizes[client], client),
    )
    for floor, exempt_only in ((2, False), (1, True), (1, False)):
        for donor in donors:
            classes = sorted(pools[donor])

            def spareable(label: int) -> bool:
                if len(pools[donor][label]) < floor:
                    return False
                return not exempt_only or class_totals[label] < num_clients

            if not any(spareable(label) for label in classes):
                continue
            for _ in range(len(classes)):
                label = classes[cursors[donor] % len(classes)]
                cursors[donor] += 1
                if spareable(label):
                    pools[receiver].setdefault(label, []).append(pools[donor][label].pop())
                    return
    # Loop-termination guard.  With the entry check (total >= n * min) this is
    # unreachable — while any client is below the minimum, pigeonhole gives a
    # donor above it, and the final (floor=1) pass accepts any sample — but a
    # future allocation change must fail loudly here, never under-fill a
    # client silently.
    raise ValueError(
        f"cannot guarantee min_per_client={min_per_client}: no donor can spare "
        "a sample"
    )


def quantity_shift_partition(
    labels: np.ndarray,
    num_clients: int,
    rng: np.random.Generator,
    concentration: float = 1.0,
    min_per_client: int = 2,
) -> List[np.ndarray]:
    """Split sample indices across clients with quantity shift.

    Parameters
    ----------
    labels:
        Integer labels of every sample in the dataset being partitioned.
    num_clients:
        Number of partitions to create.
    rng:
        Random generator controlling both the Dirichlet draw and shuffling.
    concentration:
        Dirichlet concentration; smaller values produce more extreme quantity
        imbalance (the paper contrasts "resource-rich and resource-poor
        participants").
    min_per_client:
        Lower bound on samples per client so no client ends up empty.
        Raises ``ValueError`` when the bound cannot be met.

    Returns
    -------
    A list of ``num_clients`` index arrays covering all samples exactly once.
    Every class with at least ``num_clients`` samples appears in every
    client's partition (see the module docstring's partition invariant).
    """
    labels = np.asarray(labels, dtype=np.int64)
    if num_clients <= 0:
        raise ValueError("num_clients must be positive")
    if len(labels) < num_clients * min_per_client:
        raise ValueError(
            f"cannot give {min_per_client} samples to each of {num_clients} clients "
            f"from only {len(labels)} samples"
        )
    shares = rng.dirichlet(np.full(num_clients, concentration))
    # Avoid degenerate all-zero shares for some client.
    shares = np.maximum(shares, 1e-3)
    shares = shares / shares.sum()

    # Per-client pools keyed by class label, so the rebalancing pass below can
    # steal class-aware instead of popping whatever happens to sit at the tail.
    pools: List[Dict[int, List[int]]] = [{} for _ in range(num_clients)]
    for label in np.unique(labels):
        members = np.flatnonzero(labels == label)
        rng.shuffle(members)
        # Proportional allocation with largest-remainder rounding.
        raw = shares * len(members)
        counts = np.floor(raw).astype(int)
        remainder = len(members) - counts.sum()
        if remainder > 0:
            order = np.argsort(-(raw - counts))
            counts[order[:remainder]] += 1
        # Coverage floor: when the class has enough samples to go around, no
        # client may end up with zero of it (extreme Dirichlet shares round
        # resource-poor clients down to nothing otherwise).  Top up each zero
        # from the current largest count, which by pigeonhole holds >= 2.
        if len(members) >= num_clients:
            starved = np.flatnonzero(counts == 0)
            for client in starved:
                counts[int(np.argmax(counts))] -= 1
                counts[client] += 1
        start = 0
        for client, count in enumerate(counts):
            pools[client][int(label)] = members[start : start + count].tolist()
            start += count

    # Enforce the per-client minimum by stealing from the largest partitions,
    # rotating across each donor's classes (see _steal_one).
    class_totals = {
        int(label): int(count)
        for label, count in zip(*np.unique(labels, return_counts=True))
    }
    cursors = [0] * num_clients
    for client in range(num_clients):
        while sum(len(indices) for indices in pools[client].values()) < min_per_client:
            _steal_one(pools, client, min_per_client, cursors, class_totals)

    return [
        np.asarray(sorted(index for indices in pool.values() for index in indices), dtype=np.int64)
        for pool in pools
    ]


def partition_indices_for_clients(
    labels: np.ndarray,
    client_ids: Sequence[int],
    rng: np.random.Generator,
    concentration: float = 1.0,
) -> Dict[int, np.ndarray]:
    """Partition a domain's sample *indices* across the given clients.

    The index-level half of :func:`partition_domain_across_clients`: it
    performs the exact same RNG draws on the exact same inputs, so the index
    arrays are identical to the ones behind the eager shards — this is what
    lets the virtual-client plane defer the expensive ``dataset.subset``
    (image copies) to selection time while staying bit-for-bit with the
    eager path.  Labels are cheap (one int per sample), so computing every
    client's indices up front costs O(domain), not O(domain x image size).
    """
    if not client_ids:
        return {}
    partitions = quantity_shift_partition(labels, len(client_ids), rng, concentration)
    return {
        client_id: indices for client_id, indices in zip(client_ids, partitions)
    }


def partition_domain_across_clients(
    dataset: ArrayDataset,
    client_ids: Sequence[int],
    rng: np.random.Generator,
    concentration: float = 1.0,
) -> Dict[int, ArrayDataset]:
    """Partition one domain's training data across the given clients.

    Returns a mapping from client id to that client's local shard.
    """
    index_map = partition_indices_for_clients(dataset.labels, client_ids, rng, concentration)
    return {
        client_id: dataset.subset(indices)
        for client_id, indices in index_map.items()
    }


__all__ = [
    "quantity_shift_partition",
    "partition_indices_for_clients",
    "partition_domain_across_clients",
]
