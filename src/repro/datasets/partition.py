"""Federated, non-iid quantity-shift data partitioning.

The paper's FDIL setting (Sec. II) states that client datasets "are
non-independent and identically distributed (non-iid), exhibiting a form of
quantity shift": every client sees the same classes but with very different
amounts of data.  :func:`quantity_shift_partition` draws per-client quantity
shares from a Dirichlet distribution and splits each class's samples
proportionally, so every client keeps every class (the domain-incremental
requirement) while total data volume varies strongly across clients.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.datasets.base import ArrayDataset


def quantity_shift_partition(
    labels: np.ndarray,
    num_clients: int,
    rng: np.random.Generator,
    concentration: float = 1.0,
    min_per_client: int = 2,
) -> List[np.ndarray]:
    """Split sample indices across clients with quantity shift.

    Parameters
    ----------
    labels:
        Integer labels of every sample in the dataset being partitioned.
    num_clients:
        Number of partitions to create.
    rng:
        Random generator controlling both the Dirichlet draw and shuffling.
    concentration:
        Dirichlet concentration; smaller values produce more extreme quantity
        imbalance (the paper contrasts "resource-rich and resource-poor
        participants").
    min_per_client:
        Lower bound on samples per client so no client ends up empty.

    Returns
    -------
    A list of ``num_clients`` index arrays covering all samples exactly once.
    """
    labels = np.asarray(labels, dtype=np.int64)
    if num_clients <= 0:
        raise ValueError("num_clients must be positive")
    if len(labels) < num_clients * min_per_client:
        raise ValueError(
            f"cannot give {min_per_client} samples to each of {num_clients} clients "
            f"from only {len(labels)} samples"
        )
    shares = rng.dirichlet(np.full(num_clients, concentration))
    # Avoid degenerate all-zero shares for some client.
    shares = np.maximum(shares, 1e-3)
    shares = shares / shares.sum()

    client_indices: List[List[int]] = [[] for _ in range(num_clients)]
    for label in np.unique(labels):
        members = np.flatnonzero(labels == label)
        rng.shuffle(members)
        # Proportional allocation with largest-remainder rounding.
        raw = shares * len(members)
        counts = np.floor(raw).astype(int)
        remainder = len(members) - counts.sum()
        if remainder > 0:
            order = np.argsort(-(raw - counts))
            counts[order[:remainder]] += 1
        start = 0
        for client, count in enumerate(counts):
            client_indices[client].extend(members[start : start + count].tolist())
            start += count

    # Enforce the per-client minimum by stealing from the largest partitions.
    sizes = [len(indices) for indices in client_indices]
    for client in range(num_clients):
        while len(client_indices[client]) < min_per_client:
            donor = int(np.argmax([len(indices) for indices in client_indices]))
            if donor == client or len(client_indices[donor]) <= min_per_client:
                break
            client_indices[client].append(client_indices[donor].pop())
    return [np.asarray(sorted(indices), dtype=np.int64) for indices in client_indices]


def partition_domain_across_clients(
    dataset: ArrayDataset,
    client_ids: Sequence[int],
    rng: np.random.Generator,
    concentration: float = 1.0,
) -> Dict[int, ArrayDataset]:
    """Partition one domain's training data across the given clients.

    Returns a mapping from client id to that client's local shard.
    """
    if not client_ids:
        return {}
    partitions = quantity_shift_partition(dataset.labels, len(client_ids), rng, concentration)
    return {
        client_id: dataset.subset(indices)
        for client_id, indices in zip(client_ids, partitions)
    }


__all__ = ["quantity_shift_partition", "partition_domain_across_clients"]
