"""Digits-Five analogue: 10 classes, five domains.

The real Digits-Five benchmark combines MNIST, MNIST-M, USPS, SVHN and SYN --
the same ten digit classes rendered in five very different visual styles.
The synthetic analogue keeps the class/domain structure (10 classes x 5
domains, 32x32-equivalent resolution scaled to the preset) and the property
that MNIST-like domains are "easy" (low noise, high contrast) while SVHN-like
domains are cluttered.
"""

from __future__ import annotations

from repro.datasets.synthetic import DomainDatasetSpec

DIGITS_FIVE_DOMAINS = ("mnist", "mnist_m", "usps", "svhn", "syn")

#: Default paper-order spec.  Sample counts are scaled-down but keep the real
#: benchmark's property of being the largest of the four datasets.
DIGITS_FIVE_SPEC = DomainDatasetSpec(
    name="digits_five",
    num_classes=10,
    domains=DIGITS_FIVE_DOMAINS,
    image_size=16,
    train_per_domain=400,
    test_per_domain=150,
    seed=11,
)

#: Domain order used in Table II / Table IV ("new domain order").
DIGITS_FIVE_ALTERNATE_ORDER = ("svhn", "mnist", "syn", "usps", "mnist_m")

__all__ = ["DIGITS_FIVE_SPEC", "DIGITS_FIVE_DOMAINS", "DIGITS_FIVE_ALTERNATE_ORDER"]
