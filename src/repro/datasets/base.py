"""Dataset containers and mini-batch loading."""

from __future__ import annotations

import hashlib
from typing import Iterator, Optional, Tuple

import numpy as np

from repro.autograd.tensor import Tensor, get_default_dtype


class ArrayDataset:
    """An in-memory dataset of images and integer labels.

    Images are stored as a float array of shape ``(N, C, H, W)`` in ``[0, 1]``
    and labels as an int array of shape ``(N,)``.
    """

    def __init__(self, images: np.ndarray, labels: np.ndarray, dtype=None) -> None:
        images = np.asarray(images, dtype=dtype if dtype is not None else get_default_dtype())
        labels = np.asarray(labels, dtype=np.int64)
        if images.ndim != 4:
            raise ValueError(f"images must have shape (N, C, H, W), got {images.shape}")
        if labels.ndim != 1 or labels.shape[0] != images.shape[0]:
            raise ValueError(
                f"labels shape {labels.shape} does not match images count {images.shape[0]}"
            )
        self.images = images
        self.labels = labels
        self._fingerprint: Optional[str] = None

    def fingerprint(self) -> str:
        """Stable content hash of this dataset (hex digest), cached after first use.

        Two datasets with identical images/labels share a fingerprint across
        processes and runs, which is what keys the parallel executor's
        per-worker shard cache: a client's shard is re-shipped only when its
        fingerprint changes (e.g. an in-between client concatenating its
        previous task's shard).  The digest is computed once and memoised —
        shards are treated as immutable once partitioned, so later in-place
        mutation of ``images``/``labels`` is not detected.
        """
        if self._fingerprint is None:
            digest = hashlib.blake2b(digest_size=16)
            for array in (self.images, self.labels):
                digest.update(str(array.shape).encode())
                digest.update(array.dtype.str.encode())
                digest.update(np.ascontiguousarray(array).data)
            self._fingerprint = digest.hexdigest()
        return self._fingerprint

    def __len__(self) -> int:
        return self.images.shape[0]

    def __getitem__(self, index) -> Tuple[np.ndarray, np.ndarray]:
        return self.images[index], self.labels[index]

    @property
    def num_classes(self) -> int:
        return int(self.labels.max()) + 1 if len(self) else 0

    def subset(self, indices: np.ndarray) -> "ArrayDataset":
        """Return a new dataset containing only ``indices`` (dtype preserved)."""
        indices = np.asarray(indices, dtype=np.int64)
        return ArrayDataset(self.images[indices], self.labels[indices], dtype=self.images.dtype)

    def astype(self, dtype) -> "ArrayDataset":
        """Return this dataset with images cast to ``dtype`` (``self`` if already there)."""
        dtype = np.dtype(dtype)
        if self.images.dtype == dtype:
            return self
        return ArrayDataset(self.images, self.labels, dtype=dtype)

    def class_counts(self, num_classes: Optional[int] = None) -> np.ndarray:
        """Histogram of labels (length ``num_classes``)."""
        total = num_classes if num_classes is not None else self.num_classes
        return np.bincount(self.labels, minlength=total)

    @staticmethod
    def concatenate(datasets: Tuple["ArrayDataset", ...]) -> "ArrayDataset":
        """Concatenate several datasets (used when in-between clients merge tasks)."""
        datasets = tuple(d for d in datasets if len(d) > 0)
        if not datasets:
            raise ValueError("cannot concatenate zero non-empty datasets")
        images = np.concatenate([d.images for d in datasets], axis=0)
        labels = np.concatenate([d.labels for d in datasets], axis=0)
        return ArrayDataset(images, labels, dtype=images.dtype)


class DataLoader:
    """Mini-batch iterator over an :class:`ArrayDataset`.

    Yields ``(Tensor images, numpy labels)`` pairs.  Images stored in ``[0, 1]``
    are normalised to ``[-1, 1]`` (the usual zero-centred input range), and
    shuffling uses the provided generator so federated runs stay deterministic.
    """

    def __init__(
        self,
        dataset: ArrayDataset,
        batch_size: int = 16,
        shuffle: bool = True,
        rng: Optional[np.random.Generator] = None,
        drop_last: bool = False,
        normalize: bool = True,
    ) -> None:
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        self.dataset = dataset
        self.batch_size = batch_size
        self.shuffle = shuffle
        self.drop_last = drop_last
        self.normalize = normalize
        self._rng = rng if rng is not None else np.random.default_rng()

    def __len__(self) -> int:
        n = len(self.dataset)
        if self.drop_last:
            return n // self.batch_size
        return (n + self.batch_size - 1) // self.batch_size

    def __iter__(self) -> Iterator[Tuple[Tensor, np.ndarray]]:
        n = len(self.dataset)
        order = np.arange(n)
        if self.shuffle:
            self._rng.shuffle(order)
        end = (n // self.batch_size) * self.batch_size if self.drop_last else n
        for start in range(0, end, self.batch_size):
            indices = order[start : start + self.batch_size]
            images, labels = self.dataset[indices]
            if self.normalize:
                images = images * 2.0 - 1.0
            yield Tensor(images), labels


def train_test_split(
    dataset: ArrayDataset,
    test_fraction: float = 0.2,
    rng: Optional[np.random.Generator] = None,
    stratified: bool = True,
) -> Tuple[ArrayDataset, ArrayDataset]:
    """Split a dataset into train/test, optionally stratified by label."""
    if not 0.0 < test_fraction < 1.0:
        raise ValueError("test_fraction must be in (0, 1)")
    generator = rng if rng is not None else np.random.default_rng()
    n = len(dataset)
    if stratified:
        test_indices = []
        for label in np.unique(dataset.labels):
            members = np.flatnonzero(dataset.labels == label)
            generator.shuffle(members)
            take = max(1, int(round(len(members) * test_fraction)))
            test_indices.append(members[:take])
        test_idx = np.concatenate(test_indices)
    else:
        order = generator.permutation(n)
        test_idx = order[: max(1, int(round(n * test_fraction)))]
    mask = np.zeros(n, dtype=bool)
    mask[test_idx] = True
    return dataset.subset(np.flatnonzero(~mask)), dataset.subset(np.flatnonzero(mask))


__all__ = ["ArrayDataset", "DataLoader", "train_test_split"]
