"""Serving front end: bounded queue, micro-batching, workers, backpressure.

The :class:`ServingFrontEnd` is the request-facing layer above the
:class:`~repro.serving.engine.InferenceEngine`.  Clients submit single
samples; worker threads collect them into micro-batches — flushing when
``max_batch`` samples have accumulated or ``max_wait`` seconds have passed
since the batch opened — and answer every request with a
:class:`ServedResponse` carrying the logits row, the model version that
produced it, and the request's queue-to-response latency.

Delivery guarantees:

* **Backpressure, not silent loss.**  The request queue is bounded; a full
  queue rejects the submit *synchronously* with a typed
  :class:`QueueFullError`.  Every accepted request is answered exactly once —
  with a result, or with the serving exception — including requests still
  queued when :meth:`stop` is called (the stop sentinel lands behind them in
  FIFO order, so shutdown drains instead of dropping).
* **Version coherence.**  Hot swaps install between batches (the engine's
  atomic-snapshot contract), so all rows of one micro-batch carry the same
  version tag, and a publish notification (:meth:`notify_publish`) is folded
  in at the next batch boundary — in-flight work always finishes on the
  version it started with.

Telemetry is per version: requests, batches, batch-size distribution, p50/p95
latency — plus rejected-submit and hot-swap counters for the whole front end.
"""

from __future__ import annotations

import queue
import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass
from typing import Any, Dict, List, Optional

import numpy as np

from repro.serving.engine import InferenceEngine
from repro.utils.logging_utils import get_logger

logger = get_logger(__name__)

_STOP = object()
#: Per-version latency samples kept for percentile telemetry; enough for every
#: test/bench workload while bounding a long-lived front end's memory.
_MAX_LATENCY_SAMPLES = 65536


class QueueFullError(RuntimeError):
    """The bounded request queue is full: backpressure, try again later."""


@dataclass(frozen=True)
class ServedResponse:
    """One answered request: logits row, producing version, measured latency."""

    version: int
    logits: np.ndarray
    latency: float


class _Request:
    __slots__ = ("sample", "future", "enqueued")

    def __init__(self, sample: np.ndarray) -> None:
        self.sample = sample
        self.future: "Future[ServedResponse]" = Future()
        self.enqueued = time.monotonic()


class _VersionStats:
    __slots__ = ("requests", "batches", "batch_size_sum", "max_batch", "latencies")

    def __init__(self) -> None:
        self.requests = 0
        self.batches = 0
        self.batch_size_sum = 0
        self.max_batch = 0
        self.latencies: List[float] = []


class ServingFrontEnd:
    """Concurrent micro-batching front end over one :class:`InferenceEngine`."""

    def __init__(
        self,
        engine: InferenceEngine,
        max_queue: int = 256,
        max_batch: int = 8,
        max_wait: float = 0.002,
        num_workers: int = 1,
    ) -> None:
        if max_queue < 1:
            raise ValueError("max_queue must be at least 1")
        if max_batch < 1:
            raise ValueError("max_batch must be at least 1")
        if max_wait < 0:
            raise ValueError("max_wait must be non-negative")
        if num_workers < 1:
            raise ValueError("num_workers must be at least 1")
        self.engine = engine
        self.max_batch = max_batch
        self.max_wait = max_wait
        self.num_workers = num_workers
        self._queue: "queue.Queue[Any]" = queue.Queue(maxsize=max_queue)
        self._publish_pending = threading.Event()
        self._workers: List[threading.Thread] = []
        self._accepting = False
        self._stats_lock = threading.Lock()
        self._per_version: Dict[int, _VersionStats] = {}
        self._rejected = 0

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def start(self) -> "ServingFrontEnd":
        """Spawn the worker threads; idempotent."""
        if self._workers:
            self._accepting = True
            return self
        self._accepting = True
        for index in range(self.num_workers):
            worker = threading.Thread(
                target=self._worker_loop, name=f"serving-worker-{index}", daemon=True
            )
            worker.start()
            self._workers.append(worker)
        return self

    def stop(self) -> None:
        """Drain and shut down: every accepted request is answered first.

        New submits are refused immediately; one stop sentinel per worker is
        enqueued *behind* all accepted requests (FIFO), so workers serve the
        backlog and then exit.  Idempotent.
        """
        self._accepting = False
        workers, self._workers = self._workers, []
        for _ in workers:
            self._queue.put(_STOP)
        for worker in workers:
            worker.join()

    def __enter__(self) -> "ServingFrontEnd":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # ------------------------------------------------------------------ #
    # Request path
    # ------------------------------------------------------------------ #
    def submit(self, sample: np.ndarray) -> "Future[ServedResponse]":
        """Enqueue one sample; returns a future resolving to its response.

        Raises :class:`QueueFullError` when the bounded queue is full and
        :class:`RuntimeError` after :meth:`stop` — a request is either
        accepted (and then always answered) or refused loudly, never dropped.
        """
        if not self._accepting:
            raise RuntimeError("serving front end is stopped; no new requests accepted")
        request = _Request(np.asarray(sample))
        try:
            self._queue.put_nowait(request)
        except queue.Full:
            with self._stats_lock:
                self._rejected += 1
            raise QueueFullError(
                f"request queue is full ({self._queue.maxsize} pending); "
                "retry after the backlog drains"
            ) from None
        return request.future

    def predict(self, sample: np.ndarray, timeout: Optional[float] = None) -> ServedResponse:
        """Blocking convenience wrapper: submit one sample, wait for its response."""
        return self.submit(sample).result(timeout)

    def notify_publish(self) -> None:
        """Signal that the registry advanced; folded in at the next batch boundary."""
        self._publish_pending.set()

    # ------------------------------------------------------------------ #
    # Worker side
    # ------------------------------------------------------------------ #
    def _worker_loop(self) -> None:
        while True:
            item = self._queue.get()
            if item is _STOP:
                return
            # Hot swap strictly between batches: the refresh lands before this
            # batch opens, never inside one.
            if self._publish_pending.is_set():
                self._publish_pending.clear()
                self._refresh()
            batch = [item]
            deadline = item.enqueued + self.max_wait
            while len(batch) < self.max_batch:
                remaining = deadline - time.monotonic()
                try:
                    nxt = (
                        self._queue.get(timeout=remaining)
                        if remaining > 0
                        else self._queue.get_nowait()
                    )
                except queue.Empty:
                    break
                if nxt is _STOP:
                    # Another worker's (or our own) shutdown sentinel: re-post
                    # it so the sentinel count stays exact, flush what we have.
                    self._queue.put(_STOP)
                    break
                batch.append(nxt)
            self._serve_batch(batch)

    def _refresh(self) -> None:
        try:
            self.engine.refresh()
        except Exception:  # pragma: no cover - registry races surface in tests
            logger.exception("serving refresh failed; keeping the current version")

    def _serve_batch(self, batch: List[_Request]) -> None:
        try:
            served = self.engine.predict(np.stack([request.sample for request in batch]))
        except Exception as error:
            for request in batch:
                request.future.set_exception(error)
            return
        now = time.monotonic()
        for row, request in enumerate(batch):
            request.future.set_result(
                ServedResponse(
                    version=served.version,
                    logits=np.asarray(served.logits[row]),
                    latency=now - request.enqueued,
                )
            )
        with self._stats_lock:
            stats = self._per_version.setdefault(served.version, _VersionStats())
            stats.requests += len(batch)
            stats.batches += 1
            stats.batch_size_sum += len(batch)
            stats.max_batch = max(stats.max_batch, len(batch))
            if len(stats.latencies) < _MAX_LATENCY_SAMPLES:
                stats.latencies.extend(now - request.enqueued for request in batch)

    # ------------------------------------------------------------------ #
    # Telemetry
    # ------------------------------------------------------------------ #
    def telemetry(self) -> Dict[str, Any]:
        """Point-in-time serving statistics, keyed per model version."""
        with self._stats_lock:
            versions: Dict[int, Dict[str, float]] = {}
            total_requests = 0
            for version, stats in sorted(self._per_version.items()):
                latencies = np.asarray(stats.latencies, dtype=np.float64)
                versions[version] = {
                    "requests": stats.requests,
                    "batches": stats.batches,
                    "mean_batch_size": stats.batch_size_sum / max(stats.batches, 1),
                    "max_batch_size": stats.max_batch,
                    "p50_latency": float(np.percentile(latencies, 50)) if latencies.size else 0.0,
                    "p95_latency": float(np.percentile(latencies, 95)) if latencies.size else 0.0,
                }
                total_requests += stats.requests
            return {
                "versions": versions,
                "total_requests": total_requests,
                "rejected": self._rejected,
                "swap_count": self.engine.swap_count,
                "current_version": self.engine.current_version,
            }


__all__ = ["QueueFullError", "ServedResponse", "ServingFrontEnd"]
