"""Versioned model registry: published snapshots as queryable, durable versions.

A checkpoint answers "how do I resume this run"; a registry version answers
"what model should I serve".  The two share their storage discipline — the
same self-validating ``RPCK`` container (magic, format version, CRC32,
zlib-compressed pickle) written via ``tmp + fsync + os.replace`` — but a
version additionally carries a queryable identity: a monotonically increasing
version id, the run position (task/round) it was published at, the publishing
run's config fingerprint, an accuracy snapshot, the wire codec it was
compressed with, and its byte size.  All of that lives in ``manifest.json``
next to the version files, itself written atomically, so ``list_versions()``
and ``latest()`` are one small JSON read — no version payload is touched until
``load()``.

Model state and method payload travel exactly as they do on the wire and in
checkpoints: flattened into one namespaced ``name -> ndarray`` dict through
the method's ``payload_codec()``, then encoded by an
:class:`~repro.federated.communication.ArrayCodec` (``identity``/``delta``
lossless; ``quantize8``/``quantize16``/``topk`` trade fidelity for bytes — a
version stores the *encoded* plan, so what ``load()`` returns is what every
consumer of that version sees, deterministically).

Retention follows the checkpoint plane's policy
(:func:`repro.federated.checkpoint.retain_last`): keep the newest K versions,
prune oldest-first, after the new version is durably on disk.  Version ids
survive pruning — ``next_version`` persists in the manifest, so ``latest()``
is monotonic for the registry's whole lifetime.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.federated.checkpoint import (
    CheckpointCorruptionError,
    load_checkpoint,
    retain_last,
    save_checkpoint,
)
from repro.federated.communication import PayloadCodec, TreePayloadCodec, build_codec
from repro.federated.transport import _flatten_message, _split_message

REGISTRY_FORMAT = 1
_MANIFEST_NAME = "manifest.json"


class RegistryError(RuntimeError):
    """Base class for registry failures."""


class RegistryCorruptionError(RegistryError):
    """A version file or the manifest is truncated, mangled, or inconsistent."""


class UnknownVersionError(RegistryError):
    """The requested version id is not (or no longer) in the manifest."""


def version_filename(version: int) -> str:
    """File name of a published version (``version-000042.rpv``)."""
    if version < 1:
        raise ValueError("version ids start at 1")
    return f"version-{version:06d}.rpv"


@dataclass(frozen=True)
class VersionInfo:
    """One manifest entry: everything queryable about a version without loading it."""

    version: int
    name: str
    task_id: int
    round_index: int
    fingerprint: str
    codec: str
    num_bytes: int
    accuracy: Dict[str, float] = field(default_factory=dict)

    @property
    def filename(self) -> str:
        return version_filename(self.version)

    def to_json(self) -> Dict[str, Any]:
        return {
            "version": self.version,
            "name": self.name,
            "task_id": self.task_id,
            "round_index": self.round_index,
            "fingerprint": self.fingerprint,
            "codec": self.codec,
            "num_bytes": self.num_bytes,
            "accuracy": dict(self.accuracy),
        }

    @staticmethod
    def from_json(entry: Dict[str, Any]) -> "VersionInfo":
        try:
            return VersionInfo(
                version=int(entry["version"]),
                name=str(entry["name"]),
                task_id=int(entry["task_id"]),
                round_index=int(entry["round_index"]),
                fingerprint=str(entry["fingerprint"]),
                codec=str(entry["codec"]),
                num_bytes=int(entry["num_bytes"]),
                accuracy={str(k): float(v) for k, v in entry.get("accuracy", {}).items()},
            )
        except (KeyError, TypeError, ValueError) as error:
            raise RegistryCorruptionError(f"malformed manifest entry: {error}") from error


@dataclass(frozen=True)
class LoadedVersion:
    """A version's decoded content: model state dict plus method payload."""

    info: VersionInfo
    state: Dict[str, np.ndarray]
    payload: Any


class ModelRegistry:
    """Publishes and loads named, versioned model snapshots in one directory.

    Separate instances over the same directory share state through the
    on-disk manifest: every query re-reads it, so a publisher (the training
    run) and a consumer (an inference engine in another thread or process)
    stay consistent without any in-memory coupling.  ``keep=0`` retains every
    version; a positive ``keep`` prunes oldest-first after each publish —
    the same last-K policy the checkpoint plane applies to ``ckpt-*`` files.
    """

    def __init__(self, directory: str, keep: int = 0) -> None:
        if not directory:
            raise ValueError("registry directory must be non-empty")
        if keep < 0:
            raise ValueError("keep must be non-negative (0 retains every version)")
        self.directory = directory
        self.keep = keep

    # ------------------------------------------------------------------ #
    # Manifest
    # ------------------------------------------------------------------ #
    @property
    def manifest_path(self) -> str:
        return os.path.join(self.directory, _MANIFEST_NAME)

    def _read_manifest(self) -> Dict[str, Any]:
        path = self.manifest_path
        if not os.path.exists(path):
            return {"format": REGISTRY_FORMAT, "next_version": 1, "versions": []}
        try:
            with open(path, "r", encoding="utf-8") as handle:
                manifest = json.load(handle)
        except (json.JSONDecodeError, OSError) as error:
            raise RegistryCorruptionError(
                f"registry manifest {path!r} failed to parse: {error}"
            ) from error
        if not isinstance(manifest, dict) or "versions" not in manifest:
            raise RegistryCorruptionError(f"registry manifest {path!r} has no versions list")
        return manifest

    def _write_manifest(self, manifest: Dict[str, Any]) -> None:
        os.makedirs(self.directory, exist_ok=True)
        path = self.manifest_path
        tmp_path = path + ".tmp"
        with open(tmp_path, "w", encoding="utf-8") as handle:
            json.dump(manifest, handle, indent=2, sort_keys=True)
            handle.write("\n")
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_path, path)

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    def list_versions(self) -> List[VersionInfo]:
        """Every retained version, oldest first (version ids strictly increase)."""
        entries = [VersionInfo.from_json(e) for e in self._read_manifest()["versions"]]
        return sorted(entries, key=lambda info: info.version)

    def latest(self) -> Optional[VersionInfo]:
        """The newest retained version, or None for an empty registry."""
        versions = self.list_versions()
        return versions[-1] if versions else None

    def info(self, version: int) -> VersionInfo:
        """Manifest entry of ``version``; raises :class:`UnknownVersionError`."""
        for entry in self.list_versions():
            if entry.version == version:
                return entry
        raise UnknownVersionError(
            f"version {version} is not in the registry at {self.directory!r}"
        )

    # ------------------------------------------------------------------ #
    # Publish / load
    # ------------------------------------------------------------------ #
    def publish(
        self,
        name: str,
        state: Dict[str, np.ndarray],
        payload: Any = None,
        payload_codec: Optional[PayloadCodec] = None,
        *,
        codec: str = "identity",
        task_id: int = 0,
        round_index: int = 0,
        fingerprint: str = "",
        accuracy: Optional[Dict[str, float]] = None,
    ) -> VersionInfo:
        """Durably publish one snapshot and return its manifest entry.

        The version file lands first (tmp + fsync + rename), the manifest
        second — a crash between the two leaves an orphaned version file that
        no manifest references, never a manifest pointing at garbage.
        Retention prunes only after both writes, so the newest version is
        always on disk.
        """
        codec_impl = build_codec(codec)  # validates the spec before any IO
        payload_codec = payload_codec if payload_codec is not None else TreePayloadCodec()
        arrays, skeleton = _flatten_message(state, payload, payload_codec)
        manifest = self._read_manifest()
        version = int(manifest.get("next_version", 1))
        path = os.path.join(self.directory, version_filename(version))
        save_checkpoint(
            path,
            {
                "registry_format": REGISTRY_FORMAT,
                "version": version,
                "name": name,
                "codec": codec,
                "plan": codec_impl.encode(arrays),
                "skeleton": skeleton,
            },
        )
        info = VersionInfo(
            version=version,
            name=name,
            task_id=task_id,
            round_index=round_index,
            fingerprint=fingerprint,
            codec=codec,
            num_bytes=os.path.getsize(path),
            accuracy=dict(accuracy) if accuracy else {},
        )
        manifest["format"] = REGISTRY_FORMAT
        manifest["next_version"] = version + 1
        manifest["versions"] = manifest["versions"] + [info.to_json()]
        self._write_manifest(manifest)
        if self.keep > 0:
            self._prune(manifest)
        return info

    def _prune(self, manifest: Dict[str, Any]) -> None:
        entries = sorted(manifest["versions"], key=lambda e: int(e["version"]))
        kept, pruned = retain_last(entries, self.keep)
        if not pruned:
            return
        # Manifest first: a reader must never resolve an entry whose file a
        # concurrent prune is about to delete.
        manifest["versions"] = kept
        self._write_manifest(manifest)
        for entry in pruned:
            try:
                os.remove(os.path.join(self.directory, version_filename(int(entry["version"]))))
            except FileNotFoundError:
                pass

    def load(
        self, version: Optional[int] = None, payload_codec: Optional[PayloadCodec] = None
    ) -> LoadedVersion:
        """Load (and CRC-validate) one version's model state and payload.

        ``version=None`` loads the latest.  ``payload_codec`` must match the
        one the snapshot was published through (the publishing method's own
        codec); the default generic tree codec matches the publish default.
        Truncated, mangled or inconsistent files raise
        :class:`RegistryCorruptionError` — garbage is never served.
        """
        if version is None:
            newest = self.latest()
            if newest is None:
                raise UnknownVersionError(f"registry at {self.directory!r} is empty")
            version = newest.version
        info = self.info(version)
        path = os.path.join(self.directory, info.filename)
        try:
            blob = load_checkpoint(path)
        except FileNotFoundError as error:
            raise RegistryCorruptionError(
                f"version {version} is in the manifest but its file is missing: {path!r}"
            ) from error
        except CheckpointCorruptionError as error:
            raise RegistryCorruptionError(str(error)) from error
        if blob.get("version") != version:
            raise RegistryCorruptionError(
                f"version file {path!r} claims version {blob.get('version')!r}, "
                f"manifest says {version}"
            )
        try:
            codec_impl = build_codec(blob["codec"])
            arrays = codec_impl.decode(blob["plan"])
            skeleton = blob["skeleton"]
        except (KeyError, ValueError, TypeError) as error:
            raise RegistryCorruptionError(
                f"version file {path!r} failed to decode: {error}"
            ) from error
        payload_codec = payload_codec if payload_codec is not None else TreePayloadCodec()
        state, payload = _split_message(arrays, skeleton, payload_codec)
        return LoadedVersion(info=info, state=state, payload=payload)


__all__ = [
    "REGISTRY_FORMAT",
    "LoadedVersion",
    "ModelRegistry",
    "RegistryCorruptionError",
    "RegistryError",
    "UnknownVersionError",
    "VersionInfo",
    "version_filename",
]
