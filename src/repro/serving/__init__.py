"""The serving plane: versioned model registry + concurrent online inference.

Training produces models; this package consumes them.  Three layers, each
only reaching *down* (service -> engine -> registry -> the federated planes'
public helpers), never sideways into plane internals:

* :mod:`repro.serving.registry` — :class:`ModelRegistry`: named, versioned,
  codec-compressed model snapshots (model params + method payload through the
  method's own ``payload_codec()``) in CRC-checked ``RPCK`` containers, with a
  queryable JSON manifest, atomic writes and oldest-first retention.
* :mod:`repro.serving.engine` — :class:`InferenceEngine`: loads a registry
  version into an immutable snapshot, answers batched ``predict`` requests
  through the kernel plane (eager, or ``tape`` compiled forward plans for
  repeat shapes), and hot-swaps to a newer version atomically between batches.
* :mod:`repro.serving.service` — :class:`ServingFrontEnd`: bounded request
  queue, micro-batching, worker threads, backpressure and per-version
  latency/throughput telemetry.
"""

from repro.serving.engine import InferenceEngine, ServedBatch
from repro.serving.registry import (
    LoadedVersion,
    ModelRegistry,
    RegistryCorruptionError,
    RegistryError,
    UnknownVersionError,
    VersionInfo,
)
from repro.serving.service import QueueFullError, ServedResponse, ServingFrontEnd

__all__ = [
    "InferenceEngine",
    "LoadedVersion",
    "ModelRegistry",
    "QueueFullError",
    "RegistryCorruptionError",
    "RegistryError",
    "ServedBatch",
    "ServedResponse",
    "ServingFrontEnd",
    "UnknownVersionError",
    "VersionInfo",
]
