"""Inference engine: immutable model snapshots with atomic hot swap.

An :class:`InferenceEngine` binds a :class:`~repro.serving.registry.
ModelRegistry` to a :class:`~repro.federated.method.FederatedMethod` and
answers batched ``predict`` requests against its currently installed version.
Two invariants make concurrent serving safe:

* **Snapshots are immutable.**  Installing a version builds a fresh model
  (under the published state's own dtype), loads the decoded arrays into it,
  and freezes the *method* too — a pickle round-trip of the live method object
  — so a training thread mutating its method mid-run can never bleed into
  responses already being served.  Nothing in a snapshot is written after
  construction.
* **Swaps are atomic between batches.**  ``predict`` grabs the snapshot
  reference exactly once per batch; ``install``/``refresh`` replace the
  reference in a single assignment.  An in-flight batch therefore finishes
  entirely on the version it started with — no response is ever computed from
  a half-swapped model — and the next batch sees the new version.

Prediction runs through the kernel plane.  ``kernel="eager"`` is the
evaluator's exact path (eval mode, ``no_grad``, the method's own
``predict_logits``).  ``kernel="tape"`` traces the first batch of each input
shape into a :class:`ForwardPlan` — a forward-only compiled program replayed
without tensor wrapping, module traversal or graph bookkeeping — and, exactly
like the training-side tape kernel, verifies the first replay bit-for-bit
against eager before trusting it; any divergence (or an untraceable predict
path) falls back to eager for that shape permanently.  Served logits are
therefore bit-for-bit identical to direct evaluation of the same version
under either kernel.
"""

from __future__ import annotations

import pickle
import threading
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.autograd.tape import PlanCache, PlanError, Tape, tracing
from repro.autograd.tensor import Tensor, default_dtype, no_grad
from repro.serving.registry import (
    LoadedVersion,
    ModelRegistry,
    RegistryError,
    VersionInfo,
)

SERVING_KERNELS = ("eager", "tape")


@dataclass(frozen=True)
class ServedBatch:
    """One batch of logits plus the version that produced every row of it."""

    version: int
    logits: np.ndarray


class ForwardPlan:
    """A traced forward pass compiled for replay (no backward schedule).

    The training-side :class:`~repro.autograd.tape.Plan` anchors on a loss and
    replays gradients; serving only needs the logits, so this plan keeps just
    the chronological record slice that the output depends on.  Parameters,
    buffers and traced constants are baked in at compile time — valid because
    snapshots are immutable — and replay is a flat loop over precomputed
    ``(forward, input_slots, out_slot, kwargs, dtype)`` instructions.

    Refuses to compile anything whose replay could diverge from or mutate the
    snapshot: effect records (a train-mode batch-norm reached the trace) and
    rng-driven kwargs (live dropout) raise :class:`~repro.autograd.tape.
    PlanError`, sending that shape to the eager path.
    """

    __slots__ = ("input_slot", "out_slot", "n_slots", "_instructions", "_leaves")

    def __init__(self, tape: Tape, output: Any) -> None:
        out_slot = tape._slots.get(id(output))
        if out_slot is None:
            raise PlanError("predict output was not produced under this tape")
        input_slot = tape._inputs.get("images")
        if input_slot is None:
            raise PlanError("forward plan requires a marked 'images' input")
        self.input_slot = input_slot
        self.out_slot = out_slot
        self.n_slots = len(tape._tensors)

        # Records the output actually depends on, in chronological order.
        needed = {out_slot}
        keep: List[Any] = []
        for rec in reversed(tape.records):
            if rec.out_slot is None:
                raise PlanError(
                    "traced predict has an effect record (train-mode running-stat "
                    "update); serving snapshots must be side-effect free"
                )
            if rec.out_slot in needed:
                needed.update(rec.input_slots)
                keep.append(rec)
        keep.reverse()

        produced = {rec.out_slot for rec in keep}
        self._instructions: List[Tuple[Any, Tuple[int, ...], int, Dict[str, Any], Any]] = []
        for rec in keep:
            for value in rec.kwargs.values():
                _reject_stateful_kwarg(value)
            self._instructions.append(
                (rec.op.forward, rec.input_slots, rec.out_slot, rec.kwargs, rec.out_dtype)
            )
        # Every needed slot that no instruction produces and that is not the
        # batch input is a leaf: parameter, buffer-as-constant, or constant.
        self._leaves: List[Tuple[int, np.ndarray]] = []
        for slot in sorted(needed - produced - {input_slot}):
            tensor = tape._tensors[slot]
            self._leaves.append((slot, np.asarray(tensor.data)))

    def run(self, images: np.ndarray) -> np.ndarray:
        """Replay the forward pass on ``images`` and return the logits array."""
        from repro.autograd.tape import OpContext

        env: List[Any] = [None] * self.n_slots
        for slot, value in self._leaves:
            env[slot] = value
        env[self.input_slot] = images
        ctx = OpContext()  # forwards only write scratch, so one context serves all
        for forward, input_slots, out_slot, kwargs, out_dtype in self._instructions:
            result = forward(ctx, *(env[s] for s in input_slots), **kwargs)
            # Mirror Tensor.__init__'s asarray so replayed intermediates match
            # eager dtype/0-d handling exactly (no copy when already matching).
            env[out_slot] = np.asarray(result, dtype=out_dtype)
        return env[self.out_slot]


def _reject_stateful_kwarg(value: Any) -> None:
    if isinstance(value, np.random.Generator):
        raise PlanError("traced predict consumes an rng stream (live dropout?)")
    if isinstance(value, tuple):
        for item in value:
            _reject_stateful_kwarg(item)


class _ForwardPlanState:
    """Lifecycle of one forward plan: traced -> verified -> replay-only."""

    __slots__ = ("plan", "verified", "bad")

    def __init__(self, plan: Optional[ForwardPlan]) -> None:
        self.plan = plan
        self.verified = False
        self.bad = plan is None


class ModelSnapshot:
    """One installed version: frozen model + frozen method + per-shape plans.

    Never mutated after construction (the plan cache only accretes compiled
    plans, which is idempotent), so any number of serving threads may predict
    through one snapshot while the engine installs its successor.
    """

    def __init__(
        self,
        loaded: LoadedVersion,
        method: Any,
        kernel: str,
        plan_cache_size: int = 32,
    ) -> None:
        self.info: VersionInfo = loaded.info
        self.payload = loaded.payload
        # Freeze the method at install time: server-side method state (e.g.
        # prompt stores consulted by predict_logits) must not drift under a
        # response already being computed.
        self.method = pickle.loads(pickle.dumps(method))
        # The snapshot's compute dtype is the *published state's* dtype: the
        # model is built under it so load_state_dict's in-place cast is the
        # identity and served numbers are the published numbers.
        self.dtype = np.dtype(np.float64)
        for value in loaded.state.values():
            array = np.asarray(value)
            if array.dtype.kind == "f":
                self.dtype = array.dtype
                break
        self.kernel = kernel
        with default_dtype(self.dtype):
            self.model = self.method.build_model()
            self.model.load_state_dict(loaded.state)
        self.model.eval()
        self.plans = PlanCache(max_plans=plan_cache_size)

    def _eager(self, x: Tensor) -> Tensor:
        return self.method.predict_logits(self.model, x)

    def predict(self, images: np.ndarray) -> np.ndarray:
        """Logits for one prepared batch (rows of shape ``sample_shape``)."""
        if self.kernel == "tape":
            # Steady-state fast path: a verified plan needs no Tensor wrapper
            # and no grad/dtype context — the replay consumes raw arrays and
            # the cast below is exactly what Tensor.__init__ would have done.
            arr = np.asarray(np.asarray(images), dtype=self.dtype)
            state = self.plans.get((arr.shape, str(arr.dtype)))
            if state is not None and state.verified:
                return state.plan.run(arr)
        with default_dtype(self.dtype), no_grad():
            x = Tensor(np.asarray(images))
            if self.kernel != "tape":
                return np.asarray(self._eager(x).data)
            key = (x.data.shape, str(x.data.dtype))
            state = self.plans.get(key)
            if state is None:
                tape = Tape()
                tape.mark_input("images", x)
                with tracing(tape):
                    logits = self._eager(x)
                try:
                    self.plans.put(key, _ForwardPlanState(ForwardPlan(tape, logits)))
                except PlanError:
                    self.plans.put(key, _ForwardPlanState(None))
                return np.asarray(logits.data)
            if state.bad:
                return np.asarray(self._eager(x).data)
            if not state.verified:
                # First replay must reproduce eager bit-for-bit before the
                # shape goes replay-only; eager stays authoritative here.
                replayed = state.plan.run(x.data)
                eager = np.asarray(self._eager(x).data)
                if np.array_equal(replayed, eager):
                    state.verified = True
                else:
                    state.bad = True
                return eager
            return state.plan.run(x.data)


class InferenceEngine:
    """Serves predictions from registry versions with atomic hot swap."""

    def __init__(
        self,
        registry: ModelRegistry,
        method: Any,
        kernel: str = "eager",
        plan_cache_size: int = 32,
    ) -> None:
        if kernel not in SERVING_KERNELS:
            raise ValueError(
                f"serving kernel must be one of {SERVING_KERNELS}, got {kernel!r}"
            )
        self.registry = registry
        self.method = method
        self.kernel = kernel
        self.plan_cache_size = plan_cache_size
        self._snapshot: Optional[ModelSnapshot] = None
        self._install_lock = threading.Lock()
        self.swap_count = 0

    @property
    def current_version(self) -> Optional[int]:
        snapshot = self._snapshot
        return snapshot.info.version if snapshot is not None else None

    def install(self, version: Optional[int] = None) -> VersionInfo:
        """Load ``version`` (default: latest) and make it the serving snapshot.

        The expensive part — decode, model build, state load — happens outside
        the swap; the swap itself is one reference assignment, so concurrent
        ``predict`` calls never wait on an install and never observe a
        half-built snapshot.
        """
        loaded = self.registry.load(version, self.method.payload_codec())
        with self._install_lock:
            previous = self._snapshot
            if previous is not None and previous.info.version == loaded.info.version:
                return previous.info
            snapshot = ModelSnapshot(
                loaded, self.method, self.kernel, self.plan_cache_size
            )
            self._snapshot = snapshot
            if previous is not None:
                self.swap_count += 1
        return loaded.info

    def refresh(self) -> Optional[VersionInfo]:
        """Install the registry's latest version if newer than the current one.

        Returns the installed :class:`VersionInfo`, or None when already
        current (or the registry is still empty and nothing is installed yet).
        """
        newest = self.registry.latest()
        if newest is None:
            return None
        current = self._snapshot
        if current is not None and newest.version <= current.info.version:
            return None
        return self.install(newest.version)

    def predict(self, images: np.ndarray) -> ServedBatch:
        """Predict one batch on the current snapshot, tagged with its version."""
        snapshot = self._snapshot  # grabbed once: the whole batch rides this version
        if snapshot is None:
            raise RegistryError(
                "no version installed; call install() or refresh() after the "
                "registry's first publish"
            )
        return ServedBatch(version=snapshot.info.version, logits=snapshot.predict(images))


__all__ = [
    "SERVING_KERNELS",
    "ForwardPlan",
    "InferenceEngine",
    "ModelSnapshot",
    "ServedBatch",
]
