"""Logging configuration shared by the examples and the experiment harness."""

from __future__ import annotations

import logging
import sys

_FORMAT = "%(asctime)s %(name)s %(levelname)s: %(message)s"


def get_logger(name: str, level: int = logging.INFO) -> logging.Logger:
    """Return a configured logger that writes to stderr exactly once."""
    logger = logging.getLogger(name)
    if not logger.handlers:
        handler = logging.StreamHandler(sys.stderr)
        handler.setFormatter(logging.Formatter(_FORMAT, datefmt="%H:%M:%S"))
        logger.addHandler(handler)
        logger.propagate = False
    logger.setLevel(level)
    return logger


__all__ = ["get_logger"]
