"""Deterministic random-number management.

Every stochastic component in the reproduction (dataset synthesis, client
sampling, weight initialisation, local SGD shuffling) receives an explicit
``numpy.random.Generator`` derived from a single experiment seed, so whole
federated runs are bit-for-bit reproducible.
"""

from __future__ import annotations

import hashlib
from typing import Optional, Union

import numpy as np

_GLOBAL_SEED = 0


def set_global_seed(seed: int) -> None:
    """Set the process-wide default seed used when no explicit seed is given."""
    global _GLOBAL_SEED
    _GLOBAL_SEED = int(seed)
    np.random.seed(seed % (2 ** 32))


def seeded_rng(seed: Optional[int] = None) -> np.random.Generator:
    """Create a generator from ``seed`` (or the global default seed)."""
    return np.random.default_rng(_GLOBAL_SEED if seed is None else seed)


def spawn_rng(base_seed: int, *labels: Union[str, int]) -> np.random.Generator:
    """Derive an independent generator from a base seed and a label path.

    The labels (e.g. ``("client", 3, "task", 1)``) are hashed so that streams
    for different components never collide and do not depend on call order.
    """
    digest = hashlib.sha256()
    digest.update(str(int(base_seed)).encode())
    for label in labels:
        digest.update(b"/")
        digest.update(str(label).encode())
    derived = int.from_bytes(digest.digest()[:8], "little")
    return np.random.default_rng(derived)


__all__ = ["set_global_seed", "seeded_rng", "spawn_rng"]
