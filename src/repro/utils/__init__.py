"""Cross-cutting utilities: seeding, lightweight logging and timing."""

from repro.utils.rng import seeded_rng, spawn_rng, set_global_seed
from repro.utils.logging_utils import get_logger
from repro.utils.timing import Timer

__all__ = ["seeded_rng", "spawn_rng", "set_global_seed", "get_logger", "Timer"]
