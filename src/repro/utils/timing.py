"""Wall-clock timing helper used by the experiment harness and benches."""

from __future__ import annotations

import time
from typing import Dict, Optional


class Timer:
    """Accumulates named wall-clock intervals.

    Example
    -------
    >>> timer = Timer()
    >>> with timer.measure("local_training"):
    ...     pass
    >>> timer.total("local_training") >= 0.0
    True
    """

    def __init__(self) -> None:
        self._totals: Dict[str, float] = {}
        self._counts: Dict[str, int] = {}

    def measure(self, name: str) -> "_TimerContext":
        return _TimerContext(self, name)

    def record(self, name: str, elapsed: float) -> None:
        self._totals[name] = self._totals.get(name, 0.0) + elapsed
        self._counts[name] = self._counts.get(name, 0) + 1

    def total(self, name: str) -> float:
        return self._totals.get(name, 0.0)

    def count(self, name: str) -> int:
        return self._counts.get(name, 0)

    def mean(self, name: str) -> float:
        count = self._counts.get(name, 0)
        return self._totals.get(name, 0.0) / count if count else 0.0

    def summary(self) -> Dict[str, float]:
        return dict(self._totals)


class _TimerContext:
    def __init__(self, timer: Timer, name: str) -> None:
        self._timer = timer
        self._name = name
        self._start: Optional[float] = None

    def __enter__(self) -> "_TimerContext":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        assert self._start is not None
        self._timer.record(self._name, time.perf_counter() - self._start)


__all__ = ["Timer"]
