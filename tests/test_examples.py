"""The example scripts are public entry points — they must not silently rot.

Every example is smoke-imported (its module level executes: imports, constants,
function definitions), and ``quickstart.py`` — the smallest end-to-end use of
the public API — actually runs as a subprocess in the ``slow`` tier, asserting
it exits cleanly and prints the paper's metrics.
"""

from __future__ import annotations

import importlib.util
import os
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
EXAMPLES = sorted((REPO_ROOT / "examples").glob("*.py"))


def _example_env() -> dict:
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = src + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    return env


def test_examples_exist():
    names = {path.name for path in EXAMPLES}
    assert {"quickstart.py", "compare_methods_pacs.py", "prompt_clustering_demo.py"} <= names


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda path: path.stem)
def test_example_imports_cleanly(path):
    """Module level must execute (its ``main()`` stays behind ``__main__``)."""
    spec = importlib.util.spec_from_file_location(f"example_{path.stem}", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    assert callable(getattr(module, "main", None)), f"{path.name} must define main()"


@pytest.mark.slow
def test_quickstart_runs_end_to_end():
    result = subprocess.run(
        [sys.executable, str(REPO_ROOT / "examples" / "quickstart.py")],
        env=_example_env(),
        capture_output=True,
        text=True,
        timeout=900,
    )
    assert result.returncode == 0, result.stderr
    assert "Avg  accuracy" in result.stdout
    assert "total communication" in result.stdout
