"""Shared fixtures: tiny datasets, backbones and federated configs used across the suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets.registry import get_dataset_spec
from repro.federated.client import LocalTrainingConfig
from repro.federated.config import FederatedConfig
from repro.federated.increment import ClientIncrementConfig
from repro.models.backbone import BackboneConfig


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)


@pytest.fixture
def tiny_spec():
    """A micro OfficeCaltech-like spec: 3 classes, 4 domains, very few samples."""
    return get_dataset_spec("office_caltech").scaled(
        train_per_domain=24, test_per_domain=12, num_classes=3
    )


@pytest.fixture
def tiny_backbone_config(tiny_spec) -> BackboneConfig:
    return BackboneConfig(
        image_size=tiny_spec.image_size,
        num_classes=tiny_spec.num_classes,
        base_width=4,
        embed_dim=16,
        num_heads=2,
        seed=7,
    )


@pytest.fixture
def tiny_federated_config() -> FederatedConfig:
    return FederatedConfig(
        increment=ClientIncrementConfig(
            initial_clients=3, increment_per_task=1, transfer_fraction=0.8, seed=7
        ),
        clients_per_round=2,
        rounds_per_task=1,
        local=LocalTrainingConfig(local_epochs=1, batch_size=8, learning_rate=0.05),
        seed=7,
    )
