"""Tests for optimisers and learning-rate schedulers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.autograd import Tensor, functional as F
from repro.nn.linear import Linear
from repro.nn.module import Parameter
from repro.nn.optim import SGD, Adam
from repro.nn.scheduler import ConstantLR, CosineAnnealingLR, StepLR

RNG = np.random.default_rng(5)


def _quadratic_step(optimizer, param):
    optimizer.zero_grad()
    loss = (param * param).sum()
    loss.backward()
    optimizer.step()
    return float(loss.data)


class TestSGD:
    def test_plain_sgd_matches_manual_update(self):
        p = Parameter(np.array([2.0]))
        SGD([p], lr=0.1).step()  # no grad yet -> no change
        assert p.data[0] == pytest.approx(2.0)
        opt = SGD([p], lr=0.1)
        _quadratic_step(opt, p)
        # grad = 2 * 2 = 4, update = 0.1 * 4
        assert p.data[0] == pytest.approx(2.0 - 0.4)

    def test_sgd_converges_on_quadratic(self):
        p = Parameter(np.array([5.0, -3.0]))
        opt = SGD([p], lr=0.2)
        for _ in range(50):
            _quadratic_step(opt, p)
        assert np.allclose(p.data, 0.0, atol=1e-3)

    def test_momentum_accelerates(self):
        plain = Parameter(np.array([5.0]))
        momentum = Parameter(np.array([5.0]))
        opt_plain = SGD([plain], lr=0.02)
        opt_momentum = SGD([momentum], lr=0.02, momentum=0.9)
        for _ in range(20):
            _quadratic_step(opt_plain, plain)
            _quadratic_step(opt_momentum, momentum)
        assert abs(momentum.data[0]) < abs(plain.data[0])

    def test_weight_decay_shrinks_parameters(self):
        p = Parameter(np.array([1.0]))
        opt = SGD([p], lr=0.1, weight_decay=0.5)
        opt.zero_grad()
        p.grad = np.zeros(1)
        opt.step()
        assert p.data[0] == pytest.approx(1.0 - 0.1 * 0.5)

    def test_grad_clipping_bounds_update(self):
        p = Parameter(np.array([0.0]))
        opt = SGD([p], lr=1.0, max_grad_norm=1.0)
        p.grad = np.array([100.0])
        opt.step()
        assert abs(p.data[0]) <= 1.0 + 1e-9

    def test_frozen_parameters_not_updated(self):
        p = Parameter(np.array([1.0]))
        p.requires_grad = False
        opt = SGD([p], lr=0.5)
        p.grad = np.array([1.0])
        opt.step()
        assert p.data[0] == pytest.approx(1.0)

    def test_validation_errors(self):
        p = Parameter(np.array([1.0]))
        with pytest.raises(ValueError):
            SGD([], lr=0.1)
        with pytest.raises(ValueError):
            SGD([p], lr=-0.1)
        with pytest.raises(ValueError):
            SGD([p], lr=0.1, nesterov=True)

    def test_nesterov_runs(self):
        p = Parameter(np.array([5.0]))
        opt = SGD([p], lr=0.1, momentum=0.9, nesterov=True)
        for _ in range(20):
            _quadratic_step(opt, p)
        assert abs(p.data[0]) < 5.0


class TestAdam:
    def test_adam_converges_on_quadratic(self):
        p = Parameter(np.array([4.0, -4.0]))
        opt = Adam([p], lr=0.1)
        for _ in range(300):
            _quadratic_step(opt, p)
        assert np.allclose(p.data, 0.0, atol=0.05)

    def test_adam_trains_linear_regression(self):
        layer = Linear(3, 1, rng=RNG)
        target_w = np.array([[1.0, -2.0, 0.5]])
        x = RNG.standard_normal((64, 3))
        y = x @ target_w.T
        opt = Adam(layer.parameters(), lr=0.05)
        for _ in range(150):
            opt.zero_grad()
            loss = F.mse_loss(layer(Tensor(x)), Tensor(y))
            loss.backward()
            opt.step()
        assert np.allclose(layer.weight.data, target_w, atol=0.1)


class TestSchedulers:
    def test_constant(self):
        p = Parameter(np.array([1.0]))
        opt = SGD([p], lr=0.3)
        sched = ConstantLR(opt)
        for _ in range(5):
            sched.step()
        assert opt.lr == pytest.approx(0.3)

    def test_step_lr_decays(self):
        opt = SGD([Parameter(np.array([1.0]))], lr=1.0)
        sched = StepLR(opt, step_size=2, gamma=0.1)
        lrs = [sched.step() for _ in range(4)]
        assert lrs[0] == pytest.approx(1.0)
        assert lrs[1] == pytest.approx(0.1)
        assert lrs[3] == pytest.approx(0.01)

    def test_cosine_lr_endpoints(self):
        opt = SGD([Parameter(np.array([1.0]))], lr=1.0)
        sched = CosineAnnealingLR(opt, t_max=10, eta_min=0.0)
        values = [sched.step() for _ in range(10)]
        assert values[0] < 1.0
        assert values[-1] == pytest.approx(0.0, abs=1e-9)
        assert all(a >= b for a, b in zip(values, values[1:]))

    def test_scheduler_validation(self):
        opt = SGD([Parameter(np.array([1.0]))], lr=1.0)
        with pytest.raises(ValueError):
            StepLR(opt, step_size=0)
        with pytest.raises(ValueError):
            CosineAnnealingLR(opt, t_max=0)


class TestClipFrozenParams:
    def test_clip_norm_excludes_frozen_params(self):
        # A stale grad left on a later-frozen parameter must not inflate the
        # global norm: with only the live grad (norm 3) clipped to 1, the
        # update is exactly -1; counting the frozen grad would make it -0.6.
        live = Parameter(np.array([3.0]))
        frozen = Parameter(np.array([0.0]))
        frozen.requires_grad = False
        opt = SGD([live, frozen], lr=1.0, max_grad_norm=1.0)
        live.grad = np.array([3.0])
        frozen.grad = np.array([4.0])
        opt.step()
        assert live.data[0] == pytest.approx(2.0)
        assert frozen.data[0] == pytest.approx(0.0)

    def test_frozen_grad_not_rescaled(self):
        frozen = Parameter(np.array([0.0]))
        frozen.requires_grad = False
        live = Parameter(np.array([0.0]))
        opt = SGD([live, frozen], lr=1.0, max_grad_norm=1.0)
        live.grad = np.array([2.0])
        frozen.grad = np.array([7.0])
        opt.step()
        assert frozen.grad[0] == pytest.approx(7.0)


class TestBatchedSGD:
    """The lockstep optimizer must track K independent eager SGDs."""

    def _run_pair(self, **kwargs):
        from repro.nn.optim import BatchedSGD

        rng = np.random.default_rng(11)
        k, shape = 3, (4, 2)
        init = rng.standard_normal((k,) + shape)
        grads_per_step = [rng.standard_normal((k,) + shape) for _ in range(4)]

        eager_params = [Parameter(init[i].copy()) for i in range(k)]
        eager_opts = [SGD([p], lr=0.1, **kwargs) for p in eager_params]
        for grads in grads_per_step:
            for i, (p, opt) in enumerate(zip(eager_params, eager_opts)):
                p.grad = grads[i].copy()
                opt.step()

        stacks = {0: init.copy()}
        batched = BatchedSGD(k, lr=0.1, **kwargs)
        for grads in grads_per_step:
            batched.step(stacks, {0: grads.copy()})

        stacked_eager = np.stack([p.data for p in eager_params])
        return stacked_eager, stacks[0]

    def test_plain_sgd_parity_is_exact(self):
        eager, batched = self._run_pair()
        assert np.array_equal(eager, batched)

    def test_momentum_weight_decay_parity(self):
        eager, batched = self._run_pair(momentum=0.9, weight_decay=0.01, nesterov=True)
        assert np.allclose(eager, batched, atol=1e-12)

    def test_clip_parity_per_client(self):
        eager, batched = self._run_pair(max_grad_norm=0.5)
        assert np.allclose(eager, batched, atol=1e-12)
