"""Unit and property tests for the kernel plane (repro.autograd.tape).

Covers the three contracts the plane advertises:

* tape-mode replay of a compiled :class:`Plan` is *bit-for-bit* identical to
  the eager closure backward (loss and every leaf gradient);
* the plan cache is keyed so any shape or dtype change misses;
* the batched lockstep replay matches per-client eager runs to float
  accumulation-order tolerance, and refuses (``PlanNotBatchable``) anything
  it cannot vectorize exactly.
"""

from __future__ import annotations

import gc
import weakref

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.autograd import Tensor, functional as F
from repro.autograd.tape import (
    KERNELS,
    Plan,
    PlanCache,
    PlanError,
    PlanNotBatchable,
    Tape,
    get_kernel,
    kernel_mode,
    model_fingerprint,
    plan_key,
    set_kernel,
    tracing,
)
from repro.nn.linear import Linear
from repro.nn.module import Parameter

RNG = np.random.default_rng(123)


def _mlp_step(x, w1, b1, w2, labels):
    """One tiny MLP cross-entropy step shared by eager and traced runs."""
    h = F.relu(F.linear(x, w1, b1))
    logits = h @ w2
    return F.cross_entropy(logits, labels)


def _fresh_params():
    w1 = Parameter(RNG.standard_normal((5, 3)))
    b1 = Parameter(RNG.standard_normal(5))
    w2 = Parameter(RNG.standard_normal((5, 4)))
    return w1, b1, w2


class TestKernelGlobals:
    def test_default_is_eager(self):
        assert get_kernel() == "eager"
        assert KERNELS == ("eager", "tape", "batched")

    def test_set_kernel_validates(self):
        with pytest.raises(ValueError):
            set_kernel("jit")

    def test_kernel_mode_restores_on_exit(self):
        with kernel_mode("tape"):
            assert get_kernel() == "tape"
            with pytest.raises(ValueError):
                with kernel_mode("nope"):
                    pass  # pragma: no cover
            assert get_kernel() == "tape"
        assert get_kernel() == "eager"

    def test_nested_tracing_rejected(self):
        with tracing(Tape()):
            with pytest.raises(RuntimeError):
                with tracing(Tape()):
                    pass  # pragma: no cover


class TestPlanReplayParity:
    """Compiled-plan replay must be bit-identical to the eager backward."""

    def _trace(self, params, x_np, labels):
        w1, b1, w2 = params
        tape = Tape()
        with tracing(tape):
            x = Tensor(x_np)
            tape.mark_input("x", x)
            loss = _mlp_step(x, w1, b1, w2, labels)
        return Plan(tape, loss)

    def _eager_grads(self, params, x_np, labels):
        w1, b1, w2 = params
        for p in (w1, b1, w2):
            p.zero_grad()
        loss = _mlp_step(Tensor(x_np), w1, b1, w2, labels)
        loss.backward()
        return loss.data, [p.grad.copy() for p in (w1, b1, w2)]

    def test_replay_matches_eager_bitwise(self):
        params = _fresh_params()
        x_np = RNG.standard_normal((6, 3))
        labels = np.array([0, 1, 2, 3, 0, 1])
        plan = self._trace(params, x_np, labels)
        loss_value, leaf_grads = plan.execute({"x": x_np})
        eager_loss, eager_grads = self._eager_grads(params, x_np, labels)
        assert np.array_equal(loss_value, eager_loss)
        for param, expected in zip(params, eager_grads):
            replayed = plan.grad_for(param, leaf_grads)
            assert np.array_equal(replayed, expected)

    def test_replay_with_new_batch_matches_fresh_eager(self):
        params = _fresh_params()
        labels = np.array([1, 2, 0, 3])
        plan = self._trace(params, RNG.standard_normal((4, 3)), labels)
        x2 = RNG.standard_normal((4, 3))
        loss_value, leaf_grads = plan.execute({"x": x2})
        eager_loss, eager_grads = self._eager_grads(params, x2, labels)
        assert np.array_equal(loss_value, eager_loss)
        for param, expected in zip(params, eager_grads):
            assert np.array_equal(plan.grad_for(param, leaf_grads), expected)

    def test_replay_reads_live_param_values(self):
        # A replay after a parameter update must use the updated values, not
        # the values captured at trace time.
        params = _fresh_params()
        labels = np.array([0, 1])
        x_np = RNG.standard_normal((2, 3))
        plan = self._trace(params, x_np, labels)
        params[0].data = params[0].data - 0.5
        loss_value, _ = plan.execute({"x": x_np})
        eager_loss, _ = self._eager_grads(params, x_np, labels)
        assert np.array_equal(loss_value, eager_loss)

    def test_apply_grads_mirrors_accumulate(self):
        params = _fresh_params()
        labels = np.array([0, 1, 2])
        x_np = RNG.standard_normal((3, 3))
        plan = self._trace(params, x_np, labels)
        _, leaf_grads = plan.execute({"x": x_np})
        _, eager_grads = self._eager_grads(params, x_np, labels)
        for p in params:
            p.zero_grad()
        plan.apply_grads(leaf_grads)
        plan.apply_grads(leaf_grads)  # second fold accumulates, like eager
        for param, expected in zip(params, eager_grads):
            assert np.array_equal(param.grad, 2.0 * expected)


# The op pool for the random-program property test: every entry maps one
# (4, 4) hidden state and two (4, 4) parameters to a new (4, 4) state.
_PROGRAM_OPS = {
    "matmul0": lambda h, p0, p1: h @ p0,
    "add1": lambda h, p0, p1: h + p1,
    "mul0": lambda h, p0, p1: h * p0,
    "sub1": lambda h, p0, p1: h - p1,
    "tanh": lambda h, p0, p1: F.tanh(h),
    "sigmoid": lambda h, p0, p1: F.sigmoid(h),
    "relu": lambda h, p0, p1: F.relu(h),
    "gelu": lambda h, p0, p1: F.gelu(h),
    "scale": lambda h, p0, p1: h * 0.5,
    "square": lambda h, p0, p1: h * h,
    "norm": lambda h, p0, p1: F.l2_normalize(h),
    "softmax": lambda h, p0, p1: F.softmax(h),
}


def _run_program(codes, x, p0, p1):
    h = x
    for code in codes:
        h = _PROGRAM_OPS[code](h, p0, p1)
    return (h * h).mean()


class TestRandomProgramProperty:
    """Tape replay ≡ eager for arbitrary op sequences (hypothesis)."""

    @settings(max_examples=30, deadline=None)
    @given(
        codes=st.lists(
            st.sampled_from(sorted(_PROGRAM_OPS)), min_size=1, max_size=8
        ),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    def test_tape_replay_bitwise_equals_eager(self, codes, seed):
        rng = np.random.default_rng(seed)
        p0 = Parameter(rng.standard_normal((4, 4)))
        p1 = Parameter(rng.standard_normal((4, 4)))
        x_np = rng.standard_normal((4, 4))

        tape = Tape()
        with tracing(tape):
            x = Tensor(x_np)
            tape.mark_input("x", x)
            loss = _run_program(codes, x, p0, p1)
        plan = Plan(tape, loss)

        # replay on a *new* batch so the plan genuinely recomputes
        x2 = rng.standard_normal((4, 4))
        loss_value, leaf_grads = plan.execute({"x": x2})

        p0.zero_grad(), p1.zero_grad()
        eager_loss = _run_program(codes, Tensor(x2), p0, p1)
        if eager_loss.requires_grad:  # a program may never touch a parameter
            eager_loss.backward()

        assert np.array_equal(loss_value, eager_loss.data)
        for param in (p0, p1):
            replayed = plan.grad_for(param, leaf_grads)
            if param.grad is None:
                assert replayed is None
            else:
                assert np.array_equal(replayed, param.grad)


class TestPlanCacheKeying:
    """Any shape or dtype change must be a cache miss (hypothesis)."""

    def _model(self):
        return Linear(3, 2, rng=np.random.default_rng(0))

    def test_same_batch_hits(self):
        model = self._model()
        images = np.zeros((4, 3))
        labels = np.zeros(4, dtype=np.int64)
        cache = PlanCache()
        key = plan_key(model, images, labels)
        assert cache.get(key) is None
        cache.put(key, "sentinel")
        assert cache.get(plan_key(model, images.copy(), labels.copy())) == "sentinel"
        assert (cache.hits, cache.misses) == (1, 1)
        assert len(cache) == 1

    @settings(max_examples=25, deadline=None)
    @given(
        batch=st.integers(min_value=1, max_value=6),
        dtype=st.sampled_from(["float32", "float64"]),
        other_batch=st.integers(min_value=1, max_value=6),
        other_dtype=st.sampled_from(["float32", "float64"]),
    )
    def test_shape_or_dtype_change_invalidates(self, batch, dtype, other_batch, other_dtype):
        model = self._model()
        key_a = plan_key(model, np.zeros((batch, 3), dtype=dtype), np.zeros(batch, np.int64))
        key_b = plan_key(
            model, np.zeros((other_batch, 3), dtype=other_dtype), np.zeros(other_batch, np.int64)
        )
        assert (key_a == key_b) == (batch == other_batch and dtype == other_dtype)

    def test_fingerprint_tracks_trainability(self):
        model = self._model()
        before = model_fingerprint(model)
        model.weight.requires_grad = False
        assert model_fingerprint(model) != before


class TestPlanCompileErrors:
    def test_loss_outside_tape_rejected(self):
        tape = Tape()
        with tracing(tape):
            _ = Tensor(np.ones(3)) * 2.0
        stray = Tensor(np.ones(3)) * 3.0  # built after tracing ended
        with pytest.raises(PlanError):
            Plan(tape, stray)

    def test_trainable_non_parameter_leaf_rejected(self):
        rogue = Tensor(np.ones(3), requires_grad=True)
        tape = Tape()
        with tracing(tape):
            loss = (rogue * 2.0).sum()
        with pytest.raises(PlanError, match="non-parameter leaf"):
            Plan(tape, loss)

    def test_grad_requiring_input_rejected(self):
        tape = Tape()
        with tracing(tape):
            x = Tensor(np.ones(3), requires_grad=True)
            tape.mark_input("x", x)
            p = Parameter(np.ones(3))
            loss = (x * p).sum()
        with pytest.raises(PlanError, match="must not require grad"):
            Plan(tape, loss)


class TestBatchedReplay:
    def _trace_quadratic(self, w, b, x_np):
        tape = Tape()
        with tracing(tape):
            x = Tensor(x_np)
            tape.mark_input("x", x)
            h = F.tanh(x @ w + b)
            loss = (h * h).mean()
        return Plan(tape, loss)

    def test_batched_matches_per_client_eager(self):
        k, batch, dim = 3, 4, 3
        w_stack = RNG.standard_normal((k, dim, dim))
        b_stack = RNG.standard_normal((k, dim))
        x_stack = RNG.standard_normal((k, batch, dim))

        w = Parameter(w_stack[0].copy())
        b = Parameter(b_stack[0].copy())
        plan = self._trace_quadratic(w, b, x_stack[0])
        slots = [slot for slot, _ in plan.param_leaves]
        plan.prepare_batched(slots)
        slot_of = {id(p): slot for slot, p in plan.param_leaves}
        stacks = {slot_of[id(w)]: w_stack.copy(), slot_of[id(b)]: b_stack.copy()}
        loss_vec, leaf_grads = plan.execute_batched(k, {"x": x_stack}, stacks)

        assert loss_vec.shape[0] == k
        for i in range(k):
            wi = Parameter(w_stack[i].copy())
            bi = Parameter(b_stack[i].copy())
            h = F.tanh(Tensor(x_stack[i]) @ wi + bi)
            loss = (h * h).mean()
            loss.backward()
            assert np.allclose(loss_vec[i], loss.data, atol=1e-12)
            assert np.allclose(leaf_grads[slot_of[id(w)]][i], wi.grad, atol=1e-12)
            assert np.allclose(leaf_grads[slot_of[id(b)]][i], bi.grad, atol=1e-12)

    def test_dropout_plan_is_not_batchable(self):
        w = Parameter(RNG.standard_normal((3, 3)))
        tape = Tape()
        with tracing(tape):
            x = Tensor(RNG.standard_normal((2, 3)))
            tape.mark_input("x", x)
            h = F.dropout(x @ w, 0.5, training=True, rng=np.random.default_rng(0))
            loss = (h * h).mean()
        plan = Plan(tape, loss)
        with pytest.raises(PlanNotBatchable, match="rng"):
            plan.prepare_batched([slot for slot, _ in plan.param_leaves])

    def test_unstacked_trainable_param_is_not_batchable(self):
        w = Parameter(RNG.standard_normal((3, 3)))
        b = Parameter(RNG.standard_normal(3))
        plan = self._trace_quadratic(w, b, RNG.standard_normal((2, 3)))
        only_w = [slot for slot, p in plan.param_leaves if p is w]
        with pytest.raises(PlanNotBatchable, match="stacked set"):
            plan.prepare_batched(only_w)


class TestGraphFreeing:
    def test_backward_releases_interior_nodes(self):
        x = Tensor(RNG.standard_normal((8, 8)), requires_grad=True)
        h = F.tanh(x @ x.T)
        loss = (h * h).sum()
        # Tensor has no __weakref__ slot; watch the backward closure instead —
        # it is what pins the op context (and its saved activations) alive.
        closure = weakref.ref(h._backward)
        loss.backward()
        assert loss._backward is None and loss._parents == ()
        assert h._backward is None and h._parents == ()
        gc.collect()
        assert closure() is None
        assert x.grad is not None

    def test_second_backward_is_harmless_noop_graph(self):
        x = Tensor(np.ones(3), requires_grad=True)
        loss = (x * x).sum()
        loss.backward()
        first = x.grad.copy()
        loss.backward()  # freed graph: no parents left to traverse
        assert np.array_equal(x.grad, first)  # nothing flows back twice
