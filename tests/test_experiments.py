"""Tests for the experiment harness: presets, result tables, the cached runner and table builders."""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments import (
    ExperimentScale,
    ResultTable,
    clear_run_cache,
    get_scale,
    run_method_on_dataset,
    scaled_config,
)
from repro.experiments.config import ScaledExperimentConfig
from repro.experiments.tables import (
    COMPARED_METHODS,
    METHOD_LABELS,
    TABLE5_CONFIGS,
    TABLE7_ROWS,
    TABLE8_CONFIGS,
    _alternate_order_indices,
    _scaled_selection,
)


class TestScaleSelection:
    def test_default_scale_is_tiny(self, monkeypatch):
        monkeypatch.delenv("REPRO_SCALE", raising=False)
        assert get_scale() is ExperimentScale.TINY

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "small")
        assert get_scale() is ExperimentScale.SMALL

    def test_invalid_scale_raises(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "gigantic")
        with pytest.raises(ValueError):
            get_scale()


class TestScaledConfig:
    def test_tiny_config_shapes(self):
        config = scaled_config("office_caltech", scale=ExperimentScale.TINY)
        assert isinstance(config, ScaledExperimentConfig)
        assert config.spec.num_classes <= 4
        assert config.num_tasks == 4
        assert config.backbone.num_classes == config.spec.num_classes
        assert config.federated.rounds_per_task >= 1
        assert config.describe()["dataset"] == "office_caltech"

    def test_paper_scale_mirrors_paper_counts(self):
        digits = scaled_config("digits_five", scale=ExperimentScale.PAPER)
        assert digits.federated.increment.initial_clients == 20
        assert digits.federated.rounds_per_task == 30
        office = scaled_config("office_caltech", scale=ExperimentScale.PAPER)
        assert office.federated.increment.initial_clients == 10
        assert office.federated.clients_per_round == 5

    def test_table_overrides(self):
        config = scaled_config(
            "office_caltech",
            scale=ExperimentScale.TINY,
            clients_per_round=2,
            transfer_fraction=0.5,
        )
        assert config.federated.clients_per_round == 2
        assert config.federated.increment.transfer_fraction == pytest.approx(0.5)

    def test_num_tasks_override(self):
        config = scaled_config("digits_five", scale=ExperimentScale.TINY, num_tasks=3)
        assert config.num_tasks == 3

    def test_configs_are_hashable_for_caching(self):
        a = scaled_config("pacs", scale=ExperimentScale.TINY)
        b = scaled_config("pacs", scale=ExperimentScale.TINY)
        assert hash(a.spec) == hash(b.spec)
        assert hash(a.federated) == hash(b.federated)


class TestResultTable:
    def _table(self):
        table = ResultTable(title="demo", columns=["avg", "last"])
        table.add_row("Finetune", {"avg": 40.0, "last": 20.0})
        table.add_row("RefFiL", {"avg": 50.0, "last": 30.0})
        return table

    def test_add_and_query(self):
        table = self._table()
        assert table.value("RefFiL", "avg") == 50.0
        assert table.column("last") == {"Finetune": 20.0, "RefFiL": 30.0}
        assert table.best_row("avg") == "RefFiL"
        assert table.best_row("avg", largest=False) == "Finetune"

    def test_unknown_column_rejected(self):
        table = self._table()
        with pytest.raises(KeyError):
            table.add_row("X", {"bogus": 1.0})
        with pytest.raises(KeyError):
            table.column("bogus")

    def test_text_and_markdown_render_all_rows(self):
        table = self._table()
        text = table.to_text()
        markdown = table.to_markdown()
        for label in ("Finetune", "RefFiL"):
            assert label in text and label in markdown
        assert "avg" in text
        assert markdown.count("|") > 6

    def test_missing_cells_render_as_dash(self):
        table = ResultTable(title="demo", columns=["a", "b"])
        table.add_row("row", {"a": 1.0})
        assert "-" in table.to_text()


class TestTableDefinitions:
    def test_compared_methods_match_paper(self):
        assert len(COMPARED_METHODS) == 8
        assert METHOD_LABELS["refil"] == "RefFiL"

    def test_table5_configs_match_paper(self):
        labels = [c[0] for c in TABLE5_CONFIGS]
        assert labels == ["sel8_80", "sel2_80", "sel5_50", "sel5_90"]

    def test_table7_rows_cover_all_component_combos(self):
        methods = [m for _, m in TABLE7_ROWS]
        assert methods[0] == "finetune"
        assert methods[-1] == "refil"
        assert len(methods) == 6

    def test_table8_has_default_and_no_decay_rows(self):
        labels = [c[0] for c in TABLE8_CONFIGS]
        assert "ours" in labels and "w/o tau'" in labels

    def test_alternate_order_indices_are_permutations(self):
        for dataset in ("digits_five", "office_caltech", "pacs", "fed_domainnet"):
            indices = _alternate_order_indices(dataset)
            assert sorted(indices) == list(range(len(indices)))

    def test_scaled_selection_mapping(self):
        assert _scaled_selection(8, 10) == 8
        assert _scaled_selection(8, 5) == 4
        assert _scaled_selection(2, 6) == 1


class TestRunner:
    @pytest.fixture
    def micro_config(self, tiny_spec):
        from repro.federated.client import LocalTrainingConfig
        from repro.federated.config import FederatedConfig
        from repro.federated.increment import ClientIncrementConfig
        from repro.models.backbone import BackboneConfig

        backbone = BackboneConfig(
            image_size=tiny_spec.image_size,
            num_classes=tiny_spec.num_classes,
            base_width=4,
            embed_dim=16,
            seed=3,
        )
        federated = FederatedConfig(
            increment=ClientIncrementConfig(initial_clients=3, increment_per_task=0, seed=3),
            clients_per_round=2,
            rounds_per_task=1,
            local=LocalTrainingConfig(local_epochs=1, batch_size=8, learning_rate=0.05),
            seed=3,
        )
        return ScaledExperimentConfig(
            dataset_name="office_caltech",
            spec=tiny_spec,
            backbone=backbone,
            federated=federated,
            num_tasks=2,
        )

    def test_run_and_cache(self, micro_config):
        clear_run_cache()
        first = run_method_on_dataset("finetune", micro_config)
        second = run_method_on_dataset("finetune", micro_config)
        assert first is second  # memoised
        assert first.metrics.matrix.shape == (2, 2)
        assert first.domain_names == ("amazon", "caltech")
        clear_run_cache()
        third = run_method_on_dataset("finetune", micro_config, use_cache=False)
        assert third is not first
        assert np.allclose(third.metrics.matrix, first.metrics.matrix, equal_nan=True)

    def test_domain_order_changes_task_stream(self, micro_config):
        clear_run_cache()
        default = run_method_on_dataset("finetune", micro_config)
        reordered = run_method_on_dataset("finetune", micro_config, domain_order=[1, 0, 2, 3])
        assert reordered.domain_names[0] == default.domain_names[1]

    def test_execution_knobs_do_not_fragment_the_cache(self, micro_config):
        """Regression: runs differing only in execution-plane knobs (executor,
        num_workers, shard_cache, eval_executor) are bit-for-bit identical, so
        they must share one memoised run instead of retraining from scratch."""
        from dataclasses import replace as dc_replace

        from repro.experiments.runner import _cache_key

        def with_federated(**overrides):
            return dc_replace(micro_config, federated=dc_replace(micro_config.federated, **overrides))

        base_key = _cache_key("finetune", micro_config, None, None)
        for overrides in (
            {"executor": "parallel", "num_workers": 4},
            {"shard_cache": False},
            {"eval_executor": "parallel"},
            {"executor": "parallel", "num_workers": 2, "shard_cache": False, "eval_executor": "parallel"},
        ):
            assert _cache_key("finetune", with_federated(**overrides), None, None) == base_key
        # dtype changes the bits and eval_every changes the recorded history:
        # both must keep their own cache entries.
        assert _cache_key("finetune", with_federated(dtype="float32"), None, None) != base_key
        assert _cache_key("finetune", with_federated(eval_every=1), None, None) != base_key

    def test_execution_knob_variants_hit_the_same_memoised_run(self, micro_config):
        from dataclasses import replace as dc_replace

        clear_run_cache()
        first = run_method_on_dataset("finetune", micro_config)
        parallel_config = dc_replace(
            micro_config,
            federated=dc_replace(micro_config.federated, executor="parallel", num_workers=2),
        )
        assert run_method_on_dataset("finetune", parallel_config) is first
