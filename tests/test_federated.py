"""Tests for the federated substrate: FedAvg, sampling, client increment, server, communication."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.federated import (
    ClientGroup,
    ClientIncrementConfig,
    ClientIncrementSchedule,
    ClientUpdate,
    CommunicationLedger,
    FederatedServer,
    LocalTrainingConfig,
    fedavg,
    sample_clients,
    weighted_average_arrays,
)
from repro.federated.client import ClientHandle, run_local_sgd
from repro.autograd import functional as F
from repro.datasets.base import ArrayDataset
from repro.nn.linear import Linear


class TestAggregation:
    def test_weighted_average_basic(self):
        result = weighted_average_arrays([np.array([0.0]), np.array([10.0])], [1.0, 3.0])
        assert result[0] == pytest.approx(7.5)

    def test_weighted_average_validation(self):
        with pytest.raises(ValueError):
            weighted_average_arrays([], [])
        with pytest.raises(ValueError):
            weighted_average_arrays([np.zeros(2)], [1.0, 2.0])
        with pytest.raises(ValueError):
            weighted_average_arrays([np.zeros(2), np.zeros(2)], [-1.0, 1.0])
        with pytest.raises(ValueError):
            weighted_average_arrays([np.zeros(2), np.zeros(3)], [1.0, 1.0])

    def test_fedavg_weighted_by_samples(self):
        states = [{"w": np.array([0.0])}, {"w": np.array([4.0])}]
        merged = fedavg(states, [1, 3])
        assert merged["w"][0] == pytest.approx(3.0)

    def test_fedavg_identical_states_is_identity(self):
        state = {"w": np.array([1.0, 2.0]), "b": np.array([3.0])}
        merged = fedavg([state, dict(state)], [5, 7])
        assert np.allclose(merged["w"], state["w"])
        assert np.allclose(merged["b"], state["b"])

    def test_fedavg_key_mismatch_raises(self):
        with pytest.raises(ValueError):
            fedavg([{"w": np.zeros(1)}, {"v": np.zeros(1)}], [1, 1])

    def test_fedavg_zero_samples_falls_back_to_uniform(self):
        states = [{"w": np.array([0.0])}, {"w": np.array([2.0])}]
        merged = fedavg(states, [0, 0])
        assert merged["w"][0] == pytest.approx(1.0)

    @given(
        st.lists(st.floats(-10, 10, allow_nan=False), min_size=2, max_size=6),
        st.lists(st.integers(1, 100), min_size=2, max_size=6),
    )
    @settings(max_examples=30, deadline=None)
    def test_fedavg_is_convex_combination(self, values, weights):
        n = min(len(values), len(weights))
        states = [{"w": np.array([v])} for v in values[:n]]
        merged = fedavg(states, weights[:n])
        assert min(values[:n]) - 1e-9 <= merged["w"][0] <= max(values[:n]) + 1e-9


class TestSampling:
    def test_samples_requested_count_without_replacement(self):
        chosen = sample_clients(list(range(10)), 4, np.random.default_rng(0))
        assert len(chosen) == 4
        assert len(set(chosen)) == 4

    def test_returns_all_when_fewer_available(self):
        assert sample_clients([3, 5], 10, np.random.default_rng(0)) == [3, 5]

    def test_validation(self):
        with pytest.raises(ValueError):
            sample_clients([1, 2], 0, np.random.default_rng(0))
        with pytest.raises(ValueError):
            sample_clients([], 2, np.random.default_rng(0))

    def test_deterministic_given_rng(self):
        a = sample_clients(list(range(20)), 5, np.random.default_rng(9))
        b = sample_clients(list(range(20)), 5, np.random.default_rng(9))
        assert a == b


class TestClientIncrement:
    def test_first_task_all_new(self):
        schedule = ClientIncrementSchedule(ClientIncrementConfig(initial_clients=5, seed=0))
        assignment = schedule.assignment_for_task(0)
        assert len(assignment.new_clients) == 5
        assert assignment.old_clients == [] and assignment.in_between_clients == []

    def test_population_grows_by_increment(self):
        config = ClientIncrementConfig(initial_clients=6, increment_per_task=2, seed=0)
        schedule = ClientIncrementSchedule(config)
        for task in range(4):
            assignment = schedule.assignment_for_task(task)
            assert len(assignment.active_clients) == 6 + 2 * task

    def test_transfer_fraction_controls_in_between_count(self):
        config = ClientIncrementConfig(initial_clients=10, increment_per_task=0, transfer_fraction=0.8, seed=1)
        schedule = ClientIncrementSchedule(config)
        assignment = schedule.assignment_for_task(1)
        assert len(assignment.in_between_clients) == 8
        assert len(assignment.old_clients) == 2

    def test_groups_partition_active_clients(self):
        config = ClientIncrementConfig(initial_clients=7, increment_per_task=3, transfer_fraction=0.5, seed=2)
        schedule = ClientIncrementSchedule(config)
        assignment = schedule.assignment_for_task(2)
        union = set(assignment.new_clients) | set(assignment.in_between_clients) | set(assignment.old_clients)
        assert union == set(assignment.active_clients)
        assert assignment.clients_taking_new_domain == sorted(
            set(assignment.new_clients) | set(assignment.in_between_clients)
        )

    def test_deterministic_given_seed(self):
        config = ClientIncrementConfig(initial_clients=8, increment_per_task=2, seed=3)
        a = ClientIncrementSchedule(config).assignment_for_task(3)
        b = ClientIncrementSchedule(config).assignment_for_task(3)
        assert a.groups == b.groups

    def test_schedule_trace_totals(self):
        config = ClientIncrementConfig(initial_clients=4, increment_per_task=1, seed=0)
        trace = ClientIncrementSchedule(config).schedule_trace(3)
        assert [row["total"] for row in trace] == [4, 5, 6]
        assert all(row["old"] + row["in_between"] + row["new"] == row["total"] for row in trace)

    def test_validation(self):
        with pytest.raises(ValueError):
            ClientIncrementConfig(initial_clients=0)
        with pytest.raises(ValueError):
            ClientIncrementConfig(transfer_fraction=1.5)
        schedule = ClientIncrementSchedule(ClientIncrementConfig())
        with pytest.raises(IndexError):
            schedule.assignment_for_task(-1)


class TestCommunication:
    def _update(self, value: float = 1.0, with_payload: bool = False) -> ClientUpdate:
        payload = {"prompt_groups": {"0": np.zeros(8)}} if with_payload else {}
        return ClientUpdate(
            client_id=0,
            state_dict={"w": np.full((4, 4), value)},
            num_samples=10,
            payload=payload,
        )

    def test_upload_bytes_counts_state_and_payload(self):
        plain = self._update().upload_bytes()
        with_prompts = self._update(with_payload=True).upload_bytes()
        assert with_prompts == plain + 8 * 8

    def test_ledger_accumulates(self):
        ledger = CommunicationLedger()
        updates = [self._update(), self._update(2.0)]
        ledger.record_round(updates, updates[0].state_dict)
        assert ledger.rounds == 1
        assert ledger.uploaded_bytes == sum(u.upload_bytes() for u in updates)
        assert ledger.broadcast_bytes == 2 * updates[0].state_dict["w"].nbytes
        assert ledger.total_bytes == ledger.uploaded_bytes + ledger.broadcast_bytes
        assert ledger.mean_upload_per_round() > 0


class TestServerAndLocalTraining:
    def test_server_broadcast_is_a_copy(self):
        model = Linear(3, 2, rng=np.random.default_rng(0))
        server = FederatedServer(model)
        broadcast = server.broadcast()
        broadcast["weight"][...] = 0.0
        assert not np.allclose(server.global_state["weight"], 0.0)

    def test_server_aggregate_updates_model(self):
        model = Linear(2, 2, rng=np.random.default_rng(0))
        server = FederatedServer(model)
        state = server.broadcast()
        shifted = {key: value + 1.0 for key, value in state.items()}
        update = ClientUpdate(client_id=0, state_dict=shifted, num_samples=4)
        server.aggregate([update])
        assert np.allclose(model.weight.data, state["weight"] + 1.0)
        assert server.round_counter == 1
        with pytest.raises(ValueError):
            server.aggregate([])

    def test_run_local_sgd_reduces_loss(self, tiny_spec):
        from repro.datasets.synthetic import generate_domain_split

        data = generate_domain_split(tiny_spec, 0, "train")
        model = Linear(3 * 16 * 16, tiny_spec.num_classes, rng=np.random.default_rng(0))

        def loss_fn(m, images, labels):
            flat = images.reshape(images.shape[0], -1)
            return F.cross_entropy(m(flat), labels)

        client = ClientHandle(
            client_id=0,
            task_id=0,
            group=ClientGroup.NEW,
            dataset=data,
            rng=np.random.default_rng(0),
            training=LocalTrainingConfig(local_epochs=3, batch_size=8, learning_rate=0.1),
        )
        first_loss = run_local_sgd(model, client, loss_fn)
        second_loss = run_local_sgd(model, client, loss_fn)
        assert second_loss < first_loss

    def test_local_training_config_validation(self):
        with pytest.raises(ValueError):
            LocalTrainingConfig(local_epochs=0)
        with pytest.raises(ValueError):
            LocalTrainingConfig(batch_size=0)
        with pytest.raises(ValueError):
            LocalTrainingConfig(learning_rate=0.0)
