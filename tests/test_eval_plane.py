"""Tests of the evaluation plane: batch-aligned slicing, the worker test-shard
cache, serial/parallel accuracy parity, eval IPC accounting and ``eval_every``."""

from __future__ import annotations

import pickle

import numpy as np
import pytest
from dataclasses import replace

from repro.baselines.finetune import FinetuneMethod
from repro.baselines.registry import build_method
from repro.continual import DomainIncrementalScenario, count_correct, evaluate_accuracy
from repro.continual.scenario import Task
from repro.datasets import SyntheticDomainDataset
from repro.datasets.base import ArrayDataset
from repro.federated import (
    FederatedConfig,
    FederatedDomainIncrementalSimulation,
    ParallelEvalBackend,
    ParallelExecutor,
    batch_aligned_slices,
)
from repro.federated.communication import ClientUpdate
from repro.federated.execution import EvalJob
from repro.federated.server import FederatedServer
from repro.federated.simulation import _mean_update_metrics
from repro.nn.serialization import serialize_state


def _run_simulation(tiny_spec, tiny_backbone_config, config, method_name="refil"):
    scenario = DomainIncrementalScenario(SyntheticDomainDataset(tiny_spec), num_tasks=2)
    method = build_method(method_name, tiny_backbone_config, num_tasks=scenario.num_tasks)
    simulation = FederatedDomainIncrementalSimulation(scenario, method, config)
    return simulation, simulation.run()


class TestBatchAlignedSlices:
    def _dataset(self, n):
        images = np.arange(n * 3 * 2 * 2, dtype=np.float64).reshape(n, 3, 2, 2) / (n * 12)
        return ArrayDataset(images, np.arange(n) % 3)

    def test_boundaries_fall_on_the_batch_grid(self):
        dataset = self._dataset(22)
        slices = batch_aligned_slices(dataset, batch_size=4, num_slices=3)
        # 6 batches split 2/2/2 -> sample spans 8/8/6.
        assert [len(piece) for piece in slices] == [8, 8, 6]
        for piece in slices[:-1]:
            assert len(piece) % 4 == 0

    def test_slices_partition_the_dataset_in_order(self):
        dataset = self._dataset(22)
        slices = batch_aligned_slices(dataset, batch_size=4, num_slices=3)
        rebuilt = ArrayDataset.concatenate(tuple(slices))
        np.testing.assert_array_equal(rebuilt.images, dataset.images)
        np.testing.assert_array_equal(rebuilt.labels, dataset.labels)

    def test_never_more_slices_than_batches(self):
        dataset = self._dataset(6)
        slices = batch_aligned_slices(dataset, batch_size=4, num_slices=8)
        assert len(slices) == 2  # ceil(6/4) batches
        assert [len(piece) for piece in slices] == [4, 2]

    def test_single_slice_is_whole_dataset(self):
        dataset = self._dataset(10)
        [only] = batch_aligned_slices(dataset, batch_size=64, num_slices=4)
        assert len(only) == 10

    def test_validation(self):
        dataset = self._dataset(4)
        with pytest.raises(ValueError):
            batch_aligned_slices(dataset, batch_size=0, num_slices=2)
        with pytest.raises(ValueError):
            batch_aligned_slices(dataset, batch_size=4, num_slices=0)
        with pytest.raises(ValueError):
            batch_aligned_slices(
                ArrayDataset(np.zeros((0, 3, 2, 2)), np.zeros(0, dtype=int)), 4, 2
            )

    def test_sliced_counts_sum_to_serial_count(self, tiny_spec, tiny_backbone_config):
        """The parity invariant at its root: integer correct counts over the
        slices sum to the count over the whole set."""
        method = build_method("finetune", tiny_backbone_config, num_tasks=1)
        model = method.build_model()
        dataset = SyntheticDomainDataset(tiny_spec).domain_split(0, "test")
        serial = count_correct(model, dataset, batch_size=4)
        sliced = sum(
            count_correct(model, piece, batch_size=4)
            for piece in batch_aligned_slices(dataset, batch_size=4, num_slices=3)
        )
        assert sliced == serial


class TestWorkerEvalCache:
    def _slice_jobs(self, tiny_spec, batch_size=4):
        dataset = SyntheticDomainDataset(tiny_spec).domain_split(0, "test")
        slices = batch_aligned_slices(dataset, batch_size=batch_size, num_slices=2)
        return [
            EvalJob(task_id=0, slice_index=i, dataset=piece, batch_size=batch_size)
            for i, piece in enumerate(slices)
        ]

    def test_install_replaces_stale_fingerprint_for_same_slice(self, tiny_spec):
        from repro.federated.execution import _WORKER_EVAL_SHARDS, _install_eval_shards

        [job, _] = self._slice_jobs(tiny_spec)
        narrow = job.dataset.astype(np.float32)
        before = dict(_WORKER_EVAL_SHARDS)
        try:
            _WORKER_EVAL_SHARDS.clear()
            _install_eval_shards({job.slice_ref().cache_key: pickle.dumps(job.dataset)})
            assert len(_WORKER_EVAL_SHARDS) == 1
            # Same (task, slice), new content fingerprint: the stale entry is
            # replaced, not accumulated — the cache stays bounded by one copy
            # of the test suite.
            stale_key = job.slice_ref().cache_key
            new_key = (0, 0, narrow.fingerprint())
            assert new_key != stale_key
            _install_eval_shards({new_key: pickle.dumps(narrow)})
            assert set(_WORKER_EVAL_SHARDS) == {new_key}
        finally:
            _WORKER_EVAL_SHARDS.clear()
            _WORKER_EVAL_SHARDS.update(before)

    def test_eval_chunk_matches_in_process_counts(self, tiny_spec, tiny_backbone_config):
        """Unit test of the worker entry point (run in-process): counts equal
        the serial count_correct over the same slices."""
        from repro.federated.execution import (
            _WORKER_EVAL_SHARDS,
            _install_eval_shards,
            _run_eval_chunk,
        )

        method = build_method("finetune", tiny_backbone_config, num_tasks=1)
        model = method.build_model()
        state = model.state_dict()
        jobs = self._slice_jobs(tiny_spec)
        before = dict(_WORKER_EVAL_SHARDS)
        try:
            _WORKER_EVAL_SHARDS.clear()
            _install_eval_shards(
                {job.slice_ref().cache_key: pickle.dumps(job.dataset) for job in jobs}
            )
            results = _run_eval_chunk(
                pickle.dumps(method),
                serialize_state(state, {}),
                [(i, job.slice_ref(), job.batch_size) for i, job in enumerate(jobs)],
                "float64",
            )
            model.load_state_dict(state)
            for (index, correct, total), job in zip(results, jobs):
                assert total == len(job.dataset)
                assert correct == count_correct(
                    model, job.dataset, batch_size=job.batch_size,
                    predict_fn=method.predict_logits,
                )
        finally:
            _WORKER_EVAL_SHARDS.clear()
            _WORKER_EVAL_SHARDS.update(before)

    def test_eval_chunk_misses_loudly_on_uninstalled_slice(self, tiny_spec, tiny_backbone_config):
        from repro.federated.execution import _WORKER_EVAL_SHARDS, _run_eval_chunk

        method = build_method("finetune", tiny_backbone_config, num_tasks=1)
        state = method.build_model().state_dict()
        [job, _] = self._slice_jobs(tiny_spec)
        before = dict(_WORKER_EVAL_SHARDS)
        try:
            _WORKER_EVAL_SHARDS.clear()
            with pytest.raises(RuntimeError, match="cache miss"):
                _run_eval_chunk(
                    pickle.dumps(method),
                    serialize_state(state, {}),
                    [(0, job.slice_ref(), job.batch_size)],
                    "float64",
                )
        finally:
            _WORKER_EVAL_SHARDS.clear()
            _WORKER_EVAL_SHARDS.update(before)


class TestEvalParity:
    @pytest.mark.parametrize("dtype", ["float64", "float32"])
    def test_serial_and_parallel_eval_matrices_identical(
        self, tiny_spec, tiny_backbone_config, tiny_federated_config, dtype
    ):
        """The acceptance criterion: the full accuracy matrix (hence
        Avg/Last/FGT/BwT) is bit-for-bit identical across eval executors, at
        both compute precisions."""
        config = replace(tiny_federated_config, dtype=dtype, eval_batch_size=4)
        _, serial = _run_simulation(tiny_spec, tiny_backbone_config, config)
        _, parallel = _run_simulation(
            tiny_spec,
            tiny_backbone_config,
            replace(config, eval_executor="parallel", num_workers=2),
        )
        np.testing.assert_array_equal(serial.metrics.matrix, parallel.metrics.matrix)
        assert serial.per_task_accuracy == parallel.per_task_accuracy
        assert serial.metrics.average == parallel.metrics.average
        assert serial.metrics.forgetting == parallel.metrics.forgetting

    def test_parallel_eval_shares_the_training_pool(
        self, tiny_spec, tiny_backbone_config, tiny_federated_config
    ):
        """With executor="parallel" too, evaluation jobs ride the *same*
        pinned pool as training chunks (no second pool), and results still
        match serial bit-for-bit."""
        config = replace(tiny_federated_config, eval_batch_size=4)
        _, serial = _run_simulation(tiny_spec, tiny_backbone_config, config)
        simulation, parallel = _run_simulation(
            tiny_spec,
            tiny_backbone_config,
            replace(config, executor="parallel", eval_executor="parallel", num_workers=2),
        )
        assert simulation.eval_executor is simulation.executor
        assert simulation.eval_executor.eval_ipc_log and simulation.executor.ipc_log
        np.testing.assert_array_equal(serial.metrics.matrix, parallel.metrics.matrix)
        assert serial.round_losses == parallel.round_losses
        assert serial.per_task_accuracy == parallel.per_task_accuracy

    def test_one_and_many_workers_identical(
        self, tiny_spec, tiny_backbone_config, tiny_federated_config
    ):
        config = replace(
            tiny_federated_config, eval_executor="parallel", eval_batch_size=4
        )
        _, one = _run_simulation(
            tiny_spec, tiny_backbone_config, replace(config, num_workers=1)
        )
        _, three = _run_simulation(
            tiny_spec, tiny_backbone_config, replace(config, num_workers=3)
        )
        np.testing.assert_array_equal(one.metrics.matrix, three.metrics.matrix)
        assert one.per_task_accuracy == three.per_task_accuracy

    def test_backend_reslices_when_test_content_changes(self, tiny_spec, tiny_backbone_config):
        """Regression: the slice cache is keyed by content fingerprint, so a
        backend reused across scenarios must never score a stale dataset that
        shares a task id, dtype and batch size with a previous one."""
        method = build_method("finetune", tiny_backbone_config, num_tasks=1)
        model = method.build_model()
        source = SyntheticDomainDataset(tiny_spec)
        data_a = source.domain_split(0, "test")
        data_b = source.domain_split(1, "test")  # same shape/dtype, different content
        with ParallelExecutor(num_workers=2) as executor:
            backend = ParallelEvalBackend(executor, method)
            [acc_a] = backend.evaluate(
                model, [(Task(0, "a", data_a, data_a), data_a)], 4, method.predict_logits
            )
            [acc_b] = backend.evaluate(
                model, [(Task(0, "b", data_b, data_b), data_b)], 4, method.predict_logits
            )
        assert acc_a == evaluate_accuracy(model, data_a, 4, predict_fn=method.predict_logits)
        assert acc_b == evaluate_accuracy(model, data_b, 4, predict_fn=method.predict_logits)

    def test_custom_predict_fn_is_rejected_loudly(self, tiny_spec, tiny_backbone_config):
        """A caller-supplied inference closure cannot cross the process
        boundary; the parallel backend must refuse it instead of silently
        scoring through the method path."""
        from repro.continual.evaluator import GlobalEvaluator

        scenario = DomainIncrementalScenario(SyntheticDomainDataset(tiny_spec), num_tasks=1)
        method = build_method("finetune", tiny_backbone_config, num_tasks=1)
        model = method.build_model()
        with ParallelExecutor(num_workers=2) as executor:
            evaluator = GlobalEvaluator(
                scenario,
                batch_size=4,
                predict_fn=lambda model, images: model(images),  # not the method's own
                backend=ParallelEvalBackend(executor, method),
            )
            with pytest.raises(ValueError, match="predict_logits"):
                evaluator.evaluate_after_task(model, 0)
            # predict_fn=None is rejected too: the serial backend would score
            # plain model(images), which diverges from predict_logits for
            # prompt-based methods.
            evaluator.predict_fn = None
            with pytest.raises(ValueError, match="predict_logits"):
                evaluator.evaluate_after_task(model, 0)
            # The method's own bound predict_logits is the supported hook.
            evaluator.predict_fn = method.predict_logits
            results = evaluator.evaluate_after_task(model, 0)
        assert len(results) == 1

    def test_standalone_backend_without_broadcast_fn(self, tiny_spec, tiny_backbone_config):
        """The backend is usable outside the simulation: without a
        broadcast_fn it scores the model's own state."""
        from repro.continual.evaluator import GlobalEvaluator

        scenario = DomainIncrementalScenario(SyntheticDomainDataset(tiny_spec), num_tasks=2)
        method = build_method("finetune", tiny_backbone_config, num_tasks=2)
        model = method.build_model()
        reference = GlobalEvaluator(scenario, batch_size=4, predict_fn=method.predict_logits)
        with ParallelExecutor(num_workers=2) as executor:
            fanned = GlobalEvaluator(
                scenario,
                batch_size=4,
                predict_fn=method.predict_logits,
                backend=ParallelEvalBackend(executor, method),
            )
            for task_id in range(2):
                expected = reference.evaluate_after_task(model, task_id)
                assert fanned.evaluate_after_task(model, task_id) == expected
        np.testing.assert_array_equal(
            reference.accuracy_matrix.matrix, fanned.accuracy_matrix.matrix
        )


class _ZeroingFinetune(FinetuneMethod):
    """Finetune whose ``on_task_end`` replaces the server's global state — the
    hook contract permits it.  Module-level so workers unpickle it by
    reference."""

    def on_task_end(self, task_id, server):
        super().on_task_end(task_id, server)
        server.global_state = {
            key: np.zeros_like(value) for key, value in server.global_state.items()
        }
        server.model.load_state_dict(server.global_state)


class TestBroadcastFreshness:
    def test_invalidate_broadcast_drops_cached_handle(self, tiny_backbone_config):
        method = build_method("finetune", tiny_backbone_config, num_tasks=1)
        server = FederatedServer(method.build_model())
        handle = server.broadcast_view()
        server.global_state = {
            key: np.zeros_like(value) for key, value in server.global_state.items()
        }
        assert server.broadcast_view() is handle  # the documented hazard: cached
        server.invalidate_broadcast()
        fresh = server.broadcast_view()
        assert fresh is not handle
        assert all((np.asarray(value) == 0).all() for value in fresh.state.values())

    def test_on_task_end_state_mutation_is_visible_to_parallel_eval(
        self, tiny_spec, tiny_backbone_config, tiny_federated_config
    ):
        """Regression: a mid-task eval snapshot caches the server's broadcast
        handle; an on_task_end hook that replaces global_state must still be
        scored by the after-task evaluation (and the next task's rounds), not
        the stale cached state — serial and parallel eval must agree, and the
        post-run broadcast view must reflect the hook's replacement."""
        config = replace(
            tiny_federated_config, rounds_per_task=2, eval_every=1, eval_batch_size=4
        )

        def run(eval_executor):
            scenario = DomainIncrementalScenario(SyntheticDomainDataset(tiny_spec), num_tasks=2)
            base = build_method("finetune", tiny_backbone_config, num_tasks=2)
            method = _ZeroingFinetune(base.config)
            simulation = FederatedDomainIncrementalSimulation(
                scenario,
                method,
                replace(config, eval_executor=eval_executor, num_workers=2),
            )
            return simulation, simulation.run()

        serial_sim, serial = run("serial")
        parallel_sim, parallel = run("parallel")
        np.testing.assert_array_equal(serial.metrics.matrix, parallel.metrics.matrix)
        assert serial.per_task_accuracy == parallel.per_task_accuracy
        assert serial.round_eval_history == parallel.round_eval_history
        # The deterministic mechanism check: the final after-task evaluation
        # cached a broadcast of the *zeroed* state, not the stale pre-hook
        # trained weights.
        for simulation in (serial_sim, parallel_sim):
            state = simulation.server.broadcast_view().state
            assert all((np.asarray(value) == 0).all() for value in state.values())


class TestEvalShardCache:
    def _config(self, tiny_federated_config, **overrides):
        return replace(
            tiny_federated_config,
            rounds_per_task=2,
            eval_executor="parallel",
            num_workers=2,
            eval_batch_size=4,
            eval_every=1,
            **overrides,
        )

    def test_test_slices_cross_ipc_once_per_run(
        self, tiny_spec, tiny_backbone_config, tiny_federated_config
    ):
        """2 tasks x 2 rounds with eval_every=1: 6 eval calls (2 mid-task + 1
        end-of-task per task).  Slice bytes ship on a task's *first* eval call
        only — every later call is pure cache hits."""
        simulation, _ = _run_simulation(
            tiny_spec, tiny_backbone_config, self._config(tiny_federated_config)
        )
        log = simulation.eval_executor.eval_ipc_log
        assert len(log) == 6
        first_task0, first_task1 = log[0], log[3]
        rest = log[1:3] + log[4:]
        assert first_task0.shard_bytes > 0 and first_task0.shards_shipped > 0
        assert first_task1.shard_bytes > 0 and first_task1.shards_shipped > 0
        for entry in rest:
            assert entry.shard_bytes == 0 and entry.shards_shipped == 0
            assert entry.cache_hits == entry.num_jobs
        # Task 1's first call re-ships only the *new* task's slices; task 0's
        # slices are hits.
        assert first_task1.cache_hits > 0
        total_slices = log[-1].num_jobs  # final call scores every slice of both tasks
        assert sum(entry.shards_shipped for entry in log) == total_slices

    def test_cache_disabled_reships_every_call(
        self, tiny_spec, tiny_backbone_config, tiny_federated_config
    ):
        simulation, result = _run_simulation(
            tiny_spec,
            tiny_backbone_config,
            self._config(tiny_federated_config, shard_cache=False),
        )
        log = simulation.eval_executor.eval_ipc_log
        assert all(entry.shard_bytes > 0 and entry.cache_hits == 0 for entry in log)
        # Still bit-for-bit identical to the cached run.
        _, cached = _run_simulation(
            tiny_spec, tiny_backbone_config, self._config(tiny_federated_config)
        )
        np.testing.assert_array_equal(result.metrics.matrix, cached.metrics.matrix)
        assert result.round_eval_history == cached.round_eval_history


class TestEvalEvery:
    def test_round_eval_history_shape(
        self, tiny_spec, tiny_backbone_config, tiny_federated_config
    ):
        config = replace(
            tiny_federated_config, rounds_per_task=2, eval_every=1, eval_batch_size=4
        )
        _, result = _run_simulation(tiny_spec, tiny_backbone_config, config)
        # 2 tasks x 2 rounds, eval_every=1 -> one snapshot per round.
        assert len(result.round_eval_history) == 4
        for entry in result.round_eval_history:
            assert set(entry) == {"task_id", "round_index", "accuracies", "sim_time"}
            # Every seen domain (task_id + 1 of them) is scored.
            assert len(entry["accuracies"]) == entry["task_id"] + 1
        assert [e["task_id"] for e in result.round_eval_history] == [0, 0, 1, 1]
        assert [e["round_index"] for e in result.round_eval_history] == [0, 1, 0, 1]

    def test_eval_every_k_skips_rounds(self, tiny_spec, tiny_backbone_config, tiny_federated_config):
        config = replace(
            tiny_federated_config, rounds_per_task=2, eval_every=2, eval_batch_size=4
        )
        _, result = _run_simulation(tiny_spec, tiny_backbone_config, config)
        assert [e["round_index"] for e in result.round_eval_history] == [1, 1]

    def test_mid_task_eval_does_not_perturb_training(
        self, tiny_spec, tiny_backbone_config, tiny_federated_config
    ):
        """Evaluation is read-only: a run with eval_every on must produce the
        exact same trained model (matrix, losses) as one without."""
        config = replace(tiny_federated_config, rounds_per_task=2, eval_batch_size=4)
        _, plain = _run_simulation(tiny_spec, tiny_backbone_config, config)
        _, snapshotted = _run_simulation(
            tiny_spec, tiny_backbone_config, replace(config, eval_every=1)
        )
        np.testing.assert_array_equal(plain.metrics.matrix, snapshotted.metrics.matrix)
        assert plain.round_losses == snapshotted.round_losses
        assert plain.round_eval_history == []
        # The final round's snapshot scores the pre-on_task_end state; for
        # refil that hook leaves the inference path untouched, so it must
        # agree with the end-of-task evaluation of the same weights.
        last = snapshotted.round_eval_history[-1]
        assert last["accuracies"] == snapshotted.per_task_accuracy[-1]

    def test_serial_and_parallel_round_eval_history_identical(
        self, tiny_spec, tiny_backbone_config, tiny_federated_config
    ):
        config = replace(
            tiny_federated_config, rounds_per_task=2, eval_every=1, eval_batch_size=4
        )
        _, serial = _run_simulation(tiny_spec, tiny_backbone_config, config)
        _, parallel = _run_simulation(
            tiny_spec,
            tiny_backbone_config,
            replace(config, eval_executor="parallel", num_workers=2),
        )
        assert serial.round_eval_history == parallel.round_eval_history

    def test_config_validation(self):
        with pytest.raises(ValueError):
            FederatedConfig(eval_executor="threads")
        with pytest.raises(ValueError):
            FederatedConfig(eval_every=-1)
        assert FederatedConfig(eval_executor="parallel", eval_every=3).eval_every == 3


class TestMeanUpdateMetrics:
    def _update(self, client_id, metrics):
        return ClientUpdate(
            client_id=client_id, state_dict={}, num_samples=4, metrics=metrics
        )

    def test_first_update_without_metrics_does_not_erase_round(self):
        """Regression: the round's Table VII breakdown used to vanish whenever
        the *first* selected client reported no metrics."""
        updates = [
            self._update(0, {}),
            self._update(1, {"loss_ce": 1.0, "loss_total": 1.5}),
            self._update(2, {"loss_ce": 3.0, "loss_total": 3.5}),
        ]
        means = _mean_update_metrics(updates)
        assert means == {"loss_ce": 2.0, "loss_total": 2.5}

    def test_partial_reporters_average_over_reporting_clients(self):
        updates = [
            self._update(0, {"loss_ce": 1.0}),
            self._update(1, {"loss_ce": 2.0, "loss_gpl": 0.5}),
        ]
        means = _mean_update_metrics(updates)
        assert means == {"loss_ce": 1.5, "loss_gpl": 0.5}

    def test_full_reporters_match_plain_mean(self):
        updates = [
            self._update(0, {"loss_ce": 1.0, "loss_total": 2.0}),
            self._update(1, {"loss_ce": 3.0, "loss_total": 4.0}),
        ]
        assert _mean_update_metrics(updates) == {
            "loss_ce": float(np.mean([1.0, 3.0])),
            "loss_total": float(np.mean([2.0, 4.0])),
        }

    def test_no_metrics_at_all_is_empty(self):
        assert _mean_update_metrics([self._update(0, {}), self._update(1, {})]) == {}
        assert _mean_update_metrics([]) == {}
