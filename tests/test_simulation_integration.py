"""End-to-end integration tests of the federated domain-incremental simulation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import build_method
from repro.continual import DomainIncrementalScenario
from repro.core.trainer import train_refil
from repro.datasets import SyntheticDomainDataset
from repro.federated import FederatedDomainIncrementalSimulation


def _scenario(tiny_spec, num_tasks=2):
    return DomainIncrementalScenario(SyntheticDomainDataset(tiny_spec), num_tasks=num_tasks)


class TestSimulation:
    def test_finetune_end_to_end(self, tiny_spec, tiny_backbone_config, tiny_federated_config):
        scenario = _scenario(tiny_spec)
        method = build_method("finetune", tiny_backbone_config, num_tasks=scenario.num_tasks)
        result = FederatedDomainIncrementalSimulation(scenario, method, tiny_federated_config).run()
        assert result.method_name == "Finetune"
        assert result.metrics.matrix.shape == (2, 2)
        assert len(result.per_task_accuracy) == 2
        assert len(result.round_losses) == tiny_federated_config.rounds_per_task * scenario.num_tasks
        assert result.communication.rounds == len(result.round_losses)
        assert result.schedule_trace[0]["total"] == tiny_federated_config.increment.initial_clients
        assert 0.0 <= result.metrics.average <= 1.0

    def test_refil_end_to_end(self, tiny_spec, tiny_backbone_config, tiny_federated_config):
        scenario = _scenario(tiny_spec)
        method = build_method("refil", tiny_backbone_config, num_tasks=scenario.num_tasks)
        result = FederatedDomainIncrementalSimulation(scenario, method, tiny_federated_config).run()
        assert result.metrics.matrix.shape == (2, 2)
        assert not method.prompt_aggregator.store.is_empty
        assert all(np.isfinite(loss) for loss in result.round_losses)

    def test_accuracy_matrix_is_complete(self, tiny_spec, tiny_backbone_config, tiny_federated_config):
        scenario = _scenario(tiny_spec)
        method = build_method("fedlwf", tiny_backbone_config, num_tasks=scenario.num_tasks)
        simulation = FederatedDomainIncrementalSimulation(scenario, method, tiny_federated_config)
        simulation.run()
        assert simulation.evaluator.accuracy_matrix.is_complete()

    def test_determinism_with_same_seed(self, tiny_spec, tiny_backbone_config, tiny_federated_config):
        scenario = _scenario(tiny_spec)

        def run_once():
            method = build_method("finetune", tiny_backbone_config, num_tasks=scenario.num_tasks)
            return FederatedDomainIncrementalSimulation(
                scenario, method, tiny_federated_config
            ).run()

        first = run_once()
        second = run_once()
        assert np.allclose(first.metrics.matrix, second.metrics.matrix, equal_nan=True)
        assert np.allclose(first.round_losses, second.round_losses)

    def test_in_between_clients_concatenate_old_and_new_data(
        self, tiny_spec, tiny_backbone_config, tiny_federated_config
    ):
        scenario = _scenario(tiny_spec)
        method = build_method("finetune", tiny_backbone_config, num_tasks=scenario.num_tasks)
        simulation = FederatedDomainIncrementalSimulation(scenario, method, tiny_federated_config)
        simulation.run_task(scenario.task(0))
        sizes_after_first = {cid: len(ds) for cid, ds in simulation._training_data.items()}
        simulation.run_task(scenario.task(1))
        assignment = simulation.schedule.assignment_for_task(1)
        for client_id in assignment.in_between_clients:
            if client_id in sizes_after_first:
                assert len(simulation._training_data[client_id]) > sizes_after_first[client_id]

    def test_communication_ledger_grows_with_rounds(
        self, tiny_spec, tiny_backbone_config, tiny_federated_config
    ):
        scenario = _scenario(tiny_spec)
        method = build_method("refil", tiny_backbone_config, num_tasks=scenario.num_tasks)
        result = FederatedDomainIncrementalSimulation(scenario, method, tiny_federated_config).run()
        assert result.communication.uploaded_bytes > 0
        assert result.communication.broadcast_bytes > 0


class TestTrainerWrapper:
    def test_train_refil_happy_path(self, tiny_spec, tiny_federated_config):
        result = train_refil(
            dataset_name="office_caltech",
            federated=tiny_federated_config,
            dataset_spec=tiny_spec,
            num_tasks=2,
        )
        assert result.method_name == "RefFiL"
        assert result.metrics.matrix.shape == (2, 2)
