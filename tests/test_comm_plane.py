"""Tests of the communication plane: codecs, payload codecs, ledger, transports.

The plane's central guarantee — lossless codecs are results-invariant — is
enforced at two levels: property tests that every lossless codec round-trips
arbitrary state dicts bit-exactly (all dtypes and shapes, empty and scalar
tensors, NaNs), and end-to-end parity of whole simulations run through the
wire format against the no-wire ``direct`` transport, across executors and
compute dtypes.  Ledger numbers are checked to be sums of actual encoded
frame lengths and to reconcile with the parallel executor's ``RoundIPC``
where both observe the same broadcast bytes.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.registry import build_method
from repro.continual import DomainIncrementalScenario
from repro.core.method import RefFiLPromptCodec
from repro.datasets import SyntheticDomainDataset
from repro.federated import (
    CommunicationLedger,
    ClientUpdate,
    FederatedConfig,
    FederatedDomainIncrementalSimulation,
    TreePayloadCodec,
    build_codec,
    build_transport,
    codec_is_lossless,
)
from repro.federated.communication import decode_frame, encode_frame

# --------------------------------------------------------------------------- #
# Hypothesis strategies: arbitrary state dicts
# --------------------------------------------------------------------------- #

_DTYPES = (np.float64, np.float32, np.int64, np.int32, np.uint8, np.bool_)
_SHAPES = ((), (0,), (1,), (7,), (3, 4), (2, 0), (2, 3, 2))


@st.composite
def state_dicts(draw):
    """Flat name -> array dicts over all dtypes/shapes, empty and scalar included."""
    num = draw(st.integers(0, 4))
    state = {}
    for index in range(num):
        dtype = np.dtype(draw(st.sampled_from(_DTYPES)))
        shape = draw(st.sampled_from(_SHAPES))
        seed = draw(st.integers(0, 2**31 - 1))
        rng = np.random.default_rng(seed)
        if dtype.kind == "f":
            values = rng.standard_normal(shape).astype(dtype)
            if values.size and draw(st.booleans()):
                flat = values.reshape(-1)
                flat[draw(st.integers(0, values.size - 1))] = np.nan
        elif dtype.kind == "b":
            values = rng.integers(0, 2, size=shape).astype(dtype)
        else:
            values = rng.integers(0, 100, size=shape).astype(dtype)
        state[f"layer_{index}"] = values
    return state


def _mutate(state: dict, rng: np.random.Generator) -> dict:
    """A plausible next-round version of ``state``: some arrays nudged, some kept."""
    out = {}
    for key, value in state.items():
        value = value.copy()
        if value.size and rng.random() < 0.7:
            flat = value.reshape(-1)
            index = int(rng.integers(0, value.size))
            if value.dtype.kind == "f":
                flat[index] = flat[index] * 2 + 1 if np.isfinite(flat[index]) else 0.0
            elif value.dtype.kind == "b":
                flat[index] = ~flat[index]
            else:
                flat[index] = flat[index] + 1
        out[key] = value
    return out


def _assert_bit_exact(left: dict, right: dict) -> None:
    assert list(left) == list(right)
    for key in left:
        a, b = np.asarray(left[key]), np.asarray(right[key])
        assert a.dtype == b.dtype and a.shape == b.shape, key
        assert a.tobytes() == b.tobytes(), key


class TestLosslessCodecRoundTrip:
    @pytest.mark.parametrize("spec", ["identity", "delta"])
    @given(state=state_dicts(), seed=st.integers(0, 2**31 - 1))
    @settings(max_examples=25, deadline=None)
    def test_round_trip_without_reference(self, spec, state, seed):
        codec = build_codec(spec)
        frame = encode_frame("upload", codec, state, meta=None)
        decoded, _ = decode_frame(frame, codec)
        _assert_bit_exact(state, decoded)

    @given(state=state_dicts(), seed=st.integers(0, 2**31 - 1))
    @settings(max_examples=25, deadline=None)
    def test_delta_round_trip_against_reference(self, state, seed):
        codec = build_codec("delta")
        rng = np.random.default_rng(seed)
        new = _mutate(state, rng)
        frame = encode_frame("upload", codec, new, meta=None, reference=state)
        decoded, _ = decode_frame(frame, codec, reference=state)
        _assert_bit_exact(new, decoded)

    @given(state=state_dicts())
    @settings(max_examples=15, deadline=None)
    def test_delta_against_itself_ships_almost_nothing(self, state):
        codec = build_codec("delta")
        unchanged = {key: value.copy() for key, value in state.items()}
        full = encode_frame("upload", codec, state, meta=None).num_bytes
        same = encode_frame("upload", codec, unchanged, meta=None, reference=state).num_bytes
        nonempty = sum(v.size for v in state.values())
        if nonempty:
            # NaNs compare unequal to themselves, so they legitimately re-ship.
            has_nan = any(
                v.dtype.kind == "f" and np.isnan(v).any() for v in state.values()
            )
            if not has_nan:
                assert same <= full
        decoded, _ = decode_frame(
            encode_frame("upload", codec, unchanged, meta=None, reference=state),
            codec,
            reference=state,
        )
        _assert_bit_exact(unchanged, decoded)

    def test_lossless_flags(self):
        assert codec_is_lossless("identity") and codec_is_lossless("delta")
        assert not codec_is_lossless("quantize8")
        assert not codec_is_lossless("topk")


class TestLossyCodecs:
    def _state(self):
        rng = np.random.default_rng(0)
        return {
            "w": rng.standard_normal((16, 8)),
            "b": rng.standard_normal(8).astype(np.float32),
            "steps": np.arange(5, dtype=np.int64),
            "flat": np.full((4,), 3.5),
            "empty": np.zeros((0, 2)),
        }

    @pytest.mark.parametrize("spec,bits", [("quantize8", 8), ("quantize16", 16)])
    def test_quantize_bounds_error_and_preserves_structure(self, spec, bits):
        codec = build_codec(spec)
        state = self._state()
        decoded, _ = decode_frame(encode_frame("u", codec, state, None), codec)
        for key in state:
            assert decoded[key].dtype == state[key].dtype
            assert decoded[key].shape == state[key].shape
        # Non-float and constant arrays survive exactly.
        np.testing.assert_array_equal(decoded["steps"], state["steps"])
        np.testing.assert_array_equal(decoded["flat"], state["flat"])
        for key in ("w", "b"):
            span = float(state[key].max() - state[key].min())
            step = span / (2**bits - 1)
            assert np.abs(decoded[key] - state[key]).max() <= step

    def test_quantize8_compresses_float64(self):
        codec = build_codec("quantize8")
        state = {"w": np.random.default_rng(0).standard_normal((64, 64))}
        raw = encode_frame("u", build_codec("identity"), state, None).num_bytes
        packed = encode_frame("u", codec, state, None).num_bytes
        assert raw / packed >= 4.0

    def test_topk_keeps_largest_changes_exactly(self):
        codec = build_codec("topk:0.25")
        base = {"w": np.zeros(16)}
        new = {"w": np.zeros(16)}
        new["w"][[3, 8, 11]] = [5.0, -7.0, 2.0]
        decoded, _ = decode_frame(
            encode_frame("u", codec, new, None, reference=base), codec, reference=base
        )
        # 25% of 16 = 4 kept positions: the three real changes survive exactly.
        np.testing.assert_array_equal(decoded["w"][[3, 8, 11]], new["w"][[3, 8, 11]])
        assert decoded["w"].shape == (16,)

    def test_topk_without_reference_ships_dense(self):
        codec = build_codec("topk")
        state = {"w": np.random.default_rng(1).standard_normal(32)}
        decoded, _ = decode_frame(encode_frame("u", codec, state, None), codec)
        np.testing.assert_array_equal(decoded["w"], state["w"])

    def test_codec_spec_validation(self):
        with pytest.raises(ValueError):
            build_codec("gzip")
        with pytest.raises(ValueError):
            build_codec("topk:1.5")
        with pytest.raises(ValueError):
            build_codec("topk:abc")
        assert build_codec("topk:0.05").fraction == 0.05


class TestPayloadCodecs:
    def test_tree_codec_round_trips_nested_payloads(self):
        codec = TreePayloadCodec()
        payload = {
            "prompt_groups": {"0": np.arange(4.0), "2": np.ones(4)},
            "nested": [np.zeros((2, 2)), {"deep": np.arange(3)}, "text", 7],
            0: np.ones(1),  # int key must not collide with the str key "0"
            "0": np.zeros(1),
            "scalars": (1.5, None, True),
        }
        arrays, skeleton = codec.flatten(payload)
        rebuilt = codec.unflatten(arrays, skeleton)
        assert rebuilt.keys() == payload.keys()
        np.testing.assert_array_equal(rebuilt[0], payload[0])
        np.testing.assert_array_equal(rebuilt["0"], payload["0"])
        np.testing.assert_array_equal(
            rebuilt["prompt_groups"]["2"], payload["prompt_groups"]["2"]
        )
        assert rebuilt["nested"][2:] == ["text", 7]
        assert rebuilt["scalars"] == payload["scalars"]

    def test_reffil_codec_stacks_prompt_groups(self):
        codec = RefFiLPromptCodec()
        payload = {
            "prompt_groups": {"2": np.arange(8.0), "0": np.arange(8.0) * 2}
        }
        arrays, skeleton = codec.flatten(payload)
        assert set(arrays) == {"lpg/labels", "lpg/vectors"}
        assert arrays["lpg/vectors"].shape == (2, 8)
        rebuilt = codec.unflatten(arrays, skeleton)
        assert list(rebuilt["prompt_groups"]) == ["2", "0"]  # order preserved
        for key in payload["prompt_groups"]:
            np.testing.assert_array_equal(
                rebuilt["prompt_groups"][key], payload["prompt_groups"][key]
            )

    def test_reffil_codec_stacks_the_store(self):
        codec = RefFiLPromptCodec()
        payload = {
            "class_1": np.random.default_rng(0).standard_normal((3, 8)),
            "class_0": np.random.default_rng(1).standard_normal((1, 8)),
        }
        arrays, skeleton = codec.flatten(payload)
        assert set(arrays) == {"gps/labels", "gps/counts", "gps/vectors"}
        assert arrays["gps/vectors"].shape == (4, 8)
        rebuilt = codec.unflatten(arrays, skeleton)
        assert list(rebuilt) == ["class_1", "class_0"]
        for key in payload:
            np.testing.assert_array_equal(rebuilt[key], payload[key])

    def test_reffil_codec_falls_back_on_unknown_payloads(self):
        codec = RefFiLPromptCodec()
        for payload in (
            {},
            {"prompt_groups": {}},
            {"prompt_groups": {"x": np.zeros(3)}},
            {"prompt_groups": {"--1": np.zeros(3)}},  # non-canonical int key
            {"class_1": np.zeros((2, 4)), "class_--3": np.zeros((2, 4))},
            {"class_1": np.zeros((2, 4)), "other": np.zeros(2)},
            {"fisher": np.ones((2, 2))},
        ):
            arrays, skeleton = codec.flatten(payload)
            rebuilt = codec.unflatten(arrays, skeleton)
            assert rebuilt.keys() == payload.keys()


class TestLedger:
    def _update(self, value=1.0):
        return ClientUpdate(
            client_id=0, state_dict={"w": np.full((4, 4), value)}, num_samples=10
        )

    def test_legacy_broadcast_charged_per_selected_client(self):
        """Satellite fix: broadcast goes to *selected* clients, not reporters."""
        ledger = CommunicationLedger()
        updates = [self._update(), self._update(2.0)]
        ledger.record_round(updates, updates[0].state_dict, num_selected=5)
        assert ledger.broadcast_bytes == 5 * updates[0].state_dict["w"].nbytes
        assert ledger.estimated_rounds == 1 and not ledger.measured

    def test_legacy_default_multiplier_is_reporting_count(self):
        ledger = CommunicationLedger()
        updates = [self._update(), self._update(2.0)]
        ledger.record_round(updates, updates[0].state_dict)
        assert ledger.broadcast_bytes == 2 * updates[0].state_dict["w"].nbytes


# --------------------------------------------------------------------------- #
# End-to-end: whole simulations through the wire format
# --------------------------------------------------------------------------- #


def _run(tiny_spec, tiny_backbone_config, config, method_name="refil"):
    scenario = DomainIncrementalScenario(SyntheticDomainDataset(tiny_spec), num_tasks=2)
    method = build_method(method_name, tiny_backbone_config, num_tasks=scenario.num_tasks)
    return FederatedDomainIncrementalSimulation(scenario, method, config).run()


@pytest.fixture
def comm_config(tiny_federated_config):
    # Two rounds per task so delta acks and straggler deferral have a next
    # round to land in.
    return replace(tiny_federated_config, rounds_per_task=2)


class TestTransportParity:
    def test_lossless_codecs_match_direct_transport(
        self, tiny_spec, tiny_backbone_config, comm_config
    ):
        direct = _run(
            tiny_spec, tiny_backbone_config, replace(comm_config, transport="direct")
        )
        for codec in ("identity", "delta"):
            wired = _run(
                tiny_spec,
                tiny_backbone_config,
                replace(comm_config, transport="loopback", codec=codec),
            )
            np.testing.assert_array_equal(direct.metrics.matrix, wired.metrics.matrix)
            assert direct.round_losses == wired.round_losses
            assert direct.round_loss_components == wired.round_loss_components
            assert wired.communication.measured

    def test_delta_parity_parallel_executor_float32(
        self, tiny_spec, tiny_backbone_config, comm_config
    ):
        base = replace(comm_config, dtype="float32")
        direct = _run(tiny_spec, tiny_backbone_config, replace(base, transport="direct"))
        wired = _run(
            tiny_spec,
            tiny_backbone_config,
            replace(base, codec="delta", executor="parallel", num_workers=2),
        )
        np.testing.assert_array_equal(direct.metrics.matrix, wired.metrics.matrix)
        assert direct.round_losses == wired.round_losses

    def test_ledger_totals_are_sums_of_frame_lengths(
        self, tiny_spec, tiny_backbone_config, comm_config
    ):
        result = _run(tiny_spec, tiny_backbone_config, replace(comm_config, codec="delta"))
        ledger = result.communication
        assert ledger.measured
        assert len(ledger.records) == ledger.rounds
        assert ledger.uploaded_bytes == sum(
            frame.num_bytes
            for record in ledger.records
            for frame in record.upload_frames
            if frame.status != "dropped"
        )
        assert ledger.broadcast_bytes == sum(
            frame.num_bytes
            for record in ledger.records
            for frame in record.broadcast_frames
        )
        assert ledger.per_round == [
            {"upload": record.upload_bytes, "broadcast": record.broadcast_bytes}
            for record in ledger.records
        ]
        # Every selected client is charged a download every round.
        for record in ledger.records:
            assert len(record.broadcast_frames) == comm_config.clients_per_round

    def test_ledger_reconciles_with_round_ipc(
        self, tiny_spec, tiny_backbone_config, comm_config
    ):
        """Where ledger and executor observe the same traffic, the bytes agree.

        Under the identity codec the broadcast wire frame *is* the serialized
        blob the pinned pool ships to each worker, so per-round:
        ``frame_bytes * num_messages == RoundIPC.broadcast_bytes``.
        """
        scenario = DomainIncrementalScenario(SyntheticDomainDataset(tiny_spec), num_tasks=2)
        method = build_method("refil", tiny_backbone_config, num_tasks=2)
        simulation = FederatedDomainIncrementalSimulation(
            scenario,
            method,
            replace(comm_config, executor="parallel", num_workers=2),
        )
        result = simulation.run()
        ledger = result.communication
        ipc_log = simulation.executor.ipc_log
        assert len(ipc_log) == len(ledger.records)
        for record, ipc in zip(ledger.records, ipc_log):
            frame_bytes = {frame.num_bytes for frame in record.broadcast_frames}
            assert len(frame_bytes) == 1  # identity: one frame serves the round
            assert frame_bytes.pop() * ipc.num_messages == ipc.broadcast_bytes

    def test_quantized_run_compresses_and_still_learns(
        self, tiny_spec, tiny_backbone_config, comm_config
    ):
        identity = _run(tiny_spec, tiny_backbone_config, comm_config)
        quantized = _run(
            tiny_spec, tiny_backbone_config, replace(comm_config, codec="quantize8")
        )
        assert quantized.communication.measured
        assert (
            identity.communication.uploaded_bytes
            >= 4 * quantized.communication.uploaded_bytes
        )
        assert np.isfinite(quantized.metrics.average)
        assert all(np.isfinite(loss) for loss in quantized.round_losses)


class TestBandwidthScenarios:
    def _frame_bytes(self, tiny_spec, tiny_backbone_config, comm_config):
        result = _run(tiny_spec, tiny_backbone_config, comm_config)
        record = result.communication.records[0]
        return record.upload_frames[0].num_bytes

    def test_drop_stragglers_is_deterministic_and_keeps_one(
        self, tiny_spec, tiny_backbone_config, comm_config
    ):
        frame = self._frame_bytes(tiny_spec, tiny_backbone_config, comm_config)
        config = replace(comm_config, bandwidth_limit=frame, drop_stragglers=True)
        first = _run(tiny_spec, tiny_backbone_config, config)
        second = _run(tiny_spec, tiny_backbone_config, config)
        ledger = first.communication
        # The per-client multipliers straddle 1.0, so a frame-sized budget
        # must split the population: some drops, never a whole round.
        assert ledger.dropped_uploads > 0
        assert ledger.dropped_upload_bytes > 0
        for record in ledger.records:
            assert any(f.status != "dropped" for f in record.upload_frames)
        np.testing.assert_array_equal(first.metrics.matrix, second.metrics.matrix)
        assert first.round_losses == second.round_losses
        assert (
            first.communication.dropped_uploads == second.communication.dropped_uploads
        )

    def test_deferred_uploads_arrive_next_round_and_expire_at_task_end(
        self, tiny_spec, tiny_backbone_config, comm_config
    ):
        frame = self._frame_bytes(tiny_spec, tiny_backbone_config, comm_config)
        config = replace(comm_config, bandwidth_limit=frame, drop_stragglers=False)
        result = _run(tiny_spec, tiny_backbone_config, config)
        ledger = result.communication
        assert ledger.dropped_uploads == 0
        assert ledger.deferred_uploads + ledger.expired_uploads > 0
        deferred_seen = [
            sum(1 for f in record.upload_frames if f.status == "deferred")
            for record in ledger.records
        ]
        # A deferral can never land in the first round of a task.
        rounds_per_task = config.rounds_per_task
        for task_first in range(0, len(deferred_seen), rounds_per_task):
            assert deferred_seen[task_first] == 0
        # Full coverage: every encoded upload is delivered, deferred-then-
        # delivered, or expired (finalize() accounts end-of-run leftovers) —
        # nothing vanishes from the books.
        total_uploads = sum(len(r.upload_frames) for r in ledger.records)
        assert total_uploads + ledger.expired_uploads == sum(
            len(r.broadcast_frames) for r in ledger.records
        )

    def test_run_cache_keeps_codec_distinct_under_bandwidth_limits(self):
        """Lossless codecs fold together in the run cache ONLY without a budget:
        with one, drop/defer outcomes depend on codec frame sizes."""
        from repro.experiments.runner import _normalize_execution_knobs

        free_delta = _normalize_execution_knobs(FederatedConfig(codec="delta"))
        free_identity = _normalize_execution_knobs(FederatedConfig(codec="identity"))
        assert free_delta == free_identity
        limited_delta = _normalize_execution_knobs(
            FederatedConfig(codec="delta", bandwidth_limit=1000, drop_stragglers=True)
        )
        limited_identity = _normalize_execution_knobs(
            FederatedConfig(codec="identity", bandwidth_limit=1000, drop_stragglers=True)
        )
        assert limited_delta != limited_identity
        direct = _normalize_execution_knobs(
            FederatedConfig(transport="direct", codec="quantize8")
        )
        assert direct == free_identity  # direct never encodes: codec is inert

    def test_budget_seeding_is_per_client_and_deterministic(self):
        ledger = CommunicationLedger()
        make = lambda: build_transport(
            "loopback", "identity", ledger, seed=3, bandwidth_limit=1000
        )
        first, second = make(), make()
        budgets = {cid: first.budget_for(cid) for cid in range(8)}
        assert budgets == {cid: second.budget_for(cid) for cid in range(8)}
        assert len(set(budgets.values())) > 1  # heterogeneous population

    def test_config_validation(self):
        with pytest.raises(ValueError):
            FederatedConfig(transport="carrier-pigeon")
        with pytest.raises(ValueError):
            FederatedConfig(codec="gzip")
        with pytest.raises(ValueError):
            FederatedConfig(bandwidth_limit=-1)
        with pytest.raises(ValueError):
            FederatedConfig(transport="direct", bandwidth_limit=100)
        with pytest.raises(ValueError):
            build_transport("quantum", "identity", CommunicationLedger())
        FederatedConfig(codec="topk:0.05")  # parameterised specs are valid
