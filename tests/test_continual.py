"""Tests for the continual-learning scenario and the forgetting metrics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.autograd.tensor import default_dtype
from repro.continual import (
    AccuracyMatrix,
    DomainIncrementalScenario,
    GlobalEvaluator,
    SerialEvalBackend,
    count_correct,
    evaluate_accuracy,
)
from repro.datasets import SyntheticDomainDataset
from repro.datasets.base import ArrayDataset
from repro.nn.dropout import Dropout
from repro.nn.linear import Linear
from repro.nn.module import Module


class TestAccuracyMatrix:
    def _filled(self):
        matrix = AccuracyMatrix(3)
        values = {
            (0, 0): 0.9,
            (1, 0): 0.6,
            (1, 1): 0.8,
            (2, 0): 0.5,
            (2, 1): 0.7,
            (2, 2): 0.9,
        }
        for (after, task), acc in values.items():
            matrix.record(after, task, acc)
        return matrix

    def test_step_average_accuracies(self):
        matrix = self._filled()
        steps = matrix.step_average_accuracies()
        assert steps[0] == pytest.approx(0.9)
        assert steps[1] == pytest.approx(0.7)
        assert steps[2] == pytest.approx(0.7)

    def test_average_and_last(self):
        matrix = self._filled()
        assert matrix.average_accuracy() == pytest.approx((0.9 + 0.7 + 0.7) / 3)
        assert matrix.last_accuracy() == pytest.approx(0.7)

    def test_forgetting_hand_computed(self):
        matrix = self._filled()
        # task0: best before final = max(0.9, 0.6) = 0.9, final 0.5 -> 0.4
        # task1: best before final = 0.8, final 0.7 -> 0.1
        assert matrix.forgetting() == pytest.approx((0.4 + 0.1) / 2)

    def test_backward_transfer_hand_computed(self):
        matrix = self._filled()
        # (0.5 - 0.9) and (0.7 - 0.8) -> mean -0.25
        assert matrix.backward_transfer() == pytest.approx(-0.25)

    def test_single_task_edge_case(self):
        matrix = AccuracyMatrix(1)
        matrix.record(0, 0, 0.8)
        assert matrix.forgetting() == 0.0
        assert matrix.backward_transfer() == 0.0
        assert matrix.average_accuracy() == pytest.approx(0.8)

    def test_validation(self):
        matrix = AccuracyMatrix(2)
        with pytest.raises(IndexError):
            matrix.record(0, 1, 0.5)  # cannot evaluate an unseen task
        with pytest.raises(IndexError):
            matrix.record(5, 0, 0.5)
        with pytest.raises(ValueError):
            matrix.record(0, 0, 50.0)  # must be a fraction
        with pytest.raises(ValueError):
            AccuracyMatrix(0)

    def test_is_complete(self):
        matrix = AccuracyMatrix(2)
        assert not matrix.is_complete()
        matrix.record(0, 0, 0.5)
        matrix.record(1, 0, 0.5)
        matrix.record(1, 1, 0.5)
        assert matrix.is_complete()

    def test_summary_percentages(self):
        summary = self._filled().summary()
        pct = summary.as_percentages()
        assert pct["avg"] == pytest.approx(100 * summary.average)
        assert pct["fgt"] == pytest.approx(summary.forgetting)
        assert len(summary.step_averages_pct()) == 3

    def test_no_forgetting_when_accuracy_retained(self):
        matrix = AccuracyMatrix(2)
        matrix.record(0, 0, 0.8)
        matrix.record(1, 0, 0.8)
        matrix.record(1, 1, 0.9)
        assert matrix.forgetting() == pytest.approx(0.0)
        assert matrix.backward_transfer() == pytest.approx(0.0)


class TestScenario:
    def test_tasks_follow_domain_order(self, tiny_spec):
        scenario = DomainIncrementalScenario(SyntheticDomainDataset(tiny_spec))
        tasks = scenario.tasks()
        assert [t.domain_name for t in tasks] == list(tiny_spec.domains)
        assert all(len(t.train) == tiny_spec.train_per_domain for t in tasks)

    def test_num_tasks_truncation_and_validation(self, tiny_spec):
        dataset = SyntheticDomainDataset(tiny_spec)
        scenario = DomainIncrementalScenario(dataset, num_tasks=2)
        assert len(scenario) == 2
        with pytest.raises(ValueError):
            DomainIncrementalScenario(dataset, num_tasks=99)
        with pytest.raises(IndexError):
            scenario.task(5)

    def test_seen_tests(self, tiny_spec):
        scenario = DomainIncrementalScenario(SyntheticDomainDataset(tiny_spec))
        seen = scenario.seen_tests(2)
        assert [t.task_id for t in seen] == [0, 1, 2]

    def test_seen_tests_rejects_out_of_range_ids(self, tiny_spec):
        """Out-of-range ids must raise like task() does, not silently clamp —
        a clamped suite evaluates the wrong tasks without any signal."""
        scenario = DomainIncrementalScenario(SyntheticDomainDataset(tiny_spec), num_tasks=2)
        assert [t.task_id for t in scenario.seen_tests(1)] == [0, 1]
        with pytest.raises(IndexError):
            scenario.seen_tests(2)
        with pytest.raises(IndexError):
            scenario.seen_tests(-1)


class _ConstantModel(Module):
    """Predicts a fixed class for every input; lets accuracy be computed analytically."""

    def __init__(self, num_classes: int, chosen: int):
        super().__init__()
        self.head = Linear(1, num_classes)
        self.num_classes = num_classes
        self.chosen = chosen

    def forward(self, images: Tensor) -> Tensor:
        batch = images.shape[0]
        logits = np.zeros((batch, self.num_classes))
        logits[:, self.chosen] = 10.0
        return Tensor(logits)


class TestEvaluator:
    def test_constant_model_accuracy(self):
        labels = np.array([0, 0, 1, 2])
        data = ArrayDataset(np.zeros((4, 3, 4, 4)), labels)
        model = _ConstantModel(3, chosen=0)
        assert evaluate_accuracy(model, data) == pytest.approx(0.5)

    def test_empty_dataset_raises(self):
        model = _ConstantModel(3, chosen=0)
        with pytest.raises(ValueError):
            evaluate_accuracy(model, ArrayDataset(np.zeros((0, 3, 4, 4)), np.zeros(0, dtype=int)))

    def test_global_evaluator_fills_matrix(self, tiny_spec):
        scenario = DomainIncrementalScenario(SyntheticDomainDataset(tiny_spec), num_tasks=2)
        evaluator = GlobalEvaluator(scenario)
        model = _ConstantModel(tiny_spec.num_classes, chosen=1)
        evaluator.evaluate_after_task(model, 0)
        evaluator.evaluate_after_task(model, 1)
        summary = evaluator.summary()
        assert len(summary.step_averages) == 2
        assert 0.0 <= summary.average <= 1.0

    def test_evaluate_restores_prior_module_mode(self):
        """Regression: evaluation used to force model.train() on exit,
        re-enabling dropout even for callers that held the model in eval
        mode.  The actual prior mode must be restored, recursively."""
        labels = np.array([0, 0, 1, 2])
        data = ArrayDataset(np.zeros((4, 3, 4, 4)), labels)
        model = _ConstantModel(3, chosen=0)
        model.dropout = Dropout(0.5)  # a submodule whose mode matters

        model.eval()
        evaluate_accuracy(model, data)
        assert not model.training and not model.dropout.training  # no leakage

        model.train()
        count_correct(model, data)
        assert model.training and model.dropout.training  # restored, not stuck in eval

        # Heterogeneous modes survive too: a submodule deliberately held in
        # eval (e.g. a frozen backbone) must not be flipped to train by a
        # recursive restore of the root's mode.
        model.train()
        model.dropout.eval()
        evaluate_accuracy(model, data)
        assert model.training and not model.dropout.training

    def test_mode_restored_even_when_predict_fn_raises(self):
        data = ArrayDataset(np.zeros((2, 3, 4, 4)), np.array([0, 1]))
        model = _ConstantModel(3, chosen=0)

        def boom(model, images):
            raise RuntimeError("inference failed")

        model.train()
        with pytest.raises(RuntimeError, match="inference failed"):
            count_correct(model, data, predict_fn=boom)
        assert model.training

    def test_converted_test_cache_holds_one_dtype_at_a_time(self, tiny_spec):
        """Regression: the evaluator used to retain every (task, dtype)
        conversion forever; conversion to one precision must evict the other
        precision's entries so the cache is bounded by one copy of the test
        suite."""
        with default_dtype(np.float32):
            scenario = DomainIncrementalScenario(SyntheticDomainDataset(tiny_spec), num_tasks=2)
            tasks = scenario.tasks()  # splits generated (and cached) as float32
        evaluator = GlobalEvaluator(scenario)
        with default_dtype(np.float32):
            for task in tasks:
                assert evaluator._test_set(task) is task.test  # matching dtype: no copy
            assert evaluator._converted_tests == {}
        for task in tasks:  # a float64 run over the same scenario converts
            assert evaluator._test_set(task).images.dtype == np.float64
        assert set(evaluator._converted_tests) == {(0, "float64"), (1, "float64")}
        assert evaluator._test_set(tasks[0]) is evaluator._test_set(tasks[0])  # memoised
        # A stale other-dtype entry (left by a prior differently-typed run)
        # is evicted at the next conversion instead of retained forever.
        evaluator._converted_tests[(0, "float32")] = tasks[0].test
        del evaluator._converted_tests[(1, "float64")]
        evaluator._test_set(tasks[1])
        assert set(evaluator._converted_tests) == {(0, "float64"), (1, "float64")}

    def test_default_backend_is_serial(self, tiny_spec):
        scenario = DomainIncrementalScenario(SyntheticDomainDataset(tiny_spec), num_tasks=1)
        assert isinstance(GlobalEvaluator(scenario).backend, SerialEvalBackend)

    def test_evaluate_seen_matches_after_task_without_recording(self, tiny_spec):
        scenario = DomainIncrementalScenario(SyntheticDomainDataset(tiny_spec), num_tasks=2)
        evaluator = GlobalEvaluator(scenario)
        model = _ConstantModel(tiny_spec.num_classes, chosen=1)
        snapshot = evaluator.evaluate_seen(model, 1)
        assert evaluator.per_task_history == []
        assert np.isnan(evaluator.accuracy_matrix.matrix).all()
        assert snapshot == evaluator.evaluate_after_task(model, 1)
        assert len(evaluator.per_task_history) == 1

    def test_predict_fn_hook_is_used(self, tiny_spec):
        scenario = DomainIncrementalScenario(SyntheticDomainDataset(tiny_spec), num_tasks=1)
        calls = []

        def predict(model, images):
            calls.append(images.shape[0])
            return model(images)

        evaluator = GlobalEvaluator(scenario, predict_fn=predict)
        evaluator.evaluate_after_task(_ConstantModel(tiny_spec.num_classes, 0), 0)
        assert sum(calls) == tiny_spec.test_per_domain
