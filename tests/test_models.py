"""Tests for the model zoo: ResNet10, tokenizer, classifier and the prompted backbone."""

from __future__ import annotations

import numpy as np
import pytest

from repro.autograd import Tensor
from repro.models import BackboneConfig, ClsClassifier, PatchTokenizer, PromptedBackbone, ResNet10, build_backbone
from repro.models.tokenizer import sinusoidal_positions

RNG = np.random.default_rng(11)


class TestResNet10:
    def test_output_shape_and_channels(self):
        net = ResNet10(in_channels=3, base_width=8, rng=RNG)
        out = net(Tensor(RNG.standard_normal((2, 3, 16, 16))))
        assert out.shape == (2, net.out_channels, 4, 4)
        assert net.out_channels == 16

    def test_output_spatial_helper_matches_forward(self):
        net = ResNet10(in_channels=3, base_width=4, stage_strides=(1, 2, 2, 2), rng=RNG)
        out = net(Tensor(RNG.standard_normal((1, 3, 16, 16))))
        assert net.output_spatial(16) == out.shape[2:]

    def test_requires_four_stages(self):
        with pytest.raises(ValueError):
            ResNet10(widths=(1, 2), stage_strides=(1, 2))

    def test_gradients_reach_stem(self):
        net = ResNet10(in_channels=3, base_width=4, rng=RNG)
        net(Tensor(RNG.standard_normal((2, 3, 16, 16)))).sum().backward()
        assert net.stem_conv.weight.grad is not None

    def test_projection_shortcut_used_when_shapes_change(self):
        from repro.models.resnet import BasicBlock

        block = BasicBlock(4, 8, stride=2, rng=RNG)
        assert block.shortcut_conv is not None
        identity_block = BasicBlock(4, 4, stride=1, rng=RNG)
        assert identity_block.shortcut_conv is None


class TestPatchTokenizer:
    def test_token_shape(self):
        tok = PatchTokenizer(in_channels=16, embed_dim=32, rng=RNG)
        tokens = tok(Tensor(RNG.standard_normal((2, 16, 4, 4))))
        assert tokens.shape == (2, 16, 32)

    def test_tokenizer_is_frozen(self):
        tok = PatchTokenizer(in_channels=8, embed_dim=16, rng=RNG)
        assert all(not p.requires_grad for p in tok.parameters())

    def test_positional_encoding_shape_and_determinism(self):
        enc = sinusoidal_positions(10, 8)
        assert enc.shape == (10, 8)
        assert np.allclose(enc, sinusoidal_positions(10, 8))

    def test_too_many_tokens_raises(self):
        tok = PatchTokenizer(in_channels=4, embed_dim=8, max_positions=4, rng=RNG)
        with pytest.raises(ValueError):
            tok(Tensor(RNG.standard_normal((1, 4, 3, 3))))


class TestClassifier:
    def test_logit_shape(self):
        head = ClsClassifier(16, 7, rng=RNG)
        assert head(Tensor(RNG.standard_normal((5, 16)))).shape == (5, 7)

    def test_rejects_wrong_embedding_size(self):
        head = ClsClassifier(16, 7, rng=RNG)
        with pytest.raises(ValueError):
            head(Tensor(RNG.standard_normal((5, 8))))


class TestPromptedBackbone:
    @pytest.fixture
    def backbone(self, tiny_backbone_config):
        return PromptedBackbone(tiny_backbone_config)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            BackboneConfig(image_size=4)
        with pytest.raises(ValueError):
            BackboneConfig(embed_dim=30, num_heads=4)

    def test_logits_shape_without_prompts(self, backbone, tiny_backbone_config):
        images = Tensor(RNG.standard_normal((3, 3, 16, 16)))
        assert backbone(images).shape == (3, tiny_backbone_config.num_classes)

    def test_input_tokens_include_cls(self, backbone):
        images = Tensor(RNG.standard_normal((2, 3, 16, 16)))
        tokens = backbone.input_tokens(images)
        assert tokens.shape == (2, backbone.num_patch_tokens + 1, backbone.config.embed_dim)

    def test_shared_prompts_change_logits(self, backbone):
        images = Tensor(RNG.standard_normal((2, 3, 16, 16)))
        prompts = Tensor(RNG.standard_normal((4, backbone.config.embed_dim)))
        without = backbone(images).data
        with_prompts = backbone(images, prompts).data
        assert without.shape == with_prompts.shape
        assert not np.allclose(without, with_prompts)

    def test_per_sample_prompts_accepted(self, backbone):
        images = Tensor(RNG.standard_normal((2, 3, 16, 16)))
        prompts = Tensor(RNG.standard_normal((2, 3, backbone.config.embed_dim)))
        assert backbone(images, prompts).shape == (2, backbone.config.num_classes)

    def test_per_sample_prompt_batch_mismatch_raises(self, backbone):
        images = Tensor(RNG.standard_normal((2, 3, 16, 16)))
        prompts = Tensor(RNG.standard_normal((3, 3, backbone.config.embed_dim)))
        with pytest.raises(ValueError):
            backbone(images, prompts)

    def test_prompt_rank_validation(self, backbone):
        images = Tensor(RNG.standard_normal((2, 3, 16, 16)))
        with pytest.raises(ValueError):
            backbone(images, Tensor(RNG.standard_normal(8)))

    def test_forward_from_patches_matches_forward(self, backbone):
        images = Tensor(RNG.standard_normal((2, 3, 16, 16)))
        backbone.eval()
        direct = backbone(images).data
        patches = backbone.patch_tokens(images)
        indirect = backbone.forward_from_patches(patches).data
        assert np.allclose(direct, indirect)

    def test_trainable_parameter_names_exclude_tokenizer(self, backbone):
        names = backbone.trainable_parameter_names()
        assert names
        assert not any(name.startswith("tokenizer.") for name in names)

    def test_build_backbone_overrides(self):
        model = build_backbone(num_classes=5, image_size=16, base_width=4, embed_dim=16, seed=1)
        assert model.config.num_classes == 5
        with pytest.raises(ValueError):
            build_backbone(BackboneConfig(), num_classes=5)

    def test_state_dict_roundtrip_changes_output(self, backbone, tiny_backbone_config):
        import dataclasses

        images = Tensor(RNG.standard_normal((2, 3, 16, 16)))
        backbone.eval()
        before = backbone(images).data.copy()
        state = backbone.state_dict()
        other_config = dataclasses.replace(tiny_backbone_config, seed=tiny_backbone_config.seed + 1)
        other = PromptedBackbone(other_config)
        other.eval()
        assert not np.allclose(other(images).data, before)
        other.load_state_dict(state)
        assert np.allclose(other(images).data, before)

    def test_same_seed_gives_identical_initialisation(self, backbone, tiny_backbone_config):
        clone = PromptedBackbone(tiny_backbone_config)
        images = Tensor(RNG.standard_normal((2, 3, 16, 16)))
        backbone.eval()
        clone.eval()
        assert np.allclose(backbone(images).data, clone(images).data)
