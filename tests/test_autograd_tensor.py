"""Unit and property-based tests for the autograd Tensor."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.autograd import Tensor, no_grad
from repro.autograd.tensor import unbroadcast


def small_arrays(max_side: int = 4):
    return hnp.arrays(
        dtype=np.float64,
        shape=hnp.array_shapes(min_dims=1, max_dims=3, min_side=1, max_side=max_side),
        elements=st.floats(-5, 5, allow_nan=False, allow_infinity=False),
    )


class TestConstruction:
    def test_data_is_float64(self):
        t = Tensor([1, 2, 3])
        assert t.data.dtype == np.float64
        assert t.shape == (3,)

    def test_requires_grad_default_false(self):
        assert not Tensor([1.0]).requires_grad

    def test_detach_cuts_graph(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        b = (a * 2).detach()
        assert not b.requires_grad
        assert np.allclose(b.data, [2.0, 4.0])

    def test_zeros_ones_randn_from_numpy(self):
        assert np.all(Tensor.zeros((2, 3)).data == 0)
        assert np.all(Tensor.ones((2, 3)).data == 1)
        assert Tensor.randn(2, 3, rng=np.random.default_rng(0)).shape == (2, 3)
        assert Tensor.from_numpy(np.arange(4)).shape == (4,)

    def test_item_and_len(self):
        assert Tensor([[3.5]]).item() == pytest.approx(3.5)
        assert len(Tensor(np.zeros((5, 2)))) == 5


class TestArithmeticBackward:
    def test_add_backward(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        b = Tensor([3.0, 4.0], requires_grad=True)
        (a + b).sum().backward()
        assert np.allclose(a.grad, [1, 1])
        assert np.allclose(b.grad, [1, 1])

    def test_sub_backward(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        b = Tensor([3.0, 4.0], requires_grad=True)
        (a - b).sum().backward()
        assert np.allclose(a.grad, [1, 1])
        assert np.allclose(b.grad, [-1, -1])

    def test_mul_backward(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        b = Tensor([3.0, 4.0], requires_grad=True)
        (a * b).sum().backward()
        assert np.allclose(a.grad, b.data)
        assert np.allclose(b.grad, a.data)

    def test_div_backward(self):
        a = Tensor([4.0], requires_grad=True)
        b = Tensor([2.0], requires_grad=True)
        (a / b).sum().backward()
        assert np.allclose(a.grad, [0.5])
        assert np.allclose(b.grad, [-1.0])

    def test_pow_backward(self):
        a = Tensor([3.0], requires_grad=True)
        (a ** 2).sum().backward()
        assert np.allclose(a.grad, [6.0])

    def test_neg_backward(self):
        a = Tensor([3.0], requires_grad=True)
        (-a).sum().backward()
        assert np.allclose(a.grad, [-1.0])

    def test_reuse_same_tensor_accumulates(self):
        a = Tensor([2.0], requires_grad=True)
        (a * a).sum().backward()
        assert np.allclose(a.grad, [4.0])

    def test_scalar_broadcast_backward(self):
        a = Tensor(np.ones((3, 2)), requires_grad=True)
        (a * 3.0).sum().backward()
        assert np.allclose(a.grad, np.full((3, 2), 3.0))

    def test_bias_broadcast_backward(self):
        x = Tensor(np.ones((4, 3)), requires_grad=True)
        b = Tensor(np.zeros(3), requires_grad=True)
        (x + b).sum().backward()
        assert np.allclose(b.grad, [4, 4, 4])

    def test_matmul_backward_matches_manual(self):
        a = Tensor(np.array([[1.0, 2.0], [3.0, 4.0]]), requires_grad=True)
        b = Tensor(np.array([[5.0, 6.0], [7.0, 8.0]]), requires_grad=True)
        (a @ b).sum().backward()
        ones = np.ones((2, 2))
        assert np.allclose(a.grad, ones @ b.data.T)
        assert np.allclose(b.grad, a.data.T @ ones)

    def test_batched_matmul_shapes(self):
        a = Tensor(np.random.default_rng(0).standard_normal((2, 3, 4)), requires_grad=True)
        b = Tensor(np.random.default_rng(1).standard_normal((2, 4, 5)), requires_grad=True)
        out = a @ b
        assert out.shape == (2, 3, 5)
        out.sum().backward()
        assert a.grad.shape == a.shape
        assert b.grad.shape == b.shape

    def test_rsub_rdiv_radd(self):
        a = Tensor([2.0], requires_grad=True)
        assert np.allclose((5.0 - a).data, [3.0])
        assert np.allclose((8.0 / a).data, [4.0])
        assert np.allclose((1.0 + a).data, [3.0])

    def test_backward_requires_scalar_without_seed(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        with pytest.raises(RuntimeError):
            (a * 2).backward()

    def test_backward_on_non_grad_tensor_raises(self):
        with pytest.raises(RuntimeError):
            Tensor([1.0]).backward()


class TestUnaryAndReductions:
    def test_exp_log_roundtrip_gradient(self):
        a = Tensor([0.5, 1.5], requires_grad=True)
        a.exp().log().sum().backward()
        assert np.allclose(a.grad, [1.0, 1.0])

    def test_relu_masks_gradient(self):
        a = Tensor([-1.0, 2.0], requires_grad=True)
        a.relu().sum().backward()
        assert np.allclose(a.grad, [0.0, 1.0])

    def test_sigmoid_tanh_values(self):
        assert Tensor([0.0]).sigmoid().data == pytest.approx(0.5)
        assert Tensor([0.0]).tanh().data == pytest.approx(0.0)

    def test_clip_gradient(self):
        a = Tensor([-2.0, 0.5, 2.0], requires_grad=True)
        a.clip(-1.0, 1.0).sum().backward()
        assert np.allclose(a.grad, [0.0, 1.0, 0.0])

    def test_abs_gradient(self):
        a = Tensor([-2.0, 3.0], requires_grad=True)
        a.abs().sum().backward()
        assert np.allclose(a.grad, [-1.0, 1.0])

    def test_sum_axis_keepdims(self):
        a = Tensor(np.arange(6, dtype=float).reshape(2, 3), requires_grad=True)
        out = a.sum(axis=1, keepdims=True)
        assert out.shape == (2, 1)
        out.sum().backward()
        assert np.allclose(a.grad, np.ones((2, 3)))

    def test_mean_value_and_grad(self):
        a = Tensor(np.array([[2.0, 4.0]]), requires_grad=True)
        m = a.mean()
        assert m.data == pytest.approx(3.0)
        m.backward()
        assert np.allclose(a.grad, [[0.5, 0.5]])

    def test_var_matches_numpy(self):
        data = np.random.default_rng(3).standard_normal((4, 5))
        assert np.allclose(Tensor(data).var(axis=1).data, data.var(axis=1))

    def test_max_min(self):
        a = Tensor(np.array([[1.0, 5.0], [3.0, 2.0]]), requires_grad=True)
        assert np.allclose(a.max(axis=1).data, [5.0, 3.0])
        assert np.allclose(a.min(axis=1).data, [1.0, 2.0])
        a.max().backward()
        assert a.grad[0, 1] == pytest.approx(1.0)
        assert a.grad.sum() == pytest.approx(1.0)

    def test_mean_axis_tuple(self):
        data = np.random.default_rng(0).standard_normal((2, 3, 4))
        assert np.allclose(Tensor(data).mean(axis=(1, 2)).data, data.mean(axis=(1, 2)))


class TestShapes:
    def test_reshape_and_grad(self):
        a = Tensor(np.arange(6, dtype=float), requires_grad=True)
        a.reshape(2, 3).sum().backward()
        assert a.grad.shape == (6,)

    def test_transpose_roundtrip(self):
        data = np.random.default_rng(0).standard_normal((2, 3, 4))
        t = Tensor(data, requires_grad=True)
        out = t.transpose(0, 2, 1).transpose(0, 2, 1)
        assert np.allclose(out.data, data)
        out.sum().backward()
        assert np.allclose(t.grad, np.ones_like(data))

    def test_T_property(self):
        data = np.arange(6, dtype=float).reshape(2, 3)
        assert Tensor(data).T.shape == (3, 2)

    def test_getitem_int_array_backward(self):
        a = Tensor(np.arange(5, dtype=float), requires_grad=True)
        idx = np.array([0, 0, 3])
        a[idx].sum().backward()
        assert np.allclose(a.grad, [2, 0, 0, 1, 0])

    def test_concatenate_backward(self):
        a = Tensor(np.ones((2, 2)), requires_grad=True)
        b = Tensor(np.ones((3, 2)), requires_grad=True)
        out = Tensor.concatenate([a, b], axis=0)
        assert out.shape == (5, 2)
        (out * 2).sum().backward()
        assert np.allclose(a.grad, np.full((2, 2), 2.0))
        assert np.allclose(b.grad, np.full((3, 2), 2.0))

    def test_stack_backward(self):
        a = Tensor(np.ones(3), requires_grad=True)
        b = Tensor(np.zeros(3), requires_grad=True)
        out = Tensor.stack([a, b], axis=0)
        assert out.shape == (2, 3)
        out.sum().backward()
        assert np.allclose(a.grad, np.ones(3))

    def test_broadcast_to_backward(self):
        a = Tensor(np.ones((1, 3)), requires_grad=True)
        a.broadcast_to((4, 3)).sum().backward()
        assert np.allclose(a.grad, np.full((1, 3), 4.0))

    def test_squeeze_expand_dims(self):
        a = Tensor(np.ones((1, 3, 1)))
        assert a.squeeze().shape == (3,)
        assert a.squeeze(0).shape == (3, 1)
        assert a.expand_dims(0).shape == (1, 1, 3, 1)

    def test_pad_backward(self):
        a = Tensor(np.ones((2, 2)), requires_grad=True)
        padded = a.pad(((1, 1), (1, 1)))
        assert padded.shape == (4, 4)
        padded.sum().backward()
        assert np.allclose(a.grad, np.ones((2, 2)))

    def test_flatten(self):
        a = Tensor(np.zeros((2, 3, 4)))
        assert a.flatten(start_dim=1).shape == (2, 12)
        assert a.flatten().shape == (24,)

    def test_swapaxes(self):
        a = Tensor(np.zeros((2, 3, 4)))
        assert a.swapaxes(0, 2).shape == (4, 3, 2)


class TestNoGrad:
    def test_no_grad_disables_graph(self):
        a = Tensor([1.0], requires_grad=True)
        with no_grad():
            out = a * 2
        assert not out.requires_grad

    def test_no_grad_restores_state(self):
        a = Tensor([1.0], requires_grad=True)
        with no_grad():
            pass
        assert (a * 2).requires_grad


class TestUnbroadcast:
    def test_identity(self):
        grad = np.ones((2, 3))
        assert unbroadcast(grad, (2, 3)).shape == (2, 3)

    def test_leading_dims_summed(self):
        grad = np.ones((4, 2, 3))
        assert np.allclose(unbroadcast(grad, (2, 3)), np.full((2, 3), 4.0))

    def test_size_one_dims_summed(self):
        grad = np.ones((4, 3))
        assert np.allclose(unbroadcast(grad, (1, 3)), np.full((1, 3), 4.0))

    @given(small_arrays())
    @settings(max_examples=25, deadline=None)
    def test_unbroadcast_preserves_total_mass(self, array):
        reduced = unbroadcast(array, (1,) * array.ndim)
        assert np.allclose(reduced.sum(), array.sum())


class TestGradientProperties:
    @given(small_arrays(), st.floats(-3, 3, allow_nan=False))
    @settings(max_examples=30, deadline=None)
    def test_scaling_linearity(self, array, scale):
        a = Tensor(array, requires_grad=True)
        (a * scale).sum().backward()
        assert np.allclose(a.grad, np.full(array.shape, scale))

    @given(small_arrays())
    @settings(max_examples=30, deadline=None)
    def test_sum_gradient_is_ones(self, array):
        a = Tensor(array, requires_grad=True)
        a.sum().backward()
        assert np.allclose(a.grad, np.ones_like(array))

    @given(small_arrays())
    @settings(max_examples=30, deadline=None)
    def test_addition_gradient_shares_shape(self, array):
        a = Tensor(array, requires_grad=True)
        b = Tensor(array.copy(), requires_grad=True)
        (a + b).sum().backward()
        assert a.grad.shape == array.shape
        assert b.grad.shape == array.shape
